//! Cross-crate integration tests: the public API exercised end-to-end, and
//! agreement between independent implementations of the same mathematics.

use ca_factor::baselines::{geqrf_blocked, getrf_blocked, tiled_lu, tiled_qr, TiledLu};
use ca_factor::matrix::{
    norm_max, orthogonality, random_uniform, seeded_rng, Matrix,
};
use ca_factor::prelude::*;

#[test]
fn calu_blocked_and_tiled_solve_the_same_system() {
    let n = 300;
    let mut rng = seeded_rng(1);
    let a = random_uniform(n, n, &mut rng);
    let x_true = random_uniform(n, 3, &mut rng);
    let b = a.matmul(&x_true);

    let x1 = calu(a.clone(), &CaParams::new(48, 4, 3)).solve(&b);
    let x3 = tiled_lu(a.clone(), 48, 3).solve(&b);
    let mut lu = a.clone();
    let r = getrf_blocked(&mut lu, 48, 3);
    let mut x2 = b.clone();
    r.pivots.apply(x2.view_mut());
    ca_factor::kernels::trsm_left_lower_unit(lu.view(), x2.view_mut());
    ca_factor::kernels::trsm_left_upper_notrans(lu.view(), x2.view_mut());

    for x in [&x1, &x2, &x3] {
        let err = norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-8, "solution error {err}");
    }
    let _ = TiledLu::solve_residual(&a, &x3, &b);
}

#[test]
fn calu_tr1_pivots_agree_with_blocked_lapack() {
    // With Tr = 1 tournament pivoting degenerates to partial pivoting, so
    // the pivot sequence must agree with the blocked LAPACK baseline (which
    // itself agrees with dgetf2) — three independent code paths, one answer.
    let m = 200;
    let n = 120;
    let a = random_uniform(m, n, &mut seeded_rng(2));
    let f = calu(a.clone(), &CaParams::new(30, 1, 2));
    let mut lu = a.clone();
    let r = getrf_blocked(&mut lu, 30, 1);
    assert_eq!(f.pivots.ipiv, r.pivots.ipiv);
    // The factors agree to roundoff (different update orders).
    let diff = f.lu.sub_matrix(&lu);
    assert!(norm_max(diff.view()) < 1e-10);
}

#[test]
fn three_qr_engines_agree_on_abs_r() {
    let m = 250;
    let n = 60;
    let a = random_uniform(m, n, &mut seeded_rng(3));

    let f_caqr = caqr(a.clone(), &CaParams::new(20, 4, 3));
    let r1 = f_caqr.r();

    let mut w = a.clone();
    let bq = geqrf_blocked(&mut w, 20, 3);
    let r2 = w.upper();
    let _ = bq;

    let tq = tiled_qr(a.clone(), 20, 3);
    let r3 = tq.r();

    for i in 0..n {
        for j in i..n {
            let x1 = r1[(i, j)].abs();
            let x2 = r2[(i, j)].abs();
            let x3 = r3[(i, j)].abs();
            assert!((x1 - x2).abs() < 1e-9 * (1.0 + x2), "CAQR vs blocked at ({i},{j})");
            assert!((x3 - x2).abs() < 1e-9 * (1.0 + x2), "tiled vs blocked at ({i},{j})");
        }
    }
}

#[test]
fn qr_q_factors_are_orthogonal_across_engines() {
    let m = 180;
    let n = 40;
    let a = random_uniform(m, n, &mut seeded_rng(4));
    let scale = 1e-11;

    let q1 = caqr(a.clone(), &CaParams::new(16, 4, 2)).q_thin();
    assert!(orthogonality(&q1) < scale);

    let mut w = a.clone();
    let bq = geqrf_blocked(&mut w, 16, 2);
    assert!(orthogonality(&bq.q_thin(&w)) < scale);

    let q3 = tiled_qr(a, 16, 2).q_thin();
    assert!(orthogonality(&q3) < scale);
}

#[test]
fn facade_prelude_covers_the_basics() {
    let a = random_uniform(64, 64, &mut seeded_rng(5));
    let f: LuFactors = calu(a.clone(), &CaParams::new(16, 2, 2));
    assert!(f.residual(&a) < 1e-12);
    let q: QrFactors = caqr(a.clone(), &CaParams::new(16, 2, 2));
    assert!(q.residual(&a) < 1e-11);
    let t = tslu_factor(a.clone(), 4, &CaParams::new(64, 4, 1));
    assert!(t.residual(&a) < 1e-12);
    let s = tsqr_factor(a.clone(), 4, &CaParams::new(64, 4, 1));
    assert!(s.residual(&a) < 1e-11);
    let _: Matrix = f.l();
    let _: TreeShape = TreeShape::Flat;
}

#[test]
fn rectangular_tiled_lu_graph_and_tall_factorization() {
    // Tall-skinny tiled LU (rectangular grid) — the Figure 5/6/7 PLASMA
    // configuration.
    let g = ca_factor::baselines::tiled_lu_task_graph(5000, 200, 100);
    g.validate();
    assert!(g.total_flops() > 0.0);
    // The real factorization on a tall matrix runs and leaves finite values.
    let a = random_uniform(500, 100, &mut seeded_rng(6));
    let f = tiled_lu(a, 50, 2);
    assert!(f.a.as_slice().iter().all(|x| x.is_finite()));
}

#[test]
fn deterministic_across_thread_counts() {
    let a = random_uniform(300, 300, &mut seeded_rng(7));
    let p1 = CaParams::new(50, 4, 1);
    let p4 = CaParams::new(50, 4, 4);
    let f1 = calu(a.clone(), &p1);
    let f4 = calu(a.clone(), &p4);
    assert_eq!(f1.lu.as_slice(), f4.lu.as_slice());
    let q1 = caqr(a.clone(), &p1);
    let q4 = caqr(a, &p4);
    assert_eq!(q1.a.as_slice(), q4.a.as_slice());
}
