//! End-to-end tests of the `cafactor` CLI binary, including Matrix Market
//! round trips through temporary files.

use std::process::Command;

fn cafactor() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cafactor"))
}

#[test]
fn factor_lu_random_reports_residual() {
    let out = cafactor()
        .args(["factor", "lu", "--random", "400", "80", "--b", "20", "--tr", "4", "--threads", "2"])
        .output()
        .expect("run cafactor");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CALU 400x80"), "{text}");
    assert!(text.contains("residual="), "{text}");
}

#[test]
fn factor_qr_writes_r_and_solve_reads_matrices() {
    let dir = std::env::temp_dir().join("cafactor_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let a_path = dir.join("a.mtx");
    let r_path = dir.join("r.mtx");

    // Write a random square system with the library, factor via CLI.
    let a = ca_factor::matrix::random_uniform(60, 60, &mut ca_factor::matrix::seeded_rng(3));
    ca_factor::matrix::io::write_matrix_market_file(&a_path, &a).unwrap();

    let out = cafactor()
        .args([
            "factor",
            "qr",
            "--input",
            a_path.to_str().unwrap(),
            "--b",
            "16",
            "--output",
            r_path.to_str().unwrap(),
        ])
        .output()
        .expect("run cafactor");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let r: ca_factor::Matrix = ca_factor::matrix::io::read_matrix_market_file(&r_path).unwrap();
    assert_eq!(r.nrows(), 60);
    // R upper triangular.
    assert_eq!(r[(5, 2)], 0.0);

    // Solve with implicit all-ones RHS and refinement.
    let out = cafactor()
        .args(["solve", "--input", a_path.to_str().unwrap(), "--refine"])
        .output()
        .expect("run cafactor");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rcond"), "{text}");
    assert!(text.contains("refinement:"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn info_prints_norms() {
    let out = cafactor()
        .args(["info", "--random", "50", "50"])
        .output()
        .expect("run cafactor");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("‖A‖₁"));
    assert!(text.contains("rcond"));
}

#[test]
fn factor_lu_profile_reports_and_writes_trace() {
    let dir = std::env::temp_dir().join("cafactor_cli_profile");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let out = cafactor()
        .args(["factor", "lu", "--random", "300", "90", "--b", "30", "--tr", "4", "--threads", "2"])
        .arg(format!("--profile={}", trace_path.display()))
        .output()
        .expect("run cafactor");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("profile: priority-queue scheduler"), "{text}");
    assert!(text.contains("scheduling efficiency"), "{text}");
    assert!(text.contains("dispatch latency"), "{text}");
    assert!(text.contains("GFlop/s"), "{text}");
    assert!(text.contains("lookahead:"), "{text}");
    // The emitted trace is valid Chrome-trace JSON with spans, flow events,
    // counters, and thread-name metadata.
    let raw = std::fs::read_to_string(&trace_path).expect("trace file written");
    let v: serde_json::Value = serde_json::from_str(&raw).expect("trace parses");
    let arr = v.as_array().unwrap();
    for ph in ["X", "M", "s", "f", "C"] {
        assert!(arr.iter().any(|e| e["ph"] == ph), "missing ph {ph}");
    }
    assert!(arr.iter().any(|e| e["name"] == "thread_name"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn verify_subcommand_proves_soundness_and_runs_checked() {
    let out = cafactor()
        .args(["verify", "lu", "--random", "128", "128", "--b", "32", "--threads", "2"])
        .output()
        .expect("run cafactor");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("static verify lu"), "{text}");
    assert!(text.contains("conflicting pair(s) ordered"), "{text}");
    assert!(text.contains("checked CALU run clean"), "{text}");

    let out = cafactor()
        .args(["verify", "qr", "--random", "200", "48", "--b", "16", "--tree", "flat"])
        .output()
        .expect("run cafactor");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("static verify qr"), "{text}");
    assert!(text.contains("checked CAQR run clean"), "{text}");
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = cafactor().args(["bogus"]).output().expect("run cafactor");
    assert!(!out.status.success());
}

#[test]
fn serve_chaos_drill_survives_and_reports_recovery() {
    // A seeded chaos drill through the CLI: every job must complete (exit
    // 0) and the recovery counter lines must appear in the report.
    let out = cafactor()
        .args([
            "serve", "--jobs", "8", "--threads", "2", "--b", "16", "--retry", "3", "--chaos=7",
        ])
        .output()
        .expect("run cafactor");
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("recovery: job_retries="), "{text}");
    assert!(text.contains("injected fail/panic/delay/corrupt"), "{text}");
    assert!(text.contains("completed=8"), "{text}");
}

#[test]
fn serve_deadline_exit_code_is_distinct() {
    // Certain fault injection with a tiny deadline and no batching: jobs
    // miss their deadlines, and the CLI surfaces the dedicated exit code 11.
    let out = cafactor()
        .args([
            "serve", "--jobs", "4", "--threads", "1", "--b", "16", "--deadline", "1",
        ])
        .output()
        .expect("run cafactor");
    // With a 1 ms deadline at least one 256² job misses; the worst outcome
    // ranking maps deadline misses to exit 11 (unless every job somehow
    // finished in time, in which case success is also legal).
    let code = out.status.code();
    assert!(
        code == Some(11) || code == Some(0),
        "unexpected exit {code:?}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    if code == Some(11) {
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("deadline"), "{err}");
    }
}

#[test]
fn serve_metrics_writes_prometheus_snapshot_and_top_reads_it() {
    let dir = std::env::temp_dir().join("cafactor_cli_metrics");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let m_path = dir.join("m.prom");
    let out = cafactor()
        .args(["serve", "--jobs", "6", "--threads", "2", "--b", "16"])
        .arg(format!("--metrics={}", m_path.display()))
        .args(["--metrics-interval", "50", "--flight-recorder", "--tenants", "2"])
        .output()
        .expect("run cafactor");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics snapshot written"), "{text}");

    // The Prometheus text has headers and per-tenant serve families.
    let prom = std::fs::read_to_string(&m_path).expect("prom snapshot written");
    assert!(prom.contains("# TYPE ca_serve_jobs_submitted_total counter"), "{prom}");
    assert!(prom.contains("tenant=\"tenant-0\""), "{prom}");
    assert!(prom.contains("tenant=\"tenant-1\""), "{prom}");
    assert!(prom.contains("ca_serve_exec_seconds_bucket"), "{prom}");
    assert!(prom.contains("ca_sched_tasks_dispatched_total"), "{prom}");

    // The JSON sibling parses back into a registry snapshot.
    let json =
        std::fs::read_to_string(dir.join("m.prom.json")).expect("json sibling written");
    let snap: ca_factor::telemetry::RegistrySnapshot =
        serde_json::from_str(&json).expect("snapshot json parses");
    assert!(!snap.families.is_empty());

    // `cafactor top` pretty-prints either file name.
    let out = cafactor().args(["top", m_path.to_str().unwrap()]).output().expect("run top");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ca_serve_jobs_completed_total"), "{text}");
    assert!(text.contains("series"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_shed_storm_bounds_flight_dumps() {
    // A shed storm: 16 jobs into a 2-slot queue on one worker with the
    // shed-oldest policy. Every shed triggers a flight dump, but the
    // --max-dumps cap must bound the files written, and each written dump
    // must be a valid chrome-trace fragment.
    let dir = std::env::temp_dir().join("cafactor_cli_shed_dumps");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = cafactor()
        .args([
            "serve", "--jobs", "16", "--threads", "1", "--b", "16", "--capacity", "2",
            "--policy", "shed", "--chaos=3", "--flight-recorder", "--max-dumps", "2",
        ])
        .args(["--dump-dir", dir.to_str().unwrap()])
        .output()
        .expect("run cafactor");
    // Sheds map to exit code 12 via the worst-outcome ranking; under chaos
    // a terminal failure (6) or detected corruption (10) can outrank them,
    // and 0 only if the single worker somehow kept up with nothing shed.
    let code = out.status.code();
    assert!(
        matches!(code, Some(0 | 6 | 10 | 12)),
        "unexpected exit {code:?}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dumps: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dump dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .filter(|f| f.starts_with("flight-"))
        .collect();
    assert!(dumps.len() <= 2, "max-dumps cap violated: {dumps:?}");
    if code == Some(12) {
        assert!(!dumps.is_empty(), "a shed storm must leave at least one dump");
    }
    for f in &dumps {
        assert!(f.ends_with(".json"), "{f}");
        let raw = std::fs::read_to_string(dir.join(f)).expect("dump readable");
        let v: serde_json::Value = serde_json::from_str(&raw).expect("dump parses");
        assert!(v.get("trigger").is_some(), "{f} missing trigger");
        assert!(v["traceEvents"].as_array().is_some(), "{f} missing traceEvents");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn singular_input_exits_with_breakdown_code() {
    // An exactly-singular system must produce the ZeroPivot exit code (4)
    // and name the breakdown column on stderr, not panic or emit NaNs.
    let dir = std::env::temp_dir().join("cafactor_cli_singular");
    std::fs::create_dir_all(&dir).unwrap();
    let a_path = dir.join("singular.mtx");
    let n = 24;
    let mut a = ca_factor::matrix::random_uniform(n, n, &mut ca_factor::matrix::seeded_rng(9));
    for i in 0..n {
        a[(i, 5)] = 0.0;
    }
    ca_factor::matrix::io::write_matrix_market_file(&a_path, &a).unwrap();

    for cmd in [&["solve"][..], &["factor", "lu"][..]] {
        let out = cafactor()
            .args(cmd)
            .args(["--input", a_path.to_str().unwrap(), "--b", "6"])
            .output()
            .expect("run cafactor");
        assert_eq!(out.status.code(), Some(4), "{cmd:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("zero pivot"), "{cmd:?}: {err}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
