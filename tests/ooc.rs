//! Out-of-core CALU/CAQR conformance: the left-looking drivers against the
//! in-core sequential references.
//!
//! The strongest claim under test is **bitwise identity**: `ooc_calu` and
//! `ooc_caqr` replay prior panels' updates per inner panel with the very
//! kernels `calu_seq`/`caqr_seq` use, so the factors written back to the
//! tile store must equal the in-core packed output bit for bit at the same
//! `b`/`tr` — no epsilon. On top of that: residual gates under the
//! accuracy suite's thresholds, streamed-probe consistency, pivot/permutation
//! equality, f32 coverage, deferred-pivot fix-up across many superpanels,
//! and the planner's error paths.

use ca_factor::matrix::{
    random_uniform, residual_threshold, seeded_rng, Matrix, Scalar,
};
use ca_factor::ooc::{
    ooc_calu, ooc_caqr, probe, OocKind, OocPlan, TileStore,
};
use ca_factor::prelude::*;

const C: f64 = 100.0;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ca_ooc_it_{name}_{}.bin", std::process::id()))
}

/// A budget that forces `nsuper` superpanels for an `m × n` f64 matrix
/// with the given plan kind and parameters (found by search so the tests
/// stay honest if the planner's reserves change).
fn budget_for_nsuper_elem(
    kind: OocKind,
    m: usize,
    n: usize,
    p: &CaParams,
    elem: usize,
    nsuper: usize,
) -> usize {
    let mut lo = 0usize;
    let mut hi = 64 << 20;
    // Find the smallest budget whose plan needs at most `nsuper` sweeps.
    let mut budget = hi;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        match OocPlan::solve(kind, m, n, p, elem, mid) {
            Ok(plan) if plan.nsuper <= nsuper => {
                budget = mid;
                hi = mid;
            }
            _ => lo = mid,
        }
    }
    let plan = OocPlan::solve(kind, m, n, p, elem, budget).expect("searched budget must plan");
    assert_eq!(plan.nsuper, nsuper, "budget search landed on {plan:?}");
    budget
}

fn budget_for_nsuper(kind: OocKind, m: usize, n: usize, p: &CaParams, nsuper: usize) -> usize {
    budget_for_nsuper_elem(kind, m, n, p, 8, nsuper)
}

fn store_from<T: Scalar>(path: &std::path::Path, a: &Matrix<T>, w: usize) -> TileStore<T> {
    let s = TileStore::<T>::create(path, a.nrows(), a.ncols(), w).unwrap();
    s.import_matrix(a).unwrap();
    s
}

#[test]
fn ooc_lu_is_bitwise_identical_to_calu_seq() {
    for &(m, n, b, tr, nsuper) in
        &[(96, 96, 16, 4, 3), (150, 90, 16, 2, 2), (120, 160, 8, 4, 4), (64, 64, 16, 2, 2)]
    {
        let p = CaParams::new(b, tr, 2);
        let a = random_uniform(m, n, &mut seeded_rng((m + 7 * n) as u64));
        let reference = calu_seq_factor(a.clone(), &p);

        let path = tmp(&format!("lubit_{m}x{n}"));
        let store = store_from(&path, &a, b);
        let budget = budget_for_nsuper(OocKind::Lu, m, n, &p, nsuper);
        let f = ooc_calu(&store, &p, budget).unwrap();
        assert_eq!(f.plan.nsuper, nsuper);

        let got = store.export_matrix().unwrap();
        for j in 0..n {
            for i in 0..m {
                assert_eq!(
                    got[(i, j)].to_bits(),
                    reference.lu[(i, j)].to_bits(),
                    "L\\U mismatch at ({i},{j}) for {m}x{n} b={b} tr={tr}"
                );
            }
        }
        assert_eq!(f.pivots.ipiv, reference.pivots.ipiv, "pivot sequences differ");
        assert_eq!(f.breakdown, reference.breakdown);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn ooc_qr_is_bitwise_identical_to_caqr_seq() {
    for &(m, n, b, tr, nsuper) in &[(96, 96, 16, 4, 3), (150, 90, 16, 2, 2), (80, 120, 8, 2, 4)] {
        let p = CaParams::new(b, tr, 1);
        let a = random_uniform(m, n, &mut seeded_rng((3 * m + n) as u64));
        let reference = caqr_seq(a.clone(), &p);

        let path = tmp(&format!("qrbit_{m}x{n}"));
        let store = store_from(&path, &a, b);
        let budget = budget_for_nsuper(OocKind::Qr, m, n, &p, nsuper);
        let f = ooc_caqr(&store, &p, budget).unwrap();
        assert_eq!(f.plan.nsuper, nsuper);

        let got = store.export_matrix().unwrap();
        for j in 0..n {
            for i in 0..m {
                assert_eq!(
                    got[(i, j)].to_bits(),
                    reference.a[(i, j)].to_bits(),
                    "R\\V mismatch at ({i},{j}) for {m}x{n} b={b} tr={tr}"
                );
            }
        }
        assert_eq!(f.panels.len(), reference.panels.len());
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn ooc_lu_residual_meets_accuracy_gate() {
    let (m, n, b, tr) = (150, 90, 16, 4);
    let p = CaParams::new(b, tr, 2);
    let a = random_uniform(m, n, &mut seeded_rng(11));
    let path = tmp("lures");
    let store = store_from(&path, &a, b);
    let budget = budget_for_nsuper(OocKind::Lu, m, n, &p, 3);
    let f = ooc_calu(&store, &p, budget).unwrap();

    // Full residual via the in-core factor container (small matrix).
    let lu = store.export_matrix().unwrap();
    let factors = LuFactors { lu, pivots: f.pivots.clone(), breakdown: f.breakdown, stats: f.stats.clone() };
    let res = factors.residual(&a);
    assert!(res < residual_threshold(m, n, C), "residual {res} for {m}x{n}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn ooc_qr_residual_meets_accuracy_gate() {
    let (m, n, b, tr) = (150, 90, 16, 2);
    let p = CaParams::new(b, tr, 1);
    let a = random_uniform(m, n, &mut seeded_rng(12));
    let path = tmp("qrres");
    let store = store_from(&path, &a, b);
    let budget = budget_for_nsuper(OocKind::Qr, m, n, &p, 3);
    let f = ooc_caqr(&store, &p, budget).unwrap();

    let factored = store.export_matrix().unwrap();
    // Rebase the panels to resident addressing (c0 = k0) so the in-core
    // container can replay Q from the exported matrix.
    let panels = f
        .panels
        .iter()
        .map(|pq| {
            let mut pq = pq.clone();
            pq.c0 = pq.k0;
            pq
        })
        .collect();
    let factors = QrFactors { a: factored, panels };
    let res = factors.residual(&a);
    assert!(res < residual_threshold(m, n, C), "residual {res} for {m}x{n}");
    let orth = factors.orthogonality();
    assert!(orth < residual_threshold(m, n, C), "orthogonality {orth}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn streamed_probes_agree_with_dense_products() {
    let (m, n, b) = (90, 70, 8);
    let p = CaParams::new(b, 2, 1);
    let a = random_uniform(m, n, &mut seeded_rng(21));
    let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 5) % 11) as f64 / 11.0 - 0.4).collect();

    // LU probe.
    let path = tmp("plu");
    let store = store_from(&path, &a, b);
    let (y0, fro) = probe::stream_matvec(&store, &x).unwrap();
    // y0 really is A·x.
    for i in 0..m {
        let want: f64 = (0..n).map(|j| a[(i, j)] * x[j]).sum();
        assert!((y0[i] - want).abs() < 1e-12 * fro, "matvec row {i}");
    }
    let budget = budget_for_nsuper(OocKind::Lu, m, n, &p, 3);
    let f = ooc_calu(&store, &p, budget).unwrap();
    let y = probe::lu_probe_apply(&store, &f.pivots, &x).unwrap();
    let res = probe::probe_residual(&y, &y0, fro, &x);
    assert!(res < residual_threshold(m, n, C), "LU probe residual {res}");
    let _ = std::fs::remove_file(&path);

    // QR probe.
    let path = tmp("pqr");
    let store = store_from(&path, &a, b);
    let budget = budget_for_nsuper(OocKind::Qr, m, n, &p, 3);
    let f = ooc_caqr(&store, &p, budget).unwrap();
    let y = probe::qr_probe_apply(&store, &f.panels, &x).unwrap();
    let res = probe::probe_residual(&y, &y0, fro, &x);
    assert!(res < residual_threshold(m, n, C), "QR probe residual {res}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn f32_out_of_core_matches_f32_in_core_bitwise() {
    let (m, n, b, tr) = (96, 64, 16, 2);
    let p = CaParams::new(b, tr, 1);
    let a64 = random_uniform(m, n, &mut seeded_rng(31));
    let a = Matrix::<f32>::from_f64(&a64);
    let reference = calu_seq_factor(a.clone(), &p);

    let path = tmp("f32lu");
    let store = store_from(&path, &a, b);
    let budget = budget_for_nsuper_elem(OocKind::Lu, m, n, &p, 4, 2);
    let f = ooc_calu(&store, &p, budget).unwrap();
    assert_eq!(f.plan.nsuper, 2, "{:?}", f.plan);
    let got = store.export_matrix().unwrap();
    for j in 0..n {
        for i in 0..m {
            assert_eq!(got[(i, j)].to_bits(), reference.lu[(i, j)].to_bits(), "({i},{j})");
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn io_volume_is_counted_and_superpanel_sweep_shrinks_with_budget() {
    let (m, n, b) = (128, 128, 16);
    let p = CaParams::new(b, 2, 1);
    let a = random_uniform(m, n, &mut seeded_rng(41));

    let mut volumes = Vec::new();
    for nsuper in [4, 2, 1] {
        let path = tmp(&format!("vol{nsuper}"));
        let store = store_from(&path, &a, b);
        let budget = budget_for_nsuper(OocKind::Lu, m, n, &p, nsuper);
        let f = ooc_calu(&store, &p, budget).unwrap();
        assert_eq!(f.plan.nsuper, nsuper);
        // At least: read the matrix once, write the factors once.
        let floor = (m * n * 8) as u64;
        assert!(f.io.bytes_read >= floor && f.io.bytes_written >= floor, "{:?}", f.io);
        volumes.push(f.io.bytes_read);
        let _ = std::fs::remove_file(&path);
    }
    // More superpanels → more prior-panel streaming → strictly more reads.
    assert!(volumes[0] > volumes[1] && volumes[1] > volumes[2], "{volumes:?}");
}

#[test]
fn infeasible_budget_and_store_type_mismatch_error_cleanly() {
    let p = CaParams::new(16, 2, 1);
    let a = random_uniform(64, 64, &mut seeded_rng(51));
    let path = tmp("err");
    let store = store_from(&path, &a, 16);
    let e = ooc_calu(&store, &p, 1024).unwrap_err();
    assert!(matches!(e, FactorError::Io { ref op, .. } if op == "plan"), "{e}");
    // Reopening with the wrong scalar type is refused.
    assert!(TileStore::<f32>::open(&path).is_err());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn singular_input_reports_breakdown_like_in_core() {
    let (m, n, b) = (64, 64, 16);
    let p = CaParams::new(b, 2, 1);
    let mut a = random_uniform(m, n, &mut seeded_rng(61));
    // Zero out a column so elimination hits an exact zero pivot.
    for i in 0..m {
        a[(i, 20)] = 0.0;
    }
    let reference = calu_seq_factor(a.clone(), &p);
    let path = tmp("sing");
    let store = store_from(&path, &a, b);
    let budget = budget_for_nsuper(OocKind::Lu, m, n, &p, 2);
    let f = ooc_calu(&store, &p, budget).unwrap();
    assert_eq!(f.breakdown, reference.breakdown);
    assert!(f.breakdown.is_some(), "planted singular column must be reported");
    let _ = std::fs::remove_file(&path);
}
