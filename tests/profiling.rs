//! End-to-end tests of the profiling layer: timeline consistency of the
//! profiled executors, exact profiles from the deterministic simulator,
//! Chrome-trace structure, and the `try_calu_profiled` library surface.

use ca_factor::sched::{
    job, profile_run_graph, profile_run_graph_stealing, profile_simulate, FaultPlan, Job,
    Profile, TaskGraph, TaskKind, TaskLabel, TaskMeta,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A layered DAG of `layers * width` trivially-quick jobs that counts
/// executions into `counter`.
fn layered_jobs<'a>(layers: usize, width: usize, counter: &'a AtomicUsize) -> TaskGraph<Job<'a>> {
    let mut g: TaskGraph<Job<'a>> = TaskGraph::new();
    let mut prev: Vec<usize> = Vec::new();
    for l in 0..layers {
        let mut cur = Vec::new();
        for i in 0..width {
            let meta = TaskMeta::new(TaskLabel::new(TaskKind::Update, l, i, 0), 100.0);
            let id = g.add_task(meta, job(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
            for &p in &prev {
                g.add_dep(p, id);
            }
            cur.push(id);
        }
        prev = cur;
    }
    g
}

/// The invariants every clean profiled run must satisfy, whichever executor
/// produced it.
fn assert_profile_consistent(profile: &Profile, nthreads: usize, ntasks: usize) {
    assert_eq!(profile.nworkers, nthreads);
    assert_eq!(profile.records.len(), ntasks, "every task gets one record");
    assert!(profile.cancelled.is_empty());
    let tl = profile.timeline();
    assert_eq!(tl.lanes.len(), nthreads, "one lane per worker");
    tl.check().expect("spans sorted and non-overlapping per lane");
    assert_eq!(tl.lanes.iter().map(|l| l.len()).sum::<usize>(), ntasks);
    for r in &profile.records {
        assert!(r.worker < nthreads);
        assert!(r.ready <= r.start + 1e-12, "ready after start: {r:?}");
        assert!(r.dispatch <= r.start + 1e-12, "dispatched after start: {r:?}");
        assert!(r.start <= r.end, "negative duration: {r:?}");
        assert!(r.end <= profile.makespan + 1e-9);
    }
}

#[test]
fn profiled_pool_timeline_is_consistent() {
    for &threads in &[1usize, 2, 4] {
        let counter = AtomicUsize::new(0);
        let g = layered_jobs(5, 4, &counter);
        let n = g.len();
        let (profile, err) = profile_run_graph(g, threads, &FaultPlan::new());
        assert!(err.is_none());
        assert_eq!(counter.load(Ordering::SeqCst), n);
        assert_eq!(profile.scheduler, "priority-queue");
        assert_profile_consistent(&profile, threads, n);
        assert!(profile.steals.is_empty(), "central pool does not steal");
        assert!(!profile.queue_samples.is_empty());
        assert!(!profile.edges.is_empty());
    }
}

#[test]
fn profiled_stealing_pool_timeline_is_consistent() {
    for &threads in &[1usize, 2, 4] {
        let counter = AtomicUsize::new(0);
        let g = layered_jobs(5, 4, &counter);
        let n = g.len();
        let (profile, err) = profile_run_graph_stealing(g, threads, &FaultPlan::new());
        assert!(err.is_none());
        assert_eq!(counter.load(Ordering::SeqCst), n);
        assert_eq!(profile.scheduler, "work-stealing");
        assert_profile_consistent(&profile, threads, n);
        assert_eq!(profile.steals.len(), threads, "one steal counter per worker");
        let m = profile.metrics();
        assert!(m.steal_attempts >= m.steal_hits);
        assert!(m.steal_hits > 0, "roots always arrive via the injector");
    }
}

#[test]
fn cancelled_tasks_never_appear_as_records() {
    // A chain failing at task 5: tasks 0..=5 execute (and are recorded);
    // 6.. are cancelled and must be absent from records and spans.
    let n = 12usize;
    let fail_at = 5usize;
    let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let meta = TaskMeta::new(TaskLabel::new(TaskKind::Panel, i, 0, 0), 1.0);
            g.add_task(meta, job(|| {}))
        })
        .collect();
    for pair in ids.windows(2) {
        g.add_dep(pair[0], pair[1]);
    }
    let plan = FaultPlan::new().fail_nth(1, move |l| l.step == fail_at);
    let (profile, err) = profile_run_graph(g, 2, &plan);
    let err = err.expect("injected failure must surface");
    assert_eq!(err.task, ids[fail_at]);
    assert_eq!(profile.cancelled, ids[fail_at + 1..].to_vec());
    assert_eq!(profile.records.len(), fail_at + 1, "failed task itself is recorded");
    for r in &profile.records {
        assert!(r.task <= ids[fail_at], "cancelled task {} has a record", r.task);
    }
    let tl = profile.timeline();
    tl.check().expect("partial timeline still consistent");
    assert_eq!(tl.lanes.iter().map(|l| l.len()).sum::<usize>(), fail_at + 1);
}

#[test]
fn simulator_profile_is_deterministic_and_exact() {
    // Diamond 0 -> {1, 2} -> 3 with unit costs on 2 workers:
    //   t=0: task 0 runs (1s); t=1: tasks 1 and 2 in parallel; t=2: task 3.
    let mut g: TaskGraph<()> = TaskGraph::new();
    let meta = |s: usize| TaskMeta::new(TaskLabel::new(TaskKind::Update, s, 0, 0), 1.0);
    let a = g.add_task(meta(0), ());
    let b = g.add_task(meta(1), ());
    let c = g.add_task(meta(2), ());
    let d = g.add_task(meta(3), ());
    g.add_dep(a, b);
    g.add_dep(a, c);
    g.add_dep(b, d);
    g.add_dep(c, d);
    let (p1, err) = profile_simulate(&g, 2, |_, _| 1.0, &FaultPlan::new());
    assert!(err.is_none());
    assert_eq!(p1.scheduler, "simulator");
    assert_eq!(p1.makespan, 3.0);
    let r: Vec<_> = p1.records.iter().map(|r| (r.task, r.ready, r.start, r.end)).collect();
    assert_eq!(r[0], (a, 0.0, 0.0, 1.0));
    assert_eq!(r[1], (b, 1.0, 1.0, 2.0));
    assert_eq!(r[2], (c, 1.0, 1.0, 2.0));
    assert_eq!(r[3], (d, 2.0, 2.0, 3.0));
    assert_eq!(p1.edges, vec![(a, b), (a, c), (b, d), (c, d)]);
    let m = p1.metrics();
    assert_eq!(m.critical_path_seconds, 3.0);
    assert_eq!(m.efficiency, 1.0);
    assert_eq!(m.dispatch_latency.max, 0.0, "simulator dispatch is immediate");
    // Determinism: a second run is bit-identical.
    let (p2, _) = profile_simulate(&g, 2, |_, _| 1.0, &FaultPlan::new());
    let r2: Vec<_> = p2.records.iter().map(|r| (r.task, r.ready, r.start, r.end)).collect();
    assert_eq!(r, r2);
}

#[test]
fn calu_profile_has_roofline_classes_and_valid_trace() {
    use ca_factor::core::{try_calu_profiled, CaParams};
    let a = ca_factor::matrix::random_uniform(300, 120, &mut ca_factor::matrix::seeded_rng(11));
    let p = CaParams::new(40, 4, 3);
    let (f, profile) = try_calu_profiled(a.clone(), &p).expect("factorization succeeds");
    assert!(f.residual(&a) < 1e-12);
    let m = profile.metrics();
    assert_eq!(m.nworkers, 3);
    assert!(m.lookahead.panel_steps > 0);
    assert!(m.by_class.iter().any(|c| c.class == "Gemm" && c.gflops > 0.0));
    assert!(m.by_kind.iter().any(|k| k.code == 'P'));
    assert!(m.efficiency > 0.0 && m.efficiency <= 1.0 + 1e-9);
    let report = m.render();
    assert!(report.contains("scheduling efficiency"), "{report}");
    assert!(report.contains("GFlop/s"), "{report}");

    // The Chrome trace must carry spans, flow events for DAG edges, counter
    // tracks, and thread-name metadata — in valid JSON.
    let trace = profile.chrome_trace();
    let v: serde_json::Value = serde_json::from_str(&trace).expect("trace parses");
    let arr = v.as_array().unwrap();
    let count = |ph: &str| arr.iter().filter(|e| e["ph"] == ph).count();
    assert_eq!(count("X"), profile.records.len());
    assert!(count("s") > 0, "flow-start events");
    assert_eq!(count("s"), count("f"), "flows are paired");
    assert!(count("C") >= 2, "ready-queue and completion counter tracks");
    assert!(arr
        .iter()
        .any(|e| e["ph"] == "M" && e["name"] == "thread_name" && e["args"]["name"] == "core 0"));
}

#[test]
fn caqr_profiled_matches_plain_caqr() {
    use ca_factor::core::{try_caqr, try_caqr_profiled, CaParams};
    let a = ca_factor::matrix::random_uniform(200, 80, &mut ca_factor::matrix::seeded_rng(4));
    let p = CaParams::new(20, 2, 2);
    let (f, profile) = try_caqr_profiled(a.clone(), &p).expect("profiled CAQR succeeds");
    let plain = try_caqr(a.clone(), &p).expect("plain CAQR succeeds");
    assert_eq!(f.r().as_slice(), plain.r().as_slice(), "profiling must not change results");
    assert!(f.residual(&a) < 1e-12);
    assert!(!profile.records.is_empty());
    assert!(profile.metrics().by_class.iter().any(|c| c.class == "QrRecursive"));
}

/// Asserts that `ts` values are monotone non-decreasing within each `tid`
/// of a chrome-trace event array (metadata events carry no `ts` and are
/// skipped). This is the property trace viewers rely on.
fn assert_monotone_per_tid(events: &[serde_json::Value]) {
    use std::collections::HashMap;
    let mut last: HashMap<i64, f64> = HashMap::new();
    for e in events {
        let (Some(tid), Some(ts)) = (e["tid"].as_i64(), e["ts"].as_f64()) else { continue };
        if e["ph"] == "M" {
            continue;
        }
        let prev = last.entry(tid).or_insert(f64::NEG_INFINITY);
        assert!(ts >= *prev - 1e-6, "tid {tid}: ts {ts} after {prev}");
        *prev = ts;
    }
}

#[test]
fn recovery_marked_trace_validates_and_carries_marks() {
    // A profiled run whose timeline passes check(), serialized with
    // recovery marks interleaved the way the serving layer does on job
    // retries and probe hits: the output must stay valid chrome-trace JSON
    // with monotone per-lane timestamps and the marks present.
    use ca_factor::sched::chrome_trace_json_with_marks;
    let counter = AtomicUsize::new(0);
    let g = layered_jobs(4, 3, &counter);
    let (profile, err) = profile_run_graph(g, 2, &FaultPlan::new());
    assert!(err.is_none());
    let tl = profile.timeline();
    tl.check().expect("clean timeline");
    let marks = vec![
        (tl.makespan * 0.25, "job retry #1".to_string()),
        (tl.makespan * 0.5, "probe hit: corruption".to_string()),
        (tl.makespan * 0.75, "snapshot restore".to_string()),
    ];
    let raw = chrome_trace_json_with_marks(&tl, &marks);
    let v: serde_json::Value = serde_json::from_str(&raw).expect("marked trace parses");
    let arr = v.as_array().expect("event array");
    assert_monotone_per_tid(arr);
    let recovery: Vec<_> =
        arr.iter().filter(|e| e["cat"] == "recovery" && e["ph"] == "i").collect();
    assert_eq!(recovery.len(), 3, "all marks serialized");
    assert!(recovery.iter().any(|e| e["name"] == "probe hit: corruption"));
    // Spans survive alongside the marks.
    assert!(arr.iter().any(|e| e["ph"] == "X"));
}

#[test]
fn flight_recorder_fragment_is_valid_monotone_chrome_trace() {
    use ca_factor::sched::{FlightEventKind, FlightRecorder, TaskKind, TaskLabel};
    let rec = FlightRecorder::new(2, 8);
    for i in 0..20u64 {
        let lane = (i % 2) as usize;
        let label = TaskLabel::new(TaskKind::Panel, i as usize, 0, 0);
        rec.record(lane, FlightEventKind::Dispatch, i, Some(label));
        rec.record(lane, FlightEventKind::TaskOk, i, None);
    }
    rec.record(2, FlightEventKind::JobShed, 99, None); // external lane
    let raw = rec.chrome_trace_fragment("shed");
    let v: serde_json::Value = serde_json::from_str(&raw).expect("fragment parses");
    assert_eq!(v["trigger"], "shed");
    assert!(v["dropped"].as_f64().expect("dropped count") > 0.0, "ring evicted history");
    let events = v["traceEvents"].as_array().expect("traceEvents array");
    assert_monotone_per_tid(events);
    // Per-lane thread names: worker lanes plus the external lane.
    for name in ["worker-0", "worker-1", "external"] {
        assert!(
            events
                .iter()
                .any(|e| e["name"] == "thread_name" && e["args"]["name"] == name),
            "missing lane {name}"
        );
    }
    // Ring depth bounds retained events per lane (8 each + metadata).
    let instants = events.iter().filter(|e| e["ph"] == "i").count();
    assert!(instants <= 3 * 8, "depth bound violated: {instants}");
    assert!(events.iter().any(|e| e["cat"] == "flight"));
}
