//! The recovery panic-hook filter must be a good citizen: while installed
//! it forwards non-recovery panics to whatever hook the embedder had, and
//! when the last guard drops the embedder's hook behavior is restored.
//!
//! This lives in its own integration-test binary (hence its own process)
//! because panic hooks are process-global; a single `#[test]` keeps the
//! hook-swapping serial.

use ca_factor::sched::PanicHookGuard;
use std::sync::atomic::{AtomicUsize, Ordering};

static EMBEDDER_HITS: AtomicUsize = AtomicUsize::new(0);

fn panic_in_thread() {
    let r = std::thread::spawn(|| panic!("outside any recovery scope")).join();
    assert!(r.is_err(), "the thread must have panicked");
}

#[test]
fn guard_forwards_foreign_panics_and_restores_the_previous_hook() {
    // The embedder installs its own hook before the service starts.
    std::panic::set_hook(Box::new(|_| {
        EMBEDDER_HITS.fetch_add(1, Ordering::SeqCst);
    }));

    // Nested guards share one install (refcounted), as when a service and a
    // recovery scope overlap.
    let outer = PanicHookGuard::new();
    {
        let _inner = PanicHookGuard::new();
        panic_in_thread();
        assert_eq!(
            EMBEDDER_HITS.load(Ordering::SeqCst),
            1,
            "a panic outside recovery scopes must reach the embedder's hook"
        );
    }
    // Dropping the inner guard must not restore early.
    panic_in_thread();
    assert_eq!(EMBEDDER_HITS.load(Ordering::SeqCst), 2, "filter still forwards");
    drop(outer);

    // Last guard gone: the embedder's hook behavior is back as the
    // installed hook (re-wrapped, so test behavior, not pointer identity).
    panic_in_thread();
    assert_eq!(
        EMBEDDER_HITS.load(Ordering::SeqCst),
        3,
        "the pre-guard hook must be restored after the last guard drops"
    );

    let _ = std::panic::take_hook();
}
