//! GEMM kernel conformance suite: the packed BLIS-style path (both the
//! runtime-dispatched backend and the forced-scalar fallback) against a
//! naive triple-loop oracle.
//!
//! Coverage dimensions, per DESIGN.md §10:
//! * shapes crossing every register-block edge (`m, n, k ∈ {0, 1, MR±1,
//!   NR±1}` full cross) and the `KC` cache boundary per dimension;
//! * all four `Trans` combinations (transposes are folded into packing, so
//!   each combo exercises a different pack routine);
//! * the full `alpha/beta ∈ {0, 1, −1, 0.37}` grid, including the
//!   `beta = 0` contract (output overwritten, stale values ignored);
//! * strided interior views (`ld > nrows`) with frame-preservation checks;
//! * bitwise determinism: repeated calls and calls from spawned threads
//!   must produce identical bits (the scheduler replays tasks on arbitrary
//!   workers, and PR-1 recovery relies on replay determinism).

use ca_factor::kernels::{gemm, gemm_force_scalar, Trans, KC, MR, NR};
use ca_factor::matrix::{random_uniform, seeded_rng, Matrix};
use proptest::prelude::*;

/// Element of `op(X)` where `op` is identity or transpose.
fn opd(t: Trans, x: &Matrix, i: usize, p: usize) -> f64 {
    match t {
        Trans::No => x[(i, p)],
        Trans::Yes => x[(p, i)],
    }
}

/// Naive triple-loop oracle for `C := alpha·op(A)·op(B) + beta·C`.
#[allow(clippy::too_many_arguments)] // mirrors the dgemm surface it checks
fn gemm_oracle(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    k: usize,
) {
    for j in 0..c.ncols() {
        for i in 0..c.nrows() {
            let mut acc = 0.0;
            for p in 0..k {
                acc += opd(ta, a, i, p) * opd(tb, b, p, j);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Storage shape of `A` (and `B`) given the logical op shapes.
fn stored(t: Trans, rows: usize, cols: usize) -> (usize, usize) {
    match t {
        Trans::No => (rows, cols),
        Trans::Yes => (cols, rows),
    }
}

/// Forward-error bound for one dot product of length `k` with `|a|,|b| ≤ 1`
/// entries and the `alpha/beta` fold: `O(k·eps)`, with slack for the oracle
/// accumulating in a different order than the blocked kernel.
fn tol(k: usize) -> f64 {
    8.0 * (k as f64 + 4.0) * f64::EPSILON
}

/// Runs both dispatch paths against the oracle for one configuration.
#[allow(clippy::too_many_arguments)] // one slot per sweep dimension
fn check(ta: Trans, tb: Trans, alpha: f64, beta: f64, m: usize, n: usize, k: usize, seed: u64) {
    let mut rng = seeded_rng(seed);
    let (ar, ac) = stored(ta, m, k);
    let (br, bc) = stored(tb, k, n);
    let a = random_uniform(ar, ac, &mut rng);
    let b = random_uniform(br, bc, &mut rng);
    let c0 = random_uniform(m, n, &mut rng);

    let mut want = c0.clone();
    gemm_oracle(ta, tb, alpha, &a, &b, beta, &mut want, k);

    let mut got = c0.clone();
    gemm(ta, tb, alpha, a.view(), b.view(), beta, got.view_mut());
    let mut got_scalar = c0.clone();
    gemm_force_scalar(ta, tb, alpha, a.view(), b.view(), beta, got_scalar.view_mut());

    let t = tol(k);
    for j in 0..n {
        for i in 0..m {
            let w = want[(i, j)];
            assert!(
                (got[(i, j)] - w).abs() <= t,
                "dispatch path: ({i},{j}) of {m}x{n}x{k} {ta:?}{tb:?} a={alpha} b={beta}: \
                 got {} want {w}",
                got[(i, j)]
            );
            assert!(
                (got_scalar[(i, j)] - w).abs() <= t,
                "scalar path: ({i},{j}) of {m}x{n}x{k} {ta:?}{tb:?} a={alpha} b={beta}: \
                 got {} want {w}",
                got_scalar[(i, j)]
            );
        }
    }
}

const TRANS: [Trans; 2] = [Trans::No, Trans::Yes];

#[test]
fn register_block_edges_full_cross() {
    // Every residue of the MR/NR register blocking, including empty and
    // single-lane dims, for all four Trans combos.
    let dims = [0, 1, MR - 1, MR + 1, NR - 1, NR + 1];
    let mut seed = 0;
    for &m in &dims {
        for &n in &dims {
            for &k in &dims {
                for ta in TRANS {
                    for tb in TRANS {
                        seed += 1;
                        check(ta, tb, 0.37, -1.0, m, n, k, seed);
                    }
                }
            }
        }
    }
}

#[test]
fn kc_cache_boundary_per_dimension() {
    // KC±1 (and KC) in each dimension in turn; the other two dims sit just
    // off the register blocking so edge kernels run against a deep panel.
    for &d in &[KC - 1, KC, KC + 1] {
        for (m, n, k) in [(d, NR + 1, MR + 1), (MR + 1, d, NR + 1), (MR + 1, NR + 1, d)] {
            for ta in TRANS {
                for tb in TRANS {
                    check(ta, tb, 0.37, 1.0, m, n, k, (d * 7 + m + n) as u64);
                }
            }
        }
    }
}

#[test]
fn alpha_beta_grid() {
    let coeffs = [0.0, 1.0, -1.0, 0.37];
    for &alpha in &coeffs {
        for &beta in &coeffs {
            for ta in TRANS {
                for tb in TRANS {
                    check(ta, tb, alpha, beta, MR + 1, NR + 1, 5, 99);
                }
            }
        }
    }
}

#[test]
fn beta_zero_overwrites_non_finite_garbage() {
    // The beta = 0 contract: C must be overwritten, never multiplied, so
    // stale NaN/Inf in the output block cannot leak through.
    let mut rng = seeded_rng(3);
    let a = random_uniform(MR + 1, 3, &mut rng);
    let b = random_uniform(3, NR + 1, &mut rng);
    for f in [gemm, gemm_force_scalar] {
        let mut c = Matrix::from_fn(MR + 1, NR + 1, |_, _| f64::NAN);
        f(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view_mut());
        let mut want = Matrix::zeros(MR + 1, NR + 1);
        gemm_oracle(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut want, 3);
        for j in 0..want.ncols() {
            for i in 0..want.nrows() {
                assert!((c[(i, j)] - want[(i, j)]).abs() <= tol(3));
            }
        }
    }
}

#[test]
fn strided_interior_views_leave_frame_intact() {
    // Operate on interior sub-blocks of larger parents (ld > nrows for all
    // three operands) and verify the one-element frame around C is intact.
    let (m, n, k) = (MR + 3, NR + 3, KC + 1);
    let mut rng = seeded_rng(11);
    let pa = random_uniform(m + 2, k + 2, &mut rng);
    let pb = random_uniform(k + 2, n + 2, &mut rng);
    let pc0 = random_uniform(m + 2, n + 2, &mut rng);

    let a = Matrix::from_fn(m, k, |i, j| pa[(i + 1, j + 1)]);
    let b = Matrix::from_fn(k, n, |i, j| pb[(i + 1, j + 1)]);
    let mut want = Matrix::from_fn(m, n, |i, j| pc0[(i + 1, j + 1)]);
    gemm_oracle(Trans::No, Trans::No, 0.37, &a, &b, -1.0, &mut want, k);

    for f in [gemm, gemm_force_scalar] {
        let mut pc = pc0.clone();
        f(
            Trans::No,
            Trans::No,
            0.37,
            pa.block(1, 1, m, k),
            pb.block(1, 1, k, n),
            -1.0,
            pc.block_mut(1, 1, m, n),
        );
        for j in 0..n {
            for i in 0..m {
                assert!((pc[(i + 1, j + 1)] - want[(i, j)]).abs() <= tol(k));
            }
        }
        // Frame untouched, bit for bit.
        for j in 0..n + 2 {
            for i in 0..m + 2 {
                if i == 0 || j == 0 || i == m + 1 || j == n + 1 {
                    assert_eq!(pc[(i, j)].to_bits(), pc0[(i, j)].to_bits(), "frame at ({i},{j})");
                }
            }
        }
    }
}

#[test]
fn bitwise_identical_across_threads_and_repeats() {
    // The scheduler assigns tasks to arbitrary workers and PR-1 recovery
    // replays them; both rely on gemm being a pure function of its inputs —
    // including across threads (thread-local packing buffers must not leak
    // state into results).
    let (m, n, k) = (MR * 2 + 3, NR * 3 + 1, KC + 7);
    let mut rng = seeded_rng(5);
    let a = random_uniform(m, k, &mut rng);
    let b = random_uniform(k, n, &mut rng);
    let c0 = random_uniform(m, n, &mut rng);

    let run = |a: &Matrix, b: &Matrix, c0: &Matrix| -> Vec<u64> {
        let mut c = c0.clone();
        gemm(Trans::No, Trans::Yes, 0.37, a.view(), b.transpose().view(), 1.0, c.view_mut());
        c.as_slice().iter().map(|x| x.to_bits()).collect()
    };

    let reference = run(&a, &b, &c0);
    assert_eq!(reference, run(&a, &b, &c0), "repeated call changed bits");

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| s.spawn(|| run(&a, &b, &c0)))
            .collect();
        for h in handles {
            assert_eq!(reference, h.join().expect("worker"), "cross-thread bits differ");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes, coefficients, and Trans combos against the oracle.
    #[test]
    fn random_shapes_match_oracle(
        m in 0usize..40,
        n in 0usize..40,
        k in 0usize..40,
        ta in 0usize..2,
        tb in 0usize..2,
        ci in 0usize..4,
        seed in 0u64..1000,
    ) {
        let coeffs = [0.0, 1.0, -1.0, 0.37];
        check(TRANS[ta], TRANS[tb], coeffs[ci], coeffs[3 - ci], m, n, k, seed);
    }
}
