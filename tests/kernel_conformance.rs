//! GEMM kernel conformance suite: the packed BLIS-style path (both the
//! runtime-dispatched backend and the forced-scalar fallback) against a
//! naive triple-loop oracle.
//!
//! Coverage dimensions, per DESIGN.md §10:
//! * shapes crossing every register-block edge (`m, n, k ∈ {0, 1, MR±1,
//!   NR±1}` full cross) and the `KC` cache boundary per dimension;
//! * all four `Trans` combinations (transposes are folded into packing, so
//!   each combo exercises a different pack routine);
//! * the full `alpha/beta ∈ {0, 1, −1, 0.37}` grid, including the
//!   `beta = 0` contract (output overwritten, stale values ignored);
//! * strided interior views (`ld > nrows`) with frame-preservation checks;
//! * bitwise determinism: repeated calls and calls from spawned threads
//!   must produce identical bits (the scheduler replays tasks on arbitrary
//!   workers, and PR-1 recovery relies on replay determinism).

use ca_factor::kernels::{gemm, gemm_force_scalar, Trans, KC, MR, NR};
use ca_factor::matrix::{random_uniform, seeded_rng, Matrix};
use proptest::prelude::*;

/// Element of `op(X)` where `op` is identity or transpose.
fn opd(t: Trans, x: &Matrix, i: usize, p: usize) -> f64 {
    match t {
        Trans::No => x[(i, p)],
        Trans::Yes => x[(p, i)],
    }
}

/// Naive triple-loop oracle for `C := alpha·op(A)·op(B) + beta·C`.
#[allow(clippy::too_many_arguments)] // mirrors the dgemm surface it checks
fn gemm_oracle(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
    k: usize,
) {
    for j in 0..c.ncols() {
        for i in 0..c.nrows() {
            let mut acc = 0.0;
            for p in 0..k {
                acc += opd(ta, a, i, p) * opd(tb, b, p, j);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Storage shape of `A` (and `B`) given the logical op shapes.
fn stored(t: Trans, rows: usize, cols: usize) -> (usize, usize) {
    match t {
        Trans::No => (rows, cols),
        Trans::Yes => (cols, rows),
    }
}

/// Forward-error bound for one dot product of length `k` with `|a|,|b| ≤ 1`
/// entries and the `alpha/beta` fold: `O(k·eps)`, with slack for the oracle
/// accumulating in a different order than the blocked kernel.
fn tol(k: usize) -> f64 {
    8.0 * (k as f64 + 4.0) * f64::EPSILON
}

/// Runs both dispatch paths against the oracle for one configuration.
#[allow(clippy::too_many_arguments)] // one slot per sweep dimension
fn check(ta: Trans, tb: Trans, alpha: f64, beta: f64, m: usize, n: usize, k: usize, seed: u64) {
    let mut rng = seeded_rng(seed);
    let (ar, ac) = stored(ta, m, k);
    let (br, bc) = stored(tb, k, n);
    let a = random_uniform(ar, ac, &mut rng);
    let b = random_uniform(br, bc, &mut rng);
    let c0 = random_uniform(m, n, &mut rng);

    let mut want = c0.clone();
    gemm_oracle(ta, tb, alpha, &a, &b, beta, &mut want, k);

    let mut got = c0.clone();
    gemm(ta, tb, alpha, a.view(), b.view(), beta, got.view_mut());
    let mut got_scalar = c0.clone();
    gemm_force_scalar(ta, tb, alpha, a.view(), b.view(), beta, got_scalar.view_mut());

    let t = tol(k);
    for j in 0..n {
        for i in 0..m {
            let w = want[(i, j)];
            assert!(
                (got[(i, j)] - w).abs() <= t,
                "dispatch path: ({i},{j}) of {m}x{n}x{k} {ta:?}{tb:?} a={alpha} b={beta}: \
                 got {} want {w}",
                got[(i, j)]
            );
            assert!(
                (got_scalar[(i, j)] - w).abs() <= t,
                "scalar path: ({i},{j}) of {m}x{n}x{k} {ta:?}{tb:?} a={alpha} b={beta}: \
                 got {} want {w}",
                got_scalar[(i, j)]
            );
        }
    }
}

const TRANS: [Trans; 2] = [Trans::No, Trans::Yes];

#[test]
fn register_block_edges_full_cross() {
    // Every residue of the MR/NR register blocking, including empty and
    // single-lane dims, for all four Trans combos.
    let dims = [0, 1, MR - 1, MR + 1, NR - 1, NR + 1];
    let mut seed = 0;
    for &m in &dims {
        for &n in &dims {
            for &k in &dims {
                for ta in TRANS {
                    for tb in TRANS {
                        seed += 1;
                        check(ta, tb, 0.37, -1.0, m, n, k, seed);
                    }
                }
            }
        }
    }
}

#[test]
fn kc_cache_boundary_per_dimension() {
    // KC±1 (and KC) in each dimension in turn; the other two dims sit just
    // off the register blocking so edge kernels run against a deep panel.
    for &d in &[KC - 1, KC, KC + 1] {
        for (m, n, k) in [(d, NR + 1, MR + 1), (MR + 1, d, NR + 1), (MR + 1, NR + 1, d)] {
            for ta in TRANS {
                for tb in TRANS {
                    check(ta, tb, 0.37, 1.0, m, n, k, (d * 7 + m + n) as u64);
                }
            }
        }
    }
}

#[test]
fn alpha_beta_grid() {
    let coeffs = [0.0, 1.0, -1.0, 0.37];
    for &alpha in &coeffs {
        for &beta in &coeffs {
            for ta in TRANS {
                for tb in TRANS {
                    check(ta, tb, alpha, beta, MR + 1, NR + 1, 5, 99);
                }
            }
        }
    }
}

#[test]
fn beta_zero_overwrites_non_finite_garbage() {
    // The beta = 0 contract: C must be overwritten, never multiplied, so
    // stale NaN/Inf in the output block cannot leak through.
    let mut rng = seeded_rng(3);
    let a = random_uniform(MR + 1, 3, &mut rng);
    let b = random_uniform(3, NR + 1, &mut rng);
    for f in [gemm, gemm_force_scalar] {
        let mut c = Matrix::from_fn(MR + 1, NR + 1, |_, _| f64::NAN);
        f(Trans::No, Trans::No, 1.0, a.view(), b.view(), 0.0, c.view_mut());
        let mut want = Matrix::zeros(MR + 1, NR + 1);
        gemm_oracle(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut want, 3);
        for j in 0..want.ncols() {
            for i in 0..want.nrows() {
                assert!((c[(i, j)] - want[(i, j)]).abs() <= tol(3));
            }
        }
    }
}

#[test]
fn strided_interior_views_leave_frame_intact() {
    // Operate on interior sub-blocks of larger parents (ld > nrows for all
    // three operands) and verify the one-element frame around C is intact.
    let (m, n, k) = (MR + 3, NR + 3, KC + 1);
    let mut rng = seeded_rng(11);
    let pa = random_uniform(m + 2, k + 2, &mut rng);
    let pb = random_uniform(k + 2, n + 2, &mut rng);
    let pc0 = random_uniform(m + 2, n + 2, &mut rng);

    let a = Matrix::from_fn(m, k, |i, j| pa[(i + 1, j + 1)]);
    let b = Matrix::from_fn(k, n, |i, j| pb[(i + 1, j + 1)]);
    let mut want = Matrix::from_fn(m, n, |i, j| pc0[(i + 1, j + 1)]);
    gemm_oracle(Trans::No, Trans::No, 0.37, &a, &b, -1.0, &mut want, k);

    for f in [gemm, gemm_force_scalar] {
        let mut pc = pc0.clone();
        f(
            Trans::No,
            Trans::No,
            0.37,
            pa.block(1, 1, m, k),
            pb.block(1, 1, k, n),
            -1.0,
            pc.block_mut(1, 1, m, n),
        );
        for j in 0..n {
            for i in 0..m {
                assert!((pc[(i + 1, j + 1)] - want[(i, j)]).abs() <= tol(k));
            }
        }
        // Frame untouched, bit for bit.
        for j in 0..n + 2 {
            for i in 0..m + 2 {
                if i == 0 || j == 0 || i == m + 1 || j == n + 1 {
                    assert_eq!(pc[(i, j)].to_bits(), pc0[(i, j)].to_bits(), "frame at ({i},{j})");
                }
            }
        }
    }
}

#[test]
fn bitwise_identical_across_threads_and_repeats() {
    // The scheduler assigns tasks to arbitrary workers and PR-1 recovery
    // replays them; both rely on gemm being a pure function of its inputs —
    // including across threads (thread-local packing buffers must not leak
    // state into results).
    let (m, n, k) = (MR * 2 + 3, NR * 3 + 1, KC + 7);
    let mut rng = seeded_rng(5);
    let a = random_uniform(m, k, &mut rng);
    let b = random_uniform(k, n, &mut rng);
    let c0 = random_uniform(m, n, &mut rng);

    let run = |a: &Matrix, b: &Matrix, c0: &Matrix| -> Vec<u64> {
        let mut c = c0.clone();
        gemm(Trans::No, Trans::Yes, 0.37, a.view(), b.transpose().view(), 1.0, c.view_mut());
        c.as_slice().iter().map(|x| x.to_bits()).collect()
    };

    let reference = run(&a, &b, &c0);
    assert_eq!(reference, run(&a, &b, &c0), "repeated call changed bits");

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| s.spawn(|| run(&a, &b, &c0)))
            .collect();
        for h in handles {
            assert_eq!(reference, h.join().expect("worker"), "cross-thread bits differ");
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes, coefficients, and Trans combos against the oracle.
    #[test]
    fn random_shapes_match_oracle(
        m in 0usize..40,
        n in 0usize..40,
        k in 0usize..40,
        ta in 0usize..2,
        tb in 0usize..2,
        ci in 0usize..4,
        seed in 0u64..1000,
    ) {
        let coeffs = [0.0, 1.0, -1.0, 0.37];
        check(TRANS[ta], TRANS[tb], coeffs[ci], coeffs[3 - ci], m, n, k, seed);
    }
}

// ---------------------------------------------------------------------------
// Differential conformance across precisions, backends, and parallelism
// (DESIGN.md §15): every supported microkernel backend × {f32, f64} against
// the f64 oracle with eps-scaled tolerances, and the scheduler-parallel
// par_gemm against serial gemm bit for bit at every worker count.
// ---------------------------------------------------------------------------

use ca_factor::kernels::{gemm_available_backends, gemm_with_backend, par_gemm};
use ca_factor::matrix::Scalar;

/// Random operands for one configuration, generated in f64 and rounded to
/// the working precision so every backend of a given type sees identical
/// input bits.
fn operands<T: Scalar>(
    ta: Trans,
    tb: Trans,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
) -> (Matrix<T>, Matrix<T>, Matrix<T>) {
    let mut rng = seeded_rng(seed);
    let (ar, ac) = stored(ta, m, k);
    let (br, bc) = stored(tb, k, n);
    let a = Matrix::<T>::from_f64(&random_uniform(ar, ac, &mut rng));
    let b = Matrix::<T>::from_f64(&random_uniform(br, bc, &mut rng));
    let c0 = Matrix::<T>::from_f64(&random_uniform(m, n, &mut rng));
    (a, b, c0)
}

/// Forward-error bound in the working precision: `O(k·eps_T)` per dot
/// product, same slack factor as [`tol`].
fn tol_t<T: Scalar>(k: usize) -> f64 {
    8.0 * (k as f64 + 4.0) * T::EPSILON.to_f64()
}

/// Checks the runtime-dispatched and forced-scalar paths for element type
/// `T` against the f64 oracle run on the widened inputs.
#[allow(clippy::too_many_arguments)] // BLAS-style call convention
fn check_t<T: Scalar + ca_factor::kernels::Kernel>(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    beta: f64,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
) {
    let (a, b, c0) = operands::<T>(ta, tb, m, n, k, seed);
    let mut want = c0.to_f64();
    gemm_oracle(ta, tb, alpha, &a.to_f64(), &b.to_f64(), beta, &mut want, k);

    let (al, be) = (T::from_f64(alpha), T::from_f64(beta));
    let mut got = c0.clone();
    gemm(ta, tb, al, a.view(), b.view(), be, got.view_mut());
    let mut got_scalar = c0.clone();
    gemm_force_scalar(ta, tb, al, a.view(), b.view(), be, got_scalar.view_mut());

    let t = tol_t::<T>(k);
    for j in 0..n {
        for i in 0..m {
            let w = want[(i, j)];
            let g = got[(i, j)].to_f64();
            let gs = got_scalar[(i, j)].to_f64();
            assert!(
                (g - w).abs() <= t,
                "{} dispatch: ({i},{j}) of {m}x{n}x{k} {ta:?}{tb:?}: got {g} want {w}",
                T::NAME
            );
            assert!(
                (gs - w).abs() <= t,
                "{} scalar: ({i},{j}) of {m}x{n}x{k} {ta:?}{tb:?}: got {gs} want {w}",
                T::NAME
            );
        }
    }
}

#[test]
fn f32_register_block_edges_full_cross() {
    // f32 tile geometries differ per backend (8-wide scalar/AVX2, 16-wide
    // AVX-512), so cross the residues of both.
    let dims = [0, 1, 7, 9, 15, 17];
    let mut seed = 10_000;
    for &m in &dims {
        for &n in &dims {
            for &k in &dims {
                for ta in TRANS {
                    for tb in TRANS {
                        seed += 1;
                        check_t::<f32>(ta, tb, 0.37, -1.0, m, n, k, seed);
                    }
                }
            }
        }
    }
}

#[test]
fn f32_alpha_beta_grid_and_kc_boundary() {
    let coeffs = [0.0, 1.0, -1.0, 0.37];
    for &alpha in &coeffs {
        for &beta in &coeffs {
            check_t::<f32>(Trans::No, Trans::Yes, alpha, beta, 17, 9, 5, 777);
        }
    }
    for &k in &[KC - 1, KC, KC + 1] {
        check_t::<f32>(Trans::No, Trans::No, 0.37, 1.0, 17, 9, k, k as u64);
    }
}

#[test]
fn every_backend_matches_oracle_in_both_precisions() {
    // The conformance matrix: each host-supported backend × {f64, f32} must
    // stay inside the per-precision oracle bound on a shape crossing both
    // the register blocking and the KC cache boundary.
    let (m, n, k) = (MR * 2 + 3, NR * 2 + 1, KC + 7);
    let backends = gemm_available_backends();
    assert!(backends.contains(&"scalar"), "scalar backend must always exist");
    for name in &backends {
        {
            let (a, b, c0) = operands::<f64>(Trans::No, Trans::No, m, n, k, 42);
            let mut want = c0.clone();
            gemm_oracle(Trans::No, Trans::No, 0.37, &a, &b, -1.0, &mut want, k);
            let mut got = c0.clone();
            gemm_with_backend(name, Trans::No, Trans::No, 0.37, a.view(), b.view(), -1.0, got.view_mut());
            for j in 0..n {
                for i in 0..m {
                    assert!(
                        (got[(i, j)] - want[(i, j)]).abs() <= tol(k),
                        "backend {name} f64 at ({i},{j})"
                    );
                }
            }
        }
        {
            let (a, b, c0) = operands::<f32>(Trans::No, Trans::No, m, n, k, 43);
            let mut want = c0.to_f64();
            gemm_oracle(Trans::No, Trans::No, 0.37, &a.to_f64(), &b.to_f64(), -1.0, &mut want, k);
            let mut got = c0.clone();
            gemm_with_backend(
                name,
                Trans::No,
                Trans::No,
                0.37f32,
                a.view(),
                b.view(),
                -1.0f32,
                got.view_mut(),
            );
            for j in 0..n {
                for i in 0..m {
                    assert!(
                        (got[(i, j)].to_f64() - want[(i, j)]).abs() <= tol_t::<f32>(k),
                        "backend {name} f32 at ({i},{j})"
                    );
                }
            }
        }
    }
}

/// par_gemm must equal serial gemm bit for bit at every worker count and on
/// every repeat — the property the scheduler sub-DAG decomposition in
/// ca-core relies on for its "decomposition is purely a granularity knob"
/// contract. Runs for both precisions and both Trans combos that exercise
/// distinct pack routines.
#[test]
fn par_gemm_bitwise_identical_to_serial_at_every_worker_count() {
    fn check_par<T: Scalar + ca_factor::kernels::Kernel>(ta: Trans, tb: Trans, seed: u64) {
        let (m, n, k) = (ca_factor::kernels::MC + MR + 3, NR * 3 + 1, KC + 7);
        let (a, b, c0) = operands::<T>(ta, tb, m, n, k, seed);
        let (al, be) = (T::from_f64(0.37), T::from_f64(-1.0));

        let mut serial = c0.clone();
        gemm(ta, tb, al, a.view(), b.view(), be, serial.view_mut());
        let reference: Vec<u64> = serial.as_slice().iter().map(|x| x.to_bits_u64()).collect();

        for workers in [1usize, 2, 4] {
            for repeat in 0..2 {
                let mut c = c0.clone();
                par_gemm(workers, ta, tb, al, a.view(), b.view(), be, c.view_mut());
                let bits: Vec<u64> = c.as_slice().iter().map(|x| x.to_bits_u64()).collect();
                assert_eq!(
                    reference, bits,
                    "{} par_gemm workers={workers} repeat={repeat} {ta:?}{tb:?} differs from serial",
                    T::NAME
                );
            }
        }
    }
    check_par::<f64>(Trans::No, Trans::No, 21);
    check_par::<f64>(Trans::Yes, Trans::Yes, 22);
    check_par::<f32>(Trans::No, Trans::No, 23);
    check_par::<f32>(Trans::No, Trans::Yes, 24);
}
