//! End-to-end tests of the always-on telemetry tier: a service run with a
//! `TelemetryConfig` must expose the documented metric families with
//! per-tenant labels, keep its periodic exposition files parseable at any
//! instant, and bound its flight dumps.

use ca_factor::matrix::{random_uniform, seeded_rng};
use ca_factor::serve::{
    SeriesValue, Service, ServiceConfig, SubmitOptions, TelemetryConfig,
};
use ca_factor::telemetry::RegistrySnapshot;
use ca_factor::CaParams;
use std::time::Duration;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ca-telemetry-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("mkdir");
    d
}

fn run_jobs(svc: &Service, n: usize, tenants: usize) {
    let mut rng = seeded_rng(11);
    let mut handles = Vec::new();
    for i in 0..n {
        let mut opts = SubmitOptions::default().with_params(CaParams::new(16, 2, 1)).unbatched();
        if tenants > 0 {
            opts = opts.with_tenant(format!("t{}", i % tenants));
        }
        let a = random_uniform(48, 48, &mut rng);
        handles.push(svc.submit_lu(a, opts).expect("admitted"));
    }
    for h in handles {
        h.wait().expect("completes");
    }
}

/// The families the serve tier documents; a snapshot after a successful run
/// must carry every one of them.
const EXPECTED_FAMILIES: &[&str] = &[
    "ca_serve_jobs_submitted_total",
    "ca_serve_jobs_completed_total",
    "ca_serve_jobs_failed_total",
    "ca_serve_jobs_shed_total",
    "ca_serve_deadline_missed_total",
    "ca_serve_retries_total",
    "ca_serve_queue_seconds",
    "ca_serve_exec_seconds",
    "ca_serve_flops",
    "ca_serve_active_jobs",
    "ca_serve_pool_occupancy",
    "ca_serve_workers",
    "ca_serve_gflops",
    "ca_serve_mttr_seconds",
    "ca_serve_rejected_total",
    "ca_serve_job_retries_total",
    "ca_serve_flight_dumps_written_total",
    "ca_sched_tasks_dispatched_total",
    "ca_sched_jobs_completed_total",
    "ca_serve_task_retries_total",
];

#[test]
fn metrics_snapshot_exposes_documented_families_with_tenant_labels() {
    let cfg = ServiceConfig::new(2).with_telemetry(TelemetryConfig::default());
    let svc = Service::new(cfg);
    run_jobs(&svc, 6, 3);
    let snap = svc.metrics_snapshot().expect("telemetry configured");
    svc.shutdown();

    let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
    for want in EXPECTED_FAMILIES {
        assert!(names.contains(want), "missing family {want}; have {names:?}");
    }

    let submitted = snap
        .families
        .iter()
        .find(|f| f.name == "ca_serve_jobs_submitted_total")
        .expect("submitted family");
    // 3 tenants, one class each → 3 series, each counting 2 jobs.
    assert_eq!(submitted.series.len(), 3, "{submitted:?}");
    for s in &submitted.series {
        assert!(s.labels.iter().any(|(k, v)| k == "tenant" && v.starts_with('t')));
        assert!(s.labels.iter().any(|(k, v)| k == "class" && v == "lu"));
        match s.value {
            SeriesValue::Counter(c) => assert_eq!(c, 2),
            ref v => panic!("submitted must be a counter, got {v:?}"),
        }
    }

    // Completed jobs flowed through the exec-latency histogram.
    let exec = snap
        .families
        .iter()
        .find(|f| f.name == "ca_serve_exec_seconds")
        .expect("exec family");
    let total: u64 = exec
        .series
        .iter()
        .map(|s| match &s.value {
            SeriesValue::Histogram(h) => h.count,
            _ => 0,
        })
        .sum();
    assert_eq!(total, 6, "every completion observed once");

    // Prometheus rendering of the same snapshot is well-formed.
    let prom = snap.render_prometheus();
    assert!(prom.contains("# TYPE ca_serve_exec_seconds histogram"), "{prom}");
    assert!(prom.contains("le=\"+Inf\""), "{prom}");
}

#[test]
fn metrics_snapshot_is_none_without_telemetry() {
    let svc = Service::new(ServiceConfig::new(1));
    run_jobs(&svc, 1, 0);
    assert!(svc.metrics_snapshot().is_none(), "plain services expose nothing");
    svc.shutdown();
}

#[test]
fn periodic_exposition_files_parse_at_shutdown_and_midway() {
    let dir = temp_dir("expose");
    let path = dir.join("metrics.prom");
    let cfg = ServiceConfig::new(2).with_telemetry(
        TelemetryConfig::default()
            .with_metrics_file(&path)
            .with_interval(Duration::from_millis(20)),
    );
    let svc = Service::new(cfg);
    run_jobs(&svc, 4, 2);
    // Give the exposer at least one mid-run tick, then read while live: the
    // atomic-rename protocol means whatever we see must parse whole.
    std::thread::sleep(Duration::from_millis(60));
    let midway = std::fs::read_to_string(dir.join("metrics.prom.json"))
        .expect("mid-run snapshot exists");
    let _: RegistrySnapshot = serde_json::from_str(&midway).expect("mid-run snapshot parses");
    svc.shutdown();

    // Shutdown writes a final snapshot reflecting all four completions.
    let json = std::fs::read_to_string(dir.join("metrics.prom.json")).expect("final json");
    let snap: RegistrySnapshot = serde_json::from_str(&json).expect("final snapshot parses");
    let completed: u64 = snap
        .families
        .iter()
        .filter(|f| f.name == "ca_serve_jobs_completed_total")
        .flat_map(|f| &f.series)
        .map(|s| match s.value {
            SeriesValue::Counter(c) => c,
            _ => 0,
        })
        .sum();
    assert_eq!(completed, 4, "final snapshot reflects every completion");
    let prom = std::fs::read_to_string(&path).expect("prom text");
    assert!(prom.contains("ca_serve_jobs_completed_total"), "{prom}");
    // No temp files left behind by the atomic writer.
    let stray: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .filter(|f| f.contains(".tmp."))
        .collect();
    assert!(stray.is_empty(), "stray temp files: {stray:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flight_recorder_attaches_and_failure_dump_is_bounded_chrome_trace() {
    // Chaos at a high fail rate with no retries: jobs fail terminally, each
    // failure triggers a flight dump, and the cap bounds the files.
    use ca_factor::serve::{ChaosConfig, ChaosProfile};
    let dir = temp_dir("dumps");
    let cfg = ServiceConfig::new(2)
        .with_chaos(ChaosConfig::seeded(5).with_profile(
            ChaosProfile::quiet().with_fail_rate(1.0),
        ))
        .with_telemetry(
            TelemetryConfig::default()
                .with_flight_recorder(64)
                .with_dump_dir(&dir)
                .with_max_dumps(2),
        );
    let svc = Service::new(cfg);
    let mut rng = seeded_rng(13);
    let mut handles = Vec::new();
    for _ in 0..5 {
        let opts = SubmitOptions::default().with_params(CaParams::new(16, 2, 1)).unbatched();
        handles.push(svc.submit_lu(random_uniform(48, 48, &mut rng), opts).expect("admitted"));
    }
    let failures = handles.into_iter().map(|h| h.wait()).filter(Result::is_err).count();
    let snap = svc.metrics_snapshot().expect("telemetry configured");
    svc.shutdown();
    assert!(failures > 2, "fail-rate 1.0 with no retry must fail jobs, got {failures}");

    let dumps: Vec<String> = std::fs::read_dir(&dir)
        .expect("read dump dir")
        .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
        .filter(|f| f.starts_with("flight-"))
        .collect();
    assert_eq!(dumps.len(), 2, "cap must bound dumps: {dumps:?}");
    for f in &dumps {
        let raw = std::fs::read_to_string(dir.join(f)).expect("dump readable");
        let v: serde_json::Value = serde_json::from_str(&raw).expect("dump parses");
        assert_eq!(v["trigger"], "job-fail");
        let events = v["traceEvents"].as_array().expect("traceEvents");
        assert!(events.iter().any(|e| e["cat"] == "flight"), "{f} has no flight events");
    }
    // The suppression counter accounts for the failures past the cap.
    let suppressed: u64 = snap
        .families
        .iter()
        .filter(|f| f.name == "ca_serve_flight_dumps_suppressed_total")
        .flat_map(|f| &f.series)
        .map(|s| match s.value {
            SeriesValue::Counter(c) => c,
            _ => 0,
        })
        .sum();
    assert_eq!(suppressed as usize, failures - 2, "suppressed = failures past the cap");
    let _ = std::fs::remove_dir_all(&dir);
}
