//! Integration tests for `ca-serve`: concurrent-job isolation, cancellation
//! independence, backpressure under oversubscription, and the solve API —
//! all through the public `ca_factor::serve` facade.
//!
//! The central property (DESIGN.md §11): because each job's DAG executes
//! under the same deterministic reduction order as the one-shot entry
//! points, N jobs interleaved on a shared worker pool produce factors
//! **bitwise identical** to running each alone through
//! `calu_seq_factor` / `caqr_seq`.

use ca_factor::matrix::{norm_max, random_uniform, seeded_rng};
use ca_factor::prelude::{calu_seq_factor, caqr_seq, CaParams, Matrix};
use ca_factor::serve::{
    AdmissionPolicy, BatchConfig, CancelReason, ServeError, Service, ServiceConfig,
    SubmitOptions,
};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

fn params() -> CaParams {
    CaParams::new(16, 4, 1)
}

fn service(workers: usize) -> Service {
    Service::new(ServiceConfig::new(workers).with_params(params()))
}

/// The isolation property test: a seeded mix of LU and QR jobs of varying
/// shapes, all in flight at once on a shared pool, each bitwise equal to
/// its sequential reference.
#[test]
fn interleaved_lu_qr_jobs_are_bitwise_identical_to_sequential_runs() {
    let svc = service(4);
    let p = params();

    let mut rng = seeded_rng(0x5E21);
    let mut lu_in = Vec::new();
    let mut qr_in = Vec::new();
    for i in 0..12 {
        let n = 48 + 8 * (i % 5); // 48..80, deliberately not batch-aligned
        if i % 2 == 0 {
            lu_in.push(random_uniform(n + 16, n, &mut rng));
        } else {
            qr_in.push(random_uniform(n + 32, n, &mut rng));
        }
    }

    // Submit everything before waiting on anything, so the frontier holds
    // all jobs concurrently. `unbatched` forces the full DAG path.
    let lu_handles: Vec<_> = lu_in
        .iter()
        .map(|a| {
            svc.submit_lu(a.clone(), SubmitOptions::default().unbatched())
                .expect("admits")
        })
        .collect();
    let qr_handles: Vec<_> = qr_in
        .iter()
        .map(|a| {
            svc.submit_qr(a.clone(), SubmitOptions::default().unbatched())
                .expect("admits")
        })
        .collect();

    for (a, h) in lu_in.iter().zip(lu_handles) {
        let got = h.wait().expect("lu job completes");
        let want = calu_seq_factor(a.clone(), &p);
        assert_eq!(got.lu.as_slice(), want.lu.as_slice(), "LU factors must be bitwise equal");
        assert_eq!(got.pivots.ipiv, want.pivots.ipiv, "pivot sequences must agree");
    }
    for (a, h) in qr_in.iter().zip(qr_handles) {
        let got = h.wait().expect("qr job completes");
        let want = caqr_seq(a.clone(), &p);
        assert_eq!(got.a.as_slice(), want.a.as_slice(), "QR factors must be bitwise equal");
    }

    let s = svc.stats();
    assert_eq!(s.completed, 12);
    assert_eq!(s.failed + s.cancelled + s.rejected + s.shed, 0);
    svc.shutdown();
}

/// Cancelling one in-flight job must neither cancel nor stall its
/// neighbours, and the survivors must still be bitwise correct.
#[test]
fn cancelling_one_job_never_disturbs_the_others() {
    let svc = service(2);
    let p = params();
    let mut rng = seeded_rng(0x5E22);
    let mut mats: Vec<Matrix> = (0..6).map(|_| random_uniform(96, 96, &mut rng)).collect();
    let mut handles: Vec<_> = mats
        .iter()
        .map(|a| {
            svc.submit_lu(a.clone(), SubmitOptions::default().unbatched())
                .expect("admits")
        })
        .collect();
    // Cancel the middle job while the queue is still draining.
    let victim = handles.remove(3);
    mats.remove(3);
    victim.cancel();

    match victim.wait() {
        // Either the cancel landed, or the job raced to completion first —
        // both are legal; a hang or a foreign error is not.
        Err(ServeError::Cancelled(CancelReason::User)) | Ok(_) => {}
        other => panic!("unexpected terminal state for cancelled job: {other:?}"),
    }

    for (i, (a, h)) in mats.iter().zip(handles).enumerate() {
        let got = h
            .wait_for(WAIT)
            .unwrap_or_else(|_| panic!("job {i} stalled after a neighbour was cancelled"))
            .unwrap_or_else(|e| panic!("job {i} failed after a neighbour was cancelled: {e}"));
        let want = calu_seq_factor(a.clone(), &p);
        assert_eq!(got.lu.as_slice(), want.lu.as_slice());
        assert_eq!(got.pivots.ipiv, want.pivots.ipiv);
    }
    svc.shutdown();
}

/// `Block` admission at 2× oversubscription: twice as many jobs as queue
/// slots, submitted back-to-back. Every submit must eventually admit and
/// every job must resolve — no deadlock between the admission gate and the
/// worker pool.
#[test]
fn block_admission_survives_two_x_oversubscription() {
    let svc = Service::new(
        ServiceConfig::new(2)
            .with_params(params())
            .with_capacity(4)
            .with_admission(AdmissionPolicy::Block),
    );
    let mut rng = seeded_rng(0x5E23);
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let a = random_uniform(64, 64, &mut rng);
            // submit_lu blocks here whenever all 4 slots are taken; progress
            // depends on workers draining jobs while we are parked.
            svc.submit_lu(a, SubmitOptions::default().unbatched()).expect("block admits")
        })
        .collect();
    for h in handles {
        h.wait_for(WAIT).map_err(|_| "deadlock").expect("resolves").expect("completes");
    }
    let s = svc.stats();
    assert_eq!(s.completed, 8);
    assert_eq!(s.rejected, 0, "Block policy must never reject");
    svc.shutdown();
}

/// `ShedOldest` under overload: the queue stays bounded by evicting the
/// oldest queued job, every handle resolves (completed or shed), and the
/// shed counter records the evictions.
#[test]
fn shed_oldest_keeps_the_queue_bounded_and_resolves_every_handle() {
    let svc = Service::new(
        ServiceConfig::new(1)
            .with_params(params())
            .with_capacity(2)
            .with_admission(AdmissionPolicy::ShedOldest),
    );
    let mut rng = seeded_rng(0x5E24);
    let handles: Vec<_> = (0..10)
        .map(|_| {
            let a = random_uniform(96, 96, &mut rng);
            svc.submit_lu(a, SubmitOptions::default().unbatched())
        })
        .collect();

    let mut completed = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h {
            Ok(h) => match h.wait_for(WAIT).map_err(|_| "stall").expect("resolves") {
                Ok(_) => completed += 1,
                Err(ServeError::Shed) => shed += 1,
                Err(e) => panic!("unexpected error under shed-oldest: {e}"),
            },
            // If even the running job is unsheddable the submit itself is
            // refused — also a legal bounded-queue outcome.
            Err(ServeError::Rejected) => {}
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(completed >= 1, "at least the running job must complete");
    let s = svc.stats();
    assert!(svc.active_jobs() == 0, "all slots released");
    assert_eq!(s.shed, shed, "stats must agree with observed shed count");
    svc.shutdown();
}

/// A deadline in the past is honoured before any task runs and is counted.
#[test]
fn expired_deadline_cancels_and_is_counted() {
    let svc = service(1);
    let a = random_uniform(64, 64, &mut seeded_rng(0x5E25));
    let h = svc
        .submit_lu(a, SubmitOptions::default().unbatched().with_deadline(Duration::ZERO))
        .expect("admits");
    match h.wait() {
        Err(ServeError::DeadlineExceeded) => {}
        other => panic!("expected deadline miss, got {other:?}"),
    }
    let s = svc.stats();
    assert_eq!(s.deadline_missed, 1);
    svc.shutdown();
}

/// Batched tiny jobs, interleaved with a large direct job, still match
/// their sequential references bitwise — fusion must not leak state
/// between members or across the batch/direct boundary.
#[test]
fn fused_batches_are_bitwise_correct_next_to_direct_jobs() {
    let svc = Service::new(
        ServiceConfig::new(2)
            .with_params(params())
            .with_batching(BatchConfig::up_to(32)),
    );
    let p = params();
    let mut rng = seeded_rng(0x5E26);
    let big = random_uniform(160, 160, &mut rng);
    let tinies: Vec<Matrix> = (0..8).map(|_| random_uniform(24, 24, &mut rng)).collect();

    let h_big = svc.submit_lu(big.clone(), SubmitOptions::default()).expect("admits");
    let h_tiny: Vec<_> = tinies
        .iter()
        .map(|a| svc.submit_lu(a.clone(), SubmitOptions::default()).expect("admits"))
        .collect();
    svc.flush();

    let got_big = h_big.wait().expect("direct job completes");
    let want_big = calu_seq_factor(big, &p);
    assert_eq!(got_big.lu.as_slice(), want_big.lu.as_slice());
    for (a, h) in tinies.iter().zip(h_tiny) {
        let got = h.wait().expect("batched job completes");
        let want = calu_seq_factor(a.clone(), &p);
        assert_eq!(got.lu.as_slice(), want.lu.as_slice());
        assert_eq!(got.pivots.ipiv, want.pivots.ipiv);
    }
    let s = svc.stats();
    assert_eq!(s.batched_jobs, 8);
    assert!(s.batches_flushed >= 1);
    svc.shutdown();
}

/// The solve API end-to-end: `A·X = B` via CALU and a least-squares system
/// via CAQR, both through the service, checked against the true solutions.
#[test]
fn solve_and_lstsq_through_the_service_are_accurate() {
    let svc = service(2);
    let mut rng = seeded_rng(0x5E27);

    let n = 80;
    let a = random_uniform(n, n, &mut rng);
    let x_true = random_uniform(n, 3, &mut rng);
    let b = a.matmul(&x_true);
    let h_solve = svc.submit_solve(a, b, SubmitOptions::default()).expect("admits");

    let t = random_uniform(120, 40, &mut rng);
    let rhs = random_uniform(120, 2, &mut rng);
    let want_ls = caqr_seq(t.clone(), &params()).solve_ls(&rhs);
    let h_ls = svc.submit_lstsq(t, rhs, SubmitOptions::default()).expect("admits");

    let x = h_solve.wait().expect("solve completes");
    assert!(norm_max(x.sub_matrix(&x_true).view()) < 1e-8, "solve accuracy");
    let got_ls = h_ls.wait().expect("lstsq completes");
    assert!(norm_max(got_ls.sub_matrix(&want_ls).view()) < 1e-10, "lstsq vs reference");
    svc.shutdown();
}

/// The out-of-core submission path: a tile-store-resident matrix factored
/// under a budget that forces streaming (multiple superpanels) produces
/// factors bitwise identical to `calu_seq_factor`, through the service.
#[test]
fn out_of_core_lu_job_matches_in_core_bitwise() {
    use ca_factor::ooc::{OocKind, OocPlan, TileStore};
    use std::sync::Arc;

    let svc = service(2);
    let p = params();
    let n = 96;
    let a = random_uniform(n, n, &mut seeded_rng(0x00C));

    let dir = std::env::temp_dir().join(format!("ca_serve_ooc_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("lu_ooc.castore");
    let store = TileStore::<f64>::create(&path, n, n, p.b).expect("create store");
    store.import_matrix(&a).expect("import");

    // Sized so the 96-column matrix needs three resident superpanels.
    let budget = 1_090_864;
    let plan = OocPlan::solve(OocKind::Lu, n, n, &p, 8, budget).expect("plan");
    assert!(plan.nsuper > 1, "budget must force streaming, got nsuper={}", plan.nsuper);

    let h = svc
        .submit_lu_ooc(Arc::new(store), budget, SubmitOptions::default())
        .expect("admits");
    let f = h.wait().expect("ooc job completes");
    assert!(f.io.bytes_read > 0 && f.io.bytes_written > 0, "I/O is accounted");

    let reference = calu_seq_factor(a, &p);
    let got = TileStore::<f64>::open(&path).expect("reopen").export_matrix().expect("export");
    for j in 0..n {
        for i in 0..n {
            assert_eq!(
                got[(i, j)].to_bits(),
                reference.lu[(i, j)].to_bits(),
                "L\\U mismatch at ({i},{j})"
            );
        }
    }
    assert_eq!(f.pivots.ipiv, reference.pivots.ipiv, "pivot sequences differ");
    svc.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
