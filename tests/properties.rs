//! Property-based tests (proptest) over the core invariants:
//! factorization residuals for arbitrary shapes/parameters, pivot
//! permutation validity, parallel–sequential bitwise agreement, tournament
//! properties, and simulator scheduling bounds.

use ca_factor::matrix::{is_permutation, random_uniform, seeded_rng};
use ca_factor::prelude::*;
use ca_factor::sched::{simulate_uniform, TaskGraph, TaskKind, TaskLabel, TaskMeta};
use proptest::prelude::*;

fn tree_strategy() -> impl Strategy<Value = TreeShape> {
    prop_oneof![
        Just(TreeShape::Binary),
        Just(TreeShape::Flat),
        (2usize..6).prop_map(TreeShape::Kary),
        (2usize..5).prop_map(|w| TreeShape::Hybrid { flat_width: w }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn calu_factors_any_shape(
        m in 2usize..120,
        n in 1usize..80,
        b in 1usize..24,
        tr in 1usize..6,
        tree in tree_strategy(),
        seed in 0u64..1000,
    ) {
        let a = random_uniform(m, n, &mut seeded_rng(seed));
        let mut p = CaParams::new(b, tr, 2);
        p.tree = tree;
        let f = calu(a.clone(), &p);
        // Pivots form a valid permutation.
        let perm = f.permutation();
        prop_assert!(is_permutation(&perm));
        prop_assert_eq!(f.pivots.len(), m.min(n));
        // Residual at roundoff (random matrices never break down).
        let res = f.residual(&a);
        prop_assert!(res < 1e-10, "residual {} for {}x{} b={} tr={}", res, m, n, b, tr);
        // Partial-pivoting-style multiplier bound: |L| <= 1 after tournament
        // pivoting *within the selected pivot order* does not hold exactly,
        // but multipliers must stay modest.
        let l = f.l();
        for j in 0..l.ncols() {
            for i in j + 1..l.nrows() {
                prop_assert!(l[(i, j)].abs() < 64.0, "wild multiplier at ({},{})", i, j);
            }
        }
    }

    #[test]
    fn caqr_factors_any_shape(
        m in 2usize..120,
        nf in 0.1f64..1.0, // n as fraction of m (CAQR wants m >= n panels)
        b in 1usize..24,
        tr in 1usize..6,
        tree in tree_strategy(),
        seed in 0u64..1000,
    ) {
        let n = ((m as f64 * nf) as usize).max(1);
        let a = random_uniform(m, n, &mut seeded_rng(seed));
        let mut p = CaParams::new(b, tr, 2);
        p.tree = tree;
        let f = caqr(a.clone(), &p);
        let scale = 1e-11 * (m as f64);
        prop_assert!(f.residual(&a) < scale);
        prop_assert!(f.orthogonality() < scale);
    }

    #[test]
    fn parallel_equals_sequential_bitwise(
        m in 2usize..100,
        n in 1usize..60,
        b in 1usize..20,
        tr in 1usize..5,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = random_uniform(m, n, &mut seeded_rng(seed));
        let p = CaParams::new(b, tr, threads);
        let fp = calu(a.clone(), &p);
        let fs = ca_factor::core::calu_seq_factor(a, &p);
        prop_assert_eq!(fp.pivots.ipiv, fs.pivots.ipiv);
        prop_assert_eq!(fp.lu.as_slice(), fs.lu.as_slice());
    }

    #[test]
    fn tournament_winner_contains_gepp_first_pivot(
        rows in 4usize..64,
        cols in 1usize..6,
        tr in 1usize..5,
        seed in 0u64..1000,
    ) {
        // The first tournament pivot is always the globally largest entry of
        // column 1 — every tree node preserves its block's column-1 champion.
        let cols = cols.min(rows);
        let a = random_uniform(rows, cols, &mut seeded_rng(seed));
        let f = ca_factor::core::tslu_factor(a.clone(), tr, &CaParams::new(cols, tr, 1));
        let mut best = 0usize;
        for i in 1..rows {
            if a[(i, 0)].abs() > a[(best, 0)].abs() {
                best = i;
            }
        }
        prop_assert_eq!(f.permutation()[0], best);
    }

    #[test]
    fn simulator_respects_classic_bounds(
        layers in 1usize..6,
        width in 1usize..6,
        cores in 1usize..9,
        cost in 1.0f64..100.0,
    ) {
        // Layered DAG: `width` tasks per layer, all-to-all between layers.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let mut prev: Vec<usize> = Vec::new();
        for l in 0..layers {
            let mut cur = Vec::new();
            for i in 0..width {
                let fl = cost * ((l * width + i) % 7 + 1) as f64;
                let id = g.add_task(
                    TaskMeta::new(TaskLabel::new(TaskKind::Other, l, i, 0), fl),
                    (),
                );
                for &p in &prev {
                    g.add_dep(p, id);
                }
                cur.push(id);
            }
            prev = cur;
        }
        let tl = simulate_uniform(&g, cores, 1.0);
        tl.validate();
        let total = g.total_flops();
        let cp = g.critical_path_flops();
        prop_assert!(tl.makespan + 1e-9 >= cp);
        prop_assert!(tl.makespan + 1e-9 >= total / cores as f64);
        prop_assert!(tl.makespan <= total + 1e-9);
        // List scheduling 2-approximation bound (Graham).
        prop_assert!(tl.makespan <= cp + total / cores as f64 + 1e-9);
    }

    #[test]
    fn lu_solve_recovers_solution(
        n in 4usize..80,
        b in 2usize..20,
        tr in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = random_uniform(n, n, &mut seeded_rng(seed));
        let x_true = random_uniform(n, 2, &mut seeded_rng(seed + 1));
        let rhs = a.matmul(&x_true);
        let f = calu(a, &CaParams::new(b, tr, 2));
        let x = f.solve(&rhs);
        let err = ca_factor::matrix::norm_max(x.sub_matrix(&x_true).view());
        // Random square systems are usually well-conditioned at these sizes;
        // allow a generous margin for the occasional bad draw.
        prop_assert!(err < 1e-6, "solve error {}", err);
    }

    #[test]
    fn qr_least_squares_recovers_planted(
        m in 20usize..150,
        n in 2usize..12,
        tr in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = random_uniform(m, n, &mut seeded_rng(seed));
        let x_true = random_uniform(n, 1, &mut seeded_rng(seed + 1));
        let rhs = a.matmul(&x_true);
        let f = tsqr_factor(a, tr, &CaParams::new(n, tr, 1));
        let x = f.solve_ls(&rhs);
        let err = ca_factor::matrix::norm_max(x.sub_matrix(&x_true).view());
        prop_assert!(err < 1e-7, "LS error {}", err);
    }
}

// ---------------------------------------------------------------------------
// Packing round-trip (ca-kernels): the packed image of op(A)/op(B) must be a
// bit-exact rearrangement of the source block — panel q, offset (i, p) of an
// A block at q·mr·kb + p·mr + i, zero-filled past the edge — for both
// PackTrans values, both element types, and every (mb mod MR, nb mod NR)
// residue class. A naive element-by-element copy of the operated block is
// the oracle.
// ---------------------------------------------------------------------------

use ca_factor::kernels::{pack_a, pack_b, PackTrans, MR, NR};
use ca_factor::matrix::{Matrix, Scalar};

fn check_pack_residues<T: Scalar>(qa: usize, qb: usize, kb: usize, ic: usize, pc: usize, seed: u64) {
    let mut rng = seeded_rng(seed);
    for ra in 0..MR {
        let mb = qa * MR + ra;
        for trans in [PackTrans::No, PackTrans::Yes] {
            let (sr, sc) = match trans {
                PackTrans::No => (ic + mb, pc + kb),
                PackTrans::Yes => (pc + kb, ic + mb),
            };
            let src = Matrix::<T>::from_f64(&random_uniform(sr, sc, &mut rng));
            let panels = mb.div_ceil(MR);
            let mut buf = vec![T::from_f64(f64::NAN); panels * MR * kb];
            pack_a(trans, src.view(), ic, mb, pc, kb, &mut buf, MR);
            for q in 0..panels {
                for p in 0..kb {
                    for i in 0..MR {
                        let gi = q * MR + i;
                        let want = if gi < mb {
                            match trans {
                                PackTrans::No => src[(ic + gi, pc + p)],
                                PackTrans::Yes => src[(pc + p, ic + gi)],
                            }
                        } else {
                            T::ZERO
                        };
                        assert_eq!(
                            buf[q * MR * kb + p * MR + i].to_bits_u64(),
                            want.to_bits_u64(),
                            "{} pack_a {trans:?} mb={mb} kb={kb} panel {q} elem ({i},{p})",
                            T::NAME
                        );
                    }
                }
            }
        }
    }
    for rb in 0..NR {
        let nb = qb * NR + rb;
        for trans in [PackTrans::No, PackTrans::Yes] {
            let (sr, sc) = match trans {
                PackTrans::No => (pc + kb, ic + nb),
                PackTrans::Yes => (ic + nb, pc + kb),
            };
            let src = Matrix::<T>::from_f64(&random_uniform(sr, sc, &mut rng));
            let panels = nb.div_ceil(NR);
            let mut buf = vec![T::from_f64(f64::NAN); panels * NR * kb];
            pack_b(trans, src.view(), pc, kb, ic, nb, &mut buf, NR);
            for q in 0..panels {
                for p in 0..kb {
                    for j in 0..NR {
                        let gj = q * NR + j;
                        let want = if gj < nb {
                            match trans {
                                PackTrans::No => src[(pc + p, ic + gj)],
                                PackTrans::Yes => src[(ic + gj, pc + p)],
                            }
                        } else {
                            T::ZERO
                        };
                        assert_eq!(
                            buf[q * NR * kb + p * NR + j].to_bits_u64(),
                            want.to_bits_u64(),
                            "{} pack_b {trans:?} nb={nb} kb={kb} panel {q} elem ({p},{j})",
                            T::NAME
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn packing_is_bit_exact_across_residues_trans_and_precision(
        qa in 1usize..3,
        qb in 1usize..4,
        kb in 1usize..12,
        ic in 0usize..3,
        pc in 0usize..3,
        seed in 0u64..1000,
    ) {
        // Each case sweeps all MR (resp. NR) edge residues, so every
        // (mb mod MR, nb mod NR) class is hit in every single case.
        check_pack_residues::<f64>(qa, qb, kb, ic, pc, seed);
        check_pack_residues::<f32>(qa, qb, kb, ic, pc, seed + 1);
    }
}
