//! Shape assertions on the simulated evaluation: the qualitative claims of
//! the paper's §IV must hold on the virtual 8/16-core machines with the
//! fixed reference calibration. These tests pin down "who wins, by roughly
//! what factor, where the crossovers fall" so regressions in the algorithms
//! or the scheduler surface as test failures.

use ca_factor::bench::{Algo, Calibration, MachineModel};
use ca_factor::core::TreeShape;

fn machine(cores: usize) -> MachineModel {
    MachineModel::new(cores, Calibration::reference())
}

fn paper_b(n: usize) -> usize {
    n.clamp(1, 100)
}

#[test]
fn fig5_shape_tall_skinny_lu() {
    // m=10^5-class tall-skinny (scaled 10x down for test speed; the DAG
    // structure per column is identical).
    let m = 10_000;
    let mach = machine(8);
    for n in [10usize, 100, 500] {
        let calu8 = Algo::Calu { b: paper_b(n), tr: 8, tree: TreeShape::Binary }.sim_gflops(m, n, &mach);
        let calu4 = Algo::Calu { b: paper_b(n), tr: 4, tree: TreeShape::Binary }.sim_gflops(m, n, &mach);
        let mkl = Algo::BlockedLu { nb: 64 }.sim_gflops(m, n, &mach);
        let blas2 = Algo::Blas2Lu.sim_gflops(m, n, &mach);

        // CALU(Tr=8) beats CALU(Tr=4) beats the blocked vendor structure,
        // which is at least as fast as raw BLAS2 (paper Fig. 5).
        assert!(calu8 > calu4 * 0.95, "n={n}: Tr=8 {calu8} vs Tr=4 {calu4}");
        assert!(calu4 > mkl, "n={n}: CALU(4) {calu4} vs MKL {mkl}");
        assert!(mkl >= blas2 * 0.95, "n={n}: MKL {mkl} vs BLAS2 {blas2}");
        // The paper's headline: large speedup over dgetf2 for n=100.
        if n == 100 {
            assert!(calu8 / blas2 > 4.0, "speedup over BLAS2 only {}", calu8 / blas2);
        }
    }
}

#[test]
fn fig5_plasma_crossover() {
    // PLASMA is slowest at n=10 (its panel chain dominates) and overtakes
    // the blocked vendor baseline as n grows (paper: PLASMA catches CALU
    // near n=1000 and passes MKL well before).
    let m = 10_000;
    let mach = machine(8);
    let plasma_small = Algo::TiledLu { b: paper_b(10) }.sim_gflops(m, 10, &mach);
    let calu_small = Algo::Calu { b: paper_b(10), tr: 8, tree: TreeShape::Binary }.sim_gflops(m, 10, &mach);
    assert!(calu_small / plasma_small > 3.0, "CALU/PLASMA at n=10: {}", calu_small / plasma_small);

    let plasma_big = Algo::TiledLu { b: 100 }.sim_gflops(m, 1000, &mach);
    let mkl_big = Algo::BlockedLu { nb: 64 }.sim_gflops(m, 1000, &mach);
    assert!(plasma_big > mkl_big, "PLASMA {plasma_big} should pass MKL {mkl_big} at n=1000");
}

#[test]
fn fig8_shape_tall_skinny_qr() {
    let m = 10_000;
    let mach = machine(8);
    for n in [10usize, 100, 200] {
        let tsqr = Algo::Tsqr { tr: 8, tree: TreeShape::Binary }.sim_gflops(m, n, &mach);
        let mkl = Algo::BlockedQr { nb: 64 }.sim_gflops(m, n, &mach);
        let blas2 = Algo::Blas2Qr.sim_gflops(m, n, &mach);
        let plasma = Algo::TiledQr { b: paper_b(n) }.sim_gflops(m, n, &mach);
        assert!(tsqr > mkl, "n={n}: TSQR {tsqr} vs MKL {mkl}");
        assert!(mkl >= blas2 * 0.9, "n={n}: MKL {mkl} vs BLAS2 {blas2}");
        assert!(tsqr > plasma, "n={n}: TSQR {tsqr} vs PLASMA {plasma}");
    }
    // CAQR with a height-1 tree also beats the blocked baseline at n=500.
    let caqr = Algo::Caqr { b: 100, tr: 4, tree: TreeShape::Flat }.sim_gflops(m, 500, &mach);
    let mkl = Algo::BlockedQr { nb: 64 }.sim_gflops(m, 500, &mach);
    assert!(caqr > mkl, "CAQR {caqr} vs MKL {mkl} at n=500");
}

#[test]
fn square_matrices_narrow_the_gap() {
    // Paper Tables I/II: for square matrices the CALU advantage shrinks —
    // the trailing update dominates and everyone runs BLAS3. The CALU/MKL
    // ratio at m=n=2000 must be far below the tall-skinny ratio at the same
    // machine.
    let mach = machine(8);
    let tall_ratio = {
        let c = Algo::Calu { b: 100, tr: 8, tree: TreeShape::Binary }.sim_gflops(10_000, 100, &mach);
        let m = Algo::BlockedLu { nb: 64 }.sim_gflops(10_000, 100, &mach);
        c / m
    };
    let square_ratio = {
        let c = Algo::Calu { b: 100, tr: 8, tree: TreeShape::Binary }.sim_gflops(2000, 2000, &mach);
        let m = Algo::BlockedLu { nb: 64 }.sim_gflops(2000, 2000, &mach);
        c / m
    };
    assert!(
        square_ratio < 0.6 * tall_ratio,
        "square ratio {square_ratio} vs tall ratio {tall_ratio}"
    );
}

#[test]
fn sixteen_core_machine_scales_calu_further() {
    // Figure 7: on the 16-core machine CALU(Tr=16) gains over Tr=8 for
    // tall-skinny panels.
    let m = 20_000;
    let n = 100;
    let mach = machine(16);
    let c8 = Algo::Calu { b: 100, tr: 8, tree: TreeShape::Binary }.sim_gflops(m, n, &mach);
    let c16 = Algo::Calu { b: 100, tr: 16, tree: TreeShape::Binary }.sim_gflops(m, n, &mach);
    assert!(c16 > c8, "Tr=16 {c16} vs Tr=8 {c8}");
}

#[test]
fn fig3_fig4_idle_time_contrast() {
    // The utilization story of Figures 3/4: Tr=1 leaves cores idle during
    // the panel; Tr=8 keeps them busy.
    let mach = machine(8);
    let p1 = ca_factor::core::CaParams::new(100, 1, 8);
    let p8 = ca_factor::core::CaParams::new(100, 8, 8);
    let g1 = ca_factor::core::calu_task_graph(10_000, 1000, &p1);
    let g8 = ca_factor::core::calu_task_graph(10_000, 1000, &p8);
    let u1 = mach.run(&g1).utilization();
    let u8 = mach.run(&g8).utilization();
    assert!(u8 > 0.90, "Tr=8 utilization {u8}");
    assert!(u1 < 0.55, "Tr=1 utilization {u1}");
}

#[test]
fn lookahead_improves_or_matches_makespan() {
    let mach = machine(8);
    let p_on = ca_factor::core::CaParams::new(64, 4, 8);
    let p_off = p_on.without_lookahead();
    let g_on = ca_factor::core::calu_task_graph(4000, 1000, &p_on);
    let g_off = ca_factor::core::calu_task_graph(4000, 1000, &p_off);
    let t_on = mach.run(&g_on).makespan;
    let t_off = mach.run(&g_off).makespan;
    assert!(t_on <= t_off * 1.02, "lookahead on {t_on} vs off {t_off}");
}

#[test]
fn binary_tree_shortens_panel_critical_path_vs_flat() {
    // With many leaves, the flat tree's single (Tr·b × b) root node is a
    // longer serial step than log2(Tr) pair nodes.
    let p_bin = ca_factor::core::CaParams::new(100, 16, 16);
    let p_flat = p_bin.with_flat_tree();
    let g_bin = ca_factor::core::calu_task_graph(32_000, 100, &p_bin);
    let g_flat = ca_factor::core::calu_task_graph(32_000, 100, &p_flat);
    // Critical path comparison in flops (pure DAG property).
    assert!(g_bin.critical_path_flops() < g_flat.critical_path_flops());
}
