//! Edge-case and failure-injection tests across the public API: degenerate
//! shapes, rank-deficient and pathological inputs, extreme parameters.

use ca_factor::matrix::{norm_max, random_uniform, seeded_rng, Matrix};
use ca_factor::prelude::*;

#[test]
fn one_by_one_matrices() {
    let a = Matrix::from_rows(1, 1, &[3.0]);
    let f = calu(a.clone(), &CaParams::new(1, 1, 1));
    assert_eq!(f.lu[(0, 0)], 3.0);
    assert!(f.residual(&a) < 1e-15);
    let q = caqr(a.clone(), &CaParams::new(1, 1, 1));
    assert!((q.r()[(0, 0)].abs() - 3.0).abs() < 1e-15);
}

#[test]
fn single_column_and_single_row() {
    let col = random_uniform(50, 1, &mut seeded_rng(1));
    let f = calu(col.clone(), &CaParams::new(1, 4, 2));
    assert!(f.residual(&col) < 1e-13);
    let qr = caqr(col.clone(), &CaParams::new(1, 4, 2));
    assert!(qr.residual(&col) < 1e-13);

    let row = random_uniform(1, 50, &mut seeded_rng(2));
    let f = calu(row.clone(), &CaParams::new(8, 4, 2));
    assert!(f.residual(&row) < 1e-13);
}

#[test]
fn zero_matrix_lu_flags_breakdown_qr_gives_zero_r() {
    let z = Matrix::zeros(20, 8);
    let f = calu(z.clone(), &CaParams::new(4, 2, 2));
    assert_eq!(f.breakdown, Some(0));
    let qr = caqr(z, &CaParams::new(4, 2, 2));
    assert_eq!(norm_max(qr.r().view()), 0.0);
    // Q of a zero matrix is still orthonormal (identity-embedded).
    assert!(qr.orthogonality() < 1e-12);
}

#[test]
fn rank_deficient_tall_matrix_qr_has_tiny_trailing_r() {
    // rank 3 matrix, 6 columns: R[3.., 3..] must vanish.
    let m = 80;
    let mut rng = seeded_rng(3);
    let u = random_uniform(m, 3, &mut rng);
    let v = random_uniform(6, 3, &mut rng);
    let a = u.matmul(&v.transpose());
    let qr = caqr(a.clone(), &CaParams::new(3, 4, 2));
    let r = qr.r();
    for i in 3..6 {
        for j in i..6 {
            assert!(r[(i, j)].abs() < 1e-10, "R[{i},{j}] = {}", r[(i, j)]);
        }
    }
    assert!(qr.residual(&a) < 1e-12);
}

#[test]
fn duplicate_rows_tournament_still_factors() {
    // Every leaf sees duplicated rows: candidates collide but the winner
    // must still be a valid pivot set.
    let m = 64;
    let n = 8;
    let mut a = random_uniform(m, n, &mut seeded_rng(4));
    for i in (1..m).step_by(2) {
        for j in 0..n {
            let v = a[(i - 1, j)];
            a[(i, j)] = v;
        }
    }
    let f = calu(a.clone(), &CaParams::new(4, 8, 2));
    assert!(f.residual(&a) < 1e-12);
}

#[test]
fn huge_tr_and_tiny_matrix() {
    // Tr far larger than the number of blocks: groups collapse gracefully.
    let a = random_uniform(12, 5, &mut seeded_rng(5));
    let f = calu(a.clone(), &CaParams::new(3, 64, 8));
    assert!(f.residual(&a) < 1e-13);
    let qr = caqr(a.clone(), &CaParams::new(3, 64, 8));
    assert!(qr.residual(&a) < 1e-12);
}

#[test]
fn extreme_value_scales_survive() {
    // Entries spanning ~1e±150: pivoting must keep everything finite.
    let n = 24;
    let mut a = random_uniform(n, n, &mut seeded_rng(6));
    for i in 0..n {
        let s = if i % 2 == 0 { 1e150 } else { 1e-150 };
        for j in 0..n {
            a[(i, j)] *= s;
        }
    }
    let f = calu(a.clone(), &CaParams::new(6, 4, 2));
    assert!(f.lu.as_slice().iter().all(|x| x.is_finite()));
    // Residual relative to the (huge) norm of A stays at roundoff.
    assert!(f.residual(&a) < 1e-12);
}

#[test]
fn kahan_matrix_factors_with_small_residual() {
    let a = ca_factor::matrix::kahan(60, 1.2);
    let f = calu(a.clone(), &CaParams::new(10, 4, 2));
    assert!(f.residual(&a) < 1e-12);
    let qr = caqr(a.clone(), &CaParams::new(10, 4, 2));
    assert!(qr.residual(&a) < 1e-11);
}

#[test]
fn b_larger_than_matrix() {
    let a = random_uniform(30, 30, &mut seeded_rng(7));
    let f = calu(a.clone(), &CaParams::new(1000, 4, 2));
    assert!(f.residual(&a) < 1e-13);
}

#[test]
fn more_threads_than_tasks() {
    let a = random_uniform(16, 16, &mut seeded_rng(8));
    let f = calu(a.clone(), &CaParams::new(16, 1, 32));
    assert!(f.residual(&a) < 1e-13);
}

// --- Register-blocking residue classes ------------------------------------
//
// The packed GEMM path tiles C into MR × NR register blocks; partial tiles
// on the right/bottom rim go through a separate zero-padded edge kernel.
// Walk every (m mod MR, n mod NR) residue class so each rim shape is hit
// both directly and through a full factorization's trailing updates.

#[test]
fn gemm_every_register_residue_class() {
    use ca_factor::kernels::{gemm, Trans, MR, NR};
    for mr in 0..MR {
        for nr in 0..NR {
            let (m, n, k) = (MR + mr, NR + nr, 7);
            let mut rng = seeded_rng((mr * NR + nr) as u64);
            let a = random_uniform(m, k, &mut rng);
            let b = random_uniform(k, n, &mut rng);
            let c0 = random_uniform(m, n, &mut rng);
            let mut c = c0.clone();
            gemm(Trans::No, Trans::No, 1.0, a.view(), b.view(), 1.0, c.view_mut());
            for j in 0..n {
                for i in 0..m {
                    let mut want = c0[(i, j)];
                    for p in 0..k {
                        want += a[(i, p)] * b[(p, j)];
                    }
                    assert!(
                        (c[(i, j)] - want).abs() < 1e-13,
                        "residue ({mr},{nr}) at ({i},{j})"
                    );
                }
            }
        }
    }
}

#[test]
fn factorizations_across_register_residue_classes() {
    // CALU/CAQR with trailing-update widths sweeping the MR/NR residues:
    // n = 3b + r keeps the last panel and every update rim partial.
    use ca_factor::kernels::{MR, NR};
    for r in 0..MR.max(NR) {
        let (m, n) = (3 * MR + r, 2 * MR + r);
        let a = random_uniform(m, n, &mut seeded_rng(100 + r as u64));
        let p = CaParams::new(MR - 1, 2, 2);
        let f = calu(a.clone(), &p);
        assert!(f.residual(&a) < 1e-12, "CALU residue {r}");
        let qr = caqr(a.clone(), &p);
        assert!(qr.residual(&a) < 1e-12, "CAQR residue {r}");
    }
}

#[test]
fn residue_classes_under_checked_executor() {
    // The PR-3 checked executor (static DAG verification + shadow lease
    // registry) must accept the same rim shapes: an out-of-footprint write
    // by an edge kernel would surface here as a lease violation.
    use ca_factor::core::{try_calu_checked, try_caqr_checked};
    use ca_factor::kernels::{MR, NR};
    for r in [0, 1, MR - 1, NR - 1] {
        let (m, n) = (3 * MR + r, 2 * MR + r);
        let a = random_uniform(m, n, &mut seeded_rng(200 + r as u64));
        let p = CaParams::new(MR - 1, 2, 2);
        let (f, _) = try_calu_checked(a.clone(), &p).expect("checked CALU");
        assert!(f.residual(&a) < 1e-12, "checked CALU residue {r}");
        let (qr, _) = try_caqr_checked(a.clone(), &p).expect("checked CAQR");
        assert!(qr.residual(&a) < 1e-12, "checked CAQR residue {r}");
    }
}
