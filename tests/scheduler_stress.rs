//! Stress tests of the `ca-sched` runtime: random DAGs executed on real
//! threads with dependency-order verification, pool-vs-simulator agreement
//! on task sets, and heavy-contention smoke tests.

use ca_factor::sched::{run_graph, simulate_uniform, Job, TaskGraph, TaskKind, TaskLabel, TaskMeta};
use rand::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Builds a random layered DAG; returns (graph of ids, adjacency list).
fn random_dag(seed: u64, layers: usize, width: usize, edge_prob: f64) -> TaskGraph<usize> {
    let mut rng = ca_factor::matrix::seeded_rng(seed);
    let mut g: TaskGraph<usize> = TaskGraph::new();
    let mut prev: Vec<usize> = Vec::new();
    let mut count = 0usize;
    for l in 0..layers {
        let mut cur = Vec::new();
        for i in 0..width {
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Other, l, i, 0),
                rng.gen_range(1.0..100.0),
            )
            .with_priority(rng.gen_range(-100..100));
            let id = g.add_task(meta, count);
            count += 1;
            for &p in &prev {
                if rng.gen_bool(edge_prob) {
                    g.add_dep(p, id);
                }
            }
            cur.push(id);
        }
        prev = cur;
    }
    g
}

#[test]
fn random_dags_execute_in_dependency_order() {
    for seed in 0..6u64 {
        let g = random_dag(seed, 6, 8, 0.4);
        let n = g.len();
        // Record a completion stamp per task; verify every edge's order.
        let clock = AtomicU64::new(0);
        let stamps: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| g.successors(i).iter().map(move |&s| (i, s)))
            .collect();

        let jobs: TaskGraph<Job<'_>> = g.map_ref(|id, _| {
            let clock = &clock;
            let stamps = &stamps;
            Box::new(move || {
                // Tiny variable work to shake the interleaving.
                let mut acc = 0u64;
                for k in 0..(id % 7) * 100 {
                    acc = acc.wrapping_add(k as u64);
                }
                std::hint::black_box(acc);
                let t = clock.fetch_add(1, Ordering::SeqCst);
                stamps[id].store(t, Ordering::SeqCst);
            }) as Job<'_>
        });
        let stats = run_graph(jobs, 4);
        assert_eq!(stats.tasks, n);
        for (a, b) in edges {
            let ta = stamps[a].load(Ordering::SeqCst);
            let tb = stamps[b].load(Ordering::SeqCst);
            assert!(ta != u64::MAX && tb != u64::MAX, "task never ran");
            assert!(ta < tb, "dependency {a}->{b} violated (seed {seed})");
        }
    }
}

#[test]
fn pool_and_simulator_run_the_same_task_set() {
    let g = random_dag(99, 5, 6, 0.3);
    let n = g.len();
    let executed = Mutex::new(Vec::new());
    let jobs: TaskGraph<Job<'_>> = g.map_ref(|id, _| {
        let executed = &executed;
        Box::new(move || executed.lock().unwrap().push(id)) as Job<'_>
    });
    run_graph(jobs, 3);
    let mut ran = executed.into_inner().unwrap();
    ran.sort_unstable();
    assert_eq!(ran, (0..n).collect::<Vec<_>>());

    let tl = simulate_uniform(&g, 3, 1.0);
    let mut simmed: Vec<usize> = tl.lanes.iter().flatten().map(|s| s.task).collect();
    simmed.sort_unstable();
    assert_eq!(simmed, (0..n).collect::<Vec<_>>());
}

#[test]
fn wide_fanout_with_many_threads() {
    // 1 -> 500 -> 1 diamond on more threads than cores: no deadlock, no loss.
    let total = AtomicUsize::new(0);
    let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
    let meta = |p: i64| {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0).with_priority(p)
    };
    let total_ref = &total;
    let root = g.add_task(meta(0), Box::new(move || {
        total_ref.fetch_add(1, Ordering::Relaxed);
    }) as Job<'_>);
    let mids: Vec<_> = (0..500)
        .map(|i| {
            let id = g.add_task(meta(i % 17), Box::new(move || {
                total_ref.fetch_add(1, Ordering::Relaxed);
            }) as Job<'_>);
            g.add_dep(root, id);
            id
        })
        .collect();
    let sink = g.add_task(meta(0), Box::new(move || {
        total_ref.fetch_add(1, Ordering::Relaxed);
    }) as Job<'_>);
    for m in mids {
        g.add_dep(m, sink);
    }
    let stats = run_graph(g, 16);
    assert_eq!(total.load(Ordering::Relaxed), 502);
    stats.timeline.validate();
}

#[test]
fn repeated_runs_of_calu_are_stable_under_contention() {
    // Run the same parallel factorization many times with more threads than
    // cores; results must be identical every time (no data races).
    use ca_factor::prelude::*;
    let a = ca_factor::matrix::random_uniform(120, 120, &mut ca_factor::matrix::seeded_rng(5));
    let p = CaParams::new(20, 4, 8);
    let reference = calu(a.clone(), &p);
    for _ in 0..5 {
        let f = calu(a.clone(), &p);
        assert_eq!(f.lu.as_slice(), reference.lu.as_slice());
        assert_eq!(f.pivots.ipiv, reference.pivots.ipiv);
    }
}
