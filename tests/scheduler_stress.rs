//! Stress tests of the `ca-sched` runtime: random DAGs executed on real
//! threads with dependency-order verification, pool-vs-simulator agreement
//! on task sets, heavy-contention smoke tests, and deterministic
//! fault-injection runs exercising the failure/cancellation paths.

use ca_factor::sched::{
    job, run_graph, simulate_uniform, try_run_graph, try_run_graph_stealing_with_faults,
    try_run_graph_with_faults, FaultPlan, Job, TaskFailure, TaskGraph, TaskKind, TaskLabel,
    TaskMeta,
};
use rand::Rng;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Builds a random layered DAG; returns (graph of ids, adjacency list).
fn random_dag(seed: u64, layers: usize, width: usize, edge_prob: f64) -> TaskGraph<usize> {
    let mut rng = ca_factor::matrix::seeded_rng(seed);
    let mut g: TaskGraph<usize> = TaskGraph::new();
    let mut prev: Vec<usize> = Vec::new();
    let mut count = 0usize;
    for l in 0..layers {
        let mut cur = Vec::new();
        for i in 0..width {
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Other, l, i, 0),
                rng.gen_range(1.0..100.0),
            )
            .with_priority(rng.gen_range(-100..100));
            let id = g.add_task(meta, count);
            count += 1;
            for &p in &prev {
                if rng.gen_bool(edge_prob) {
                    g.add_dep(p, id);
                }
            }
            cur.push(id);
        }
        prev = cur;
    }
    g
}

#[test]
fn random_dags_execute_in_dependency_order() {
    for seed in 0..6u64 {
        let g = random_dag(seed, 6, 8, 0.4);
        let n = g.len();
        // Record a completion stamp per task; verify every edge's order.
        let clock = AtomicU64::new(0);
        let stamps: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| g.successors(i).iter().map(move |&s| (i, s)))
            .collect();

        let jobs: TaskGraph<Job<'_>> = g.map_ref(|id, _| {
            let clock = &clock;
            let stamps = &stamps;
            job(move || {
                // Tiny variable work to shake the interleaving.
                let mut acc = 0u64;
                for k in 0..(id % 7) * 100 {
                    acc = acc.wrapping_add(k as u64);
                }
                std::hint::black_box(acc);
                let t = clock.fetch_add(1, Ordering::SeqCst);
                stamps[id].store(t, Ordering::SeqCst);
            })
        });
        let stats = run_graph(jobs, 4);
        assert_eq!(stats.tasks, n);
        for (a, b) in edges {
            let ta = stamps[a].load(Ordering::SeqCst);
            let tb = stamps[b].load(Ordering::SeqCst);
            assert!(ta != u64::MAX && tb != u64::MAX, "task never ran");
            assert!(ta < tb, "dependency {a}->{b} violated (seed {seed})");
        }
    }
}

#[test]
fn pool_and_simulator_run_the_same_task_set() {
    let g = random_dag(99, 5, 6, 0.3);
    let n = g.len();
    let executed = Mutex::new(Vec::new());
    let jobs: TaskGraph<Job<'_>> = g.map_ref(|id, _| {
        let executed = &executed;
        job(move || executed.lock().unwrap().push(id))
    });
    run_graph(jobs, 3);
    let mut ran = executed.into_inner().unwrap();
    ran.sort_unstable();
    assert_eq!(ran, (0..n).collect::<Vec<_>>());

    let tl = simulate_uniform(&g, 3, 1.0);
    let mut simmed: Vec<usize> = tl.lanes.iter().flatten().map(|s| s.task).collect();
    simmed.sort_unstable();
    assert_eq!(simmed, (0..n).collect::<Vec<_>>());
}

#[test]
fn wide_fanout_with_many_threads() {
    // 1 -> 500 -> 1 diamond on more threads than cores: no deadlock, no loss.
    let total = AtomicUsize::new(0);
    let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
    let meta = |p: i64| {
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0).with_priority(p)
    };
    let total_ref = &total;
    let root = g.add_task(meta(0), job(move || {
        total_ref.fetch_add(1, Ordering::Relaxed);
    }));
    let mids: Vec<_> = (0..500)
        .map(|i| {
            let id = g.add_task(meta(i % 17), job(move || {
                total_ref.fetch_add(1, Ordering::Relaxed);
            }));
            g.add_dep(root, id);
            id
        })
        .collect();
    let sink = g.add_task(meta(0), job(move || {
        total_ref.fetch_add(1, Ordering::Relaxed);
    }));
    for m in mids {
        g.add_dep(m, sink);
    }
    let stats = run_graph(g, 16);
    assert_eq!(total.load(Ordering::Relaxed), 502);
    stats.timeline.validate();
}

#[test]
fn injected_panics_never_hang_and_cancel_successors() {
    // Panic at the first, middle, and last task of a chain, at 1/4/16
    // threads: the pool must drain without hanging, cancel exactly the
    // downstream tasks, and name the failed task in the error.
    let n = 24usize;
    for &threads in &[1usize, 4, 16] {
        for &pos in &[0usize, n / 2, n - 1] {
            let ran: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    let meta = TaskMeta::new(TaskLabel::new(TaskKind::Update, i, 0, 0), 1.0);
                    let ran = &ran;
                    g.add_task(meta, job(move || {
                        ran[i].fetch_add(1, Ordering::SeqCst);
                    }))
                })
                .collect();
            for pair in ids.windows(2) {
                g.add_dep(pair[0], pair[1]);
            }
            let plan = FaultPlan::new().panic_nth(1, move |l| l.step == pos);
            let err = try_run_graph_with_faults(g, threads, &plan)
                .expect_err("injected panic must surface as ExecError");
            assert_eq!(err.task, ids[pos]);
            assert_eq!(err.label.step, pos);
            assert!(err.panicked);
            assert_eq!(err.cancelled, ids[pos + 1..].to_vec());
            for (i, r) in ran.iter().enumerate() {
                let expect = usize::from(i < pos);
                assert_eq!(
                    r.load(Ordering::SeqCst),
                    expect,
                    "task {i} (panic at {pos}, {threads} threads)"
                );
            }
        }
    }
}

#[test]
fn random_dag_failure_cancels_exact_transitive_closure() {
    // A job returning Err in a random DAG: the cancelled set reported by
    // the pool must equal the true transitive closure of the failed task,
    // and everything outside it must have run exactly once.
    for seed in 0..4u64 {
        let g = random_dag(seed + 40, 5, 6, 0.35);
        let n = g.len();
        let fail_at = (7 * (seed as usize + 1)) % n;
        let mut expected = vec![false; n];
        let mut stack: Vec<usize> = g.successors(fail_at).to_vec();
        while let Some(s) = stack.pop() {
            if !expected[s] {
                expected[s] = true;
                stack.extend(g.successors(s).iter().copied());
            }
        }
        let ran: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let jobs: TaskGraph<Job<'_>> = g.map_ref(|id, _| {
            let ran = &ran;
            if id == fail_at {
                Box::new(move || {
                    ran[id].fetch_add(1, Ordering::SeqCst);
                    Err(TaskFailure::new("synthetic breakdown"))
                }) as Job<'_>
            } else {
                job(move || {
                    ran[id].fetch_add(1, Ordering::SeqCst);
                })
            }
        });
        let err = try_run_graph(jobs, 4).expect_err("failure must surface");
        assert_eq!(err.task, fail_at, "seed {seed}");
        assert!(!err.panicked);
        assert!(err.message.contains("synthetic breakdown"));
        let expected_ids: Vec<usize> = (0..n).filter(|&i| expected[i]).collect();
        assert_eq!(err.cancelled, expected_ids, "seed {seed}");
        for i in 0..n {
            let runs = ran[i].load(Ordering::SeqCst);
            if expected[i] {
                assert_eq!(runs, 0, "cancelled task {i} ran (seed {seed})");
            } else {
                assert_eq!(runs, 1, "task {i} did not run exactly once (seed {seed})");
            }
        }
    }
}

#[test]
fn work_stealing_fault_injection_does_not_hang() {
    use std::time::Duration;
    for &threads in &[1usize, 4, 16] {
        let mut g: TaskGraph<Job<'_>> = TaskGraph::new();
        let ids: Vec<_> = (0..32)
            .map(|i| {
                let meta = TaskMeta::new(TaskLabel::new(TaskKind::Panel, i, 0, 0), 1.0);
                g.add_task(meta, job(|| {}))
            })
            .collect();
        for pair in ids.windows(2) {
            g.add_dep(pair[0], pair[1]);
        }
        // Delay an early task (stressing the idle/steal loop), then fail a
        // later one.
        let plan = FaultPlan::new()
            .delay_nth(1, Duration::from_millis(5), |l| l.step == 3)
            .fail_nth(1, |l| l.step == 10);
        let err = try_run_graph_stealing_with_faults(g, threads, &plan)
            .expect_err("injected failure must surface");
        assert_eq!(err.task, ids[10]);
        assert_eq!(err.label.step, 10);
        assert!(!err.panicked);
        assert_eq!(err.cancelled.len(), 21, "{threads} threads");
    }
}

/// Builds a random task set with block-granular footprints declared through
/// [`BlockTracker`]; returns the graph plus the retained [`AccessMap`].
/// Deterministic in `seed`, so calling twice reproduces the same graph.
fn random_block_graph(
    seed: u64,
    tasks: usize,
    grid: usize,
) -> (TaskGraph<usize>, ca_factor::sched::AccessMap) {
    use ca_factor::sched::BlockTracker;
    let mut rng = ca_factor::matrix::seeded_rng(seed);
    let mut g: TaskGraph<usize> = TaskGraph::new();
    let mut tracker = BlockTracker::new(grid, grid);
    let region = |rng: &mut rand::rngs::StdRng| {
        let r0 = rng.gen_range(0..grid);
        let r1 = rng.gen_range(r0..grid) + 1;
        let c0 = rng.gen_range(0..grid);
        let c1 = rng.gen_range(c0..grid) + 1;
        (r0..r1, c0..c1)
    };
    for t in 0..tasks {
        let meta = TaskMeta::new(TaskLabel::new(TaskKind::Other, t, 0, 0), 1.0);
        let id = g.add_task(meta, t);
        if rng.gen_bool(0.7) {
            let (rows, cols) = region(&mut rng);
            tracker.read(&mut g, id, rows, cols);
        }
        let (rows, cols) = region(&mut rng);
        tracker.write(&mut g, id, rows, cols);
    }
    (g, tracker.into_access_map())
}

/// DFS reachability over the live graph (post edge removal).
fn path_exists(g: &TaskGraph<usize>, from: usize, to: usize) -> bool {
    let mut seen = vec![false; g.len()];
    let mut stack = vec![from];
    while let Some(t) = stack.pop() {
        if t == to {
            return true;
        }
        if !seen[t] {
            seen[t] = true;
            stack.extend(g.successors(t).iter().copied());
        }
    }
    false
}

#[test]
fn verifier_accepts_tracker_built_random_graphs() {
    // Property: any graph whose edges come from BlockTracker declarations is
    // sound by construction — the verifier must accept it.
    for seed in 0..8u64 {
        let (g, access) = random_block_graph(seed, 40, 6);
        let report = ca_factor::sched::verify_graph(&g, &access)
            .unwrap_or_else(|e| panic!("seed {seed}: tracker-built graph rejected: {e}"));
        assert_eq!(report.tasks, g.len());
    }
}

#[test]
#[allow(clippy::disallowed_methods)] // probing the verifier with raw edge deletions
fn verifier_rejects_edge_deletions_that_break_ordering() {
    // Property: removing a tracker-created edge (a, b) leaves the graph
    // sound iff an alternate a→b path remains (the edge was transitively
    // redundant). The verifier's verdict must match exact reachability, and
    // a rejection must name a genuinely unordered pair.
    use ca_factor::sched::SoundnessError;
    let mut rejected = 0usize;
    for seed in 0..6u64 {
        let (g0, _) = random_block_graph(seed, 30, 5);
        let edges: Vec<(usize, usize)> = (0..g0.len())
            .flat_map(|i| g0.successors(i).iter().map(move |&s| (i, s)))
            .collect();
        for (idx, &(a, b)) in edges.iter().enumerate() {
            if idx % 3 != 0 {
                continue; // sample a third of the edges per seed
            }
            let (mut g, access) = random_block_graph(seed, 30, 5);
            assert!(g.remove_dep(a, b), "edge {a}->{b} must exist");
            let reachable = path_exists(&g, a, b);
            match ca_factor::sched::verify_graph(&g, &access) {
                Ok(_) => assert!(
                    reachable,
                    "seed {seed}: accepted graph with unordered pair {a}->{b}"
                ),
                Err(SoundnessError::UnorderedConflict { first, second, .. }) => {
                    assert!(
                        !path_exists(&g, first, second) && !path_exists(&g, second, first),
                        "seed {seed}: reported pair {first}/{second} is actually ordered"
                    );
                    rejected += 1;
                }
                Err(e) => panic!("seed {seed}: unexpected error class: {e}"),
            }
        }
    }
    assert!(rejected > 0, "no edge deletion produced a rejection");
}

#[test]
fn multifrontier_failed_job_cancels_only_its_own_tasks() {
    // Four chain jobs on a shared MultiFrontier pool; one job's middle task
    // fails. The failure must cancel exactly that job's downstream tasks,
    // every other job must complete with its exact checksum, and the pool
    // must stay live for later submissions.
    use ca_factor::sched::{dyn_job, DynJob, JobOptions, JobOutcome, MultiFrontier};
    use std::sync::Arc;
    use std::time::Duration;

    const JOBS: usize = 4;
    const CHAIN: usize = 12;
    const FAIL_JOB: usize = 1;
    const FAIL_AT: usize = 5;
    let term = |t: usize| (t as u64 + 1) * (t as u64 + 1);

    let frontier = MultiFrontier::new(3);
    let accs: Vec<Arc<AtomicU64>> = (0..JOBS).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut watches = Vec::new();
    for (jidx, acc) in accs.iter().enumerate() {
        let mut g: ca_factor::sched::TaskGraph<DynJob> = ca_factor::sched::TaskGraph::new();
        let mut prev = None;
        for t in 0..CHAIN {
            let meta = TaskMeta::new(TaskLabel::new(TaskKind::Update, t, jidx, 0), 1.0);
            let acc = acc.clone();
            let body: DynJob = if jidx == FAIL_JOB && t == FAIL_AT {
                Box::new(move || Err(TaskFailure::new("synthetic mid-chain fault")))
            } else {
                dyn_job(move || {
                    acc.fetch_add(term(t), Ordering::SeqCst);
                })
            };
            let id = g.add_task(meta, body);
            if let Some(p) = prev {
                g.add_dep(p, id);
            }
            prev = Some(id);
        }
        watches.push(frontier.submit(g, JobOptions::default()));
    }

    let full: u64 = (0..CHAIN).map(term).sum();
    let prefix: u64 = (0..FAIL_AT).map(term).sum();
    for (jidx, (_, watch)) in watches.iter().enumerate() {
        let report = watch
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|| panic!("job {jidx} stalled"));
        match (&report.outcome, jidx == FAIL_JOB) {
            (JobOutcome::Failed(err), true) => {
                assert_eq!(err.label.step, FAIL_AT);
                assert!(err.message.contains("synthetic mid-chain fault"));
                assert_eq!(report.tasks_cancelled, CHAIN - FAIL_AT - 1);
                assert_eq!(accs[jidx].load(Ordering::SeqCst), prefix);
            }
            (JobOutcome::Completed, false) => {
                assert_eq!(
                    accs[jidx].load(Ordering::SeqCst),
                    full,
                    "job {jidx} checksum corrupted by a peer's failure"
                );
            }
            (outcome, _) => panic!("job {jidx}: unexpected outcome {outcome:?}"),
        }
    }

    // Post-failure liveness: the pool still serves fresh work promptly.
    let done = Arc::new(AtomicUsize::new(0));
    let mut g: ca_factor::sched::TaskGraph<DynJob> = ca_factor::sched::TaskGraph::new();
    let done2 = done.clone();
    g.add_task(
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), 1.0),
        dyn_job(move || {
            done2.fetch_add(1, Ordering::SeqCst);
        }),
    );
    let (_, watch) = frontier.submit(g, JobOptions::default());
    let report = watch
        .wait_timeout(Duration::from_secs(30))
        .expect("pool must stay live after a job failure");
    assert!(report.outcome.is_completed());
    assert_eq!(done.load(Ordering::SeqCst), 1);
    frontier.shutdown();
}

#[test]
fn multifrontier_chaos_exhaustion_is_isolated_from_recovering_peers() {
    // One job runs under a doomed chaos plan (every Update attempt fails,
    // one replay): its first task exhausts the budget and the job fails
    // alone. Two peers run under targeted fail/panic injection with the
    // default replay budget: both must recover and produce their exact
    // checksums — per-job recovery state (plans, counters, budgets) must
    // never bleed across jobs sharing the worker pool.
    use ca_factor::matrix::{Matrix, SharedMatrix};
    use ca_factor::sched::{
        retrying_dyn_job, ChaosPlan, ChaosProfile, DynJob, JobOptions, JobOutcome,
        MultiFrontier, RecoveryCounters, RetryPolicy, WriteSet,
    };
    use std::sync::Arc;
    use std::time::Duration;

    const JOBS: usize = 3;
    const CHAIN: usize = 10;
    const DOOMED: usize = 0;
    let term = |t: usize| (t as u64 + 1).pow(3);

    let frontier = MultiFrontier::new(3);
    // Substrate for the retry wrappers; these chain tasks pass data through
    // accumulators (empty write-sets), like Panel tasks and their workspace.
    let shared = Arc::new(SharedMatrix::new(Matrix::zeros(1, 1)));
    let mut watches = Vec::new();
    let mut accs = Vec::new();
    let mut counters_by_job = Vec::new();
    for jidx in 0..JOBS {
        let acc = Arc::new(AtomicU64::new(0));
        accs.push(acc.clone());
        let doomed = jidx == DOOMED;
        let plan = Arc::new(if doomed {
            ChaosPlan::quiet(0).with_class_profile(
                TaskKind::Update,
                ChaosProfile::quiet().with_fail_rate(1.0),
            )
        } else {
            ChaosPlan::quiet(jidx as u64)
                .fail_nth(1, |l| l.kind == TaskKind::Update && l.step == 2)
                .panic_nth(1, |l| l.kind == TaskKind::Update && l.step == 7)
        });
        let policy = if doomed {
            RetryPolicy::default().with_max_retries(1)
        } else {
            RetryPolicy::default()
        };
        let counters = Arc::new(RecoveryCounters::new());
        counters_by_job.push(counters.clone());
        let mut g: ca_factor::sched::TaskGraph<DynJob> = ca_factor::sched::TaskGraph::new();
        let mut prev = None;
        for t in 0..CHAIN {
            let label = TaskLabel::new(TaskKind::Update, t, jidx, 0);
            let acc = acc.clone();
            let body = retrying_dyn_job(
                label,
                WriteSet::default(),
                shared.clone(),
                policy,
                plan.clone(),
                counters.clone(),
                move || {
                    acc.fetch_add(term(t), Ordering::SeqCst);
                },
            );
            let id = g.add_task(TaskMeta::new(label, 1.0), body);
            if let Some(p) = prev {
                g.add_dep(p, id);
            }
            prev = Some(id);
        }
        watches.push(frontier.submit(g, JobOptions::default()));
    }

    let full: u64 = (0..CHAIN).map(term).sum();
    for (jidx, (_, watch)) in watches.iter().enumerate() {
        let report = watch
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|| panic!("job {jidx} stalled"));
        let s = counters_by_job[jidx].snapshot();
        if jidx == DOOMED {
            match &report.outcome {
                JobOutcome::Failed(err) => {
                    assert_eq!(err.label.step, 0, "first task exhausts first");
                    assert!(err.message.contains("chaos: injected failure"));
                }
                outcome => panic!("doomed job: unexpected outcome {outcome:?}"),
            }
            assert_eq!(report.tasks_cancelled, CHAIN - 1);
            assert_eq!(accs[jidx].load(Ordering::SeqCst), 0, "no doomed body may run");
            assert!(s.exhausted_tasks >= 1, "{s:?}");
        } else {
            assert!(report.outcome.is_completed(), "job {jidx}: {:?}", report.outcome);
            assert_eq!(
                accs[jidx].load(Ordering::SeqCst),
                full,
                "job {jidx} must recover to its exact checksum"
            );
            assert!(s.injected_failures >= 1, "job {jidx}: {s:?}");
            assert!(s.injected_panics >= 1, "job {jidx}: {s:?}");
            assert!(s.recovered_tasks >= 2, "job {jidx}: {s:?}");
            assert_eq!(s.exhausted_tasks, 0, "job {jidx}: {s:?}");
        }
    }
    frontier.shutdown();
}

#[test]
fn repeated_runs_of_calu_are_stable_under_contention() {
    // Run the same parallel factorization many times with more threads than
    // cores; results must be identical every time (no data races).
    use ca_factor::prelude::*;
    let a = ca_factor::matrix::random_uniform(120, 120, &mut ca_factor::matrix::seeded_rng(5));
    let p = CaParams::new(20, 4, 8);
    let reference = calu(a.clone(), &p);
    for _ in 0..5 {
        let f = calu(a.clone(), &p);
        assert_eq!(f.lu.as_slice(), reference.lu.as_slice());
        assert_eq!(f.pivots.ipiv, reference.pivots.ipiv);
    }
}
