//! Recovery-tier integration tests (DESIGN.md §12).
//!
//! The central property: a task that fails, panics, or is delayed mid-graph
//! and is replayed from its write-set snapshot leaves **no trace** — the
//! recovered factorization is bitwise identical to a fault-free run of the
//! same executor. This holds across the priority-queue pool, the
//! work-stealing pool, and the checked (shadow-audited) executor, because
//! recovery wraps task bodies below the scheduler layer.
//!
//! Silent corruption is the one fault replay cannot see; the random-vector
//! integrity probe must catch it after the fact.

use ca_factor::core::{
    try_calu, try_calu_recovering, try_calu_recovering_checked, try_caqr,
    try_caqr_recovering, try_caqr_recovering_checked, FactorError,
};
use ca_factor::matrix::{random_uniform, seeded_rng};
use ca_factor::prelude::CaParams;
use ca_factor::sched::{ChaosPlan, ChaosProfile, RecoveryCounters, RetryPolicy, TaskKind};
use std::time::Duration;

fn params(threads: usize) -> CaParams {
    CaParams::new(16, 4, threads)
}

/// One deterministic injection per kind: fail the first Update, panic the
/// second Panel task, delay the first LBlock. Every one must be absorbed
/// by snapshot/replay with a bitwise-clean result.
fn targeted_plan(seed: u64) -> ChaosPlan {
    ChaosPlan::quiet(seed)
        .fail_nth(1, |l| l.kind == TaskKind::Update)
        .panic_nth(2, |l| l.kind == TaskKind::Panel)
        .delay_nth(1, Duration::from_micros(50), |l| l.kind == TaskKind::LBlock)
}

#[test]
fn calu_replay_is_bitwise_identical_across_executors() {
    let a = random_uniform(96, 96, &mut seeded_rng(0xFA01));
    for threads in [1, 3] {
        for stealing in [false, true] {
            let mut p = params(threads);
            if stealing {
                p = p.with_work_stealing();
            }
            let reference = try_calu(a.clone(), &p).expect("fault-free run");
            let counters = RecoveryCounters::new();
            let (f, _) = try_calu_recovering(
                a.clone(),
                &p,
                RetryPolicy::default(),
                &targeted_plan(1),
                &counters,
            )
            .expect("recovered run");
            assert_eq!(
                f.lu.as_slice(),
                reference.lu.as_slice(),
                "threads={threads} stealing={stealing}: replayed factors must be bitwise \
                 identical to fault-free"
            );
            assert_eq!(f.pivots.ipiv, reference.pivots.ipiv);
            let s = counters.snapshot();
            assert!(s.injected_failures >= 1, "fail rule must have fired: {s:?}");
            assert!(s.injected_panics >= 1, "panic rule must have fired: {s:?}");
            assert!(s.recovered_tasks >= 2, "both faulted tasks must recover: {s:?}");
            // Update tasks carry matrix write-sets and restore on failure;
            // Panel tasks write the tournament workspace (empty matrix
            // write-set), so their replay relies on injection-before-body
            // and counts no restore.
            assert!(s.restores >= 1, "write-set restores must be counted: {s:?}");
            assert_eq!(s.exhausted_tasks, 0);
        }
    }
}

#[test]
fn caqr_replay_is_bitwise_identical_across_executors() {
    let a = random_uniform(96, 64, &mut seeded_rng(0xFA02));
    for threads in [1, 3] {
        for stealing in [false, true] {
            let mut p = params(threads);
            if stealing {
                p = p.with_work_stealing();
            }
            let reference = try_caqr(a.clone(), &p).expect("fault-free run");
            let counters = RecoveryCounters::new();
            let (f, _) = try_caqr_recovering(
                a.clone(),
                &p,
                RetryPolicy::default(),
                &targeted_plan(2),
                &counters,
            )
            .expect("recovered run");
            assert_eq!(
                f.a.as_slice(),
                reference.a.as_slice(),
                "threads={threads} stealing={stealing}: replayed QR must be bitwise \
                 identical to fault-free"
            );
            let s = counters.snapshot();
            assert!(s.recovered_tasks >= 1, "faulted tasks must recover: {s:?}");
            assert_eq!(s.exhausted_tasks, 0);
        }
    }
}

#[test]
fn checked_executor_accepts_recovered_runs() {
    // The shadow-lease auditor sees every element access of every replay;
    // snapshot capture/restore must stay inside declared write footprints
    // or this run would abort with a soundness violation.
    let a = random_uniform(80, 80, &mut seeded_rng(0xFA03));
    let p = params(2);
    let reference = try_calu(a.clone(), &p).expect("fault-free run");
    let counters = RecoveryCounters::new();
    let (f, _) = try_calu_recovering_checked(
        a.clone(),
        &p,
        RetryPolicy::default(),
        &targeted_plan(3),
        &counters,
    )
    .expect("checked recovered run");
    assert_eq!(f.lu.as_slice(), reference.lu.as_slice());
    assert!(counters.snapshot().recovered_tasks >= 1);

    let aq = random_uniform(80, 48, &mut seeded_rng(0xFA04));
    let qr_ref = try_caqr(aq.clone(), &p).expect("fault-free run");
    let cq = RecoveryCounters::new();
    let (fq, _) = try_caqr_recovering_checked(
        aq.clone(),
        &p,
        RetryPolicy::default(),
        &targeted_plan(4),
        &cq,
    )
    .expect("checked recovered QR run");
    assert_eq!(fq.a.as_slice(), qr_ref.a.as_slice());
}

#[test]
fn profile_rate_chaos_recovers_under_both_pools() {
    // Rate-based injection at an aggressive 5% fail / 2% panic across every
    // task class: replay must still converge to the fault-free answer.
    let a = random_uniform(96, 96, &mut seeded_rng(0xFA05));
    let profile = ChaosProfile::quiet().with_fail_rate(0.05).with_panic_rate(0.02);
    for stealing in [false, true] {
        let mut p = params(3);
        if stealing {
            p = p.with_work_stealing();
        }
        let reference = try_calu(a.clone(), &p).expect("fault-free run");
        let counters = RecoveryCounters::new();
        let plan = ChaosPlan::with_profile(0xD2, profile);
        let (f, _) =
            try_calu_recovering(a.clone(), &p, RetryPolicy::default(), &plan, &counters)
                .expect("recovered run");
        assert_eq!(f.lu.as_slice(), reference.lu.as_slice());
        let s = counters.snapshot();
        assert!(
            s.injected_failures + s.injected_panics > 0,
            "5%/2% rates over a 6-panel graph must inject something: {s:?}"
        );
    }
}

#[test]
fn exhausted_retry_budget_fails_cleanly() {
    // Every Update attempt fails (rate 1.0 for the class): the first Update
    // to run burns its whole replay budget and must surface TaskFailed —
    // no hang, no poisoned factors.
    let a = random_uniform(64, 64, &mut seeded_rng(0xFA06));
    let p = params(2);
    let counters = RecoveryCounters::new();
    let plan = ChaosPlan::quiet(0)
        .with_class_profile(TaskKind::Update, ChaosProfile::quiet().with_fail_rate(1.0));
    let r = try_calu_recovering(
        a,
        &p,
        RetryPolicy::default().with_max_retries(2),
        &plan,
        &counters,
    );
    match r {
        Err(FactorError::TaskFailed { .. }) => {}
        other => panic!("expected task failure after exhaustion, got {other:?}"),
    }
    let s = counters.snapshot();
    assert!(s.exhausted_tasks >= 1, "{s:?}");
    assert!(s.injected_failures >= 3, "all three attempts were injected: {s:?}");
}

#[test]
fn integrity_probe_catches_injected_corruption() {
    // Silent corruption of one Update output: replay never fires (the task
    // "succeeds"), factorization completes, and only the probe can tell.
    let a = random_uniform(96, 96, &mut seeded_rng(0xFA07));
    let p = params(2);
    let counters = RecoveryCounters::new();
    // Target an Update: those carry matrix write-sets, and later tasks
    // transform the corrupted block in place (they never recompute it from
    // pristine data), so the corruption propagates into the final factors.
    let plan = ChaosPlan::quiet(0).corrupt_nth(1, |l| l.kind == TaskKind::Update);
    let (f, _) = try_calu_recovering(a.clone(), &p, RetryPolicy::default(), &plan, &counters)
        .expect("corrupted run still completes");
    assert_eq!(counters.snapshot().injected_corruptions, 1);
    match f.verify_integrity(&a, 42) {
        Err(FactorError::Corrupted { residual, threshold }) => {
            assert!(residual > threshold || !residual.is_finite());
        }
        other => panic!("probe must flag corrupted factors, got {other:?}"),
    }

    // The same matrix factored honestly passes the probe.
    let clean = try_calu(a.clone(), &p).expect("honest run");
    clean.verify_integrity(&a, 42).expect("honest factors pass");
}
