//! Numerical-breakdown recovery tests of the fallible factorization APIs:
//! NaN/Inf pre-scan, exact-singularity reporting, the GEPP fallback on
//! tournament instability, and worker-failure surfacing via fault injection.

use ca_factor::core::{try_calu_seq, try_calu_with_faults, DEFAULT_GROWTH_LIMIT};
use ca_factor::matrix::{random_uniform, seeded_rng};
use ca_factor::prelude::*;
use ca_factor::sched::FaultPlan;

#[test]
fn nan_input_is_rejected_before_factoring() {
    let mut a = random_uniform(40, 40, &mut seeded_rng(1));
    a[(3, 5)] = f64::NAN;
    let p = CaParams::new(10, 4, 2);
    let err = try_calu(a.clone(), &p).expect_err("NaN must be rejected");
    assert_eq!(err, FactorError::NonFiniteInput { row: 3, col: 5 });

    a[(3, 5)] = f64::INFINITY;
    assert!(matches!(
        try_caqr(a.clone(), &p),
        Err(FactorError::NonFiniteInput { row: 3, col: 5 })
    ));
    assert!(matches!(
        try_tslu_factor(a.clone(), 4, &p),
        Err(FactorError::NonFiniteInput { .. })
    ));
    assert!(matches!(
        try_tsqr_factor(a, 4, &p),
        Err(FactorError::NonFiniteInput { .. })
    ));
}

#[test]
fn exactly_singular_matrix_returns_zero_pivot() {
    let n = 24;
    let mut a = random_uniform(n, n, &mut seeded_rng(2));
    for i in 0..n {
        a[(i, 7)] = 0.0;
    }
    let p = CaParams::new(6, 2, 2);
    let err = try_calu(a.clone(), &p).expect_err("singular matrix must error");
    assert!(matches!(err, FactorError::ZeroPivot { .. }), "{err:?}");
    // Sequential path agrees.
    let err_seq = try_calu_seq(a.clone(), &p).expect_err("singular matrix must error");
    assert_eq!(err, err_seq);
    // The infallible API still returns factors with the breakdown recorded
    // (LAPACK `info` semantics are preserved).
    let f = calu(a, &p);
    assert!(f.breakdown.is_some());
}

#[test]
fn rank_deficient_tall_panel_zero_pivot_in_tslu() {
    // Rank-1 tall-and-skinny matrix: the tournament winner block is
    // exactly singular.
    let a = Matrix::from_fn(64, 4, |i, j| ((i % 2) * (j + 1)) as f64);
    let err = try_tslu_factor(a, 4, &CaParams::new(4, 4, 1)).expect_err("rank-1 must error");
    assert!(matches!(err, FactorError::ZeroPivot { .. }), "{err:?}");
}

#[test]
fn gepp_fallback_keeps_factorization_correct() {
    // A zero growth limit forces the fallback on every panel: each panel is
    // then refactored with plain partial pivoting over all active rows,
    // which must reproduce GEPP's pivots exactly and keep PA = LU accurate.
    let n = 48;
    let a0 = random_uniform(n, n, &mut seeded_rng(3));
    let p = CaParams::new(12, 4, 2).with_growth_limit(0.0);

    let f = calu(a0.clone(), &p);
    let npanels = ca_factor::core::num_panels(n, n, p.b);
    assert_eq!(f.stats.fallback_panels.len(), npanels, "every panel must fall back");
    assert!(f.stats.max_growth() > 0.0);
    let res = f.residual(&a0);
    assert!(res < 1e-13, "fallback residual {res}");

    // Fallback selection == partial pivoting: pivots match plain GEPP.
    let mut r = a0.clone();
    let info = ca_factor::kernels::getf2(r.view_mut());
    assert_eq!(f.pivots.ipiv, info.pivots.ipiv, "fallback must equal GEPP pivots");

    // Parallel and sequential fallback paths agree bitwise.
    let fs = calu_seq_factor(a0, &p);
    assert_eq!(f.lu.as_slice(), fs.lu.as_slice());
    assert_eq!(fs.stats.fallback_panels, f.stats.fallback_panels);
}

#[test]
fn moderate_growth_never_triggers_fallback_or_error() {
    // Random matrices sit far below the default ceiling: the try_ API must
    // return clean factors with no fallback recorded.
    let a0 = random_uniform(60, 60, &mut seeded_rng(4));
    let f = try_calu(a0.clone(), &CaParams::new(15, 4, 2)).expect("well-conditioned input");
    assert!(f.stats.fallback_panels.is_empty());
    assert!(f.stats.max_growth() < DEFAULT_GROWTH_LIMIT);
    assert!(f.residual(&a0) < 1e-13);
}

#[test]
fn growth_explosion_is_reported_when_even_gepp_exceeds_the_limit() {
    // With an impossible limit the GEPP refactorization still "exceeds" it,
    // so the try_ API must refuse with the panel's column and growth.
    let a0 = random_uniform(30, 30, &mut seeded_rng(5));
    let p = CaParams::new(10, 2, 1).with_growth_limit(0.0);
    let err = try_calu(a0, &p).expect_err("zero limit must be unreachable");
    match err {
        FactorError::GrowthExplosion { col, growth } => {
            assert_eq!(col, 0);
            assert!(growth > 0.0);
        }
        other => panic!("expected GrowthExplosion, got {other:?}"),
    }
}

#[test]
fn injected_task_failure_surfaces_as_task_failed() {
    // Panic the second panel-kind task mid-factorization: the scheduler
    // cancels the transitive successors and the try_ API reports which
    // task died instead of hanging or panicking.
    let a = random_uniform(96, 96, &mut seeded_rng(6));
    let p = CaParams::new(16, 4, 4);
    let faults = FaultPlan::new().panic_nth(2, |l| l.kind == ca_factor::sched::TaskKind::Panel);
    let err = try_calu_with_faults(a, &p, &faults).expect_err("injected panic must surface");
    match err {
        FactorError::TaskFailed { label, message } => {
            assert!(label.starts_with('P'), "label {label}");
            assert!(message.contains("injected panic"), "message {message}");
        }
        other => panic!("expected TaskFailed, got {other:?}"),
    }
}

#[test]
fn try_solve_refuses_singular_factors_and_bad_rhs() {
    let n = 16;
    let mut a = random_uniform(n, n, &mut seeded_rng(7));
    for i in 0..n {
        a[(i, 4)] = 0.0;
    }
    let f = calu_seq_factor(a, &CaParams::new(4, 2, 1));
    let rhs = Matrix::from_fn(n, 1, |_, _| 1.0);
    assert!(matches!(f.try_solve(&rhs), Err(FactorError::ZeroPivot { .. })));

    let good = random_uniform(n, n, &mut seeded_rng(8));
    let f = calu_seq_factor(good.clone(), &CaParams::new(4, 2, 1));
    let mut bad_rhs = rhs.clone();
    bad_rhs[(2, 0)] = f64::NAN;
    assert!(matches!(
        f.try_solve(&bad_rhs),
        Err(FactorError::NonFiniteInput { row: 2, col: 0 })
    ));
    let x = f.try_solve(&good.matmul(&rhs)).expect("clean solve");
    let err = ca_factor::matrix::norm_max(x.sub_matrix(&rhs).view());
    assert!(err < 1e-9, "solve error {err}");
}
