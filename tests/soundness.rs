//! End-to-end soundness tests: the static DAG verifier over the real
//! CALU/CAQR builders (paper shapes × reduction trees), seeded-violation
//! detection on a real factorization graph, and checked-execution
//! regression runs in which every element access is audited against the
//! builders' declared footprints.

use ca_factor::core::{
    calu_task_graph_with_access, try_calu_checked, try_caqr_checked, verify_calu, verify_caqr,
    CaParams, TreeShape,
};
use ca_factor::matrix::{random_uniform, seeded_rng};
use ca_factor::sched::SoundnessError;

fn params(b: usize, tree: TreeShape) -> CaParams {
    let mut p = CaParams::new(b, 4, 4);
    p.tree = tree;
    p
}

#[test]
fn static_verifier_accepts_calu_across_shapes_and_trees() {
    // Square, tall-skinny, and ragged shapes — the paper's m=n and TSLU
    // regimes — under both reduction trees.
    for &(m, n, b) in &[(192usize, 192usize, 32usize), (400, 40, 20), (250, 90, 30)] {
        for tree in [TreeShape::Binary, TreeShape::Flat] {
            let p = params(b, tree);
            let report = verify_calu(m, n, &p)
                .unwrap_or_else(|e| panic!("CALU {m}x{n} {tree:?} unsound: {e}"));
            assert!(report.conflict_pairs > 0, "CALU {m}x{n}: no conflicts proven ordered");
        }
    }
}

#[test]
fn static_verifier_accepts_caqr_across_shapes_and_trees() {
    for &(m, n, b) in &[(192usize, 192usize, 32usize), (400, 40, 20), (250, 90, 30)] {
        for tree in [TreeShape::Binary, TreeShape::Flat] {
            let p = params(b, tree);
            let report = verify_caqr(m, n, &p)
                .unwrap_or_else(|e| panic!("CAQR {m}x{n} {tree:?} unsound: {e}"));
            assert!(report.conflict_pairs > 0, "CAQR {m}x{n}: no conflicts proven ordered");
        }
    }
}

#[test]
#[allow(clippy::disallowed_methods)] // probing the verifier with raw edge deletions
fn removing_a_calu_edge_is_caught_and_names_the_conflicting_tasks() {
    // Delete each dependency edge of a real CALU graph in turn: the
    // verifier must reject every deletion that actually breaks the ordering
    // of a conflicting pair (some edges are transitively redundant), and
    // each rejection must name two real tasks by label.
    let p = params(32, TreeShape::Binary);
    let (g0, _) = calu_task_graph_with_access(96, 96, &p);
    let edges: Vec<(usize, usize)> = (0..g0.len())
        .flat_map(|i| g0.successors(i).iter().map(move |&s| (i, s)))
        .collect();
    let mut rejected = 0usize;
    for &(a, b) in &edges {
        let (mut g, access) = calu_task_graph_with_access(96, 96, &p);
        assert!(g.remove_dep(a, b));
        match ca_factor::sched::verify_graph(&g, &access) {
            Ok(_) => {}
            Err(SoundnessError::UnorderedConflict { first, second, first_label, second_label, .. }) => {
                assert!(first < second);
                let (fl, sl) = (first_label.to_string(), second_label.to_string());
                assert!(
                    fl.contains('[') && sl.contains('['),
                    "violation must name both task labels, got {fl} / {sl}"
                );
                rejected += 1;
            }
            Err(e) => panic!("unexpected error class for edge {a}->{b}: {e}"),
        }
    }
    assert!(rejected > 0, "no edge deletion was caught over {} edges", edges.len());
}

#[test]
fn checked_calu_reports_zero_violations_on_paper_shapes() {
    // Checked execution audits every SharedMatrix element access against
    // the declared footprints; a clean CALU/CAQR must produce zero
    // violations on both schedulers, square and tall-skinny.
    for &(m, n, b) in &[(192usize, 192usize, 32usize), (400, 40, 20)] {
        for ws in [false, true] {
            let mut p = params(b, TreeShape::Binary);
            if ws {
                p = p.with_work_stealing();
            }
            let a = random_uniform(m, n, &mut seeded_rng(7));
            let (f, stats) = try_calu_checked(a.clone(), &p)
                .unwrap_or_else(|e| panic!("checked CALU {m}x{n} ws={ws}: {e}"));
            assert!(stats.tasks > 0);
            assert!(f.residual(&a) < 1e-12, "checked CALU {m}x{n} residual off");
        }
    }
}

#[test]
fn checked_caqr_reports_zero_violations_on_paper_shapes() {
    for &(m, n, b) in &[(192usize, 192usize, 32usize), (400, 40, 20)] {
        for tree in [TreeShape::Binary, TreeShape::Flat] {
            let p = params(b, tree);
            let a = random_uniform(m, n, &mut seeded_rng(11));
            let (f, stats) = try_caqr_checked(a.clone(), &p)
                .unwrap_or_else(|e| panic!("checked CAQR {m}x{n} {tree:?}: {e}"));
            assert!(stats.tasks > 0);
            assert!(f.residual(&a) < 1e-12, "checked CAQR {m}x{n} residual off");
        }
    }
}

#[test]
fn checked_results_match_unchecked_bitwise() {
    // The shadow registry must be observation-only: checked and unchecked
    // runs of the same factorization produce identical factors.
    let p = params(24, TreeShape::Binary);
    let a = random_uniform(120, 120, &mut seeded_rng(3));
    let (fc, _) = try_calu_checked(a.clone(), &p).expect("checked");
    let fu = ca_factor::core::try_calu(a, &p).expect("unchecked");
    assert_eq!(fc.lu.as_slice(), fu.lu.as_slice());
    assert_eq!(fc.pivots.ipiv, fu.pivots.ipiv);
}

#[test]
fn rect_granularity_accepts_calu_and_caqr_across_shapes_and_trees() {
    // Element-exact enumeration must agree with the block view on graphs
    // whose footprints never split a tile.
    use ca_factor::core::{verify_calu_with, verify_caqr_with};
    let opts = ca_factor::sched::VerifyOptions {
        granularity: ca_factor::sched::Granularity::Rect,
        ..Default::default()
    };
    for &(m, n, b) in &[(192usize, 192usize, 32usize), (400, 40, 20), (250, 90, 30)] {
        for tree in [TreeShape::Binary, TreeShape::Flat] {
            let p = params(b, tree);
            let report = verify_calu_with(m, n, &p, &opts)
                .unwrap_or_else(|e| panic!("CALU {m}x{n} {tree:?} unsound at rect: {e}"));
            assert!(report.conflict_pairs > 0, "CALU {m}x{n}: no rect conflicts proven");
            let report = verify_caqr_with(m, n, &p, &opts)
                .unwrap_or_else(|e| panic!("CAQR {m}x{n} {tree:?} unsound at rect: {e}"));
            assert!(report.conflict_pairs > 0, "CAQR {m}x{n}: no rect conflicts proven");
        }
    }
}

#[test]
fn calu_and_caqr_graphs_are_conflict_minimal() {
    // The minimality half of the analysis: no edge of a production graph is
    // unjustified by a footprint conflict, and none is transitively
    // redundant (the builders reduce their graphs before returning).
    use ca_factor::core::{verify_calu_with, verify_caqr_with};
    let opts = ca_factor::sched::VerifyOptions {
        granularity: ca_factor::sched::Granularity::Rect,
        lint_edges: true,
    };
    for &(m, n, b) in &[(192usize, 192usize, 32usize), (256, 96, 32)] {
        for tree in [TreeShape::Binary, TreeShape::Flat] {
            let p = params(b, tree);
            for (name, report) in [
                ("CALU", verify_calu_with(m, n, &p, &opts).expect("sound")),
                ("CAQR", verify_caqr_with(m, n, &p, &opts).expect("sound")),
            ] {
                let lint = report.lint.as_ref().expect("lint requested");
                assert_eq!(
                    lint.minimality_findings(),
                    0,
                    "{name} {m}x{n} {tree:?}: {} unnecessary + {} redundant edge(s)",
                    lint.unnecessary_edges.len(),
                    lint.redundant_edges.len()
                );
            }
        }
    }
}

#[test]
fn rect_granularity_covers_the_tiled_baselines() {
    // The tiled PLASMA-style baselines alias the diagonal tile at sub-tile
    // granularity — unverifiable before the region algebra, provable now.
    let opts = ca_factor::sched::VerifyOptions {
        granularity: ca_factor::sched::Granularity::Rect,
        lint_edges: true,
    };
    let (g, access) = ca_factor::baselines::tiled_lu_task_graph_with_access(96, 96, 16);
    let report = ca_factor::sched::verify_graph_with(&g, &access, &opts)
        .unwrap_or_else(|e| panic!("tiled LU unsound at rect: {e}"));
    assert_eq!(report.lint.as_ref().expect("lint requested").minimality_findings(), 0);

    let (g, access) = ca_factor::baselines::tiled_qr_task_graph_with_access(120, 96, 16);
    let report = ca_factor::sched::verify_graph_with(&g, &access, &opts)
        .unwrap_or_else(|e| panic!("tiled QR unsound at rect: {e}"));
    assert_eq!(report.lint.as_ref().expect("lint requested").minimality_findings(), 0);

    // Block granularity must still reject the same graphs: the sub-tile
    // split is invisible to it, which is exactly what the rect mode fixes.
    let (g, access) = ca_factor::baselines::tiled_lu_task_graph_with_access(96, 96, 16);
    assert!(matches!(
        ca_factor::sched::verify_graph(&g, &access),
        Err(SoundnessError::UnorderedConflict { .. })
    ));
}

#[test]
fn checked_tiled_baselines_run_clean_under_subtile_leases() {
    // End-to-end: rect verification up front, then execution with per-rect
    // leases audited by the shadow registry.
    let a = random_uniform(96, 96, &mut seeded_rng(21));
    let f = ca_factor::baselines::try_tiled_lu_checked(a.clone(), 16, 4)
        .expect("checked tiled LU");
    let rhs = random_uniform(96, 2, &mut seeded_rng(23));
    let x = f.solve(&rhs);
    assert!(ca_factor::baselines::TiledLu::solve_residual(&a, &x, &rhs) < 1e-10);

    let a = random_uniform(96, 64, &mut seeded_rng(22));
    let f = ca_factor::baselines::try_tiled_qr_checked(a.clone(), 16, 4)
        .expect("checked tiled QR");
    assert!(f.residual(&a) < 1e-10);
}
