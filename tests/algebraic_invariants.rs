//! Algebraic invariants that must hold across *every* algorithm variant:
//! the orthogonal projector `QQᵀ` of a QR factorization is unique (even
//! though `Q` itself is only unique up to column signs), and `Πᵀ L U`
//! reconstructs `A` exactly for every pivoting strategy and parameter set.

use ca_factor::baselines::{geqrf_blocked, tiled_qr};
use ca_factor::matrix::{norm_max, random_uniform, seeded_rng, Matrix};
use ca_factor::prelude::*;

/// P = Q Qᵀ (the projector onto range(A)) from an explicit thin Q.
fn projector(q: &Matrix) -> Matrix {
    q.matmul(&q.transpose())
}

#[test]
fn qr_projectors_agree_across_engines_and_trees() {
    let m = 120;
    let n = 24;
    let a = random_uniform(m, n, &mut seeded_rng(1));

    let mut reference: Option<Matrix> = None;
    let mut check = |name: &str, q: Matrix| {
        let p = projector(&q);
        match &reference {
            None => reference = Some(p),
            Some(r) => {
                let err = norm_max(p.sub_matrix(r).view());
                assert!(err < 1e-10, "{name}: projector deviates by {err}");
            }
        }
    };

    for (name, tree) in [
        ("caqr-binary", TreeShape::Binary),
        ("caqr-flat", TreeShape::Flat),
        ("caqr-kary3", TreeShape::Kary(3)),
        ("caqr-hybrid", TreeShape::Hybrid { flat_width: 3 }),
    ] {
        let mut p = CaParams::new(8, 4, 2);
        p.tree = tree;
        check(name, caqr(a.clone(), &p).q_thin());
    }
    {
        let mut w = a.clone();
        let bq = geqrf_blocked(&mut w, 8, 2);
        check("blocked", bq.q_thin(&w));
    }
    check("tiled", tiled_qr(a.clone(), 8, 2).q_thin());
}

#[test]
fn lu_reconstruction_is_exact_for_every_parameter_combo() {
    let m = 90;
    let n = 60;
    let a = random_uniform(m, n, &mut seeded_rng(2));
    let na = ca_factor::matrix::norm_fro(a.view());

    for tr in [1usize, 3, 8] {
        for tree in [TreeShape::Binary, TreeShape::Flat, TreeShape::Kary(4)] {
            for ub in [1usize, 3] {
                let mut p = CaParams::new(16, tr, 2).with_update_blocking(ub);
                p.tree = tree;
                let f = calu(a.clone(), &p);
                // Πᵀ (L U) == A exactly (up to roundoff): undo the pivots.
                let mut lu = f.l().matmul(&f.u());
                f.pivots.apply_inverse(lu.view_mut());
                let err = ca_factor::matrix::norm_fro(lu.sub_matrix(&a).view()) / na;
                assert!(err < 1e-13, "tr={tr} {tree:?} ub={ub}: {err}");
            }
        }
    }
}

#[test]
fn least_squares_solution_is_engine_independent() {
    // For full-rank tall A the LS solution is unique: CAQR and tiled QR
    // must give the same x even though their factors differ.
    let m = 150;
    let n = 20;
    let a = random_uniform(m, n, &mut seeded_rng(3));
    let rhs = random_uniform(m, 2, &mut seeded_rng(4));

    let x1 = caqr(a.clone(), &CaParams::new(10, 4, 2)).solve_ls(&rhs);
    let x2 = tiled_qr(a.clone(), 10, 2).solve_ls(&rhs);
    let err = norm_max(x1.sub_matrix(&x2).view());
    assert!(err < 1e-9, "LS solutions diverge by {err}");
}

#[test]
fn square_solve_engine_independent() {
    let n = 80;
    let a = random_uniform(n, n, &mut seeded_rng(5));
    let rhs = random_uniform(n, 3, &mut seeded_rng(6));

    let x1 = calu(a.clone(), &CaParams::new(16, 4, 2)).solve(&rhs);
    let x2 = ca_factor::baselines::tiled_lu(a.clone(), 16, 2).solve(&rhs);
    let mut lu = a.clone();
    let r = ca_factor::baselines::getrf_blocked(&mut lu, 16, 2);
    let mut x3 = rhs.clone();
    r.pivots.apply(x3.view_mut());
    ca_factor::kernels::trsm_left_lower_unit(lu.view(), x3.view_mut());
    ca_factor::kernels::trsm_left_upper_notrans(lu.view(), x3.view_mut());

    assert!(norm_max(x1.sub_matrix(&x2).view()) < 1e-8);
    assert!(norm_max(x1.sub_matrix(&x3).view()) < 1e-8);
}

#[test]
fn qt_a_mass_is_preserved() {
    // ‖QᵀA‖_F = ‖A‖_F for any orthogonal Q — applied through the implicit
    // tree representation (exercises every leaf + node apply path).
    let m = 100;
    let n = 30;
    let a = random_uniform(m, n, &mut seeded_rng(7));
    let c = random_uniform(m, 5, &mut seeded_rng(8));
    for tree in [TreeShape::Binary, TreeShape::Flat, TreeShape::Hybrid { flat_width: 2 }] {
        let mut p = CaParams::new(10, 4, 2);
        p.tree = tree;
        let f = caqr(a.clone(), &p);
        let mut qc = c.clone();
        f.apply_qt(&mut qc);
        let before = ca_factor::matrix::norm_fro(c.view());
        let after = ca_factor::matrix::norm_fro(qc.view());
        assert!((before - after).abs() < 1e-10 * before, "{tree:?}: mass changed");
    }
}
