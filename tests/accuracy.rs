//! Backward-error accuracy suite: every factorization path in the workspace
//! against LAPACK-style `c · max(m,n) · eps` acceptance thresholds.
//!
//! These bounds are the contract the new packed GEMM path must preserve:
//! CALU/CAQR trailing updates, compact-WY applications, and the tiled
//! baselines all route their BLAS3 work through `ca_kernels::gemm`, so a
//! rounding regression in the microkernel (or a packing indexing bug that
//! survives the conformance oracle's shapes) surfaces here as a residual
//! blow-up. Measured: `‖PA − LU‖/‖A‖` for the LU family, `‖A − QR‖/‖A‖`
//! and `‖QᵀQ − I‖` for the QR family, across both reduction trees and the
//! tiled/blocked baselines.

use ca_factor::baselines::{geqrf_blocked, getrf_blocked, tiled_lu, tiled_qr, TiledLu};
use ca_factor::matrix::{
    lu_residual, orthogonality, qr_residual, random_uniform, residual_threshold, seeded_rng,
};
use ca_factor::prelude::*;

/// `c` in the `c · max(m,n) · eps` acceptance threshold. LAPACK's own tests
/// use single digits on the normalized statistic; the plain relative
/// residual here carries the growth factor, so allow a generous constant —
/// it still fails loudly on any real defect (which shows up orders of
/// magnitude above eps-scale).
const C: f64 = 100.0;

/// Shapes exercised for every path: square, tall (the CA sweet spot), and a
/// width that leaves partial panels/tiles everywhere.
const SHAPES: [(usize, usize); 3] = [(96, 96), (240, 64), (150, 90)];

fn trees() -> [TreeShape; 2] {
    [TreeShape::Binary, TreeShape::Flat]
}

#[test]
fn calu_residual_both_trees() {
    for (m, n) in SHAPES {
        let a = random_uniform(m, n, &mut seeded_rng((m * 3 + n) as u64));
        for tree in trees() {
            let mut p = CaParams::new(16, 4, 2);
            p.tree = tree;
            let f = calu(a.clone(), &p);
            let res = f.residual(&a);
            let bound = residual_threshold(m, n, C);
            assert!(res < bound, "CALU {m}x{n} {tree:?}: residual {res} vs {bound}");
        }
    }
}

#[test]
fn caqr_residual_and_orthogonality_both_trees() {
    for (m, n) in SHAPES {
        let a = random_uniform(m, n, &mut seeded_rng((m * 5 + n) as u64));
        for tree in trees() {
            let mut p = CaParams::new(16, 4, 2);
            p.tree = tree;
            let f = caqr(a.clone(), &p);
            let res = f.residual(&a);
            let orth = f.orthogonality();
            let bound = residual_threshold(m, n, C);
            assert!(res < bound, "CAQR {m}x{n} {tree:?}: residual {res} vs {bound}");
            assert!(orth < bound, "CAQR {m}x{n} {tree:?}: orthogonality {orth} vs {bound}");
        }
    }
}

#[test]
fn blocked_lu_baseline_residual() {
    for (m, n) in SHAPES {
        let a0 = random_uniform(m, n, &mut seeded_rng((m * 7 + n) as u64));
        let mut a = a0.clone();
        let f = getrf_blocked(&mut a, 24, 2);
        assert!(f.breakdown.is_none(), "unexpected breakdown on random {m}x{n}");
        let res = lu_residual(&a0, &f.pivots.to_permutation(m), &a.unit_lower(), &a.upper());
        let bound = residual_threshold(m, n, C);
        assert!(res < bound, "blocked LU {m}x{n}: residual {res} vs {bound}");
    }
}

#[test]
fn blocked_qr_baseline_residual_and_orthogonality() {
    for (m, n) in SHAPES {
        let a0 = random_uniform(m, n, &mut seeded_rng((m * 11 + n) as u64));
        let mut a = a0.clone();
        let f = geqrf_blocked(&mut a, 24, 2);
        let q = f.q_thin(&a);
        let res = qr_residual(&a0, &q, &a.upper());
        let orth = orthogonality(&q);
        let bound = residual_threshold(m, n, C);
        assert!(res < bound, "blocked QR {m}x{n}: residual {res} vs {bound}");
        assert!(orth < bound, "blocked QR {m}x{n}: orthogonality {orth} vs {bound}");
    }
}

#[test]
fn tiled_lu_baseline_solve_residual() {
    // The tiled LU keeps tile-local transforms rather than global factors;
    // its accuracy statement is the solve residual ‖A·x − b‖/(‖A‖·‖x‖).
    for n in [96, 150] {
        let a0 = random_uniform(n, n, &mut seeded_rng(n as u64));
        let rhs = random_uniform(n, 3, &mut seeded_rng((n + 1) as u64));
        let f = tiled_lu(a0.clone(), 32, 2);
        let x = f.solve(&rhs);
        let res = TiledLu::solve_residual(&a0, &x, &rhs);
        let bound = residual_threshold(n, n, C);
        assert!(res < bound, "tiled LU n={n}: solve residual {res} vs {bound}");
    }
}

#[test]
fn tiled_qr_baseline_residual_and_orthogonality() {
    for (m, n) in SHAPES {
        let a0 = random_uniform(m, n, &mut seeded_rng((m * 13 + n) as u64));
        let f = tiled_qr(a0.clone(), 32, 2);
        let res = f.residual(&a0);
        let orth = orthogonality(&f.q_thin());
        let bound = residual_threshold(m, n, C);
        assert!(res < bound, "tiled QR {m}x{n}: residual {res} vs {bound}");
        assert!(orth < bound, "tiled QR {m}x{n}: orthogonality {orth} vs {bound}");
    }
}

#[test]
fn accuracy_is_backend_independent() {
    // The same factorization under the forced-scalar kernel must meet the
    // same bounds (run in-process via the force_scalar hook path: CALU/CAQR
    // call `gemm`, whose backend is dispatch-cached per process — so here we
    // assert the *bound*, not bitwise equality, under whichever backend the
    // process selected; CI runs the whole suite again under
    // `CA_KERNELS_FORCE_SCALAR=1` to pin the other path).
    let (m, n) = (200, 56);
    let a = random_uniform(m, n, &mut seeded_rng(77));
    let mut p = CaParams::new(8, 4, 3);
    p.tree = TreeShape::Binary;
    let lu = calu(a.clone(), &p);
    let qr = caqr(a.clone(), &p);
    let bound = residual_threshold(m, n, C);
    assert!(lu.residual(&a) < bound, "backend {}", ca_factor::kernels::gemm_backend());
    assert!(qr.residual(&a) < bound && qr.orthogonality() < bound);
}

/// `c · max(m,n) · eps_f32` acceptance threshold for the single-precision
/// sequential path (`calu_seq_factor::<f32>` / `caqr_seq::<f32>`). The
/// diagnostics themselves (residual, orthogonality) are f64-bridged, so the
/// statistic measures true f32 backward error against f64 reference
/// arithmetic.
fn bound_f32(m: usize, n: usize) -> f64 {
    C * m.max(n) as f64 * f32::EPSILON as f64
}

#[test]
fn calu_f32_backward_error_both_trees() {
    for (m, n) in SHAPES {
        let a = ca_factor::matrix::Matrix::<f32>::from_f64(&random_uniform(
            m,
            n,
            &mut seeded_rng((m * 17 + n) as u64),
        ));
        for tree in trees() {
            let mut p = CaParams::new(16, 4, 1);
            p.tree = tree;
            let f = ca_factor::core::calu_seq_factor(a.clone(), &p);
            assert!(f.breakdown.is_none(), "unexpected f32 breakdown {m}x{n}");
            let res = f.residual(&a);
            let b = bound_f32(m, n);
            assert!(res < b, "CALU f32 {m}x{n} {tree:?}: residual {res} vs {b}");
        }
    }
}

#[test]
fn caqr_f32_backward_error_and_orthogonality_both_trees() {
    for (m, n) in SHAPES {
        let a = ca_factor::matrix::Matrix::<f32>::from_f64(&random_uniform(
            m,
            n,
            &mut seeded_rng((m * 19 + n) as u64),
        ));
        for tree in trees() {
            let mut p = CaParams::new(16, 4, 1);
            p.tree = tree;
            let f = ca_factor::core::caqr_seq(a.clone(), &p);
            let res = f.residual(&a);
            let orth = f.orthogonality();
            let b = bound_f32(m, n);
            assert!(res < b, "CAQR f32 {m}x{n} {tree:?}: residual {res} vs {b}");
            assert!(orth < b, "CAQR f32 {m}x{n} {tree:?}: orthogonality {orth} vs {b}");
        }
    }
}

#[test]
fn f32_fallible_path_accepts_clean_and_rejects_non_finite() {
    let a = ca_factor::matrix::Matrix::<f32>::from_f64(&random_uniform(64, 48, &mut seeded_rng(5)));
    let p = CaParams::new(16, 2, 1);
    let f = ca_factor::core::try_calu_seq(a.clone(), &p).expect("clean f32 input must factor");
    assert!(f.residual(&a) < bound_f32(64, 48));
    let q = ca_factor::core::try_caqr_seq(a.clone(), &p).expect("clean f32 input must factor");
    assert!(q.residual(&a) < bound_f32(64, 48));

    let mut bad = a;
    bad[(3, 2)] = f32::NAN;
    assert!(matches!(
        ca_factor::core::try_calu_seq(bad.clone(), &p),
        Err(ca_factor::core::FactorError::NonFiniteInput { row: 3, col: 2 })
    ));
    assert!(matches!(
        ca_factor::core::try_caqr_seq(bad, &p),
        Err(ca_factor::core::FactorError::NonFiniteInput { row: 3, col: 2 })
    ));
}
