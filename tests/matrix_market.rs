//! Matrix Market I/O coverage at the integration tier: the sparse
//! `coordinate` and `symmetric` paths, and the parser's behavior on
//! malformed headers and truncated bodies — the failure modes a factorize
//! CLI hits when fed real-world `.mtx` files.

use ca_factor::matrix::io::{read_matrix_market, write_matrix_market, MmError};
use ca_factor::matrix::Matrix;

#[test]
fn coordinate_general_materializes_all_triples() {
    let src = "%%MatrixMarket matrix coordinate real general\n\
               % comment line\n\
               \n\
               4 3 4\n\
               1 1 1.5\n\
               4 3 -2.25\n\
               2 2 1e-3\n\
               3 1 7\n";
    let a: Matrix = read_matrix_market(src.as_bytes()).unwrap();
    assert_eq!((a.nrows(), a.ncols()), (4, 3));
    assert_eq!(a[(0, 0)], 1.5);
    assert_eq!(a[(3, 2)], -2.25);
    assert_eq!(a[(1, 1)], 1e-3);
    assert_eq!(a[(2, 0)], 7.0);
    // Unlisted entries are explicit zeros.
    assert_eq!(a[(0, 2)], 0.0);
}

#[test]
fn coordinate_symmetric_mirrors_off_diagonal_entries() {
    let src = "%%MatrixMarket matrix coordinate real symmetric\n\
               3 3 3\n\
               1 1 2.0\n\
               3 1 -4.5\n\
               3 2 0.125\n";
    let a: Matrix = read_matrix_market(src.as_bytes()).unwrap();
    assert_eq!(a[(2, 0)], -4.5);
    assert_eq!(a[(0, 2)], -4.5, "upper mirror of (3,1)");
    assert_eq!(a[(2, 1)], 0.125);
    assert_eq!(a[(1, 2)], 0.125, "upper mirror of (3,2)");
    assert_eq!(a[(0, 0)], 2.0, "diagonal entry must not be doubled");
    // f32 reads the same stream.
    let a32: Matrix<f32> = read_matrix_market(src.as_bytes()).unwrap();
    assert_eq!(a32[(0, 2)], -4.5f32);
}

#[test]
fn coordinate_symmetric_roundtrips_through_general_writer() {
    let src = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 3.0\n2 1 0.5\n";
    let a: Matrix = read_matrix_market(src.as_bytes()).unwrap();
    let mut buf = Vec::new();
    write_matrix_market(&mut buf, &a).unwrap();
    let b: Matrix = read_matrix_market(&buf[..]).unwrap();
    assert_eq!(a, b);
}

#[test]
fn malformed_headers_are_rejected_with_parse_errors() {
    let cases: &[(&str, &str)] = &[
        ("", "empty stream"),
        ("%%NotMatrixMarket matrix array real general\n1 1\n0\n", "bad banner token"),
        ("%%MatrixMarket tensor array real general\n1 1\n0\n", "non-matrix object"),
        ("%%MatrixMarket matrix\n1 1\n0\n", "too few header fields"),
        ("%%MatrixMarket matrix elemental real general\n1 1\n0\n", "unknown format"),
        ("%%MatrixMarket matrix array complex general\n1 1\n0 0\n", "unsupported field"),
        ("%%MatrixMarket matrix array real hermitian\n1 1\n0\n", "unsupported symmetry"),
        ("%%MatrixMarket matrix array real general\n% only comments follow\n", "missing size line"),
        ("%%MatrixMarket matrix array real general\nx y\n", "non-numeric size entry"),
        ("%%MatrixMarket matrix coordinate real general\n2 2\n1 1 1.0\n", "coordinate size line needs nnz"),
        ("%%MatrixMarket matrix array real symmetric\n2 3\n1\n2\n3\n4\n5\n", "symmetric must be square"),
    ];
    for (src, why) in cases {
        let r = read_matrix_market::<f64>(src.as_bytes());
        assert!(
            matches!(r, Err(MmError::Parse(_))),
            "expected parse error ({why}), got {r:?}"
        );
    }
}

#[test]
fn truncated_bodies_are_rejected_not_zero_filled() {
    // Array body one entry short.
    let short_array = "%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n3.0\n";
    assert!(matches!(
        read_matrix_market::<f64>(short_array.as_bytes()),
        Err(MmError::Parse(_))
    ));
    // Coordinate body missing a whole triple.
    let short_coo = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n";
    assert!(matches!(
        read_matrix_market::<f64>(short_coo.as_bytes()),
        Err(MmError::Parse(_))
    ));
    // Coordinate body with a torn final triple (two tokens of three).
    let torn = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n2 2\n";
    assert!(matches!(read_matrix_market::<f64>(torn.as_bytes()), Err(MmError::Parse(_))));
    // Symmetric array lower triangle one entry short.
    let short_sym = "%%MatrixMarket matrix array real symmetric\n2 2\n1.0\n2.0\n";
    assert!(matches!(
        read_matrix_market::<f64>(short_sym.as_bytes()),
        Err(MmError::Parse(_))
    ));
}

#[test]
fn oversized_bodies_and_bad_values_are_rejected() {
    let extra = "%%MatrixMarket matrix array real general\n1 1\n1.0\n2.0\n";
    assert!(matches!(read_matrix_market::<f64>(extra.as_bytes()), Err(MmError::Parse(_))));
    let bad_value = "%%MatrixMarket matrix array real general\n1 1\nnope\n";
    assert!(matches!(read_matrix_market::<f64>(bad_value.as_bytes()), Err(MmError::Parse(_))));
    let bad_index = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
    assert!(matches!(read_matrix_market::<f64>(bad_index.as_bytes()), Err(MmError::Parse(_))));
}
