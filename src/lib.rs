//! # ca-factor
//!
//! Communication-avoiding LU and QR factorizations adapted to multicore
//! architectures — a Rust reproduction of Donfack, Grigori & Gupta
//! (IPDPS 2010), built from scratch: matrix substrate, BLAS/LAPACK-style
//! kernels, a dynamic task-graph runtime with lookahead scheduling, the
//! CALU/CAQR/TSLU/TSQR algorithms, the evaluation baselines (blocked
//! LAPACK-style "vendor" factorizations and PLASMA-style tiled algorithms),
//! and a benchmark harness regenerating every table and figure of the paper.
//!
//! This crate is a façade re-exporting the workspace layers:
//!
//! ```
//! use ca_factor::prelude::*;
//!
//! let a = ca_factor::matrix::random_uniform(400, 50, &mut ca_factor::matrix::seeded_rng(7));
//! let f = calu(a.clone(), &CaParams::new(25, 4, 2));
//! assert!(f.residual(&a) < 1e-12);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

/// Dense column-major matrices, views, pivots, norms (`ca-matrix`).
pub mod matrix {
    pub use ca_matrix::*;
}

/// BLAS/LAPACK-style sequential kernels (`ca-kernels`).
pub mod kernels {
    pub use ca_kernels::*;
}

/// Task-graph runtime and multicore simulator (`ca-sched`).
pub mod sched {
    pub use ca_sched::*;
}

/// The paper's algorithms: CALU, CAQR, TSLU, TSQR (`ca-core`).
pub mod core {
    pub use ca_core::*;
}

/// Evaluation baselines: blocked LAPACK-style and tiled PLASMA-style
/// factorizations (`ca-baselines`).
pub mod baselines {
    pub use ca_baselines::*;
}

/// Benchmark harness: calibration, machine model, figure sweeps (`ca-bench`).
pub mod bench {
    pub use ca_bench::*;
}

/// Persistent multi-tenant factorization service (`ca-serve`).
pub mod serve {
    pub use ca_serve::*;
}

/// Out-of-core sequential CALU/CAQR: tile store, residency planning,
/// left-looking drivers, streamed verification probes (`ca-ooc`).
pub mod ooc {
    pub use ca_ooc::*;
}

/// Always-on telemetry primitives: atomic counters/gauges, log-scale
/// histograms, the metric registry, and atomic snapshot files
/// (`ca-telemetry`).
pub mod telemetry {
    pub use ca_telemetry::*;
}

/// The names most programs need.
pub mod prelude {
    pub use ca_core::{
        calu, calu_seq_factor, caqr, caqr_seq, try_calu, try_caqr, try_tslu_factor,
        try_tsqr_factor, tslu_factor, tsqr_factor, CaParams, FactorError, LuFactors, QrFactors,
        TreeShape,
    };
    pub use ca_matrix::{Matrix, PivotSeq};
}

pub use ca_core::{calu, caqr, tslu_factor, tsqr_factor, CaParams, TreeShape};
pub use ca_matrix::Matrix;
