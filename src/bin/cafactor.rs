//! `cafactor` — command-line driver for the ca-factor library.
//!
//! ```text
//! cafactor factor lu  --random 20000 100 --b 100 --tr 8 --threads 4
//! cafactor factor qr  --input A.mtx --tree flat --output R.mtx
//! cafactor verify lu  --random 1024 1024 --b 64 --threads 4
//! cafactor solve      --input A.mtx --rhs b.mtx --refine
//! cafactor serve      --jobs 32 --threads 4 --capacity 16 --policy block
//! cafactor info       --input A.mtx
//! ```
//!
//! Matrices are Matrix Market files (dense `array` or sparse `coordinate`).

use ca_factor::core::try_calu_with_stats;
use ca_factor::matrix::io::{read_matrix_market_file, write_matrix_market_file};
use ca_factor::matrix::{norm_one, random_uniform, seeded_rng, Matrix};
use ca_factor::prelude::*;
use std::process::exit;
use std::time::Instant;

/// Distinct exit code per numerical-failure class (`2` stays usage errors,
/// `1` I/O errors).
fn exit_code(e: &FactorError) -> i32 {
    match e {
        FactorError::NonFiniteInput { .. } => 3,
        FactorError::ZeroPivot { .. } => 4,
        FactorError::GrowthExplosion { .. } => 5,
        FactorError::TaskFailed { .. } => 6,
        FactorError::Soundness { violation } => soundness_exit_code(violation),
        FactorError::Corrupted { .. } => 10,
        FactorError::Io { .. } => 1,
    }
}

/// Distinct exit code per service-failure class: silent corruption → 10,
/// deadline miss → 11, shed → 12; task faults and invalid inputs reuse the
/// factorization codes.
fn serve_exit_code(e: &ca_factor::serve::ServeError) -> i32 {
    use ca_factor::serve::ServeError;
    match e {
        ServeError::Corrupted { .. } => 10,
        ServeError::DeadlineExceeded => 11,
        ServeError::Shed => 12,
        ServeError::Failed { .. } => 6,
        ServeError::Invalid(inner) => exit_code(inner),
        _ => 1,
    }
}

/// Exit code per soundness-violation class: static DAG violations → 7,
/// runtime lease races → 8, out-of-footprint accesses → 9.
fn soundness_exit_code(v: &ca_factor::sched::SoundnessError) -> i32 {
    use ca_factor::sched::SoundnessError;
    match v {
        SoundnessError::Race { .. } => 8,
        SoundnessError::UndeclaredAccess { .. } => 9,
        _ => 7,
    }
}

fn fail(e: &FactorError) -> ! {
    eprintln!("cafactor: {e}");
    exit(exit_code(e))
}

/// Working precision of the factorization (`--precision f32|f64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Precision {
    F32,
    F64,
}

struct Opts {
    input: Option<String>,
    rhs: Option<String>,
    output: Option<String>,
    random: Option<(usize, usize)>,
    b: usize,
    tr: usize,
    threads: usize,
    tree: TreeShape,
    seed: u64,
    refine: bool,
    /// `--precision f32|f64`: element type the factorization runs in. The
    /// task-parallel executor is double-precision; `f32` routes `factor`
    /// through the sequential CALU/CAQR path in single precision.
    precision: Precision,
    /// `verify --granularity={block,rect}`: conflict-enumeration granularity
    /// for the static soundness pass.
    granularity: ca_factor::sched::Granularity,
    /// `verify --lint-edges`: run the edge-minimality and dataflow lint
    /// passes on top of the happens-before closure.
    lint_edges: bool,
    /// `--profile[=FILE]`: run on the profiled executor, print the scheduler
    /// report, and write Chrome-trace JSON to FILE. For `serve`, the file is
    /// a combined object: `{"serviceStats": …, "traceEvents": […]}`.
    profile: Option<String>,
    /// `serve`: number of demo jobs to submit.
    jobs: usize,
    /// `serve`: bounded-queue capacity.
    capacity: usize,
    /// `serve`: admission policy at capacity.
    policy: ca_factor::serve::AdmissionPolicy,
    /// `serve`: coalesce factorizations at or below this dimension
    /// (`0` disables batching).
    batch: usize,
    /// `serve`: per-job deadline in milliseconds (`0` = none).
    deadline_ms: u64,
    /// `serve --retry N`: enable the recovery tier with N job-level
    /// resubmissions (plus default task-level replay and integrity probe).
    retry: Option<usize>,
    /// `serve --chaos[=SEED]`: run the workload as a seeded chaos drill.
    chaos: Option<u64>,
    /// `serve --metrics[=FILE]`: periodic Prometheus/JSON exposition.
    metrics: Option<String>,
    /// `serve --metrics-interval MS`: exposition period.
    metrics_interval_ms: u64,
    /// `serve --flight-recorder[=DEPTH]`: per-worker flight recorder.
    flight_recorder: Option<usize>,
    /// `serve --dump-dir DIR`: where flight dumps land.
    dump_dir: Option<String>,
    /// `serve --max-dumps N`: lifetime cap on flight-dump files.
    max_dumps: usize,
    /// `serve --tenants N`: label demo jobs round-robin over N tenants.
    tenants: usize,
    /// `factor --out-of-core`: stream the factorization through an on-disk
    /// tile store instead of holding the matrix in RAM.
    out_of_core: bool,
    /// `factor --memory-budget BYTES`: resident-memory cap for the
    /// out-of-core path (default 256 MiB).
    memory_budget: usize,
    /// `factor --store FILE`: tile-store file for `--out-of-core`
    /// (default: a temp file, removed afterwards).
    store: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            input: None,
            rhs: None,
            output: None,
            random: None,
            b: 100,
            tr: 4,
            threads: 4,
            tree: TreeShape::Binary,
            seed: 42,
            refine: false,
            precision: Precision::F64,
            granularity: ca_factor::sched::Granularity::Block,
            lint_edges: false,
            profile: None,
            jobs: 32,
            capacity: 16,
            policy: ca_factor::serve::AdmissionPolicy::Block,
            batch: 0,
            deadline_ms: 0,
            retry: None,
            chaos: None,
            metrics: None,
            metrics_interval_ms: 500,
            flight_recorder: None,
            dump_dir: None,
            max_dumps: 8,
            tenants: 0,
            out_of_core: false,
            memory_budget: 256 << 20,
            store: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cafactor <factor lu|factor qr|verify lu|verify qr|solve|serve|top|info> [flags]\n\
         flags: --input FILE.mtx | --random M N   matrix source\n\
                --rhs FILE.mtx                    right-hand side (solve)\n\
                --output FILE.mtx                 write factors/solution\n\
                --b B --tr TR --threads T         CALU/CAQR parameters\n\
                --tree binary|flat|kary:K|hybrid:W  reduction tree\n\
                --seed S --refine\n\
                --precision f32|f64               working precision (f64);\n\
                                                  f32 factors sequentially\n\
                --out-of-core                     factor through an on-disk\n\
                                                  tile store (left-looking,\n\
                                                  bitwise-identical factors)\n\
                --memory-budget BYTES             resident-memory cap for\n\
                                                  --out-of-core (256 MiB)\n\
                --store FILE                      tile-store file to keep\n\
                                                  (default: temp, removed)\n\
         verify: --granularity=block|rect         conflict enumeration:\n\
                                                  whole blocks (default) or\n\
                                                  element-exact rects; rect\n\
                                                  also covers the tiled\n\
                                                  baseline's sub-tile split\n\
                --lint-edges                      minimality lints: flag\n\
                                                  unnecessary / transitively\n\
                                                  redundant edges (exit 13)\n\
                --profile[=FILE.json]             scheduler profile report +\n\
                                                  Chrome trace (factor/serve;\n\
                                                  default profile_trace.json)\n\
         serve: --jobs J                          demo jobs to submit (32)\n\
                --capacity C                      bounded queue capacity (16)\n\
                --policy reject|block|shed        admission policy (block)\n\
                --batch DIM                       coalesce jobs ≤ DIM (0=off)\n\
                --deadline MS                     per-job deadline (0=none)\n\
                --retry N                         recovery tier: N job-level\n\
                                                  resubmissions + task replay\n\
                                                  + integrity probe\n\
                --chaos[=SEED]                    seeded fault-injection drill\n\
                                                  (1% fail, 0.5% panic,\n\
                                                  0.1% silent corruption)\n\
                --metrics[=FILE]                  periodic Prometheus snapshot\n\
                                                  to FILE + FILE.json (default\n\
                                                  metrics.prom)\n\
                --metrics-interval MS             exposition period (500)\n\
                --flight-recorder[=DEPTH]         per-worker event ring, dumped\n\
                                                  on failures (depth 256)\n\
                --dump-dir DIR --max-dumps N      flight-dump location and\n\
                                                  lifetime cap (8)\n\
                --tenants N                       label demo jobs round-robin\n\
                                                  over N tenants\n\
         top:   cafactor top FILE                 pretty-print a metrics\n\
                                                  snapshot (FILE or FILE.json)"
    );
    exit(2)
}

fn parse_tree(s: &str) -> TreeShape {
    match s {
        "binary" => TreeShape::Binary,
        "flat" => TreeShape::Flat,
        other => {
            if let Some(k) = other.strip_prefix("kary:") {
                TreeShape::Kary(k.parse().unwrap_or_else(|_| usage()))
            } else if let Some(w) = other.strip_prefix("hybrid:") {
                TreeShape::Hybrid { flat_width: w.parse().unwrap_or_else(|_| usage()) }
            } else {
                usage()
            }
        }
    }
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = || it.next().map(|s| s.to_string()).unwrap_or_else(|| usage());
        match a.as_str() {
            "--input" => o.input = Some(next()),
            "--rhs" => o.rhs = Some(next()),
            "--output" => o.output = Some(next()),
            "--random" => {
                let m = next().parse().unwrap_or_else(|_| usage());
                let n = next().parse().unwrap_or_else(|_| usage());
                o.random = Some((m, n));
            }
            "--b" => o.b = next().parse().unwrap_or_else(|_| usage()),
            "--tr" => o.tr = next().parse().unwrap_or_else(|_| usage()),
            "--threads" => o.threads = next().parse().unwrap_or_else(|_| usage()),
            "--tree" => o.tree = parse_tree(&next()),
            "--seed" => o.seed = next().parse().unwrap_or_else(|_| usage()),
            "--precision" => {
                o.precision = match next().as_str() {
                    "f32" => Precision::F32,
                    "f64" => Precision::F64,
                    _ => usage(),
                }
            }
            s if s.starts_with("--granularity=") => {
                o.granularity = match &s["--granularity=".len()..] {
                    "block" => ca_factor::sched::Granularity::Block,
                    "rect" => ca_factor::sched::Granularity::Rect,
                    _ => usage(),
                }
            }
            "--lint-edges" => o.lint_edges = true,
            "--refine" => o.refine = true,
            "--out-of-core" => o.out_of_core = true,
            "--memory-budget" => {
                o.memory_budget = next().parse().unwrap_or_else(|_| usage())
            }
            "--store" => o.store = Some(next()),
            "--jobs" => o.jobs = next().parse().unwrap_or_else(|_| usage()),
            "--capacity" => o.capacity = next().parse().unwrap_or_else(|_| usage()),
            "--policy" => {
                o.policy = match next().as_str() {
                    "reject" => ca_factor::serve::AdmissionPolicy::Reject,
                    "block" => ca_factor::serve::AdmissionPolicy::Block,
                    "shed" => ca_factor::serve::AdmissionPolicy::ShedOldest,
                    _ => usage(),
                }
            }
            "--batch" => o.batch = next().parse().unwrap_or_else(|_| usage()),
            "--deadline" => o.deadline_ms = next().parse().unwrap_or_else(|_| usage()),
            "--retry" => o.retry = Some(next().parse().unwrap_or_else(|_| usage())),
            "--chaos" => o.chaos = Some(0xC0FFEE),
            s if s.starts_with("--chaos=") => {
                o.chaos = Some(s["--chaos=".len()..].parse().unwrap_or_else(|_| usage()))
            }
            "--metrics" => o.metrics = Some("metrics.prom".to_string()),
            s if s.starts_with("--metrics=") => {
                o.metrics = Some(s["--metrics=".len()..].to_string())
            }
            "--metrics-interval" => {
                o.metrics_interval_ms = next().parse().unwrap_or_else(|_| usage())
            }
            "--flight-recorder" => o.flight_recorder = Some(256),
            s if s.starts_with("--flight-recorder=") => {
                o.flight_recorder =
                    Some(s["--flight-recorder=".len()..].parse().unwrap_or_else(|_| usage()))
            }
            "--dump-dir" => o.dump_dir = Some(next()),
            "--max-dumps" => o.max_dumps = next().parse().unwrap_or_else(|_| usage()),
            "--tenants" => o.tenants = next().parse().unwrap_or_else(|_| usage()),
            "--profile" => o.profile = Some("profile_trace.json".to_string()),
            s if s.starts_with("--profile=") => {
                o.profile = Some(s["--profile=".len()..].to_string())
            }
            _ => usage(),
        }
    }
    o
}

fn load_matrix(o: &Opts) -> Matrix {
    if let Some(path) = &o.input {
        match read_matrix_market_file(path) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                exit(1)
            }
        }
    } else if let Some((m, n)) = o.random {
        random_uniform(m, n, &mut seeded_rng(o.seed))
    } else {
        eprintln!("need --input or --random");
        usage()
    }
}

fn params(o: &Opts, n: usize) -> CaParams {
    let mut p = CaParams::new(o.b.min(n.max(1)), o.tr, o.threads);
    p.tree = o.tree;
    p
}

/// Prints the scheduler report and writes the Chrome trace for `--profile`.
fn report_profile(profile: &ca_factor::sched::Profile, path: &str) {
    print!("{}", profile.metrics());
    match std::fs::write(path, profile.chrome_trace()) {
        Ok(()) => println!("profile trace written to {path}"),
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            exit(1)
        }
    }
}

/// Where `--out-of-core` keeps its tile store: `--store FILE`, or a
/// process-unique temp file that is removed after the run.
fn ooc_store_path(o: &Opts) -> (std::path::PathBuf, bool) {
    match &o.store {
        Some(f) => (f.into(), true),
        None => (
            std::env::temp_dir().join(format!("cafactor_ooc_{}.castore", std::process::id())),
            false,
        ),
    }
}

/// `factor lu|qr --out-of-core`: import the matrix into a [`TileStore`],
/// run the left-looking driver under `--memory-budget`, and verify with
/// the streamed `O(n²)` probes instead of a dense residual. Reports the
/// factorization's measured I/O volume against the sequential
/// communication lower bound (arXiv 0806.2159).
fn cmd_factor_ooc(o: &Opts, qr: bool) {
    let a = load_matrix(o);
    let p = params(o, a.ncols());
    let (path, keep) = ooc_store_path(o);

    fn run<T: ca_factor::kernels::Kernel>(
        a: &Matrix<T>,
        o: &Opts,
        p: &CaParams,
        path: &std::path::Path,
        keep: bool,
        qr: bool,
    ) {
        use ca_factor::kernels::traffic::{ooc_lu_lower_bound, ooc_qr_lower_bound};
        use ca_factor::ooc::{ooc_calu, ooc_caqr, probe, TileStore};
        let (m, n) = (a.nrows(), a.ncols());
        let store =
            TileStore::<T>::create(path, m, n, p.b).unwrap_or_else(|e| fail(&e));
        store.import_matrix(a).unwrap_or_else(|e| fail(&e));

        // Streamed probe baseline before the factors overwrite the store.
        let x: Vec<f64> = {
            let xm = random_uniform(n, 1, &mut seeded_rng(o.seed ^ 0x0b5e));
            (0..n).map(|i| xm[(i, 0)]).collect()
        };
        let (want, a_fro) = probe::stream_matvec(&store, &x).unwrap_or_else(|e| fail(&e));

        let name = if qr { "CAQR" } else { "CALU" };
        let flops = if qr {
            ca_factor::kernels::flops::geqrf(m, n.min(m))
        } else {
            ca_factor::kernels::flops::getrf(m, n.min(m))
        };
        let t0 = Instant::now();
        let (plan, io, got) = if qr {
            let f = ooc_caqr(&store, p, o.memory_budget).unwrap_or_else(|e| fail(&e));
            let got =
                probe::qr_probe_apply(&store, &f.panels, &x).unwrap_or_else(|e| fail(&e));
            (f.plan, f.io, got)
        } else {
            let f = ooc_calu(&store, p, o.memory_budget).unwrap_or_else(|e| fail(&e));
            if let Some(col) = f.breakdown {
                eprintln!("note: exact zero pivot at column {col} (factors still usable)");
            }
            let got =
                probe::lu_probe_apply(&store, &f.pivots, &x).unwrap_or_else(|e| fail(&e));
            (f.plan, f.io, got)
        };
        let dt = t0.elapsed().as_secs_f64();
        let residual = probe::probe_residual(&got, &want, a_fro, &x);

        let moved = (io.bytes_read + io.bytes_written) as f64;
        let bound = if qr {
            ooc_qr_lower_bound(m, n, o.memory_budget, T::BYTES)
        } else {
            ooc_lu_lower_bound(m, n, o.memory_budget, T::BYTES)
        };
        println!(
            "{name}[{}] {m}x{n} out-of-core  b={} Tr={} budget={}MiB  superpanel w={} x{}  \
             {dt:.3}s  {:.2} GFlop/s",
            T::NAME,
            p.b,
            p.tr,
            o.memory_budget >> 20,
            plan.w,
            plan.nsuper,
            flops / dt / 1e9,
        );
        println!(
            "  io: read {:.1} MiB, wrote {:.1} MiB, {} panel loads ({:.3}s)  \
             {:.2}x of the sequential lower bound",
            io.bytes_read as f64 / (1u64 << 20) as f64,
            io.bytes_written as f64 / (1u64 << 20) as f64,
            io.panel_loads,
            io.load_seconds,
            moved / bound,
        );
        println!("  probe residual={residual:.2e}  (streamed O(n^2) verification)");
        if let Some(out) = &o.output {
            let f = store.export_matrix().unwrap_or_else(|e| fail(&e));
            write_matrix_market_file(out, &f.to_f64()).expect("write output");
            println!("packed factors written to {out}");
        }
        if keep {
            println!("tile store kept at {}", path.display());
        } else {
            drop(store);
            std::fs::remove_file(path).ok();
        }
    }

    match o.precision {
        Precision::F64 => run::<f64>(&a, o, &p, &path, keep, qr),
        Precision::F32 => {
            let a32 = ca_factor::matrix::Matrix::<f32>::from_f64(&a);
            run::<f32>(&a32, o, &p, &path, keep, qr)
        }
    }
}

fn cmd_factor_lu(o: &Opts) {
    if o.out_of_core {
        return cmd_factor_ooc(o, false);
    }
    let a = load_matrix(o);
    let (m, n) = (a.nrows(), a.ncols());
    let p = params(o, n);
    if o.precision == Precision::F32 {
        let a32 = ca_factor::matrix::Matrix::<f32>::from_f64(&a);
        let t0 = Instant::now();
        let f = ca_factor::core::try_calu_seq(a32.clone(), &p).unwrap_or_else(|e| fail(&e));
        let dt = t0.elapsed().as_secs_f64();
        let gf = ca_factor::kernels::flops::getrf(m, n.min(m)) / dt / 1e9;
        println!(
            "CALU[f32] {m}x{n}  b={} Tr={} tree={:?} sequential  {dt:.3}s  {gf:.2} GFlop/s  \
             residual={:.2e}",
            p.b, p.tr, p.tree,
            f.residual(&a32)
        );
        if let Some(out) = &o.output {
            write_matrix_market_file(out, &f.lu.to_f64()).expect("write output");
            println!("packed L\\U written to {out}");
        }
        return;
    }
    let t0 = Instant::now();
    let (f, tasks) = if let Some(trace) = &o.profile {
        let (f, profile) =
            ca_factor::core::try_calu_profiled(a.clone(), &p).unwrap_or_else(|e| fail(&e));
        let tasks = profile.records.len();
        report_profile(&profile, trace);
        (f, tasks)
    } else {
        let (f, stats) = try_calu_with_stats(a.clone(), &p).unwrap_or_else(|e| fail(&e));
        (f, stats.tasks)
    };
    let dt = t0.elapsed().as_secs_f64();
    let gf = ca_factor::kernels::flops::getrf(m, n.min(m)) / dt / 1e9;
    println!(
        "CALU {m}x{n}  b={} Tr={} tree={:?} threads={}  {dt:.3}s  {gf:.2} GFlop/s  \
         tasks={tasks}  residual={:.2e}",
        p.b, p.tr, p.tree, p.threads, f.residual(&a)
    );
    if !f.stats.fallback_panels.is_empty() {
        eprintln!(
            "note: {} panel(s) refactored with plain GEPP (tournament instability), max growth {:.2e}",
            f.stats.fallback_panels.len(),
            f.stats.max_growth()
        );
    }
    if let Some(out) = &o.output {
        write_matrix_market_file(out, &f.lu).expect("write output");
        println!("packed L\\U written to {out}");
    }
}

fn cmd_factor_qr(o: &Opts) {
    if o.out_of_core {
        return cmd_factor_ooc(o, true);
    }
    let a = load_matrix(o);
    let (m, n) = (a.nrows(), a.ncols());
    let p = params(o, n);
    if o.precision == Precision::F32 {
        let a32 = ca_factor::matrix::Matrix::<f32>::from_f64(&a);
        let t0 = Instant::now();
        let f = ca_factor::core::try_caqr_seq(a32.clone(), &p).unwrap_or_else(|e| fail(&e));
        let dt = t0.elapsed().as_secs_f64();
        let gf = ca_factor::kernels::flops::geqrf(m, n.min(m)) / dt / 1e9;
        println!(
            "CAQR[f32] {m}x{n}  b={} Tr={} tree={:?} sequential  {dt:.3}s  {gf:.2} GFlop/s  \
             residual={:.2e}  orthogonality={:.2e}",
            p.b, p.tr, p.tree,
            f.residual(&a32),
            f.orthogonality()
        );
        if let Some(out) = &o.output {
            write_matrix_market_file(out, &f.r().to_f64()).expect("write output");
            println!("R written to {out}");
        }
        return;
    }
    let t0 = Instant::now();
    let f = if let Some(trace) = &o.profile {
        let (f, profile) =
            ca_factor::core::try_caqr_profiled(a.clone(), &p).unwrap_or_else(|e| fail(&e));
        report_profile(&profile, trace);
        f
    } else {
        ca_factor::core::try_caqr(a.clone(), &p).unwrap_or_else(|e| fail(&e))
    };
    let dt = t0.elapsed().as_secs_f64();
    let gf = ca_factor::kernels::flops::geqrf(m, n.min(m)) / dt / 1e9;
    println!(
        "CAQR {m}x{n}  b={} Tr={} tree={:?} threads={}  {dt:.3}s  {gf:.2} GFlop/s  \
         residual={:.2e}  orthogonality={:.2e}",
        p.b, p.tr, p.tree, p.threads,
        f.residual(&a),
        f.orthogonality()
    );
    if let Some(out) = &o.output {
        write_matrix_market_file(out, &f.r()).expect("write output");
        println!("R written to {out}");
    }
}

fn cmd_solve(o: &Opts) {
    let a = load_matrix(o);
    let n = a.nrows();
    if a.ncols() != n {
        eprintln!("solve needs a square matrix, got {}x{}", n, a.ncols());
        exit(1);
    }
    let rhs = match &o.rhs {
        Some(path) => read_matrix_market_file(path).unwrap_or_else(|e| {
            eprintln!("cannot read rhs: {e}");
            exit(1)
        }),
        None => {
            // Synthesize b = A·1 so the expected solution is all-ones.
            let ones = Matrix::from_fn(n, 1, |_, _| 1.0);
            a.matmul(&ones)
        }
    };
    let p = params(o, n);
    let f = try_calu(a.clone(), &p).unwrap_or_else(|e| {
        if matches!(e, FactorError::ZeroPivot { .. }) {
            eprintln!("cafactor: rcond = 0 (exactly singular)");
        }
        fail(&e)
    });
    let rcond = f.rcond_estimate(norm_one(a.view()));
    let (x, info) = if o.refine {
        let (x, info) = f.solve_refined(&a, &rhs, 5);
        (x, Some(info))
    } else {
        let x = f.try_solve(&rhs).unwrap_or_else(|e| fail(&e));
        (x, None)
    };
    let r = rhs.sub_matrix(&a.matmul(&x));
    println!(
        "solved {n}x{n} with {} rhs column(s): ‖b−Ax‖∞={:.2e}  rcond≈{rcond:.2e}",
        rhs.ncols(),
        ca_factor::matrix::norm_inf(r.view()),
    );
    if let Some(info) = info {
        println!(
            "refinement: {} step(s), backward error {:.2e}, converged: {}",
            info.iterations, info.final_backward_error, info.converged
        );
    }
    if let Some(out) = &o.output {
        write_matrix_market_file(out, &x).expect("write output");
        println!("solution written to {out}");
    }
}

/// `cafactor verify lu|qr`: static DAG soundness verification followed by a
/// checked execution in which every element access is audited against the
/// builder's declared footprints. `--granularity=rect` switches the conflict
/// enumeration to element-exact rects and additionally verifies the tiled
/// PLASMA-style baseline, whose sub-tile split of the diagonal tile the
/// block view cannot represent; `--lint-edges` runs the minimality passes.
/// Exit code 7 for a static violation, 8 for a runtime race, 9 for an
/// out-of-footprint access, 13 when every graph is sound but the lint
/// flags removable edges.
fn cmd_verify(sub: &str, o: &Opts) {
    let a = load_matrix(o);
    let (m, n) = (a.nrows(), a.ncols());
    let p = params(o, n);
    let vopts =
        ca_factor::sched::VerifyOptions { granularity: o.granularity, lint_edges: o.lint_edges };
    let report = match sub {
        "lu" => ca_factor::core::verify_calu_with(m, n, &p, &vopts),
        "qr" => ca_factor::core::verify_caqr_with(m, n, &p, &vopts),
        _ => usage(),
    }
    .unwrap_or_else(|v| {
        eprintln!("cafactor: static soundness violation: {v}");
        exit(soundness_exit_code(&v))
    });
    println!(
        "static verify {sub} {m}x{n}  b={} Tr={} tree={:?}: {report}",
        p.b, p.tr, p.tree
    );
    for w in &report.lookahead_warnings {
        eprintln!("warning: {w}");
    }
    let mut minimality_findings =
        report.lint.as_ref().map_or(0, |l| l.minimality_findings());

    // The tiled baselines alias the diagonal tile at sub-tile granularity
    // (L/V below, U/R above), so they are only verifiable at rect
    // granularity — the block view reports the intentional concurrency as
    // an unordered conflict.
    if o.granularity == ca_factor::sched::Granularity::Rect {
        fn baseline_findings<T>(
            name: &str,
            g: &ca_factor::sched::TaskGraph<T>,
            access: &ca_factor::sched::AccessMap,
            vopts: &ca_factor::sched::VerifyOptions,
            m: usize,
            n: usize,
            b: usize,
        ) -> usize {
            let report =
                ca_factor::sched::verify_graph_with(g, access, vopts).unwrap_or_else(|v| {
                    eprintln!("cafactor: static soundness violation ({name} baseline): {v}");
                    exit(soundness_exit_code(&v))
                });
            println!("static verify {name} baseline {m}x{n}  b={b}: {report}");
            report.lint.as_ref().map_or(0, |l| l.minimality_findings())
        }
        match sub {
            "lu" => {
                let (g, access) = ca_factor::baselines::tiled_lu_task_graph_with_access(m, n, p.b);
                minimality_findings += baseline_findings("tiled LU", &g, &access, &vopts, m, n, p.b);
            }
            "qr" if m >= n => {
                let (g, access) = ca_factor::baselines::tiled_qr_task_graph_with_access(m, n, p.b);
                minimality_findings += baseline_findings("tiled QR", &g, &access, &vopts, m, n, p.b);
            }
            _ => {} // tiled QR handles tall/square matrices only
        }
    }
    if minimality_findings > 0 {
        eprintln!(
            "cafactor: graphs are sound but the minimality lint flagged \
             {minimality_findings} removable edge(s)"
        );
        exit(13);
    }
    let t0 = Instant::now();
    match sub {
        "lu" => {
            let (f, stats) =
                ca_factor::core::try_calu_checked(a.clone(), &p).unwrap_or_else(|e| fail(&e));
            let dt = t0.elapsed().as_secs_f64();
            println!(
                "checked CALU run clean: {} tasks, {dt:.3}s, residual={:.2e}",
                stats.tasks,
                f.residual(&a),
            );
        }
        "qr" => {
            let (f, stats) =
                ca_factor::core::try_caqr_checked(a.clone(), &p).unwrap_or_else(|e| fail(&e));
            let dt = t0.elapsed().as_secs_f64();
            println!(
                "checked CAQR run clean: {} tasks, {dt:.3}s, residual={:.2e}",
                stats.tasks,
                f.residual(&a),
            );
        }
        _ => unreachable!(),
    }
}

/// `cafactor serve`: starts a persistent factorization service, replays a
/// synthetic mixed LU/QR workload (1 in 4 jobs large, the rest small), and
/// prints the service statistics. With `--profile[=FILE]`, writes a combined
/// JSON object `{"serviceStats": …, "traceEvents": […]}` — the trace loads
/// in `chrome://tracing`/Perfetto, and the `serviceStats` member carries the
/// shed/reject/deadline-miss counters alongside it.
fn cmd_serve(o: &Opts) {
    use ca_factor::serve::{
        BatchConfig, ChaosConfig, RetryConfig, ServeError, Service, ServiceConfig,
        SubmitOptions, TelemetryConfig,
    };
    let mut cfg = ServiceConfig::new(o.threads.max(1))
        .with_capacity(o.capacity)
        .with_admission(o.policy);
    if o.metrics.is_some() || o.flight_recorder.is_some() {
        let mut t = TelemetryConfig::default()
            .with_interval(std::time::Duration::from_millis(o.metrics_interval_ms.max(1)))
            .with_max_dumps(o.max_dumps);
        if let Some(f) = &o.metrics {
            t = t.with_metrics_file(f);
        }
        if let Some(depth) = o.flight_recorder {
            t = t.with_flight_recorder(depth);
        }
        if let Some(dir) = &o.dump_dir {
            t = t.with_dump_dir(dir);
        }
        cfg = cfg.with_telemetry(t);
    }
    if o.batch > 0 {
        cfg = cfg.with_batching(BatchConfig::up_to(o.batch));
    }
    if o.deadline_ms > 0 {
        cfg = cfg.with_default_deadline(std::time::Duration::from_millis(o.deadline_ms));
    }
    if let Some(n) = o.retry {
        cfg = cfg.with_retry(RetryConfig::default().with_job_retries(n));
    }
    if let Some(seed) = o.chaos {
        cfg = cfg.with_chaos(ChaosConfig::seeded(seed));
        if o.retry.is_none() {
            // A drill without recovery would just fail jobs; default it on.
            cfg = cfg.with_retry(RetryConfig::default());
        }
    }
    let svc = Service::new(cfg);
    if o.profile.is_some() {
        svc.set_tracing(true);
    }
    let mut rng = seeded_rng(o.seed);
    let mut lu_handles = Vec::new();
    let mut qr_handles = Vec::new();
    let mut invalid = 0u64;
    for i in 0..o.jobs {
        let n = if i % 4 == 0 { 256 } else { 64 };
        let p = {
            let mut p = CaParams::new(o.b.min(n), o.tr, 1);
            p.tree = o.tree;
            p
        };
        let mut opts = SubmitOptions::default().with_params(p);
        if o.tenants > 0 {
            opts = opts.with_tenant(format!("tenant-{}", i % o.tenants));
        }
        let r = if i % 2 == 0 {
            svc.submit_lu(random_uniform(n, n, &mut rng), opts).map(|h| lu_handles.push(h))
        } else {
            svc.submit_qr(random_uniform(n, n, &mut rng), opts).map(|h| qr_handles.push(h))
        };
        if let Err(e) = r {
            match e {
                ServeError::Rejected => {} // counted by the service
                _ => invalid += 1,
            }
        }
    }
    // Track the most severe terminal failure so the drill's exit code is
    // scriptable: corruption > task fault > deadline > shed > other.
    let rank = |e: &ServeError| match e {
        ServeError::Corrupted { .. } => 5,
        ServeError::Failed { .. } => 4,
        ServeError::DeadlineExceeded => 3,
        ServeError::Shed => 2,
        _ => 1,
    };
    let mut worst: Option<ServeError> = None;
    let mut note = |r: Result<(), ServeError>| {
        if let Err(e) = r {
            if worst.as_ref().is_none_or(|w| rank(&e) > rank(w)) {
                worst = Some(e);
            }
        }
    };
    for h in lu_handles {
        note(h.wait().map(|_| ()));
    }
    for h in qr_handles {
        note(h.wait().map(|_| ()));
    }
    let s = svc.stats();
    let policy = match o.policy {
        ca_factor::serve::AdmissionPolicy::Reject => "reject",
        ca_factor::serve::AdmissionPolicy::Block => "block",
        ca_factor::serve::AdmissionPolicy::ShedOldest => "shed",
    };
    println!(
        "serve: {} job(s) offered to {} worker(s)  capacity={} policy={policy} batch={}",
        o.jobs,
        s.workers,
        s.queue_capacity,
        if o.batch > 0 { format!("≤{}", o.batch) } else { "off".to_string() },
    );
    println!(
        "  submitted={} completed={} failed={} cancelled={} rejected={} shed={} \
         deadline_missed={} invalid={invalid}",
        s.submitted, s.completed, s.failed, s.cancelled, s.rejected, s.shed, s.deadline_missed,
    );
    if s.batches_flushed > 0 {
        println!("  batching: {} fused batch(es) covering {} job(s)", s.batches_flushed, s.batched_jobs);
    }
    if o.retry.is_some() || o.chaos.is_some() {
        println!(
            "  recovery: job_retries={} jobs_recovered={} corruption_detected={} probes_run={} \
             mttr p50 {:.2}ms",
            s.job_retries,
            s.jobs_recovered,
            s.corruption_detected,
            s.probes_run,
            s.mttr.p50_s * 1e3,
        );
        let t = &s.task_recovery;
        println!(
            "  tasks: attempts={} retries={} recovered={} exhausted={} restores={}  \
             injected fail/panic/delay/corrupt {}/{}/{}/{}",
            t.attempts,
            t.retries,
            t.recovered_tasks,
            t.exhausted_tasks,
            t.restores,
            t.injected_failures,
            t.injected_panics,
            t.injected_delays,
            t.injected_corruptions,
        );
    }
    println!(
        "  throughput {:.1} jobs/s  occupancy {:.2}  busy {:.3}s / elapsed {:.3}s",
        s.jobs_per_s, s.occupancy, s.busy_s, s.elapsed_s
    );
    let ms = |x: f64| x * 1e3;
    println!(
        "  latency ms  queue p50/p95/p99 {:.2}/{:.2}/{:.2}   exec {:.2}/{:.2}/{:.2}   total {:.2}/{:.2}/{:.2}",
        ms(s.queue_latency.p50_s), ms(s.queue_latency.p95_s), ms(s.queue_latency.p99_s),
        ms(s.exec_latency.p50_s), ms(s.exec_latency.p95_s), ms(s.exec_latency.p99_s),
        ms(s.total_latency.p50_s), ms(s.total_latency.p95_s), ms(s.total_latency.p99_s),
    );
    if let Some(path) = &o.profile {
        let stats_json = serde_json::to_string(&s).expect("serializable");
        let combined =
            format!("{{\"serviceStats\":{stats_json},\"traceEvents\":{}}}", svc.chrome_trace());
        match std::fs::write(path, combined) {
            Ok(()) => println!("service profile written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            }
        }
    }
    svc.shutdown();
    if let Some(path) = &o.metrics {
        println!("metrics snapshot written to {path} (and {path}.json)");
    }
    if let Some(e) = worst {
        eprintln!("cafactor: worst job outcome: {e}");
        exit(serve_exit_code(&e));
    }
}

fn cmd_info(o: &Opts) {
    let a = load_matrix(o);
    let (m, n) = (a.nrows(), a.ncols());
    println!("matrix {m} x {n}");
    println!("  ‖A‖₁ = {:.4e}", norm_one(a.view()));
    println!("  ‖A‖∞ = {:.4e}", ca_factor::matrix::norm_inf(a.view()));
    println!("  ‖A‖F = {:.4e}", ca_factor::matrix::norm_fro(a.view()));
    if m == n {
        let f = calu(a.clone(), &params(o, n));
        println!("  rcond ≈ {:.4e}", f.rcond_estimate(norm_one(a.view())));
        if let Some(bd) = f.breakdown {
            println!("  exactly singular (zero pivot at column {bd})");
        }
    }
}

fn cmd_top(path: &str) {
    use ca_factor::telemetry::{RegistrySnapshot, SeriesValue};
    // `serve --metrics=FILE` writes Prometheus text to FILE and JSON to
    // FILE.json; accept either name here.
    let json_path = format!("{path}.json");
    let text = std::fs::read_to_string(path)
        .or_else(|_| std::fs::read_to_string(&json_path))
        .unwrap_or_else(|e| {
            eprintln!("cannot read {path} (or {json_path}): {e}");
            exit(1)
        });
    let snap: RegistrySnapshot = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(_) => {
            // FILE itself holds the Prometheus text; retry the JSON sibling.
            let t = std::fs::read_to_string(&json_path).unwrap_or_else(|e| {
                eprintln!("{path} is not a JSON snapshot and {json_path} is unreadable: {e}");
                exit(1)
            });
            serde_json::from_str(&t).unwrap_or_else(|e| {
                eprintln!("cannot parse {json_path}: {e}");
                exit(1)
            })
        }
    };
    let fmt_labels = |labels: &[(String, String)]| {
        if labels.is_empty() {
            String::new()
        } else {
            let parts: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("{{{}}}", parts.join(","))
        }
    };
    let mut series = 0usize;
    for fam in &snap.families {
        println!("{}  ({})", fam.name, fam.help);
        for s in &fam.series {
            series += 1;
            let l = fmt_labels(&s.labels);
            match &s.value {
                SeriesValue::Counter(v) => println!("  {l:<40} {v}"),
                SeriesValue::Gauge(v) => println!("  {l:<40} {v:.6}"),
                SeriesValue::Histogram(h) => {
                    let s = h.summary();
                    println!(
                        "  {l:<40} count={} mean={:.2}ms p50={:.2}ms p95={:.2}ms p99={:.2}ms max={:.2}ms",
                        s.count,
                        s.mean_s * 1e3,
                        s.p50_s * 1e3,
                        s.p95_s * 1e3,
                        s.p99_s * 1e3,
                        s.max_s * 1e3,
                    );
                }
            }
        }
    }
    println!("{} famil(ies), {series} series", snap.families.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match (cmd.as_str(), rest.split_first()) {
            ("factor", Some((sub, rest2))) => {
                let o = parse_opts(rest2);
                match sub.as_str() {
                    "lu" => cmd_factor_lu(&o),
                    "qr" => cmd_factor_qr(&o),
                    _ => usage(),
                }
            }
            ("verify", Some((sub, rest2))) => cmd_verify(sub, &parse_opts(rest2)),
            ("solve", _) => {
                let o = parse_opts(rest);
                if o.precision == Precision::F32 {
                    eprintln!("solve runs in f64 (iterative refinement contract)");
                    exit(2);
                }
                cmd_solve(&o)
            }
            ("serve", _) => cmd_serve(&parse_opts(rest)),
            ("info", _) => cmd_info(&parse_opts(rest)),
            ("top", Some((file, _))) => cmd_top(file),
            _ => usage(),
        },
        None => usage(),
    }
}
