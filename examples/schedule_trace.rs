//! Real-execution traces: run multithreaded CALU on actual worker threads
//! and render the wall-clock Gantt chart the scheduler recorded — the live
//! counterpart of the paper's Figures 3 and 4 (which this workspace also
//! regenerates on the simulated machine via `ca-bench --bin traces`).
//!
//! ```text
//! cargo run --release --example schedule_trace [m] [n] [threads]
//! ```

use ca_factor::core::calu_with_stats;
use ca_factor::matrix::{random_uniform, seeded_rng};
use ca_factor::prelude::*;
use ca_factor::sched::ascii_gantt;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    for tr in [1usize, threads.max(2)] {
        let a = random_uniform(m, n, &mut seeded_rng(3));
        let params = CaParams::new(100.min(n), tr, threads);
        let (f, stats) = calu_with_stats(a.clone(), &params);
        println!(
            "CALU {m}x{n}, b={}, Tr={tr}, {threads} threads: {:.3}s over {} tasks, \
             utilization {:.1}%, residual {:.1e}",
            params.b,
            stats.wall_seconds,
            stats.tasks,
            stats.timeline.utilization() * 100.0,
            f.residual(&a),
        );
        println!("(P = panel/tournament, L = L-block, U = U-row, S = update, W = swaps, . = idle)");
        println!("{}", ascii_gantt(&stats.timeline, 100));
    }
    println!("On a machine with ≥{threads} hardware cores, Tr=1 shows the panel-induced");
    println!("idle gaps of the paper's Figure 3 and Tr={threads} closes them (Figure 4).");
    println!("(Inside a single-core container the lanes time-slice, so utilization");
    println!("percentages are scheduling artifacts — use ca-bench's simulated traces.)");
}
