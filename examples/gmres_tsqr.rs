//! Restarted GMRES with a TSQR-orthonormalized Krylov basis — the
//! "s-step"/communication-avoiding Krylov pattern the paper's introduction
//! motivates: build `s` basis vectors with matrix–vector products only,
//! then orthonormalize the whole tall-skinny block in one TSQR instead of
//! `s` rounds of Gram–Schmidt synchronization.
//!
//! The operator here is a 2D Laplacian-like stencil applied matrix-free;
//! the example solves `A x = b` to a relative tolerance and reports how the
//! TSQR block orthonormalization holds up (a monomial Krylov basis is
//! famously ill-conditioned — exactly the stress CA-GMRES papers discuss).
//!
//! ```text
//! cargo run --release --example gmres_tsqr [grid] [s] [restarts]
//! ```

use ca_factor::matrix::{norm_fro, random_uniform, seeded_rng, Matrix};
use ca_factor::prelude::*;

/// y = A·x for the 2D 5-point stencil (grid g×g, n = g²), plus a small
/// shift to keep it nonsingular and nonsymmetric.
fn apply(g: usize, x: &Matrix) -> Matrix {
    let n = g * g;
    assert_eq!(x.nrows(), n);
    let mut y = Matrix::zeros(n, x.ncols());
    for c in 0..x.ncols() {
        for i in 0..g {
            for j in 0..g {
                let k = i * g + j;
                let mut v = 4.2 * x[(k, c)];
                if i > 0 {
                    v -= x[(k - g, c)];
                }
                if i + 1 < g {
                    v -= x[(k + g, c)];
                }
                if j > 0 {
                    v -= 1.1 * x[(k - 1, c)]; // slight asymmetry
                }
                if j + 1 < g {
                    v -= 0.9 * x[(k + 1, c)];
                }
                y[(k, c)] = v;
            }
        }
    }
    y
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let g: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(60);
    let s: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(24);
    let restarts: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(30);
    let n = g * g;
    println!("GMRES({s}) with TSQR basis orthonormalization; n = {n} (grid {g}x{g})\n");

    let x_true = random_uniform(n, 1, &mut seeded_rng(9));
    let b = apply(g, &x_true);
    let bnorm = norm_fro(b.view());
    let mut x = Matrix::zeros(n, 1);

    let qr_params = CaParams::new(s + 1, 8, 4);
    let mut worst_orth = 0.0f64;

    for cycle in 0..restarts {
        // Residual and Krylov block [r, Ar, A²r, …] (monomial basis).
        let r = b.sub_matrix(&apply(g, &x));
        let rnorm = norm_fro(r.view());
        if rnorm / bnorm < 1e-10 {
            println!("converged after {cycle} cycles");
            break;
        }
        let mut kry = Matrix::zeros(n, s + 1);
        let mut col = r.clone();
        for j in 0..=s {
            // Normalize each power to tame the monomial growth.
            let cn = norm_fro(col.view()).max(f64::MIN_POSITIVE);
            for i in 0..n {
                kry[(i, j)] = col[(i, 0)] / cn;
            }
            if j < s {
                col = apply(g, &Matrix::from_fn(n, 1, |i, _| kry[(i, j)]));
            }
        }

        // One TSQR orthonormalizes the whole block: Q spans K_{s+1}(A, r).
        let qr = tsqr_factor(kry, 8, &qr_params);
        let q = qr.q_thin();
        worst_orth = worst_orth.max(ca_factor::matrix::orthogonality(&q));

        // Galerkin solve in the subspace: minimize ‖A(x + Qy) − b‖ via a
        // small dense least-squares on AQ.
        let aq = apply(g, &q);
        let aq_qr = tsqr_factor(aq, 8, &CaParams::new(s + 1, 8, 4));
        let y = aq_qr.solve_ls(&r);
        let dx = q.matmul(&y);
        x = Matrix::from_fn(n, 1, |i, _| x[(i, 0)] + dx[(i, 0)]);

        if cycle % 5 == 0 {
            println!("  cycle {cycle:>3}: ‖r‖/‖b‖ = {:.3e}", rnorm / bnorm);
        }
    }

    let r = b.sub_matrix(&apply(g, &x));
    let rel = norm_fro(r.view()) / bnorm;
    let err = norm_fro(x.sub_matrix(&x_true).view()) / norm_fro(x_true.view());
    println!("\nfinal ‖b−Ax‖/‖b‖ = {rel:.3e}, ‖x−x*‖/‖x*‖ = {err:.3e}");
    println!("worst basis orthogonality across cycles: ‖I−QᵀQ‖ = {worst_orth:.3e}");
    assert!(rel < 1e-8, "GMRES failed to converge: {rel}");
    println!("s-step Krylov solve with one TSQR per {s}-dimensional block ✓");
}
