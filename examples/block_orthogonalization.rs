//! The paper's motivating workload for TSQR (§I, §IV): orthogonalizing a
//! block of vectors, as block iterative methods (block Lanczos/Arnoldi,
//! s-step Krylov) do at every (re)start.
//!
//! A panel of `s` new basis vectors of dimension `m ≫ s` is orthonormalized
//! by the QR of a tall-skinny matrix. We compare three ways to do it —
//! classic BLAS2 `dgeqr2`, blocked LAPACK-style `dgeqrf`, and TSQR — and
//! verify that the resulting basis actually works inside a block power
//! iteration on a synthetic operator.
//!
//! ```text
//! cargo run --release --example block_orthogonalization [m] [s]
//! ```

use ca_factor::kernels::{geqr2, Trans};
use ca_factor::matrix::{norm_max, random_uniform, seeded_rng, Matrix};
use ca_factor::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let s: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(32);
    let mut rng = seeded_rng(7);

    println!("Orthogonalizing a {m} x {s} block of vectors\n");
    let v = random_uniform(m, s, &mut rng);

    // 1. BLAS2 dgeqr2 (what a naive implementation calls).
    let t0 = Instant::now();
    let mut w = v.clone();
    let mut tau = Vec::new();
    geqr2(w.view_mut(), &mut tau);
    let t_blas2 = t0.elapsed().as_secs_f64();
    println!("dgeqr2 (BLAS2)      : {t_blas2:>8.3}s");

    // 2. Blocked dgeqrf (the vendor-library structure).
    let t0 = Instant::now();
    let mut w = v.clone();
    let qr_blocked = ca_factor::baselines::geqrf_blocked(&mut w, 32, 4);
    let t_blocked = t0.elapsed().as_secs_f64();
    println!("dgeqrf (blocked)    : {t_blocked:>8.3}s");

    // 3. TSQR over a binary reduction tree, Tr = 8 (the paper's algorithm).
    let t0 = Instant::now();
    let mut p = CaParams::new(s, 8, 4);
    p.tree = TreeShape::Binary;
    let qr_tsqr = caqr(v.clone(), &p);
    let t_tsqr = t0.elapsed().as_secs_f64();
    println!("TSQR  (Tr=8,binary) : {t_tsqr:>8.3}s   ({:.2}x vs dgeqr2)", t_blas2 / t_tsqr);

    let q = qr_tsqr.q_thin();
    println!("\nTSQR basis quality  : ‖I − QᵀQ‖ = {:.2e}", ca_factor::matrix::orthogonality(&q));
    let _ = qr_blocked;

    // --- Use the basis: one step of a block power iteration -----------------
    // Synthetic SPD-ish operator applied implicitly: A(x) = D x + u (vᵀ x)
    // with a strong rank-1 direction u. The orthonormalized block, after one
    // application + re-orthogonalization, must capture u almost exactly.
    let u = {
        let mut u = random_uniform(m, 1, &mut rng);
        let norm = ca_factor::matrix::norm_fro(u.view());
        for x in u.as_mut_slice() {
            *x /= norm;
        }
        u
    };
    let apply_op = |x: &Matrix| -> Matrix {
        // D = diag(0.1 .. 0.5), spike strength 100 along u.
        let mut y = Matrix::zeros(m, x.ncols());
        for j in 0..x.ncols() {
            for i in 0..m {
                y[(i, j)] = (0.1 + 0.4 * (i as f64 / m as f64)) * x[(i, j)];
            }
        }
        let utx = u.transpose().matmul(x);
        for j in 0..x.ncols() {
            for i in 0..m {
                y[(i, j)] += 100.0 * u[(i, 0)] * utx[(0, j)];
            }
        }
        y
    };

    let aq = apply_op(&q);
    let qr2 = tsqr_factor(aq, 8, &CaParams::new(s, 8, 4));
    let q2 = qr2.q_thin();
    // Residual of u against span(q2): ‖u − Q2 Q2ᵀ u‖.
    let mut qtu = u.clone();
    let proj = {
        let q2t_u = q2.transpose().matmul(&u);
        q2.matmul(&q2t_u)
    };
    qtu = qtu.sub_matrix(&proj);
    println!(
        "block power step    : dominant direction captured to ‖u−QQᵀu‖ = {:.2e}",
        ca_factor::matrix::norm_fro(qtu.view())
    );

    // Sanity: the two QR paths agree on |R| (QR uniqueness up to signs).
    let r_tsqr = qr_tsqr.r();
    let mut w2 = v.clone();
    let mut tau2 = Vec::new();
    geqr2(w2.view_mut(), &mut tau2);
    let mut max_rel = 0.0f64;
    for i in 0..s {
        for j in i..s {
            let d = (r_tsqr[(i, j)].abs() - w2[(i, j)].abs()).abs();
            max_rel = max_rel.max(d / (1.0 + w2[(i, j)].abs()));
        }
    }
    println!("R vs dgeqr2 (|R|)   : max rel diff = {max_rel:.2e}");
    let _ = Trans::No;
    assert!(norm_max(q.view()) <= 1.0 + 1e-12);
}
