//! Randomized low-rank approximation (Halko–Martinsson–Tropp range finder)
//! built on TSQR — a modern workload dominated by exactly the tall-skinny
//! QR the paper optimizes: sketch `Y = A·Ω` (m × k, k ≪ m), orthonormalize
//! `Y` with TSQR, and use `Q` to compress `A ≈ Q (QᵀA)`.
//!
//! ```text
//! cargo run --release --example randomized_lowrank [m] [n] [rank]
//! ```

use ca_factor::matrix::{norm_fro, random_normal, random_uniform, seeded_rng, Matrix};
use ca_factor::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let m: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4000);
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(600);
    let rank: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let oversample = 8;
    let k = rank + oversample;
    let mut rng = seeded_rng(17);

    // Synthetic matrix with known rapidly decaying spectrum:
    // A = U_r diag(sigma) V_rᵀ + noise, sigma_i = 2^{-i}.
    println!("Building {m}x{n} matrix with numerical rank ≈ {rank} …");
    let u = random_normal(m, rank, &mut rng);
    let v = random_normal(n, rank, &mut rng);
    let mut core = Matrix::zeros(rank, rank);
    for i in 0..rank {
        core[(i, i)] = (0.5f64).powi(i as i32);
    }
    let a = {
        let uc = u.matmul(&core);
        let mut a = uc.matmul(&v.transpose());
        let noise = random_uniform(m, n, &mut rng);
        let eps = 1e-9;
        for (x, y) in a.as_mut_slice().iter_mut().zip(noise.as_slice()) {
            *x += eps * y;
        }
        a
    };

    // Stage A: sketch. Y = A·Ω with a Gaussian test matrix.
    let omega = random_normal(n, k, &mut rng);
    let t0 = Instant::now();
    let y = a.matmul(&omega);
    let t_sketch = t0.elapsed().as_secs_f64();

    // Stage B: orthonormalize the tall-skinny sketch with TSQR (Tr = 8).
    let t0 = Instant::now();
    let qr = tsqr_factor(y, 8, &CaParams::new(k, 8, 4));
    let q = qr.q_thin();
    let t_tsqr = t0.elapsed().as_secs_f64();

    // Stage C: compress and measure the approximation error.
    let qta = q.transpose().matmul(&a); // k × n
    let approx = q.matmul(&qta);
    let err = norm_fro(approx.sub_matrix(&a).view()) / norm_fro(a.view());

    println!("sketch  (A·Ω, {m}x{k})      : {t_sketch:>7.3}s");
    println!("TSQR    (orthonormalize Y)  : {t_tsqr:>7.3}s");
    println!("‖A − QQᵀA‖_F / ‖A‖_F        : {err:.3e}");
    println!("‖I − QᵀQ‖_F                 : {:.3e}", ca_factor::matrix::orthogonality(&q));

    // The spectrum decays by 2^-i: with oversampling the rank-k range must
    // capture the matrix to ~sigma_{rank} ≈ 2^-rank + noise floor.
    let target = (0.5f64).powi(rank as i32 - 1) + 1e-6;
    assert!(err < target, "range finder missed the dominant subspace: {err} vs {target}");
    println!("captured the rank-{rank} dominant subspace ✓");
}
