//! Solving dense square systems with the three LU variants in this
//! workspace — CALU (tournament pivoting), LAPACK-style blocked GEPP, and
//! PLASMA-style tiled LU with incremental pivoting — and comparing accuracy
//! and timing head-to-head.
//!
//! ```text
//! cargo run --release --example linear_solver [n]
//! ```

use ca_factor::baselines::{getrf_blocked, tiled_lu, TiledLu};
use ca_factor::matrix::{norm_fro, random_uniform, seeded_rng, Matrix};
use ca_factor::prelude::*;
use std::time::Instant;

fn solve_residual(a: &Matrix, x: &Matrix, b: &Matrix) -> f64 {
    let r = a.matmul(x).sub_matrix(b);
    norm_fro(r.view()) / (norm_fro(a.view()) * norm_fro(x.view())).max(f64::MIN_POSITIVE)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1500);
    let threads = 4;
    let mut rng = seeded_rng(11);
    let a = random_uniform(n, n, &mut rng);
    let x_true = random_uniform(n, 4, &mut rng);
    let b = a.matmul(&x_true);

    println!("Solving a {n} x {n} system with 4 right-hand sides\n");

    // CALU, the paper's algorithm.
    let t0 = Instant::now();
    let f = calu(a.clone(), &CaParams::new(100.min(n), 4, threads));
    let t_fac = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let x = f.solve(&b);
    let t_sol = t0.elapsed().as_secs_f64();
    println!(
        "CALU            : factor {t_fac:>7.3}s  solve {t_sol:>6.3}s  residual {:.2e}",
        solve_residual(&a, &x, &b)
    );

    // Blocked LAPACK-style GEPP (the vendor structure).
    let t0 = Instant::now();
    let mut lu = a.clone();
    let r = getrf_blocked(&mut lu, 64.min(n), threads);
    let t_fac = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let mut x = b.clone();
    r.pivots.apply(x.view_mut());
    ca_factor::kernels::trsm_left_lower_unit(lu.view(), x.view_mut());
    ca_factor::kernels::trsm_left_upper_notrans(lu.view(), x.view_mut());
    let t_sol = t0.elapsed().as_secs_f64();
    println!(
        "blocked dgetrf  : factor {t_fac:>7.3}s  solve {t_sol:>6.3}s  residual {:.2e}",
        solve_residual(&a, &x, &b)
    );

    // Tiled LU with incremental pivoting (the PLASMA structure).
    let t0 = Instant::now();
    let f = tiled_lu(a.clone(), 100.min(n), threads);
    let t_fac = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let x = f.solve(&b);
    let t_sol = t0.elapsed().as_secs_f64();
    println!(
        "tiled dgetrf    : factor {t_fac:>7.3}s  solve {t_sol:>6.3}s  residual {:.2e}",
        TiledLu::solve_residual(&a, &x, &b)
    );

    println!("\nAll three must agree to ~machine precision; incremental pivoting");
    println!("(tiled) is typically the least accurate of the three, tournament");
    println!("pivoting (CALU) tracks partial pivoting — the paper's §II claim.");
}
