//! Quickstart: factor a matrix with multithreaded CALU and CAQR, check the
//! residuals, and solve a linear system.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ca_factor::matrix::{random_uniform, seeded_rng};
use ca_factor::prelude::*;

fn main() {
    let mut rng = seeded_rng(42);

    // --- LU with tournament pivoting (CALU) ---------------------------------
    // A 2000 × 2000 system, factored with panel width b = 100, the panel
    // tournament split over Tr = 4 row blocks, on 4 worker threads.
    let n = 2000;
    let a = random_uniform(n, n, &mut rng);
    let params = CaParams::new(100, 4, 4);
    let f = calu(a.clone(), &params);
    println!("CALU   {n}x{n}: residual ‖ΠA−LU‖/‖A‖ = {:.2e}", f.residual(&a));

    // Solve A x = b and check it.
    let x_true = random_uniform(n, 1, &mut rng);
    let b = a.matmul(&x_true);
    let x = f.solve(&b);
    let err = ca_factor::matrix::norm_max(x.sub_matrix(&x_true).view());
    println!("       solve: max |x − x*| = {err:.2e}");

    // --- QR via TSQR (CAQR) --------------------------------------------------
    // A tall-and-skinny matrix — the shape communication-avoiding QR is for.
    let (m, k) = (20_000, 64);
    let t = random_uniform(m, k, &mut rng);
    let qr = caqr(t.clone(), &CaParams::new(64, 8, 4));
    println!("CAQR   {m}x{k}: residual = {:.2e}, ‖I − QᵀQ‖ = {:.2e}",
        qr.residual(&t), qr.orthogonality());

    // Least squares: min ‖T·y − c‖.
    let y_true = random_uniform(k, 1, &mut rng);
    let c = t.matmul(&y_true);
    let y = qr.solve_ls(&c);
    let lerr = ca_factor::matrix::norm_max(y.sub_matrix(&y_true).view());
    println!("       least squares: max |y − y*| = {lerr:.2e}");
}
