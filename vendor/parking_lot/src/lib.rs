//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Implements the subset the workspace uses: `Mutex` (non-poisoning `lock`,
//! `into_inner`) and `Condvar` (`wait` on a guard, `notify_one`,
//! `notify_all`). Poisoned std locks are transparently recovered — like
//! `parking_lot`, a panic while holding the lock does not poison it for
//! other threads.

use std::ops::{Deref, DerefMut};
use std::sync as stdsync;

/// Mutex with the `parking_lot` API: `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: stdsync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<stdsync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: stdsync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(stdsync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(stdsync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Condition variable with the `parking_lot` API: `wait` takes `&mut guard`.
#[derive(Default)]
pub struct Condvar {
    inner: stdsync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self { inner: stdsync::Condvar::new() }
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1usize);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let woke = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut g = m.lock();
                while !*g {
                    cv.wait(&mut g);
                }
                woke.fetch_add(1, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_all();
        });
        assert_eq!(woke.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Mutex::new(7usize);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("poison attempt");
        }));
        assert_eq!(*m.lock(), 7);
    }
}
