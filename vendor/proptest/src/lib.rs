//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace uses: the
//! `proptest! { #![proptest_config(..)] fn name(arg in strategy, ..) {..} }`
//! macro, range strategies, `Just`, `prop_map`, `prop_oneof!`,
//! `prop_assert!` and `prop_assert_eq!`. Case generation is deterministic
//! (seeded per test name) with mild biasing toward range endpoints; there is
//! no shrinking — a failing case reports its inputs instead.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::Prng;
    use std::ops::Range;

    /// Generates values of `Self::Value` from a deterministic PRNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, prng: &mut Prng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _prng: &mut Prng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter applying a function to every generated value.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, prng: &mut Prng) -> U {
            (self.f)(self.inner.sample(prng))
        }
    }

    /// Uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, prng: &mut Prng) -> T {
            let i = prng.below(self.options.len() as u64) as usize;
            self.options[i].sample(prng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, prng: &mut Prng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty strategy range");
                    // Bias: hit the endpoints now and then so edge cases
                    // (smallest matrix, last block) are always exercised.
                    match prng.below(8) {
                        0 => self.start,
                        1 => ((self.end as i128) - 1) as $t,
                        _ => ((self.start as i128)
                            + (prng.next_u64() as i128).rem_euclid(span)) as $t,
                    }
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, prng: &mut Prng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            if prng.below(16) == 0 {
                self.start
            } else {
                self.start + prng.next_f64() * (self.end - self.start)
            }
        }
    }
}

pub mod test_runner {
    //! The per-test configuration and deterministic PRNG.

    /// How many cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator, seeded from the test name.
    pub struct Prng {
        state: u64,
    }

    impl Prng {
        /// Seeds the generator from a test name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next double in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$attr:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut prng = $crate::test_runner::Prng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prng);)+
                    let inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, message, inputs
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, reporting the generated inputs on
/// failure instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", left, right
            ));
        }
    }};
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn parity_strategy() -> impl Strategy<Value = bool> {
        prop_oneof![Just(true), Just(false)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..17, x in -2.0f64..2.0, even in parity_strategy()) {
            prop_assert!((3..17).contains(&n), "n out of range: {}", n);
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert_eq!(even, even);
        }

        #[test]
        fn map_applies_function(k in (1usize..5).prop_map(|v| v * 10)) {
            prop_assert!(k % 10 == 0 && (10..50).contains(&k));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::Prng::from_name("t");
        let mut b = crate::test_runner::Prng::from_name("t");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    fn edge_bias_hits_endpoints() {
        use crate::strategy::Strategy;
        let mut prng = crate::test_runner::Prng::from_name("edges");
        let s = 10usize..20;
        let draws: Vec<usize> = (0..200).map(|_| s.sample(&mut prng)).collect();
        assert!(draws.contains(&10) && draws.contains(&19));
        assert!(draws.iter().all(|&v| (10..20).contains(&v)));
    }
}
