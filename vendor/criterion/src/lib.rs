//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`/`criterion_main!`) with a deliberately tiny runner:
//! each benchmark closure runs once for timing. `cargo test` executes bench
//! targets in test mode, so keeping this fast matters more than statistics;
//! real measurement in this workspace goes through `ca-bench`'s calibrated
//! simulator instead.

use std::fmt::Display;
use std::time::Instant;

/// Returns its input while hiding it from the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter string.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Declared per-iteration workload, echoed in the output.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark closure.
pub struct Bencher {
    elapsed: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` and records its wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed().as_secs_f64();
        self.iters = 1;
    }
}

fn run_one(group: Option<&str>, label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: 0.0, iters: 0 };
    f(&mut b);
    let name = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    let per_iter = if b.iters > 0 { b.elapsed / b.iters as f64 } else { 0.0 };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>10.3} Melem/s", n as f64 / per_iter / 1e6)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>10.3} MB/s", n as f64 / per_iter / 1e6)
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {:>12.3} ms{rate}", per_iter * 1e3);
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the declared workload for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(Some(&self.name), &id.label, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, name, None, &mut f);
        self
    }
}

/// Declares a benchmark entry point running `targets` with `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("unit");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter("10x10"), &(), |b, _| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(3) * 14));
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = sample_bench
    );

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }
}
