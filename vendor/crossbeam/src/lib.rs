//! Offline stand-in for `crossbeam`.
//!
//! Only the `deque` module is provided (that is all the workspace uses):
//! `Worker`/`Stealer`/`Injector` with the same API shape as
//! `crossbeam-deque`, implemented with mutex-protected `VecDeque`s instead
//! of lock-free buffers. Correctness and the LIFO-owner / FIFO-stealer
//! discipline are preserved; raw throughput is not the point — the
//! schedulers built on top are measured through the simulator.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The attempt lost a race and may be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether the attempt should be retried.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether the queue was empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }

        /// Chains steal attempts: keeps a success, otherwise consults `f`,
        /// remembering whether either side saw a retry.
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Success(v) => Steal::Success(v),
                Steal::Retry => match f() {
                    Steal::Empty => Steal::Retry,
                    other => other,
                },
                Steal::Empty => f(),
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut saw_retry = false;
            for s in iter {
                match s {
                    Steal::Success(v) => return Steal::Success(v),
                    Steal::Retry => saw_retry = true,
                    Steal::Empty => {}
                }
            }
            if saw_retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    /// Owner side of a work-stealing deque.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a LIFO deque (owner pops its most recent push).
        pub fn new_lifo() -> Self {
            Self { queue: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Creates a FIFO deque.
        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pops from the owner's end (LIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_back()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Creates a stealer handle for other threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    /// Thief side of a work-stealing deque.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the victim's cold end (FIFO).
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }
    }

    /// Shared FIFO injector queue.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Self { queue: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Steals one task.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `dest` and pops one task to return.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = lock(&self.queue);
            match q.pop_front() {
                None => Steal::Empty,
                Some(first) => {
                    // Move up to half the remaining queue (capped) over to
                    // the destination worker, oldest first.
                    let batch = (q.len() / 2).min(16);
                    for _ in 0..batch {
                        match q.pop_front() {
                            Some(v) => dest.push(v),
                            None => break,
                        }
                    }
                    Steal::Success(first)
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn owner_is_lifo_stealer_is_fifo() {
            let w = Worker::new_lifo();
            let s = w.stealer();
            w.push(1);
            w.push(2);
            w.push(3);
            assert_eq!(s.steal().success(), Some(1));
            assert_eq!(w.pop(), Some(3));
            assert_eq!(w.pop(), Some(2));
            assert!(w.pop().is_none());
            assert!(s.steal().is_empty());
        }

        #[test]
        fn injector_batch_and_pop() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::new_lifo();
            assert_eq!(inj.steal_batch_and_pop(&w).success(), Some(0));
            // Some of the remainder moved into the local worker.
            assert!(!w.is_empty());
        }

        #[test]
        fn steal_collect_prefers_success() {
            let attempts = vec![Steal::Empty, Steal::Retry, Steal::Success(7), Steal::Empty];
            let s: Steal<i32> = attempts.into_iter().collect();
            assert_eq!(s.success(), Some(7));
            let attempts: Vec<Steal<i32>> = vec![Steal::Empty, Steal::Retry];
            let s: Steal<i32> = attempts.into_iter().collect();
            assert!(s.is_retry());
        }
    }
}
