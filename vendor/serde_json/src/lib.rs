//! Offline stand-in for `serde_json`, built on the local `serde` crate's
//! value tree: `to_string`/`to_string_pretty` render a `Serialize` type's
//! value tree as JSON text, `from_str` parses JSON text and hands the tree
//! to `Deserialize`.

pub use serde::value::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_json_compact(&value.to_value()))
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::value::to_json_pretty(&value.to_value()))
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let v = serde::value::from_json(text)?;
    T::deserialize(&v)
}

/// Converts a `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Converts a [`Value`] into a `Deserialize` type.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T> {
    T::deserialize(&v)
}

/// Builds a [`Value`] from a JSON-looking literal.
///
/// Supports object literals with string-literal keys, array literals, and
/// `null`; every value position takes a Rust expression convertible into
/// [`Value`] via `Into` — including another `json!` invocation, which is how
/// nested objects are written:
///
/// ```
/// let tid = 3usize;
/// let e = serde_json::json!({
///     "name": "thread_name", "ph": "M", "tid": tid,
///     "args": serde_json::json!({"name": format!("core {tid}")}),
/// });
/// assert_eq!(e["args"]["name"], "core 3");
/// ```
///
/// Unlike upstream `serde_json`, nested object/array *literals* in value
/// position must be wrapped in their own `json!` call.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( (($key).to_string(), $crate::Value::from($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn primitives_roundtrip() {
        let xs = vec![(String::from("a"), vec![1.0f64, 2.5])];
        let text = to_string(&xs).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn map_roundtrip() {
        let mut m = HashMap::new();
        m.insert("gemm".to_string(), 3.5e9f64);
        m.insert("trsm".to_string(), 2.0e9f64);
        let text = to_string_pretty(&m).unwrap();
        let back: HashMap<String, f64> = from_str(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn value_untyped_access() {
        let v: Value = from_str(r#"[{"ph":"X","dur":1500000}]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0]["ph"], "X");
        assert_eq!(arr[0]["dur"], 1.5e6);
    }
}
