//! The owned value tree all (de)serialization goes through, plus the shared
//! error type. `serde_json` re-exports [`Value`] so user code can treat it
//! as `serde_json::Value`.

use std::fmt;

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as an integer, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// The numeric value as a signed integer, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(x) if x.fract() == 0.0 => Some(*x as i64),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member by key, as a `Result` for derive-generated code.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key).ok_or_else(|| Error::new(format!("missing field `{key}`")))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<char> for Value {
    fn from(c: char) -> Self {
        Value::String(c.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

macro_rules! value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self {
                Value::Number(x as f64)
            }
        }
    )*};
}
value_from_number!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_number {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other.as_f64() == Some(*self as f64)
            }
        }
    )*};
}
value_eq_number!(f64, f32, u32, u64, usize, i32, i64);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_json_compact(self))
    }
}

/// Writes `v` as compact JSON text.
pub fn to_json_compact(v: &Value) -> String {
    let mut out = String::new();
    write_json(v, None, 0, &mut out);
    out
}

/// Writes `v` as pretty-printed JSON text (2-space indent).
pub fn to_json_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_json(v, Some(2), 0, &mut out);
    out
}

fn write_json(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => write_number(*x, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            items.iter().map(|item| (None, item)),
            ('[', ']'),
            indent,
            level,
            out,
        ),
        Value::Object(pairs) => write_seq(
            pairs.iter().map(|(k, v)| (Some(k.as_str()), v)),
            ('{', '}'),
            indent,
            level,
            out,
        ),
    }
}

fn write_seq<'a>(
    items: impl ExactSizeIterator<Item = (Option<&'a str>, &'a Value)>,
    (open, close): (char, char),
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) {
    out.push(open);
    let n = items.len();
    for (i, (key, item)) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        if let Some(k) = key {
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
        }
        write_json(item, indent, level + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

fn write_number(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // {:?} prints the shortest string that round-trips the f64.
        let _ = write!(out, "{x:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
pub fn from_json(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::new(format!("expected `{lit}` at byte {pos}", pos = *pos)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input".to_string())),
        Some(b'n') => expect(b, pos, "null").map(|_| Value::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}", pos = *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}", pos = *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Value::Number),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}", pos = *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string".to_string())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("bad \\u escape".to_string()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape".to_string()))?,
                            16,
                        )
                        .map_err(|_| Error::new("bad \\u escape".to_string()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("bad escape".to_string())),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8".to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, Error> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| Error::new(format!("invalid number at byte {start}")))
}

/// Shared (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with `message`.
    pub fn new(message: String) -> Self {
        Self { message }
    }

    /// A type-mismatch error: expected `what`, found `found`.
    pub fn mismatch(what: &str, found: &Value) -> Self {
        Self::new(format!("expected {what}, found {found:?}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("x\"y".to_string())),
            ("xs".to_string(), Value::Array(vec![Value::Number(1.0), Value::Number(1.5)])),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let text = to_json_compact(&v);
        let back = from_json(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_print_without_point() {
        let mut s = String::new();
        write_number(1.5e6, &mut s);
        assert_eq!(s, "1500000");
        s.clear();
        write_number(0.25, &mut s);
        assert_eq!(s, "0.25");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Array(vec![Value::Object(vec![(
            "k".to_string(),
            Value::Array(vec![Value::Number(-3.0)]),
        )])]);
        let text = to_json_pretty(&v);
        assert!(text.contains('\n'));
        assert_eq!(from_json(&text).unwrap(), v);
    }

    #[test]
    fn index_and_eq_sugar() {
        let v = from_json(r#"[{"ph":"X","tid":1,"dur":1500000.0}]"#).unwrap();
        assert_eq!(v[0]["ph"], "X");
        assert_eq!(v[0]["tid"], 1);
        assert_eq!(v[0]["dur"], 1.5e6);
        assert!(v[0]["missing"].is_null());
    }
}
