//! Offline stand-in for `serde`.
//!
//! Instead of serde's zero-copy visitor architecture, this crate serializes
//! through an owned [`value::Value`] tree: `Serialize` renders a value tree,
//! `Deserialize` reads one back. `serde_json` (the sibling stand-in) turns
//! value trees into JSON text and back. The `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` macros come from the local `serde_derive` and
//! support named-field structs and fieldless enums — the shapes used in this
//! workspace.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

/// Types renderable as a [`value::Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> value::Value;
}

/// Types reconstructible from a [`value::Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` back from a value tree.
    fn deserialize(v: &value::Value) -> Result<Self, value::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

use value::Value;

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
serialize_float!(f32, f64);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
serialize_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across runs.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter().map(|k| (k.clone(), self[k].to_value())).collect(),
        )
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

use value::Error;

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::mismatch("number", v))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let x = v.as_f64().ok_or_else(|| Error::mismatch("integer", v))?;
                Ok(x as $t)
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::mismatch("bool", v))
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::mismatch("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::mismatch("single-char string", v)),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::mismatch("string", v))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::mismatch("array", v))?;
        arr.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($($n:tt $t:ident),+; $len:expr)),+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::mismatch("tuple array", v))?;
                if arr.len() != $len {
                    return Err(Error::new(format!(
                        "expected array of length {}, got {}", $len, arr.len()
                    )));
                }
                Ok(($($t::deserialize(&arr[$n])?,)+))
            }
        }
    )+};
}
deserialize_tuple!((0 A; 1), (0 A, 1 B; 2), (0 A, 1 B, 2 C; 3), (0 A, 1 B, 2 C, 3 D; 4));

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::mismatch("object", v))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::mismatch("object", v))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
