//! Offline stand-in for `rayon`.
//!
//! Provides `into_par_iter().for_each(..)` over anything iterable, executed
//! with `std::thread::scope` across `available_parallelism` threads. That is
//! the only rayon surface the workspace uses (parallel column-strip updates
//! in the vendor-BLAS stand-ins).

/// Parallel iterator over an eagerly collected set of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Minimal parallel-iterator interface: `for_each`.
pub trait ParallelIterator: Sized {
    /// The item type.
    type Item: Send;

    /// Applies `op` to every item, potentially in parallel.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Send + Sync;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn for_each<F>(self, op: F)
    where
        F: Fn(T) + Send + Sync,
    {
        let n = self.items.len();
        if n == 0 {
            return;
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        if threads <= 1 {
            for item in self.items {
                op(item);
            }
            return;
        }
        let chunk = n.div_ceil(threads);
        let mut items = self.items;
        std::thread::scope(|scope| {
            while !items.is_empty() {
                let take = chunk.min(items.len());
                let batch: Vec<T> = items.drain(..take).collect();
                let op = &op;
                scope.spawn(move || {
                    for item in batch {
                        op(item);
                    }
                });
            }
        });
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = ParIter<I::Item>;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter { items: self.into_iter().collect() }
    }
}

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let sum = AtomicUsize::new(0);
        (1..=100usize).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn empty_input_is_fine() {
        Vec::<usize>::new().into_par_iter().for_each(|_| panic!("no items expected"));
    }
}
