//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the local `serde` crate's value-tree `Serialize` /
//! `Deserialize` traits. Supports exactly the shapes this workspace derives
//! on: structs with named fields (optionally lifetime-generic, `Serialize`
//! only) and enums with unit variants. Anything else fails loudly at compile
//! time rather than generating wrong code.
//!
//! Parsing is done directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which keeps the build offline); code generation goes through `format!`
//! and `str::parse`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    /// Generic parameter list without the angle brackets (e.g. `'a`), empty
    /// when the type is not generic. Only lifetime params are supported.
    generics: String,
    kind: Kind,
}

enum Kind {
    /// Named fields in declaration order.
    Struct(Vec<String>),
    /// Unit variants in declaration order.
    Enum(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    let lt = if item.generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.generics)
    };
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::value::Value::Object(::std::vec![{pairs}])")
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::value::Value::String(\
                         ::std::string::String::from(\"{v}\")),"
                    )
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let code = format!(
        "impl{lt} ::serde::Serialize for {name}{lt} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    );
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    assert!(
        item.generics.is_empty(),
        "serde_derive stand-in: Deserialize on generic types is not supported"
    );
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(v.field(\"{f}\")?)?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok(Self {{ {inits} }})")
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("::std::option::Option::Some(\"{v}\") => \
                             ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            format!(
                "match v.as_str() {{ {arms} other => ::std::result::Result::Err(\
                 ::serde::value::Error::new(::std::format!(\
                 \"unknown variant {{other:?}} for {name}\"))) }}"
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::value::Value) \
             -> ::std::result::Result<Self, ::serde::value::Error> {{ {body} }}\n\
         }}"
    );
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut is_enum = false;
    // Header: attributes / visibility / `struct` / `enum`.
    loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(other) => panic!("serde_derive stand-in: unexpected token `{other}` in item header"),
            None => panic!("serde_derive stand-in: ran out of tokens before struct/enum keyword"),
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected type name, got {other:?}"),
    };
    // Optional generics — lifetimes only.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut last_was_quote = false;
            while depth > 0 {
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                        depth += 1;
                        generics.push('<');
                        last_was_quote = false;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth > 0 {
                            generics.push('>');
                        }
                        last_was_quote = false;
                    }
                    Some(TokenTree::Punct(p)) => {
                        generics.push(p.as_char());
                        last_was_quote = p.as_char() == '\'';
                    }
                    Some(TokenTree::Ident(id)) => {
                        assert!(
                            last_was_quote,
                            "serde_derive stand-in: type parameters are not supported \
                             (only lifetimes); offending parameter `{id}` on `{name}`"
                        );
                        generics.push_str(&id.to_string());
                        last_was_quote = false;
                    }
                    Some(other) => panic!("serde_derive stand-in: unexpected token `{other}` in generics"),
                    None => panic!("serde_derive stand-in: unterminated generics on `{name}`"),
                }
            }
        }
    }
    // Body group.
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde_derive stand-in: unit/tuple structs are not supported (`{name}`)")
            }
            Some(_) => continue, // where-clauses etc. — skipped
            None => panic!("serde_derive stand-in: `{name}` has no braced body"),
        }
    };
    let kind = if is_enum {
        Kind::Enum(parse_variants(body, &name))
    } else {
        Kind::Struct(parse_fields(body, &name))
    };
    Input { name, generics, kind }
}

fn parse_fields(body: TokenStream, name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("serde_derive stand-in: unexpected token `{other}` in fields of `{name}`")
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive stand-in: expected `:` after field `{field}` of `{name}`, got {other:?}"
            ),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
        fields.push(field);
    }
}

fn parse_variants(body: TokenStream, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let variant = loop {
            match iter.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("serde_derive stand-in: unexpected token `{other}` in variants of `{name}`")
                }
            }
        };
        match iter.next() {
            None => {
                variants.push(variant);
                return variants;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive stand-in: data-carrying variant `{name}::{variant}` is not supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                loop {
                    match iter.next() {
                        None => {
                            variants.push(variant);
                            return variants;
                        }
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => continue,
                    }
                }
                variants.push(variant);
            }
            Some(other) => panic!(
                "serde_derive stand-in: unexpected token `{other}` after variant `{name}::{variant}`"
            ),
        }
    }
}
