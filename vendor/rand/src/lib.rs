//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins its external dependencies to local path crates so the
//! build needs no network access. This crate reimplements the *subset* of the
//! `rand 0.8` API the workspace uses — `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`/`rngs::SmallRng`, `Rng::{gen_range, gen_bool}` and
//! `distributions::{Distribution, Uniform}` — on top of a SplitMix64 core.
//!
//! Streams are deterministic and seed-sensitive but do **not** match the
//! upstream `rand` byte streams; everything in this workspace that depends on
//! reproducibility only requires "same seed → same sequence".

/// Advances a SplitMix64 state and returns the next output word.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a raw word to a double in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Core RNG interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (all SplitMix64 under the hood).

    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix once so consecutive seeds give uncorrelated streams.
            let mut state = seed ^ 0xA076_1D64_78BD_642F;
            splitmix64(&mut state);
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Deterministic stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
            splitmix64(&mut state);
            Self { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod distributions {
    //! The `Distribution` trait and a uniform distribution over ranges.

    use super::{unit_f64, Rng};

    /// Types that can produce samples of `T` given an RNG.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)` or `[lo, hi]`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
        inclusive: bool,
    }

    impl<T> Uniform<T> {
        /// Uniform over the half-open interval `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Self { lo, hi, inclusive: false }
        }

        /// Uniform over the closed interval `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            Self { lo, hi, inclusive: true }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            let u = if self.inclusive {
                // Top 53 bits scaled so both endpoints are reachable.
                (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_991.0)
            } else {
                unit_f64(rng.next_u64())
            };
            self.lo + u * (self.hi - self.lo)
        }
    }

    macro_rules! uniform_int_distribution {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Uniform<$t> {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    let lo = self.lo as i128;
                    let hi = self.hi as i128;
                    let span = hi - lo + if self.inclusive { 1 } else { 0 };
                    assert!(span > 0, "empty uniform range");
                    (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )*};
    }
    uniform_int_distribution!(usize, u32, u64, i32, i64);

    pub mod uniform {
        //! Range sampling used by `Rng::gen_range`.

        use super::super::{unit_f64, RngCore};
        use std::ops::{Range, RangeInclusive};

        /// Ranges that `Rng::gen_range` accepts.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! int_sample_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let span = (self.end as i128) - (self.start as i128);
                        assert!(span > 0, "empty gen_range range");
                        ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                        assert!(span > 0, "empty gen_range range");
                        ((*self.start() as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
                    }
                }
            )*};
        }
        int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty gen_range range");
                self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_991.0);
                lo + u * (hi - lo)
            }
        }
    }

    // Re-export matching rand 0.8's module layout.
    pub use uniform::SampleRange;
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Uniform::new_inclusive(-1.0f64, 1.0);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&x));
        }
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(1.0..100.0);
            assert!((1.0..100.0).contains(&x));
            let k: i64 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&k));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }
}
