//! Matrix norms and the residual measures used to validate factorizations.

use crate::matrix::Matrix;
use crate::view::MatView;

/// Frobenius norm `sqrt(sum a_ij^2)`.
pub fn norm_fro(a: MatView<'_>) -> f64 {
    let mut s = 0.0;
    for j in 0..a.ncols() {
        for &x in a.col(j) {
            s += x * x;
        }
    }
    s.sqrt()
}

/// One-norm: maximum absolute column sum.
pub fn norm_one(a: MatView<'_>) -> f64 {
    let mut m = 0.0f64;
    for j in 0..a.ncols() {
        let s: f64 = a.col(j).iter().map(|x| x.abs()).sum();
        m = m.max(s);
    }
    m
}

/// Infinity-norm: maximum absolute row sum.
pub fn norm_inf(a: MatView<'_>) -> f64 {
    let mut sums = vec![0.0f64; a.nrows()];
    for j in 0..a.ncols() {
        for (i, &x) in a.col(j).iter().enumerate() {
            sums[i] += x.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Max-norm: largest absolute entry.
pub fn norm_max(a: MatView<'_>) -> f64 {
    a.max_abs()
}

/// Relative LU residual `‖P·A − L·U‖_F / ‖A‖_F`.
///
/// `perm[i]` gives the original row of `A` that the factorization moved to
/// position `i`; `l` is `m × k` unit-lower, `u` is `k × n` upper.
pub fn lu_residual(a: &Matrix, perm: &[usize], l: &Matrix, u: &Matrix) -> f64 {
    assert_eq!(perm.len(), a.nrows());
    let lu = l.matmul(u);
    let mut pa = Matrix::zeros(a.nrows(), a.ncols());
    for i in 0..a.nrows() {
        for j in 0..a.ncols() {
            pa[(i, j)] = a[(perm[i], j)];
        }
    }
    let diff = pa.sub_matrix(&lu);
    let na = norm_fro(a.view());
    if na == 0.0 {
        norm_fro(diff.view())
    } else {
        norm_fro(diff.view()) / na
    }
}

/// Relative QR residual `‖A − Q·R‖_F / ‖A‖_F`.
pub fn qr_residual(a: &Matrix, q: &Matrix, r: &Matrix) -> f64 {
    let qr = q.matmul(r);
    let diff = a.sub_matrix(&qr);
    let na = norm_fro(a.view());
    if na == 0.0 {
        norm_fro(diff.view())
    } else {
        norm_fro(diff.view()) / na
    }
}

/// Orthogonality measure `‖I − QᵀQ‖_F`.
pub fn orthogonality(q: &Matrix) -> f64 {
    let qtq = q.transpose().matmul(q);
    let n = qtq.nrows();
    let diff = qtq.sub_matrix(&Matrix::identity(n));
    norm_fro(diff.view())
}

/// Element growth factor `max_ij |U_ij| / max_ij |A_ij|` — the classic
/// stability diagnostic for Gaussian elimination (Trefethen & Schreiber).
pub fn growth_factor(a: &Matrix, u: &Matrix) -> f64 {
    let ma = norm_max(a.view());
    if ma == 0.0 {
        return 0.0;
    }
    norm_max(u.view()) / ma
}

/// A residual threshold of `tol * eps * max(m, n)` — the usual LAPACK-style
/// acceptance test scale for an `m × n` problem.
pub fn residual_threshold(m: usize, n: usize, tol: f64) -> f64 {
    tol * f64::EPSILON * (m.max(n) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_of_known_matrix() {
        // [[1, -2], [3, 4]]
        let a = Matrix::from_rows(2, 2, &[1.0, -2.0, 3.0, 4.0]);
        assert!((norm_fro(a.view()) - (30.0f64).sqrt()).abs() < 1e-15);
        assert_eq!(norm_one(a.view()), 6.0); // col sums: 4, 6
        assert_eq!(norm_inf(a.view()), 7.0); // row sums: 3, 7
        assert_eq!(norm_max(a.view()), 4.0);
    }

    #[test]
    fn norms_of_empty_matrix_are_zero() {
        let a = Matrix::zeros(0, 0);
        assert_eq!(norm_fro(a.view()), 0.0);
        assert_eq!(norm_one(a.view()), 0.0);
        assert_eq!(norm_inf(a.view()), 0.0);
    }

    #[test]
    fn exact_lu_has_zero_residual() {
        // A = L*U with trivial permutation.
        let l = Matrix::from_rows(2, 2, &[1.0, 0.0, 0.5, 1.0]);
        let u = Matrix::from_rows(2, 2, &[4.0, 2.0, 0.0, 3.0]);
        let a = l.matmul(&u);
        let perm = vec![0, 1];
        assert!(lu_residual(&a, &perm, &l, &u) < 1e-15);
    }

    #[test]
    fn permuted_lu_residual_uses_perm() {
        let l = Matrix::from_rows(2, 2, &[1.0, 0.0, 0.5, 1.0]);
        let u = Matrix::from_rows(2, 2, &[4.0, 2.0, 0.0, 3.0]);
        let pa = l.matmul(&u);
        // A is pa with rows swapped; perm = [1, 0] maps back.
        let a = Matrix::from_rows(2, 2, &[pa[(1, 0)], pa[(1, 1)], pa[(0, 0)], pa[(0, 1)]]);
        assert!(lu_residual(&a, &[1, 0], &l, &u) < 1e-15);
        assert!(lu_residual(&a, &[0, 1], &l, &u) > 0.1);
    }

    #[test]
    fn identity_is_orthogonal() {
        let q = Matrix::identity(5);
        assert!(orthogonality(&q) < 1e-15);
        let mut q2 = Matrix::identity(5);
        q2[(0, 0)] = 2.0;
        assert!(orthogonality(&q2) > 1.0);
    }

    #[test]
    fn growth_factor_of_no_growth_is_at_most_one() {
        let a = Matrix::from_rows(2, 2, &[4.0, 2.0, 0.0, 3.0]);
        // U == A here.
        assert_eq!(growth_factor(&a, &a), 1.0);
    }
}
