//! Matrix Market I/O (dense `array` and sparse `coordinate` formats,
//! real/integer, general/symmetric) — enough to exchange matrices with the
//! usual test collections and with the `cafactor` CLI.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem, with a description.
    Parse(String),
}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

impl core::fmt::Display for MmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(s) => write!(f, "Matrix Market parse error: {s}"),
        }
    }
}

impl std::error::Error for MmError {}

fn parse_err(s: impl Into<String>) -> MmError {
    MmError::Parse(s.into())
}

/// Reads a Matrix Market stream into a dense [`Matrix`], generic over the
/// element type (`read_matrix_market::<f32>` for the single-precision tier).
///
/// Supports `array` (dense, column-major) and `coordinate` (sparse triples,
/// materialized densely) formats with `real` or `integer` fields, `general`
/// or `symmetric` symmetry. Values are parsed in `f64` and rounded once via
/// [`Scalar::from_f64`]; because `f64` carries more than twice an `f32`'s
/// precision, that double rounding is exact for any decimal string an `f32`
/// writer emits, so `f32` files roundtrip bitwise.
pub fn read_matrix_market<T: Scalar>(reader: impl Read) -> Result<Matrix<T>, MmError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty stream"))??;
    let h: Vec<String> = header.split_whitespace().map(|t| t.to_ascii_lowercase()).collect();
    if h.len() < 4 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(parse_err(format!("bad header: {header}")));
    }
    let format = h[2].as_str();
    let field = h[3].as_str();
    let symmetry = h.get(4).map(|s| s.as_str()).unwrap_or("general").to_string();
    if !matches!(field, "real" | "integer" | "double") {
        return Err(parse_err(format!("unsupported field type {field}")));
    }
    if !matches!(symmetry.as_str(), "general" | "symmetric") {
        return Err(parse_err(format!("unsupported symmetry {symmetry}")));
    }

    // Skip comments; first data line is the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| parse_err(format!("bad size entry {t}"))))
        .collect::<Result<_, _>>()?;

    let mut numbers = Vec::new();
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        for tok in t.split_whitespace() {
            numbers.push(tok.to_string());
        }
    }

    match format {
        "array" => {
            let [m, n] = dims[..] else {
                return Err(parse_err("array size line must be 'm n'"));
            };
            let expect = if symmetry == "symmetric" { n * (n + 1) / 2 } else { m * n };
            if numbers.len() != expect {
                return Err(parse_err(format!("expected {expect} entries, got {}", numbers.len())));
            }
            let vals: Vec<T> = numbers
                .iter()
                .map(|t| {
                    t.parse::<f64>()
                        .map(T::from_f64)
                        .map_err(|_| parse_err(format!("bad value {t}")))
                })
                .collect::<Result<_, _>>()?;
            if symmetry == "symmetric" {
                if m != n {
                    return Err(parse_err("symmetric array must be square"));
                }
                let mut a = Matrix::<T>::zeros(n, n);
                let mut it = vals.into_iter();
                for j in 0..n {
                    for i in j..n {
                        let v = it.next().expect("counted");
                        a[(i, j)] = v;
                        a[(j, i)] = v;
                    }
                }
                Ok(a)
            } else {
                Ok(Matrix::from_vec(vals, m, n))
            }
        }
        "coordinate" => {
            let [m, n, nnz] = dims[..] else {
                return Err(parse_err("coordinate size line must be 'm n nnz'"));
            };
            if numbers.len() != nnz * 3 {
                return Err(parse_err(format!(
                    "expected {} tokens for {nnz} triples, got {}",
                    nnz * 3,
                    numbers.len()
                )));
            }
            let mut a = Matrix::<T>::zeros(m, n);
            for t in numbers.chunks(3) {
                let i: usize =
                    t[0].parse().map_err(|_| parse_err(format!("bad row index {}", t[0])))?;
                let j: usize =
                    t[1].parse().map_err(|_| parse_err(format!("bad col index {}", t[1])))?;
                let v: f64 =
                    t[2].parse().map_err(|_| parse_err(format!("bad value {}", t[2])))?;
                if i == 0 || j == 0 || i > m || j > n {
                    return Err(parse_err(format!("index ({i},{j}) out of bounds {m}x{n}")));
                }
                a[(i - 1, j - 1)] = T::from_f64(v);
                if symmetry == "symmetric" && i != j {
                    a[(j - 1, i - 1)] = T::from_f64(v);
                }
            }
            Ok(a)
        }
        other => Err(parse_err(format!("unsupported format {other}"))),
    }
}

/// Writes a dense matrix in Matrix Market `array real general` format.
///
/// Values are emitted with `{:e}` — Rust's shortest-roundtrip scientific
/// notation, the minimal digit string that parses back to the exact same
/// bit pattern for the matrix's own element type (9 significant digits at
/// most for `f32`, 17 for `f64`). File roundtrips are therefore
/// bitwise-stable in both precisions, which the out-of-core store's debug
/// export relies on.
pub fn write_matrix_market<T: Scalar>(mut w: impl Write, a: &Matrix<T>) -> std::io::Result<()> {
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "% written by ca-factor ({})", T::NAME)?;
    writeln!(w, "{} {}", a.nrows(), a.ncols())?;
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            writeln!(w, "{:e}", a[(i, j)])?;
        }
    }
    Ok(())
}

/// Reads a Matrix Market file.
pub fn read_matrix_market_file<T: Scalar>(path: impl AsRef<Path>) -> Result<Matrix<T>, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a Matrix Market file.
pub fn write_matrix_market_file<T: Scalar>(
    path: impl AsRef<Path>,
    a: &Matrix<T>,
) -> std::io::Result<()> {
    write_matrix_market(BufWriter::new(std::fs::File::create(path)?), a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_uniform, seeded_rng};

    #[test]
    fn array_round_trip_preserves_bits() {
        let a = random_uniform(7, 5, &mut seeded_rng(1));
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b: Matrix = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn f32_round_trip_preserves_bits() {
        let mut a = Matrix::<f32>::from_f64(&random_uniform(9, 4, &mut seeded_rng(3)));
        // Exercise values whose shortest f32 form needs many digits, plus
        // signed zero and extremes of the normal range.
        a[(0, 0)] = f32::MIN_POSITIVE;
        a[(1, 0)] = f32::MAX;
        a[(2, 0)] = -0.0;
        a[(3, 0)] = 0.1;
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b: Matrix<f32> = read_matrix_market(&buf[..]).unwrap();
        for j in 0..a.ncols() {
            for i in 0..a.nrows() {
                assert_eq!(a[(i, j)].to_bits(), b[(i, j)].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn f32_reads_f64_written_files_with_single_rounding() {
        // A full-precision f64 value read back as f32 must equal the direct
        // rounding of that value to f32.
        let v = 0.123456789123456789f64;
        let src = format!("%%MatrixMarket matrix array real general\n1 1\n{v:e}\n");
        let a: Matrix<f32> = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a[(0, 0)].to_bits(), (v as f32).to_bits());
    }

    #[test]
    fn parses_coordinate_general() {
        let src = "%%MatrixMarket matrix coordinate real general\n% test\n3 4 3\n1 1 2.5\n3 4 -1.0\n2 2 7\n";
        let a: Matrix = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a[(0, 0)], 2.5);
        assert_eq!(a[(2, 3)], -1.0);
        assert_eq!(a[(1, 1)], 7.0);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn parses_coordinate_symmetric() {
        let src = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 4.0\n3 3 1.0\n";
        let a: Matrix = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a[(0, 1)], 4.0);
        assert_eq!(a[(2, 2)], 1.0);
    }

    #[test]
    fn parses_symmetric_array() {
        // 2x2 symmetric array: lower triangle column-major: a11 a21 a22.
        let src = "%%MatrixMarket matrix array real symmetric\n2 2\n1.0\n2.0\n3.0\n";
        let a: Matrix = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(1, 0)], 2.0);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 1)], 3.0);
    }

    #[test]
    fn integer_field_accepted() {
        let src = "%%MatrixMarket matrix array integer general\n2 1\n4\n-2\n";
        let a: Matrix = read_matrix_market(src.as_bytes()).unwrap();
        assert_eq!(a[(0, 0)], 4.0);
        assert_eq!(a[(1, 0)], -2.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_matrix_market::<f64>("hello\n".as_bytes()).is_err());
        assert!(read_matrix_market::<f64>("%%MatrixMarket matrix array real general\n2 2\n1.0\n".as_bytes())
            .is_err()); // too few entries
        assert!(read_matrix_market::<f64>(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n".as_bytes()
        )
        .is_err()); // out-of-bounds index
        assert!(read_matrix_market::<f64>(
            "%%MatrixMarket matrix array complex general\n1 1\n1 0\n".as_bytes()
        )
        .is_err()); // unsupported field
    }

    #[test]
    fn file_round_trip() {
        let a = random_uniform(4, 4, &mut seeded_rng(2));
        let path = std::env::temp_dir().join("ca_matrix_io_test.mtx");
        write_matrix_market_file(&path, &a).unwrap();
        let b: Matrix = read_matrix_market_file(&path).unwrap();
        assert_eq!(a, b);
        let _ = std::fs::remove_file(&path);
    }
}
