//! The sealed [`Scalar`] trait: the two IEEE-754 element types the
//! workspace factors in (`f32`, `f64`).
//!
//! Every layer that used to be hard-wired to `f64` — [`crate::Matrix`],
//! the views, [`crate::aligned::AlignedBuf`], and the kernels in
//! `ca-kernels` — is generic over this trait with `f64` as the default
//! type parameter, so all existing call sites compile unchanged while the
//! f32 tier (the doubled-throughput base for mixed-precision refinement,
//! Demmel–Grigori–Hoemmen–Langou §5) reuses the exact same code paths.
//!
//! The trait is **sealed**: kernels carry `unsafe` SIMD microkernels whose
//! correctness is only established for these two types, so downstream
//! crates must not be able to add implementations.

use core::fmt::{Debug, Display, LowerExp};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    /// Seals [`super::Scalar`]: only `f32` and `f64` implement it.
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// A real floating-point element type (`f32` or `f64`).
///
/// Bundles the arithmetic operators plus the handful of intrinsics the
/// factorization kernels need (absolute value, square root, `hypot`,
/// `copysign`, NaN checks) and conversion bridges to `f64` so that
/// precision-independent bookkeeping (growth factors, norms, thresholds)
/// can stay in double precision.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + LowerExp
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon (`f32::EPSILON` / `f64::EPSILON`).
    const EPSILON: Self;
    /// Smallest positive normal value (underflow guard in pivot tests).
    const MIN_POSITIVE: Self;
    /// Type name for dispatch tables and reports (`"f32"` / `"f64"`).
    const NAME: &'static str;
    /// Storage size of one element in bytes (4 / 8) — the on-disk element
    /// width for the out-of-core tile store and other binary codecs.
    const BYTES: usize;

    /// Lossless widening to `f64` (identity for `f64`).
    fn to_f64(self) -> f64;
    /// Conversion from `f64` (rounds for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// `sqrt(self² + other²)` without intermediate overflow.
    fn hypot(self, other: Self) -> Self;
    /// Magnitude of `self` with the sign of `sign`.
    fn copysign(self, sign: Self) -> Self;
    /// IEEE maximum (NaN-ignoring, as `f64::max`).
    fn max(self, other: Self) -> Self;
    /// `true` iff NaN.
    fn is_nan(self) -> bool;
    /// `true` iff neither NaN nor infinite.
    fn is_finite(self) -> bool;
    /// Raw bit pattern widened to `u64` (bitwise-identity assertions).
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Scalar::to_bits_u64`]: reconstructs the value from the
    /// low [`Scalar::BYTES`]·8 bits (binary deserialization).
    fn from_bits_u64(bits: u64) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty, $bits:ty, $name:literal) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;
            const NAME: &'static str = $name;
            const BYTES: usize = core::mem::size_of::<$t>();

            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                <$t>::hypot(self, other)
            }
            #[inline(always)]
            fn copysign(self, sign: Self) -> Self {
                <$t>::copysign(self, sign)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn to_bits_u64(self) -> u64 {
                self.to_bits() as u64
            }
            #[inline(always)]
            fn from_bits_u64(bits: u64) -> Self {
                <$t>::from_bits(bits as $bits)
            }
        }
    };
}

impl_scalar!(f32, u32, "f32");
impl_scalar!(f64, u64, "f64");

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>() {
        assert_eq!(T::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert!(T::EPSILON.to_f64() > 0.0);
        assert!((-T::ONE).abs() == T::ONE);
        assert!(T::from_f64(f64::NAN).is_nan());
        assert!(T::ONE.is_finite());
    }

    #[test]
    fn both_types_satisfy_contract() {
        roundtrip::<f32>();
        roundtrip::<f64>();
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
        assert_eq!(3.0f64.to_bits_u64(), 3.0f64.to_bits());
    }

    #[test]
    fn bit_roundtrip_is_exact_for_both_widths() {
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        for v in [0.0f64, -0.0, 1.0, -1.5e-300, f64::MIN_POSITIVE, f64::MAX] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
        for v in [0.0f32, -0.0, 1.0, -1.5e-30, f32::MIN_POSITIVE, f32::MAX] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f32_epsilon_is_coarser() {
        assert!(f32::EPSILON.to_f64() > f64::EPSILON);
    }
}
