//! Cache-line-aligned scratch buffers for kernel packing.
//!
//! The BLIS-style packed GEMM in `ca-kernels` copies operand panels into
//! contiguous micro-tile scratch before the register-blocked microkernel
//! runs. Those panels want 64-byte alignment so every SIMD load of a packed
//! micro-panel row sits inside one cache line and never splits across two.
//! `Vec<T>` only guarantees the element's natural alignment, hence this
//! small allocator wrapper. Generic over [`Scalar`] (`f32`/`f64`) with an
//! `f64` default, like [`crate::Matrix`].

use crate::scalar::Scalar;
use core::ops::{Deref, DerefMut};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};

/// Alignment of [`AlignedBuf`] allocations, in bytes (one x86 cache line).
pub const BUF_ALIGN: usize = 64;

/// A growable scalar buffer whose storage is always [`BUF_ALIGN`]-aligned.
///
/// Unlike `Vec`, growth never copies the old contents: the buffer is scratch
/// that callers fully overwrite each use, so `reserve` simply reallocates
/// fresh zeroed storage when the capacity is insufficient.
pub struct AlignedBuf<T: Scalar = f64> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: the buffer exclusively owns its allocation; it is a plain chunk of
// scalars with no interior mutability or thread affinity.
unsafe impl<T: Scalar> Send for AlignedBuf<T> {}
unsafe impl<T: Scalar> Sync for AlignedBuf<T> {}

impl<T: Scalar> AlignedBuf<T> {
    /// Creates an empty buffer (no allocation).
    pub const fn new() -> Self {
        Self { ptr: core::ptr::null_mut(), len: 0 }
    }

    /// Creates a zeroed buffer holding `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let mut b = Self::new();
        b.reserve(len);
        b
    }

    /// Number of elements the buffer currently holds.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ensures capacity for at least `len` elements, discarding contents on
    /// growth (the new storage is zeroed). Never shrinks.
    pub fn reserve(&mut self, len: usize) {
        if len <= self.len {
            return;
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > self.len >= 0 and len > 0
        // here since len > self.len implies len >= 1).
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        self.release();
        self.ptr = ptr;
        self.len = len;
    }

    /// A zeroed, aligned mutable slice of exactly `len` elements, growing
    /// the buffer if needed. The slice contents are unspecified (whatever a
    /// previous user left) — packing code overwrites every element it reads.
    pub fn scratch(&mut self, len: usize) -> &mut [T] {
        self.reserve(len);
        // SAFETY: `ptr` holds at least `len` initialized (zeroed-at-alloc)
        // elements and we hold `&mut self`.
        unsafe { core::slice::from_raw_parts_mut(self.ptr, len) }
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * core::mem::size_of::<T>(), BUF_ALIGN)
            .expect("aligned buffer layout")
    }

    fn release(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: `ptr` was allocated with `Self::layout(self.len)`.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
            self.ptr = core::ptr::null_mut();
            self.len = 0;
        }
    }
}

impl<T: Scalar> Default for AlignedBuf<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        self.release();
    }
}

impl<T: Scalar> Deref for AlignedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        if self.ptr.is_null() {
            &[]
        } else {
            // SAFETY: `ptr` holds `len` initialized elements.
            unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

impl<T: Scalar> DerefMut for AlignedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        if self.ptr.is_null() {
            &mut []
        } else {
            // SAFETY: `ptr` holds `len` initialized elements, exclusively.
            unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_grows_zeroed() {
        let mut b: AlignedBuf = AlignedBuf::new();
        assert!(b.is_empty());
        assert_eq!(&b[..], &[]);
        let s = b.scratch(17);
        assert_eq!(s.len(), 17);
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn storage_is_cache_line_aligned() {
        for n in [1usize, 7, 64, 1000] {
            let b: AlignedBuf = AlignedBuf::zeroed(n);
            assert_eq!(b.as_ptr() as usize % BUF_ALIGN, 0, "misaligned for n={n}");
        }
    }

    #[test]
    fn f32_storage_is_cache_line_aligned() {
        for n in [1usize, 3, 16, 1000] {
            let mut b: AlignedBuf<f32> = AlignedBuf::zeroed(n);
            assert_eq!(b.as_ptr() as usize % BUF_ALIGN, 0, "misaligned for n={n}");
            let s = b.scratch(n);
            assert!(s.iter().all(|&x| x == 0.0f32));
        }
    }

    #[test]
    fn reserve_never_shrinks_and_scratch_reuses() {
        let mut b: AlignedBuf = AlignedBuf::zeroed(100);
        let p = b.as_ptr();
        b.reserve(50);
        assert_eq!(b.len(), 100);
        assert_eq!(b.as_ptr(), p, "no reallocation on smaller request");
        let s = b.scratch(40);
        s[39] = 5.0;
        assert_eq!(b[39], 5.0);
    }

    #[test]
    fn growth_reallocates_aligned() {
        let mut b: AlignedBuf = AlignedBuf::zeroed(8);
        b.scratch(8)[0] = 1.0;
        let s = b.scratch(4096);
        assert_eq!(s.len(), 4096);
        assert_eq!(b.as_ptr() as usize % BUF_ALIGN, 0);
    }
}
