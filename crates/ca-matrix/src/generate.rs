//! Test-matrix generators: random dense matrices and the structured matrices
//! used by the stability experiments.

use crate::matrix::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Dense matrix with i.i.d. entries uniform in `[-1, 1]`.
pub fn random_uniform(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Matrix {
    let dist = Uniform::new_inclusive(-1.0f64, 1.0);
    let data = (0..rows * cols).map(|_| dist.sample(rng)).collect();
    Matrix::from_vec(data, rows, cols)
}

/// Dense matrix with approximately standard-normal entries
/// (sum of 12 uniforms, shifted — avoids an extra distribution dependency).
pub fn random_normal(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Matrix {
    let dist = Uniform::new(0.0f64, 1.0);
    let data = (0..rows * cols)
        .map(|_| {
            let s: f64 = (0..12).map(|_| dist.sample(rng)).sum();
            s - 6.0
        })
        .collect();
    Matrix::from_vec(data, rows, cols)
}

/// A random matrix guaranteed diagonally dominant (hence LU without pivoting
/// exists); useful for isolating pivoting effects in tests.
pub fn random_diag_dominant(n: usize, rng: &mut impl rand::Rng) -> Matrix {
    let mut a = random_uniform(n, n, rng);
    for i in 0..n {
        a[(i, i)] = n as f64 + 1.0;
    }
    a
}

/// The Wilkinson "growth" matrix: ones on the diagonal and last column,
/// `-1` below the diagonal. Partial pivoting exhibits `2^{n-1}` element
/// growth on it — the classic worst case for GEPP stability experiments.
pub fn wilkinson_growth(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if j == n - 1 || i == j {
            1.0
        } else if i > j {
            -1.0
        } else {
            0.0
        }
    })
}

/// A matrix with geometrically graded row scales
/// (condition roughly `scale^(n-1)` per row grading), for ill-conditioned
/// stress tests.
pub fn graded_rows(rows: usize, cols: usize, scale: f64, rng: &mut impl rand::Rng) -> Matrix {
    let mut a = random_uniform(rows, cols, rng);
    let mut s = 1.0;
    for i in 0..rows {
        for j in 0..cols {
            a[(i, j)] *= s;
        }
        s *= scale;
        if s < f64::MIN_POSITIVE * 1e8 {
            s = f64::MIN_POSITIVE * 1e8;
        }
    }
    a
}

/// The Kahan matrix: upper triangular with `diag(s^i)` and `-c·s^i` above,
/// `s² + c² = 1`. Notoriously adversarial for pivoting and rank detection.
pub fn kahan(n: usize, theta: f64) -> Matrix {
    let s = theta.sin();
    let c = theta.cos();
    Matrix::from_fn(n, n, |i, j| {
        let si = s.powi(i as i32);
        if i == j {
            si
        } else if j > i {
            -c * si
        } else {
            0.0
        }
    })
}

/// A dense orthogonal-ish matrix built from a product of Householder
/// reflectors (exactly orthogonal up to roundoff): growth factor 1 under
/// any reasonable pivoting.
pub fn random_orthogonal(n: usize, rng: &mut impl rand::Rng) -> Matrix {
    // Start from identity and apply n reflectors.
    let mut q = Matrix::identity(n);
    let dist = Uniform::new(-1.0f64, 1.0);
    let mut v = vec![0.0f64; n];
    for _ in 0..n.min(20) {
        for x in v.iter_mut() {
            *x = dist.sample(rng);
        }
        let norm2: f64 = v.iter().map(|x| x * x).sum();
        if norm2 < 1e-12 {
            continue;
        }
        // q := (I - 2 v vᵀ / ‖v‖²) q
        for j in 0..n {
            let mut dot = 0.0;
            for i in 0..n {
                dot += v[i] * q[(i, j)];
            }
            let scale = 2.0 * dot / norm2;
            for i in 0..n {
                q[(i, j)] -= scale * v[i];
            }
        }
    }
    q
}

/// A tall-and-skinny matrix whose top `cols × cols` block is singular
/// (duplicate rows), exercising tournament pivoting on rank-deficient leaves.
pub fn deficient_top_block(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Matrix {
    assert!(rows >= 2 * cols, "need rows >= 2*cols");
    let mut a = random_uniform(rows, cols, rng);
    for i in 0..cols {
        for j in 0..cols {
            let v = a[(0, j)];
            a[(i, j)] = v; // every top-block row equals row 0
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let a = random_uniform(4, 4, &mut seeded_rng(42));
        let b = random_uniform(4, 4, &mut seeded_rng(42));
        assert_eq!(a, b);
        let c = random_uniform(4, 4, &mut seeded_rng(43));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_entries_in_range() {
        let a = random_uniform(10, 10, &mut seeded_rng(1));
        for &x in a.as_slice() {
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn normal_entries_have_small_mean() {
        let a = random_normal(100, 100, &mut seeded_rng(7));
        let mean: f64 = a.as_slice().iter().sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
    }

    #[test]
    fn wilkinson_has_expected_pattern() {
        let w = wilkinson_growth(4);
        assert_eq!(w[(0, 0)], 1.0);
        assert_eq!(w[(3, 3)], 1.0);
        assert_eq!(w[(2, 0)], -1.0);
        assert_eq!(w[(0, 3)], 1.0);
        assert_eq!(w[(0, 1)], 0.0);
    }

    #[test]
    fn deficient_top_block_is_rank_one_on_top() {
        let a = deficient_top_block(12, 3, &mut seeded_rng(5));
        for i in 1..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], a[(0, j)]);
            }
        }
    }

    #[test]
    fn kahan_is_upper_triangular_with_decaying_diagonal() {
        let k = kahan(6, 1.2);
        assert!(k[(3, 1)] == 0.0);
        assert!(k[(1, 3)] < 0.0);
        assert!(k[(5, 5)] < k[(0, 0)]);
        assert!(k[(0, 0)] > 0.0);
    }

    #[test]
    fn random_orthogonal_is_orthogonal() {
        let q = random_orthogonal(24, &mut seeded_rng(11));
        assert!(crate::norms::orthogonality(&q) < 1e-12);
    }

    #[test]
    fn diag_dominant_dominates() {
        let a = random_diag_dominant(8, &mut seeded_rng(3));
        for i in 0..8 {
            let off: f64 = (0..8).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            assert!(a[(i, i)].abs() > off);
        }
    }
}
