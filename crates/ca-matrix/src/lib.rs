//! # ca-matrix
//!
//! Dense column-major matrix substrate for the `ca-factor` workspace — the
//! data layer under the communication-avoiding LU/QR factorizations of
//! Donfack, Grigori & Gupta (IPDPS 2010).
//!
//! Provides:
//! * [`Matrix`] — owned, packed column-major storage (LAPACK layout);
//! * [`MatView`] / [`MatViewMut`] — stride-aware borrowed blocks, the
//!   argument type of every kernel in `ca-kernels`;
//! * [`SharedMatrix`] — the shared-mutable handle task runtimes use to hand
//!   disjoint blocks to concurrent tasks;
//! * [`PivotSeq`] and permutation helpers — row-interchange bookkeeping for
//!   partial and tournament pivoting;
//! * [`ShadowRegistry`] — the lease registry behind checked execution mode,
//!   auditing that every block access stays inside its task's declared
//!   footprint and never overlaps a live conflicting lease;
//! * [`RegionSet`] — rect region algebra (disjoint element rectangles with
//!   union/intersect/subtract), the footprint currency of rect-granular
//!   static verification in `ca-sched`;
//! * [`AlignedBuf`] — cache-line-aligned scratch, the packing-buffer
//!   substrate under the BLIS-style packed GEMM in `ca-kernels`;
//! * norms, residual measures, and reproducible test-matrix generators.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aligned;
mod generate;
pub mod io;
mod matrix;
mod norms;
mod perm;
pub mod region;
mod scalar;
pub mod shadow;
mod shared;
mod view;

pub use aligned::AlignedBuf;
pub use generate::{
    deficient_top_block, graded_rows, kahan, random_diag_dominant, random_normal,
    random_orthogonal, random_uniform, seeded_rng, wilkinson_growth,
};
pub use matrix::Matrix;
pub use norms::{
    growth_factor, lu_residual, norm_fro, norm_inf, norm_max, norm_one, orthogonality,
    qr_residual, residual_threshold,
};
pub use perm::{invert_permutation, is_permutation, permute_rows, PivotSeq};
pub use region::RegionSet;
pub use scalar::Scalar;
pub use shadow::{ElemRect, ShadowRegistry, ShadowViolation, TaskFootprint, TaskScope};
pub use shared::SharedMatrix;
pub use view::{MatView, MatViewMut};
