//! Shadow lease registry — the dynamic half of the runtime's race detector.
//!
//! Checked execution mode wraps every [`crate::SharedMatrix`] block accessor
//! with a bookkeeping hook: while a task runs, each block view it takes
//! claims a *lease* on the element rectangle it covers. The registry checks
//! two properties the task-graph contract promises but the type system
//! cannot see:
//!
//! 1. **Footprint containment** — every access falls inside the element
//!    region the DAG builder declared for the task (reads inside
//!    reads ∪ writes, writes inside writes);
//! 2. **Lease disjointness** — no two concurrently held leases overlap
//!    unless both are reads.
//!
//! Leases are held for the task's whole duration (released by
//! [`TaskScope`]'s drop), which is conservative in exactly the right
//! direction: a view handed out to a kernel stays usable until the task
//! ends, so the lease must outlive the borrow.
//!
//! The registry knows tasks only as indices plus display labels, so it
//! lives here (under the matrix it guards) without depending on the
//! scheduler crate.

use core::cell::Cell;
use core::fmt;
use core::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Half-open element rectangle `rows × cols` of a matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElemRect {
    /// First row (inclusive).
    pub row0: usize,
    /// Past-the-end row.
    pub row1: usize,
    /// First column (inclusive).
    pub col0: usize,
    /// Past-the-end column.
    pub col1: usize,
}

impl ElemRect {
    /// Rectangle covering `rows × cols`.
    pub fn new(rows: Range<usize>, cols: Range<usize>) -> Self {
        Self { row0: rows.start, row1: rows.end, col0: cols.start, col1: cols.end }
    }

    /// `true` if the rectangle contains no elements.
    pub fn is_empty(&self) -> bool {
        self.row0 >= self.row1 || self.col0 >= self.col1
    }

    /// `true` if the rectangles share at least one element.
    pub fn overlaps(&self, o: &ElemRect) -> bool {
        !self.is_empty()
            && !o.is_empty()
            && self.row0 < o.row1
            && o.row0 < self.row1
            && self.col0 < o.col1
            && o.col0 < self.col1
    }

    /// The overlapping rectangle, or `None` if the rectangles are disjoint.
    pub fn intersection(&self, o: &ElemRect) -> Option<ElemRect> {
        let r = ElemRect {
            row0: self.row0.max(o.row0),
            row1: self.row1.min(o.row1),
            col0: self.col0.max(o.col0),
            col1: self.col1.min(o.col1),
        };
        (!r.is_empty()).then_some(r)
    }

    /// `true` if `o` lies entirely inside `self` (empty `o` always does).
    pub fn contains(&self, o: &ElemRect) -> bool {
        o.is_empty()
            || (self.row0 <= o.row0
                && o.row1 <= self.row1
                && self.col0 <= o.col0
                && o.col1 <= self.col1)
    }
}

impl fmt::Display for ElemRect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rows {}..{} × cols {}..{}", self.row0, self.row1, self.col0, self.col1)
    }
}

/// Declared element footprint of one task: the regions the DAG builder
/// claimed the task reads and writes.
#[derive(Clone, Debug, Default)]
pub struct TaskFootprint {
    /// Declared read rectangles.
    pub reads: Vec<ElemRect>,
    /// Declared write rectangles.
    pub writes: Vec<ElemRect>,
}

/// A contract violation observed at run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShadowViolation {
    /// A task touched elements outside its declared footprint.
    Undeclared {
        /// Offending task index.
        task: usize,
        /// Offending task's display label.
        label: String,
        /// `true` for a mutable access.
        write: bool,
        /// The rectangle actually accessed.
        rect: ElemRect,
    },
    /// Two concurrently live leases overlap and at least one is a write.
    Overlap {
        /// Task holding the earlier lease.
        first: usize,
        /// Its display label.
        first_label: String,
        /// Whether the earlier lease is mutable.
        first_write: bool,
        /// The earlier lease's rectangle.
        first_rect: ElemRect,
        /// Task taking the later, overlapping lease.
        second: usize,
        /// Its display label.
        second_label: String,
        /// Whether the later lease is mutable.
        second_write: bool,
        /// The later lease's rectangle.
        second_rect: ElemRect,
    },
}

impl ShadowViolation {
    /// The element rectangle the two leases of an [`Self::Overlap`] race on
    /// (their intersection); `None` for other violation kinds.
    pub fn conflict_rect(&self) -> Option<ElemRect> {
        match self {
            Self::Overlap { first_rect, second_rect, .. } => {
                first_rect.intersection(second_rect)
            }
            Self::Undeclared { .. } => None,
        }
    }
}

impl fmt::Display for ShadowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Undeclared { label, write, rect, .. } => write!(
                f,
                "task {label} {} {} outside its declared footprint",
                if *write { "wrote" } else { "read" },
                rect
            ),
            Self::Overlap {
                first_label,
                first_write,
                first_rect,
                second_label,
                second_write,
                second_rect,
                ..
            } => {
                write!(
                    f,
                    "tasks {first_label} ({} {first_rect}) and {second_label} ({} {second_rect}) hold overlapping leases",
                    if *first_write { "write" } else { "read" },
                    if *second_write { "write" } else { "read" },
                )?;
                if let Some(conflict) = self.conflict_rect() {
                    write!(f, " on {conflict}")?;
                }
                Ok(())
            }
        }
    }
}

struct Lease {
    task: usize,
    write: bool,
    rect: ElemRect,
}

/// Registry of declared footprints, live leases, and detected violations
/// for one checked run.
pub struct ShadowRegistry {
    footprints: Vec<TaskFootprint>,
    labels: Vec<String>,
    active: Mutex<Vec<Lease>>,
    violations: Mutex<Vec<ShadowViolation>>,
    accesses: AtomicUsize,
}

thread_local! {
    /// Task the current thread is executing, if any. Accesses made outside
    /// a task scope (setup, result collection) are not checked.
    static CURRENT_TASK: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Locks a mutex, surviving poisoning (a panicking task must not hide the
/// violations recorded before it died).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ShadowRegistry {
    /// A registry for tasks `0..footprints.len()` with the given display
    /// labels (`labels.len()` must match).
    pub fn new(footprints: Vec<TaskFootprint>, labels: Vec<String>) -> Self {
        assert_eq!(footprints.len(), labels.len(), "one label per task");
        Self {
            footprints,
            labels,
            active: Mutex::new(Vec::new()),
            violations: Mutex::new(Vec::new()),
            accesses: AtomicUsize::new(0),
        }
    }

    /// Number of tasks the registry knows about.
    pub fn ntasks(&self) -> usize {
        self.footprints.len()
    }

    /// Marks the current thread as executing `task` until the returned
    /// guard drops (which also releases every lease the task claimed).
    pub fn enter_task(self: &Arc<Self>, task: usize) -> TaskScope {
        assert!(task < self.footprints.len(), "unknown task {task}");
        let prev = CURRENT_TASK.replace(Some(task));
        TaskScope { reg: Arc::clone(self), task, prev }
    }

    /// Records an access of `rows × cols` by the current thread's task (a
    /// no-op outside a task scope). Called by the [`crate::SharedMatrix`]
    /// block accessors.
    pub fn on_access(&self, write: bool, rows: Range<usize>, cols: Range<usize>) {
        let Some(task) = CURRENT_TASK.get() else { return };
        let rect = ElemRect::new(rows, cols);
        if rect.is_empty() || task >= self.footprints.len() {
            return;
        }
        self.accesses.fetch_add(1, Ordering::Relaxed);

        let fp = &self.footprints[task];
        let declared = if write {
            covered(rect, &[&fp.writes])
        } else {
            covered(rect, &[&fp.reads, &fp.writes])
        };
        if !declared {
            lock_unpoisoned(&self.violations).push(ShadowViolation::Undeclared {
                task,
                label: self.labels[task].clone(),
                write,
                rect,
            });
        }

        let mut active = lock_unpoisoned(&self.active);
        for lease in active.iter() {
            if lease.task != task && (write || lease.write) && lease.rect.overlaps(&rect) {
                lock_unpoisoned(&self.violations).push(ShadowViolation::Overlap {
                    first: lease.task,
                    first_label: self.labels[lease.task].clone(),
                    first_write: lease.write,
                    first_rect: lease.rect,
                    second: task,
                    second_label: self.labels[task].clone(),
                    second_write: write,
                    second_rect: rect,
                });
            }
        }
        active.push(Lease { task, write, rect });
    }

    /// Total accesses recorded so far.
    pub fn accesses(&self) -> usize {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Drains and returns every violation recorded so far.
    pub fn take_violations(&self) -> Vec<ShadowViolation> {
        core::mem::take(&mut *lock_unpoisoned(&self.violations))
    }

    fn release(&self, task: usize) {
        lock_unpoisoned(&self.active).retain(|l| l.task != task);
    }
}

/// `true` if `rect` is entirely covered by the union of the rectangle sets.
///
/// Works by peeling: find one declared rectangle that intersects `rect`,
/// split the uncovered remainder into at most four sub-rectangles, recurse.
/// Declared sets are tiny (a handful of block-aligned regions per task), so
/// the recursion stays shallow.
fn covered(rect: ElemRect, sets: &[&[ElemRect]]) -> bool {
    if rect.is_empty() {
        return true;
    }
    let Some(d) = sets.iter().flat_map(|s| s.iter()).find(|d| d.overlaps(&rect)) else {
        return false;
    };
    let r0 = rect.row0.max(d.row0);
    let r1 = rect.row1.min(d.row1);
    let c0 = rect.col0.max(d.col0);
    let c1 = rect.col1.min(d.col1);
    let parts = [
        ElemRect { row0: rect.row0, row1: r0, col0: rect.col0, col1: rect.col1 },
        ElemRect { row0: r1, row1: rect.row1, col0: rect.col0, col1: rect.col1 },
        ElemRect { row0: r0, row1: r1, col0: rect.col0, col1: c0 },
        ElemRect { row0: r0, row1: r1, col0: c1, col1: rect.col1 },
    ];
    parts.iter().all(|p| covered(*p, sets))
}

/// RAII guard returned by [`ShadowRegistry::enter_task`]: clears the
/// thread's current-task marker and releases the task's leases on drop
/// (also on unwind, so a panicking task cannot leak leases).
pub struct TaskScope {
    reg: Arc<ShadowRegistry>,
    task: usize,
    prev: Option<usize>,
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        CURRENT_TASK.set(self.prev);
        self.reg.release(self.task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(rows: Range<usize>, cols: Range<usize>) -> ElemRect {
        ElemRect::new(rows, cols)
    }

    #[test]
    fn rect_overlap_and_containment() {
        let a = rect(0..4, 0..4);
        let b = rect(2..6, 2..6);
        let c = rect(4..8, 0..4);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.contains(&rect(1..3, 1..3)));
        assert!(!a.contains(&b));
        assert!(a.contains(&rect(2..2, 0..4)), "empty rect is contained anywhere");
        assert!(!rect(0..0, 0..4).overlaps(&a), "empty rect overlaps nothing");
    }

    #[test]
    fn coverage_handles_unions() {
        // Two declared rects tile 0..4 x 0..8; the union covers a spanning
        // access even though neither rect alone does.
        let decl = vec![rect(0..4, 0..4), rect(0..4, 4..8)];
        assert!(covered(rect(0..4, 0..8), &[&decl]));
        assert!(covered(rect(1..3, 2..6), &[&decl]));
        assert!(!covered(rect(0..5, 0..4), &[&decl]));
        assert!(!covered(rect(0..4, 0..9), &[&decl]));
        assert!(covered(rect(0..0, 0..100), &[&decl]));
    }

    fn two_task_registry() -> Arc<ShadowRegistry> {
        let fp0 = TaskFootprint { reads: vec![], writes: vec![rect(0..4, 0..4)] };
        let fp1 = TaskFootprint { reads: vec![rect(0..4, 0..4)], writes: vec![rect(4..8, 0..4)] };
        Arc::new(ShadowRegistry::new(vec![fp0, fp1], vec!["t0".into(), "t1".into()]))
    }

    #[test]
    fn in_footprint_access_is_clean() {
        let reg = two_task_registry();
        {
            let _s = reg.enter_task(0);
            reg.on_access(true, 0..4, 0..4);
            reg.on_access(false, 1..2, 1..2); // read inside the write region
        }
        {
            let _s = reg.enter_task(1);
            reg.on_access(false, 0..4, 0..4);
            reg.on_access(true, 4..8, 0..4);
        }
        assert!(reg.take_violations().is_empty());
        assert_eq!(reg.accesses(), 4);
    }

    #[test]
    fn undeclared_access_is_reported() {
        let reg = two_task_registry();
        {
            let _s = reg.enter_task(0);
            reg.on_access(true, 4..8, 0..4); // t1's region, not t0's
        }
        let v = reg.take_violations();
        assert_eq!(v.len(), 1);
        match &v[0] {
            ShadowViolation::Undeclared { label, write, .. } => {
                assert_eq!(label, "t0");
                assert!(write);
            }
            other => panic!("expected Undeclared, got {other:?}"),
        }
    }

    #[test]
    fn overlapping_live_leases_are_reported() {
        let reg = two_task_registry();
        let scope0 = reg.enter_task(0);
        reg.on_access(true, 0..4, 0..4);
        // Simulate task 1 on the same thread while task 0's lease is live.
        {
            let _s1 = reg.enter_task(1);
            reg.on_access(false, 1..3, 1..3); // read vs live write: overlap
        }
        drop(scope0);
        let v = reg.take_violations();
        assert_eq!(v.len(), 1);
        match &v[0] {
            ShadowViolation::Overlap {
                first_label, first_rect, second_label, second_rect, ..
            } => {
                assert_eq!(first_label, "t0");
                assert_eq!(second_label, "t1");
                assert_eq!(*first_rect, rect(0..4, 0..4));
                assert_eq!(*second_rect, rect(1..3, 1..3));
                assert_eq!(v[0].conflict_rect(), Some(rect(1..3, 1..3)));
            }
            other => panic!("expected Overlap, got {other:?}"),
        }
    }

    #[test]
    fn leases_release_on_scope_drop() {
        let reg = two_task_registry();
        {
            let _s = reg.enter_task(0);
            reg.on_access(true, 0..4, 0..4);
        }
        {
            let _s = reg.enter_task(1);
            reg.on_access(false, 0..4, 0..4); // previous lease released: clean
        }
        assert!(reg.take_violations().is_empty());
    }

    #[test]
    fn accesses_outside_task_scope_are_ignored() {
        let reg = two_task_registry();
        reg.on_access(true, 0..100, 0..100);
        assert!(reg.take_violations().is_empty());
        assert_eq!(reg.accesses(), 0);
    }

    #[test]
    fn concurrent_disjoint_leases_are_clean() {
        let fps = (0..4)
            .map(|t| TaskFootprint { reads: vec![], writes: vec![rect(t * 4..t * 4 + 4, 0..8)] })
            .collect();
        let labels = (0..4).map(|t| format!("w{t}")).collect();
        let reg = Arc::new(ShadowRegistry::new(fps, labels));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let reg = &reg;
                s.spawn(move || {
                    let _scope = reg.enter_task(t);
                    reg.on_access(true, t * 4..t * 4 + 4, 0..8);
                });
            }
        });
        assert!(reg.take_violations().is_empty());
        assert_eq!(reg.accesses(), 4);
    }
}
