//! Rect region algebra — normalized sets of disjoint element rectangles.
//!
//! [`RegionSet`] is the footprint currency of rect-granular static analysis:
//! the verifier resolves every task's declared footprint to a set of
//! [`ElemRect`]s and needs exact union / intersection / difference over them
//! to decide conflict, coverage, and liveness questions. The representation
//! is a list of pairwise-disjoint non-empty rectangles, kept lightly
//! coalesced so footprints that tile a larger rectangle collapse back into
//! it instead of fragmenting without bound.
//!
//! The operations are deliberately simple (no interval trees): footprint
//! sets are small — a handful of rects per task, block-aligned in the common
//! case — and the verifier's cost is dominated by the happens-before
//! closure, not the algebra. Correctness is what matters here, and the
//! proptest suite checks every operation against a dense bitmap oracle.

use core::fmt;

use crate::shadow::ElemRect;

/// A set of matrix elements represented as disjoint rectangles.
///
/// Invariants (checked by the test oracle): stored rectangles are non-empty
/// and pairwise disjoint. Two `RegionSet`s covering the same elements may
/// differ in their rectangle decomposition, so `PartialEq` is deliberately
/// *semantic*: it compares covered elements, not representations.
#[derive(Clone, Debug, Default)]
pub struct RegionSet {
    rects: Vec<ElemRect>,
}

/// Appends the up-to-four parts of `a ∖ b` to `out`.
fn subtract_into(a: &ElemRect, b: &ElemRect, out: &mut Vec<ElemRect>) {
    if !a.overlaps(b) {
        if !a.is_empty() {
            out.push(*a);
        }
        return;
    }
    let r0 = a.row0.max(b.row0);
    let r1 = a.row1.min(b.row1);
    let parts = [
        ElemRect { row0: a.row0, row1: r0, col0: a.col0, col1: a.col1 },
        ElemRect { row0: r1, row1: a.row1, col0: a.col0, col1: a.col1 },
        ElemRect { row0: r0, row1: r1, col0: a.col0, col1: a.col0.max(b.col0) },
        ElemRect { row0: r0, row1: r1, col0: a.col1.min(b.col1), col1: a.col1 },
    ];
    out.extend(parts.into_iter().filter(|p| !p.is_empty()));
}

impl RegionSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set covering exactly `rect`.
    pub fn from_rect(rect: ElemRect) -> Self {
        let mut s = Self::new();
        s.insert(rect);
        s
    }

    /// The union of `rects`.
    pub fn from_rects<I: IntoIterator<Item = ElemRect>>(rects: I) -> Self {
        let mut s = Self::new();
        for r in rects {
            s.insert(r);
        }
        s
    }

    /// `true` if the set covers no elements.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The disjoint rectangles making up the set.
    pub fn rects(&self) -> &[ElemRect] {
        &self.rects
    }

    /// Number of elements covered.
    pub fn area(&self) -> usize {
        self.rects.iter().map(|r| (r.row1 - r.row0) * (r.col1 - r.col0)).sum()
    }

    /// Adds `rect` to the set (no-op for an empty rect).
    pub fn insert(&mut self, rect: ElemRect) {
        if rect.is_empty() {
            return;
        }
        // Insert only the parts not already covered, preserving disjointness.
        let mut fresh = vec![rect];
        for have in &self.rects {
            let mut next = Vec::with_capacity(fresh.len());
            for part in &fresh {
                subtract_into(part, have, &mut next);
            }
            fresh = next;
            if fresh.is_empty() {
                return;
            }
        }
        self.rects.extend(fresh);
        self.coalesce();
    }

    /// `true` if the set shares at least one element with `rect`.
    pub fn intersects(&self, rect: &ElemRect) -> bool {
        self.rects.iter().any(|r| r.overlaps(rect))
    }

    /// `true` if the two sets share at least one element.
    pub fn intersects_set(&self, other: &RegionSet) -> bool {
        // Iterate over the smaller list in the outer loop.
        let (a, b) = if self.rects.len() <= other.rects.len() {
            (&self.rects, &other.rects)
        } else {
            (&other.rects, &self.rects)
        };
        a.iter().any(|r| b.iter().any(|s| r.overlaps(s)))
    }

    /// `true` if every element of `rect` is in the set.
    pub fn covers(&self, rect: &ElemRect) -> bool {
        if rect.is_empty() {
            return true;
        }
        let mut rest = vec![*rect];
        for have in &self.rects {
            let mut next = Vec::with_capacity(rest.len());
            for part in &rest {
                subtract_into(part, have, &mut next);
            }
            rest = next;
            if rest.is_empty() {
                return true;
            }
        }
        false
    }

    /// The elements in both `self` and `rect`.
    pub fn intersect_rect(&self, rect: &ElemRect) -> RegionSet {
        // Pairwise intersections of disjoint rects stay disjoint.
        let rects =
            self.rects.iter().filter_map(|r| r.intersection(rect)).collect();
        RegionSet { rects }
    }

    /// The elements in both sets.
    pub fn intersect(&self, other: &RegionSet) -> RegionSet {
        let mut out = RegionSet::new();
        for r in &other.rects {
            out.rects.extend(self.intersect_rect(r).rects);
        }
        out
    }

    /// Removes every element of `rect` from the set.
    pub fn subtract_rect(&mut self, rect: &ElemRect) {
        if rect.is_empty() || self.rects.is_empty() {
            return;
        }
        let mut next = Vec::with_capacity(self.rects.len());
        for r in &self.rects {
            subtract_into(r, rect, &mut next);
        }
        self.rects = next;
    }

    /// Removes every element of `other` from the set.
    pub fn subtract(&mut self, other: &RegionSet) {
        for r in &other.rects {
            self.subtract_rect(r);
        }
    }

    /// The union of both sets.
    pub fn union(&self, other: &RegionSet) -> RegionSet {
        let mut out = self.clone();
        for r in &other.rects {
            out.insert(*r);
        }
        out
    }

    /// Adds every rect of `other` to the set.
    pub fn union_in_place(&mut self, other: &RegionSet) {
        for r in &other.rects {
            self.insert(*r);
        }
    }

    /// Merges pairs of rectangles that share a full edge until no pair does,
    /// bounding fragmentation when inserts tile a larger rectangle. Callers
    /// accumulating many unions (e.g. cumulative footprints along a task
    /// graph) should coalesce periodically to keep set sizes bounded.
    pub fn coalesce(&mut self) {
        let mut merged = true;
        while merged {
            merged = false;
            'outer: for i in 0..self.rects.len() {
                for j in i + 1..self.rects.len() {
                    let (a, b) = (self.rects[i], self.rects[j]);
                    let same_cols = a.col0 == b.col0 && a.col1 == b.col1;
                    let same_rows = a.row0 == b.row0 && a.row1 == b.row1;
                    let row_adjacent = a.row1 == b.row0 || b.row1 == a.row0;
                    let col_adjacent = a.col1 == b.col0 || b.col1 == a.col0;
                    if (same_cols && row_adjacent) || (same_rows && col_adjacent) {
                        self.rects[i] = ElemRect {
                            row0: a.row0.min(b.row0),
                            row1: a.row1.max(b.row1),
                            col0: a.col0.min(b.col0),
                            col1: a.col1.max(b.col1),
                        };
                        self.rects.swap_remove(j);
                        merged = true;
                        break 'outer;
                    }
                }
            }
        }
    }
}

impl PartialEq for RegionSet {
    /// Semantic equality: both sets cover exactly the same elements,
    /// regardless of how each decomposes them into rectangles.
    fn eq(&self, other: &Self) -> bool {
        self.rects.iter().all(|r| other.covers(r))
            && other.rects.iter().all(|r| self.covers(r))
    }
}

impl Eq for RegionSet {}

impl fmt::Display for RegionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rects.is_empty() {
            return write!(f, "∅");
        }
        for (i, r) in self.rects.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "[{r}]")?;
        }
        Ok(())
    }
}

impl FromIterator<ElemRect> for RegionSet {
    fn from_iter<I: IntoIterator<Item = ElemRect>>(iter: I) -> Self {
        Self::from_rects(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::ops::Range;
    use proptest::prelude::*;

    fn rect(rows: Range<usize>, cols: Range<usize>) -> ElemRect {
        ElemRect::new(rows, cols)
    }

    /// Dense bitmap over a `DIM × DIM` universe — the oracle the algebra is
    /// checked against.
    const DIM: usize = 12;

    #[derive(Clone, PartialEq)]
    struct Bitmap([bool; DIM * DIM]);

    impl Bitmap {
        fn empty() -> Self {
            Bitmap([false; DIM * DIM])
        }

        fn from_rects(rects: &[ElemRect]) -> Self {
            let mut b = Self::empty();
            for r in rects {
                b.set(r);
            }
            b
        }

        fn set(&mut self, r: &ElemRect) {
            for i in r.row0..r.row1.min(DIM) {
                for j in r.col0..r.col1.min(DIM) {
                    self.0[i * DIM + j] = true;
                }
            }
        }

        fn count(&self) -> usize {
            self.0.iter().filter(|&&b| b).count()
        }

        fn zip(&self, o: &Bitmap, f: impl Fn(bool, bool) -> bool) -> Bitmap {
            let mut out = Self::empty();
            for (k, slot) in out.0.iter_mut().enumerate() {
                *slot = f(self.0[k], o.0[k]);
            }
            out
        }
    }

    /// Checks the representation invariant and that `set` covers exactly the
    /// elements of `want`.
    fn assert_matches(set: &RegionSet, want: &Bitmap, what: &str) {
        for r in set.rects() {
            assert!(!r.is_empty(), "{what}: empty rect stored");
        }
        for (i, a) in set.rects().iter().enumerate() {
            for b in &set.rects()[i + 1..] {
                assert!(!a.overlaps(b), "{what}: overlapping rects {a} and {b}");
            }
        }
        let got = Bitmap::from_rects(set.rects());
        assert!(got == *want, "{what}: covered elements differ from oracle");
        assert_eq!(set.area(), want.count(), "{what}: area");
    }

    #[test]
    fn insert_deduplicates_and_coalesces() {
        let mut s = RegionSet::new();
        s.insert(rect(0..4, 0..4));
        s.insert(rect(0..4, 0..4));
        assert_eq!(s.rects().len(), 1);
        s.insert(rect(0..4, 4..8));
        assert_eq!(s.rects().len(), 1, "edge-adjacent rects coalesce");
        assert_eq!(s.area(), 32);
        s.insert(rect(2..6, 2..6));
        assert_eq!(s.area(), 32 + 8);
    }

    #[test]
    fn subtract_splits_rects() {
        let mut s = RegionSet::from_rect(rect(0..8, 0..8));
        s.subtract_rect(&rect(2..6, 2..6));
        assert_eq!(s.area(), 64 - 16);
        assert!(!s.intersects(&rect(3..4, 3..4)));
        assert!(s.intersects(&rect(0..1, 0..1)));
        assert!(s.covers(&rect(6..8, 0..8)));
        assert!(!s.covers(&rect(0..8, 0..8)));
    }

    #[test]
    fn intersect_is_exact() {
        let a = RegionSet::from_rects([rect(0..4, 0..8), rect(6..8, 0..8)]);
        let b = RegionSet::from_rect(rect(2..7, 4..6));
        let i = a.intersect(&b);
        assert_eq!(i.area(), 6); // 2×2 from the top band, 1×2 from the bottom
        assert!(a.intersects_set(&b));
        assert!(!a.intersects_set(&RegionSet::from_rect(rect(4..6, 0..8))));
    }

    #[test]
    fn semantic_equality_ignores_decomposition() {
        let a = RegionSet::from_rects([rect(0..4, 0..2), rect(0..4, 2..4)]);
        let b = RegionSet::from_rect(rect(0..4, 0..4));
        assert_eq!(a, b);
        assert_ne!(a, RegionSet::from_rect(rect(0..4, 0..5)));
    }

    #[test]
    fn empty_rects_are_ignored() {
        let mut s = RegionSet::new();
        s.insert(rect(3..3, 0..10));
        assert!(s.is_empty());
        assert!(s.covers(&rect(5..5, 0..99)));
        assert!(!s.intersects(&rect(0..1, 0..1)));
    }

    fn draw_rect(prng: &mut proptest::test_runner::Prng) -> ElemRect {
        let d = (DIM + 1) as u64;
        let (r0, r1) = (prng.below(d) as usize, prng.below(d) as usize);
        let (c0, c1) = (prng.below(d) as usize, prng.below(d) as usize);
        ElemRect {
            row0: r0.min(r1),
            row1: r0.max(r1),
            col0: c0.min(c1),
            col1: c0.max(c1),
        }
    }

    /// Up to 7 random (possibly empty, possibly overlapping) rects in the
    /// `DIM × DIM` universe. The vendored proptest shim has no tuple or
    /// collection strategies, so this implements `Strategy` directly.
    struct ArbRects;

    impl Strategy for ArbRects {
        type Value = Vec<ElemRect>;
        fn sample(&self, prng: &mut proptest::test_runner::Prng) -> Vec<ElemRect> {
            let len = prng.below(8) as usize;
            (0..len).map(|_| draw_rect(prng)).collect()
        }
    }

    /// One random rect (empty allowed).
    struct ArbRect;

    impl Strategy for ArbRect {
        type Value = ElemRect;
        fn sample(&self, prng: &mut proptest::test_runner::Prng) -> ElemRect {
            draw_rect(prng)
        }
    }

    fn arb_rect() -> impl Strategy<Value = ElemRect> {
        ArbRect
    }

    fn arb_rects() -> impl Strategy<Value = Vec<ElemRect>> {
        ArbRects
    }

    fn cases() -> ProptestConfig {
        ProptestConfig::with_cases(if cfg!(miri) { 8 } else { 256 })
    }

    proptest! {
        #![proptest_config(cases())]

        #[test]
        fn union_matches_bitmap_oracle(ra in arb_rects(), rb in arb_rects()) {
            let a = RegionSet::from_rects(ra.iter().copied());
            let b = RegionSet::from_rects(rb.iter().copied());
            let ba = Bitmap::from_rects(&ra);
            let bb = Bitmap::from_rects(&rb);
            assert_matches(&a, &ba, "build a");
            assert_matches(&b, &bb, "build b");
            assert_matches(&a.union(&b), &ba.zip(&bb, |x, y| x || y), "union");
            for r in &ra {
                prop_assert!(a.covers(r));
            }
        }

        #[test]
        fn intersect_matches_bitmap_oracle(ra in arb_rects(), rb in arb_rects()) {
            let a = RegionSet::from_rects(ra.iter().copied());
            let b = RegionSet::from_rects(rb.iter().copied());
            let ba = Bitmap::from_rects(&ra);
            let bb = Bitmap::from_rects(&rb);
            let want = ba.zip(&bb, |x, y| x && y);
            assert_matches(&a.intersect(&b), &want, "intersect");
            prop_assert_eq!(a.intersects_set(&b), want.count() > 0);
        }

        #[test]
        fn subtract_matches_bitmap_oracle(ra in arb_rects(), rb in arb_rects()) {
            let mut a = RegionSet::from_rects(ra.iter().copied());
            let b = RegionSet::from_rects(rb.iter().copied());
            let ba = Bitmap::from_rects(&ra);
            let bb = Bitmap::from_rects(&rb);
            a.subtract(&b);
            assert_matches(&a, &ba.zip(&bb, |x, y| x && !y), "subtract");
        }

        #[test]
        fn covers_matches_bitmap_oracle(ra in arb_rects(), probe in arb_rect()) {
            let a = RegionSet::from_rects(ra.iter().copied());
            let ba = Bitmap::from_rects(&ra);
            let bp = Bitmap::from_rects(&[probe]);
            let want = bp.zip(&ba, |p, x| p && !x).count() == 0;
            prop_assert_eq!(a.covers(&probe), want);
            prop_assert_eq!(
                a.intersects(&probe),
                bp.zip(&ba, |p, x| p && x).count() > 0
            );
        }
    }
}
