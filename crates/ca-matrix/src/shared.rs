//! Shared-mutable matrix handle for task-parallel runtimes.
//!
//! A dynamic task scheduler hands blocks of one matrix to tasks running on
//! different threads. The borrow checker cannot express "these tasks touch
//! disjoint blocks because the dependency graph says so", so the runtime uses
//! [`SharedMatrix`]: an unsafe cell over the matrix buffer whose block
//! accessors are `unsafe fn`s with the disjointness obligation spelled out.
//!
//! This mirrors what every task-based dense linear algebra runtime
//! (PLASMA/QUARK, StarPU, OpenMP tasks with `depend`) does: correctness of
//! concurrent block access is a property of the task graph, not of the type
//! system. All uses in this workspace are confined to `ca-sched` executors
//! running graphs built by `ca-core`/`ca-baselines` DAG builders. That
//! contract is machine-checked: `ca-sched`'s static verifier proves every
//! conflicting block pair is ordered by a happens-before path, and checked
//! execution mode (a [`crate::shadow::ShadowRegistry`] attached via
//! [`SharedMatrix::with_shadow`]) audits the actual element ranges at run
//! time.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::shadow::{ElemRect, ShadowRegistry};
use crate::view::{MatView, MatViewMut};
use core::cell::UnsafeCell;
use std::sync::Arc;

/// A matrix owned by a task-parallel computation.
///
/// Construct with [`SharedMatrix::new`], run the task graph, then reclaim the
/// result with [`SharedMatrix::into_inner`]. Checked execution mode attaches
/// a [`ShadowRegistry`] with [`SharedMatrix::with_shadow`], which makes every
/// block accessor record its element range for race/footprint checking.
pub struct SharedMatrix<T: Scalar = f64> {
    cell: UnsafeCell<Matrix<T>>,
    rows: usize,
    cols: usize,
    shadow: Option<Arc<ShadowRegistry>>,
}

// SAFETY: concurrent access is only possible through the `unsafe` block
// accessors, whose contracts require callers (the task runtime) to guarantee
// non-overlapping access; under that contract data races cannot occur.
unsafe impl<T: Scalar> Send for SharedMatrix<T> {}
unsafe impl<T: Scalar> Sync for SharedMatrix<T> {}

impl<T: Scalar> SharedMatrix<T> {
    /// Wraps a matrix for shared task access.
    pub fn new(m: Matrix<T>) -> Self {
        let rows = m.nrows();
        let cols = m.ncols();
        Self { cell: UnsafeCell::new(m), rows, cols, shadow: None }
    }

    /// Wraps a matrix for *checked* shared task access: every block accessor
    /// reports its element range to `registry` (see [`crate::shadow`]).
    pub fn with_shadow(m: Matrix<T>, registry: Arc<ShadowRegistry>) -> Self {
        let mut s = Self::new(m);
        s.shadow = Some(registry);
        s
    }

    /// The attached shadow registry, if running in checked mode.
    pub fn shadow(&self) -> Option<&Arc<ShadowRegistry>> {
        self.shadow.as_ref()
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Reclaims the matrix after all tasks have completed.
    pub fn into_inner(self) -> Matrix<T> {
        self.cell.into_inner()
    }

    /// Immutable view of the block at `(i, j)` with shape `r × c`.
    ///
    /// # Safety
    /// For the lifetime of the returned view no concurrently running task may
    /// mutate any element of the block. The scheduler's dependency edges must
    /// enforce this.
    #[inline]
    pub unsafe fn block(&self, i: usize, j: usize, r: usize, c: usize) -> MatView<'_, T> {
        assert!(i + r <= self.rows && j + c <= self.cols, "block out of bounds");
        if let Some(reg) = &self.shadow {
            reg.on_access(false, i..i + r, j..j + c);
        }
        // SAFETY: bounds hold per the assert; disjointness from concurrent
        // writers is the caller's obligation (see function contract).
        unsafe {
            let m = &*self.cell.get();
            let ptr = m.as_slice().as_ptr().add(i + j * self.rows);
            MatView::from_raw_parts(ptr, r, c, self.rows)
        }
    }

    /// Mutable view of the block at `(i, j)` with shape `r × c`.
    ///
    /// # Safety
    /// For the lifetime of the returned view no concurrently running task may
    /// read or mutate any element of the block. The scheduler's dependency
    /// edges must enforce this.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn block_mut(&self, i: usize, j: usize, r: usize, c: usize) -> MatViewMut<'_, T> {
        assert!(i + r <= self.rows && j + c <= self.cols, "block out of bounds");
        if let Some(reg) = &self.shadow {
            reg.on_access(true, i..i + r, j..j + c);
        }
        // SAFETY: bounds hold per the assert; exclusivity is the caller's
        // obligation (see function contract).
        unsafe {
            let m = &mut *self.cell.get();
            let rows = self.rows;
            let ptr = m.as_mut_slice().as_mut_ptr().add(i + j * rows);
            MatViewMut::from_raw_parts(ptr, r, c, rows)
        }
    }

    /// Immutable view of the block at `(i, j)` with shape `r × c`, reading
    /// only the elements inside `rects` (absolute matrix coordinates).
    ///
    /// The returned view still spans the whole block — kernels need the
    /// block's leading dimension — but the access reported to the shadow
    /// registry (and the disjointness obligation) covers only `rects`. Used
    /// by tasks whose true footprint is a sub-block region, e.g. the strict
    /// lower triangle of a factored diagonal tile.
    ///
    /// # Safety
    /// For the lifetime of the returned view no concurrently running task may
    /// mutate any element of `rects`, and the caller must not read elements
    /// of the block outside `rects`. The scheduler's dependency edges must
    /// enforce the former; the kernel contract the latter.
    #[inline]
    pub unsafe fn block_rects(
        &self,
        i: usize,
        j: usize,
        r: usize,
        c: usize,
        rects: &[ElemRect],
    ) -> MatView<'_, T> {
        assert!(i + r <= self.rows && j + c <= self.cols, "block out of bounds");
        if let Some(reg) = &self.shadow {
            for rect in rects {
                reg.on_access(false, rect.row0..rect.row1, rect.col0..rect.col1);
            }
        }
        // SAFETY: bounds hold per the assert; the caller's contract restricts
        // actual element access to `rects`.
        unsafe {
            let m = &*self.cell.get();
            let ptr = m.as_slice().as_ptr().add(i + j * self.rows);
            MatView::from_raw_parts(ptr, r, c, self.rows)
        }
    }

    /// Mutable view of the block at `(i, j)` with shape `r × c`, touching
    /// only the elements inside `rects` (absolute matrix coordinates).
    ///
    /// Mutable counterpart of [`SharedMatrix::block_rects`]: the view spans
    /// the block, the obligation (and shadow lease) covers only `rects`.
    ///
    /// # Safety
    /// For the lifetime of the returned view no concurrently running task may
    /// read or mutate any element of `rects`, and the caller must not touch
    /// elements of the block outside `rects`.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn block_mut_rects(
        &self,
        i: usize,
        j: usize,
        r: usize,
        c: usize,
        rects: &[ElemRect],
    ) -> MatViewMut<'_, T> {
        assert!(i + r <= self.rows && j + c <= self.cols, "block out of bounds");
        if let Some(reg) = &self.shadow {
            for rect in rects {
                reg.on_access(true, rect.row0..rect.row1, rect.col0..rect.col1);
            }
        }
        // SAFETY: bounds hold per the assert; the caller's contract restricts
        // actual element access to `rects`.
        unsafe {
            let m = &mut *self.cell.get();
            let rows = self.rows;
            let ptr = m.as_mut_slice().as_mut_ptr().add(i + j * rows);
            MatViewMut::from_raw_parts(ptr, r, c, rows)
        }
    }

    /// Whole-matrix mutable view.
    ///
    /// # Safety
    /// Same contract as [`SharedMatrix::block_mut`] over the whole matrix —
    /// i.e. the caller must be the only task touching the matrix.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    // Forwarding wrapper: carries block_mut's own contract verbatim.
    #[allow(clippy::disallowed_methods)]
    pub unsafe fn whole_mut(&self) -> MatViewMut<'_, T> {
        // SAFETY: the caller's contract is exactly `block_mut`'s over the
        // whole matrix.
        unsafe { self.block_mut(0, 0, self.rows, self.cols) }
    }
}

#[cfg(test)]
// Tests exercise the raw accessors directly, single-threaded.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_data() {
        let m = Matrix::from_fn(3, 3, |i, j| (i + 10 * j) as f64);
        let orig = m.clone();
        let s = SharedMatrix::new(m);
        assert_eq!(s.nrows(), 3);
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.into_inner(), orig);
    }

    #[test]
    fn disjoint_blocks_see_their_own_data() {
        let s = SharedMatrix::new(Matrix::zeros(4, 4));
        // SAFETY: single-threaded test; blocks are disjoint.
        unsafe {
            s.block_mut(0, 0, 2, 2).fill(1.0);
            s.block_mut(2, 2, 2, 2).fill(2.0);
            assert_eq!(s.block(0, 0, 2, 2).at(1, 1), 1.0);
            assert_eq!(s.block(2, 2, 2, 2).at(0, 0), 2.0);
            assert_eq!(s.block(0, 2, 2, 2).at(0, 0), 0.0);
        }
        let m = s.into_inner();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(3, 3)], 2.0);
        assert_eq!(m[(0, 3)], 0.0);
    }

    #[test]
    fn rect_scoped_accessors_lease_only_their_rects() {
        use crate::shadow::{ShadowRegistry, TaskFootprint};
        // Task 0's declared write is only the top-left element of a 2×2
        // block; the rect-scoped accessor stays inside it even though the
        // returned view spans the block.
        let fp = TaskFootprint {
            reads: vec![],
            writes: vec![ElemRect::new(0..1, 0..1)],
        };
        let reg = Arc::new(ShadowRegistry::new(vec![fp], vec!["t0".into()]));
        let s = SharedMatrix::with_shadow(Matrix::zeros(2, 2), Arc::clone(&reg));
        {
            let _scope = reg.enter_task(0);
            // SAFETY: single-threaded test; only (0,0) is touched.
            let mut b = unsafe {
                s.block_mut_rects(0, 0, 2, 2, &[ElemRect::new(0..1, 0..1)])
            };
            *b.at_mut(0, 0) = 1.0;
        }
        assert!(reg.take_violations().is_empty());
        assert_eq!(reg.accesses(), 1);
        assert_eq!(s.into_inner()[(0, 0)], 1.0);
    }

    #[test]
    fn parallel_disjoint_writes_are_sound() {
        let s = SharedMatrix::new(Matrix::zeros(64, 8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    // SAFETY: each thread writes a disjoint 16-row stripe.
                    let mut b = unsafe { s.block_mut(t * 16, 0, 16, 8) };
                    b.fill(t as f64 + 1.0);
                });
            }
        });
        let m = s.into_inner();
        for t in 0..4 {
            assert_eq!(m[(t * 16, 0)], t as f64 + 1.0);
            assert_eq!(m[(t * 16 + 15, 7)], t as f64 + 1.0);
        }
    }
}
