//! Borrowed, stride-aware matrix views.
//!
//! A view is a window `(rows × cols)` into a column-major buffer with leading
//! dimension `ld` (the stride between consecutive columns). Views are the
//! currency of every kernel in this workspace: they make it possible to hand
//! disjoint panels and trailing blocks of one allocation to different tasks
//! without copying, exactly as LAPACK routines do with `(A, LDA)` pairs.
//! Generic over [`Scalar`] with an `f64` default, like [`crate::Matrix`].

use crate::scalar::Scalar;
use core::fmt;
use core::marker::PhantomData;

/// Immutable view of a column-major matrix block.
#[derive(Clone, Copy)]
pub struct MatView<'a, T: Scalar = f64> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a T>,
}

/// Mutable view of a column-major matrix block.
///
/// Not `Copy`: like `&mut`, a mutable view is an exclusive capability.
/// Use [`MatViewMut::rb`] (reborrow) to lend it out temporarily and
/// [`MatViewMut::split_at_row`] / [`MatViewMut::split_at_col`] to divide it
/// into disjoint sub-blocks.
pub struct MatViewMut<'a, T: Scalar = f64> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: a view is just a reference-like handle to scalar data; T: Send+Sync
// and the borrow rules are enforced by the lifetimes exactly as for &[T].
unsafe impl<'a, T: Scalar> Send for MatView<'a, T> {}
unsafe impl<'a, T: Scalar> Sync for MatView<'a, T> {}
unsafe impl<'a, T: Scalar> Send for MatViewMut<'a, T> {}
unsafe impl<'a, T: Scalar> Sync for MatViewMut<'a, T> {}

impl<'a, T: Scalar> MatView<'a, T> {
    /// Builds a view from raw parts.
    ///
    /// # Safety
    /// `ptr` must point to an allocation that holds at least
    /// `ld * (cols - 1) + rows` elements (when `cols > 0`), which stays alive
    /// and un-mutated for `'a`, and `ld >= rows` must hold.
    #[inline]
    pub unsafe fn from_raw_parts(ptr: *const T, rows: usize, cols: usize, ld: usize) -> Self {
        debug_assert!(ld >= rows || cols <= 1);
        Self { ptr, rows, cols, ld, _marker: PhantomData }
    }

    /// Creates a view over a full column-major slice (`ld == rows`).
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    #[inline]
    pub fn from_slice(data: &'a [T], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "slice length must equal rows*cols");
        unsafe { Self::from_raw_parts(data.as_ptr(), rows, cols, rows.max(1)) }
    }

    /// Number of rows in the view.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the view.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride) of the underlying buffer.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Raw pointer to element `(0, 0)`.
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// `true` if the view contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Reads element `(i, j)` with bounds checking.
    #[inline]
    #[track_caller]
    pub fn at(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds ({}x{})", self.rows, self.cols);
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Reads element `(i, j)` without bounds checking.
    ///
    /// # Safety
    /// `i < nrows()` and `j < ncols()` must hold.
    #[inline]
    pub unsafe fn at_unchecked(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: in bounds per the caller's contract.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    #[track_caller]
    pub fn col(&self, j: usize) -> &'a [T] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        unsafe { core::slice::from_raw_parts(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Sub-view of `r × c` elements starting at `(i, j)`.
    #[inline]
    #[track_caller]
    pub fn sub(&self, i: usize, j: usize, r: usize, c: usize) -> MatView<'a, T> {
        assert!(i + r <= self.rows && j + c <= self.cols,
            "subview ({i},{j})+({r}x{c}) out of bounds ({}x{})", self.rows, self.cols);
        unsafe { MatView::from_raw_parts(self.ptr.add(i + j * self.ld), r, c, self.ld) }
    }

    /// Copies the view into a fresh `rows * cols` column-major `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.rows * self.cols);
        for j in 0..self.cols {
            out.extend_from_slice(self.col(j));
        }
        out
    }

    /// Maximum absolute value of the elements (`0.0` for an empty view).
    pub fn max_abs(&self) -> T {
        let mut m = T::ZERO;
        for j in 0..self.cols {
            for &x in self.col(j) {
                m = m.max(x.abs());
            }
        }
        m
    }
}

impl<'a, T: Scalar> MatViewMut<'a, T> {
    /// Builds a mutable view from raw parts.
    ///
    /// # Safety
    /// Same requirements as [`MatView::from_raw_parts`], plus exclusivity:
    /// no other live view may alias the window for `'a`.
    #[inline]
    pub unsafe fn from_raw_parts(ptr: *mut T, rows: usize, cols: usize, ld: usize) -> Self {
        debug_assert!(ld >= rows || cols <= 1);
        Self { ptr, rows, cols, ld, _marker: PhantomData }
    }

    /// Creates a mutable view over a full column-major slice (`ld == rows`).
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    #[inline]
    pub fn from_slice(data: &'a mut [T], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "slice length must equal rows*cols");
        unsafe { Self::from_raw_parts(data.as_mut_ptr(), rows, cols, rows.max(1)) }
    }

    /// Number of rows in the view.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns in the view.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride) of the underlying buffer.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Raw pointer to element `(0, 0)`.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    /// `true` if the view contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Reborrows as an immutable view.
    #[inline]
    pub fn as_ref(&self) -> MatView<'_, T> {
        unsafe { MatView::from_raw_parts(self.ptr, self.rows, self.cols, self.ld) }
    }

    /// Reborrows mutably with a shorter lifetime (like `&mut *x`).
    #[inline]
    pub fn rb(&mut self) -> MatViewMut<'_, T> {
        unsafe { MatViewMut::from_raw_parts(self.ptr, self.rows, self.cols, self.ld) }
    }

    /// Reads element `(i, j)` with bounds checking.
    #[inline]
    #[track_caller]
    pub fn at(&self, i: usize, j: usize) -> T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds ({}x{})", self.rows, self.cols);
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Writes element `(i, j)` with bounds checking.
    #[inline]
    #[track_caller]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds ({}x{})", self.rows, self.cols);
        unsafe { *self.ptr.add(i + j * self.ld) = v }
    }

    /// Mutable reference to element `(i, j)` with bounds checking.
    #[inline]
    #[track_caller]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds ({}x{})", self.rows, self.cols);
        unsafe { &mut *self.ptr.add(i + j * self.ld) }
    }

    /// Reads element `(i, j)` without bounds checking.
    ///
    /// # Safety
    /// `i < nrows()` and `j < ncols()` must hold.
    #[inline]
    pub unsafe fn at_unchecked(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: in bounds per the caller's contract.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Writes element `(i, j)` without bounds checking.
    ///
    /// # Safety
    /// `i < nrows()` and `j < ncols()` must hold.
    #[inline]
    pub unsafe fn set_unchecked(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        // SAFETY: in bounds per the caller's contract.
        unsafe { *self.ptr.add(i + j * self.ld) = v };
    }

    /// Column `j` as a contiguous immutable slice.
    #[inline]
    #[track_caller]
    pub fn col(&self, j: usize) -> &[T] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        unsafe { core::slice::from_raw_parts(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Column `j` as a contiguous mutable slice.
    #[inline]
    #[track_caller]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        unsafe { core::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.rows) }
    }

    /// Mutable sub-view of `r × c` elements starting at `(i, j)`.
    #[inline]
    #[track_caller]
    pub fn sub(&mut self, i: usize, j: usize, r: usize, c: usize) -> MatViewMut<'_, T> {
        assert!(i + r <= self.rows && j + c <= self.cols,
            "subview ({i},{j})+({r}x{c}) out of bounds ({}x{})", self.rows, self.cols);
        unsafe { MatViewMut::from_raw_parts(self.ptr.add(i + j * self.ld), r, c, self.ld) }
    }

    /// Consumes the view, producing a sub-view with the full lifetime `'a`.
    #[inline]
    #[track_caller]
    pub fn into_sub(self, i: usize, j: usize, r: usize, c: usize) -> MatViewMut<'a, T> {
        assert!(i + r <= self.rows && j + c <= self.cols,
            "subview ({i},{j})+({r}x{c}) out of bounds ({}x{})", self.rows, self.cols);
        unsafe { MatViewMut::from_raw_parts(self.ptr.add(i + j * self.ld), r, c, self.ld) }
    }

    /// Splits into `(top, bottom)` at row `i` (`top` gets rows `0..i`).
    #[inline]
    #[track_caller]
    pub fn split_at_row(self, i: usize) -> (MatViewMut<'a, T>, MatViewMut<'a, T>) {
        assert!(i <= self.rows, "split row {i} out of bounds ({})", self.rows);
        unsafe {
            (
                MatViewMut::from_raw_parts(self.ptr, i, self.cols, self.ld),
                MatViewMut::from_raw_parts(self.ptr.add(i), self.rows - i, self.cols, self.ld),
            )
        }
    }

    /// Splits into `(left, right)` at column `j` (`left` gets columns `0..j`).
    #[inline]
    #[track_caller]
    pub fn split_at_col(self, j: usize) -> (MatViewMut<'a, T>, MatViewMut<'a, T>) {
        assert!(j <= self.cols, "split col {j} out of bounds ({})", self.cols);
        unsafe {
            (
                MatViewMut::from_raw_parts(self.ptr, self.rows, j, self.ld),
                MatViewMut::from_raw_parts(self.ptr.add(j * self.ld), self.rows, self.cols - j, self.ld),
            )
        }
    }

    /// Splits into four quadrants at `(i, j)`:
    /// `(top-left, top-right, bottom-left, bottom-right)`.
    #[inline]
    #[track_caller]
    pub fn split_quad(
        self,
        i: usize,
        j: usize,
    ) -> (MatViewMut<'a, T>, MatViewMut<'a, T>, MatViewMut<'a, T>, MatViewMut<'a, T>) {
        let (top, bottom) = self.split_at_row(i);
        let (tl, tr) = top.split_at_col(j);
        let (bl, br) = bottom.split_at_col(j);
        (tl, tr, bl, br)
    }

    /// Fills every element with `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Copies `src` into this view. Shapes must match.
    #[track_caller]
    pub fn copy_from(&mut self, src: MatView<'_, T>) {
        assert_eq!(self.rows, src.nrows(), "row count mismatch in copy_from");
        assert_eq!(self.cols, src.ncols(), "column count mismatch in copy_from");
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Swaps rows `i1` and `i2` over all columns.
    #[track_caller]
    pub fn swap_rows(&mut self, i1: usize, i2: usize) {
        assert!(i1 < self.rows && i2 < self.rows, "swap_rows out of bounds");
        if i1 == i2 {
            return;
        }
        for j in 0..self.cols {
            unsafe {
                let p1 = self.ptr.add(i1 + j * self.ld);
                let p2 = self.ptr.add(i2 + j * self.ld);
                core::ptr::swap(p1, p2);
            }
        }
    }
}

impl<T: Scalar> fmt::Debug for MatView<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatView({}x{}, ld={})", self.rows, self.cols, self.ld)
    }
}

impl<T: Scalar> fmt::Debug for MatViewMut<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatViewMut({}x{}, ld={})", self.rows, self.cols, self.ld)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(rows: usize, cols: usize) -> Vec<f64> {
        (0..rows * cols).map(|x| x as f64).collect()
    }

    #[test]
    fn view_indexing_is_column_major() {
        let data = buf(3, 2);
        let v = MatView::from_slice(&data, 3, 2);
        assert_eq!(v.at(0, 0), 0.0);
        assert_eq!(v.at(2, 0), 2.0);
        assert_eq!(v.at(0, 1), 3.0);
        assert_eq!(v.at(2, 1), 5.0);
    }

    #[test]
    fn subview_respects_leading_dimension() {
        let data = buf(4, 4);
        let v = MatView::from_slice(&data, 4, 4);
        let s = v.sub(1, 2, 2, 2);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.ld(), 4);
        assert_eq!(s.at(0, 0), v.at(1, 2));
        assert_eq!(s.at(1, 1), v.at(2, 3));
    }

    #[test]
    fn mutable_split_row_and_col_are_disjoint() {
        let mut data = vec![0.0; 16];
        let v = MatViewMut::from_slice(&mut data, 4, 4);
        let (mut top, mut bottom) = v.split_at_row(2);
        top.fill(1.0);
        bottom.fill(2.0);
        assert_eq!(data[0], 1.0);
        assert_eq!(data[2], 2.0);

        let v = MatViewMut::from_slice(&mut data, 4, 4);
        let (mut l, mut r) = v.split_at_col(1);
        l.fill(3.0);
        r.fill(4.0);
        assert_eq!(data[3], 3.0);
        assert_eq!(data[4], 4.0);
    }

    #[test]
    fn split_quad_covers_everything() {
        let mut data = vec![0.0; 12];
        let v = MatViewMut::from_slice(&mut data, 3, 4);
        let (mut a, mut b, mut c, mut d) = v.split_quad(1, 2);
        a.fill(1.0);
        b.fill(2.0);
        c.fill(3.0);
        d.fill(4.0);
        let m = MatView::from_slice(&data, 3, 4);
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(0, 3), 2.0);
        assert_eq!(m.at(2, 1), 3.0);
        assert_eq!(m.at(2, 2), 4.0);
    }

    #[test]
    fn swap_rows_touches_all_columns() {
        let mut data = buf(3, 3);
        let mut v = MatViewMut::from_slice(&mut data, 3, 3);
        v.swap_rows(0, 2);
        assert_eq!(v.at(0, 0), 2.0);
        assert_eq!(v.at(2, 0), 0.0);
        assert_eq!(v.at(0, 2), 8.0);
        assert_eq!(v.at(2, 2), 6.0);
    }

    #[test]
    fn copy_from_round_trips() {
        let src_data = buf(3, 2);
        let src = MatView::from_slice(&src_data, 3, 2);
        let mut dst_data = vec![0.0; 6];
        let mut dst = MatViewMut::from_slice(&mut dst_data, 3, 2);
        dst.copy_from(src);
        assert_eq!(src_data, dst_data);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_read_panics() {
        let data = buf(2, 2);
        let v = MatView::from_slice(&data, 2, 2);
        let _ = v.at(2, 0);
    }

    #[test]
    fn empty_views_are_harmless() {
        let data: Vec<f64> = vec![];
        let v = MatView::from_slice(&data, 0, 0);
        assert!(v.is_empty());
        assert_eq!(v.max_abs(), 0.0);
        assert_eq!(v.to_vec(), Vec::<f64>::new());
    }

    #[test]
    fn to_vec_is_column_major() {
        let data = buf(4, 3);
        let v = MatView::from_slice(&data, 4, 3);
        let s = v.sub(1, 1, 2, 2);
        assert_eq!(s.to_vec(), vec![5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn f32_views_share_the_same_api() {
        let mut data: Vec<f32> = (0..6).map(|x| x as f32).collect();
        let mut v = MatViewMut::from_slice(&mut data, 3, 2);
        v.set(0, 1, 9.5);
        assert_eq!(v.at(0, 1), 9.5f32);
        assert_eq!(v.as_ref().max_abs(), 9.5f32);
    }
}
