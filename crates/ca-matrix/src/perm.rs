//! Row permutations in the two representations LAPACK-style factorizations
//! need: pivot sequences (`ipiv`, as produced by partial pivoting) and
//! explicit permutation vectors.

use crate::scalar::Scalar;
use crate::view::MatViewMut;

/// A sequence of row interchanges, LAPACK `ipiv`-style but 0-based:
/// step `k` swaps row `offset + k` with row `ipiv[k]` (global indices).
///
/// Applying the sequence in order reproduces exactly the permutation a
/// pivoted factorization performed; applying it in reverse order undoes it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PivotSeq {
    /// Global row index swapped with row `offset + k` at step `k`.
    pub ipiv: Vec<usize>,
    /// Global row index of the first pivot position.
    pub offset: usize,
}

impl PivotSeq {
    /// Empty sequence starting at `offset`.
    pub fn new(offset: usize) -> Self {
        Self { ipiv: Vec::new(), offset }
    }

    /// Number of interchanges.
    pub fn len(&self) -> usize {
        self.ipiv.len()
    }

    /// `true` if there are no interchanges.
    pub fn is_empty(&self) -> bool {
        self.ipiv.is_empty()
    }

    /// Records that step `k = len()` swaps row `offset + len()` with `row`.
    pub fn push(&mut self, row: usize) {
        debug_assert!(row >= self.offset + self.ipiv.len(), "pivot row must not precede its position");
        self.ipiv.push(row);
    }

    /// Applies the interchanges, in order, to the rows of `a`.
    ///
    /// `a` must be a view whose row `0` corresponds to global row `0`
    /// (i.e. a full-height block of the matrix being factored).
    pub fn apply<T: Scalar>(&self, mut a: MatViewMut<'_, T>) {
        for (k, &p) in self.ipiv.iter().enumerate() {
            a.swap_rows(self.offset + k, p);
        }
    }

    /// Applies the interchanges in reverse order (the inverse permutation).
    pub fn apply_inverse<T: Scalar>(&self, mut a: MatViewMut<'_, T>) {
        for (k, &p) in self.ipiv.iter().enumerate().rev() {
            a.swap_rows(self.offset + k, p);
        }
    }

    /// Applies the interchanges to a row-indexed vector (e.g. a RHS).
    pub fn apply_vec<T: Scalar>(&self, v: &mut [T]) {
        for (k, &p) in self.ipiv.iter().enumerate() {
            v.swap(self.offset + k, p);
        }
    }

    /// Composes into an explicit permutation `perm` of `0..m`:
    /// after the call, `perm[i]` is the original index of the row that ends
    /// up at position `i` when the interchanges are applied to `0..m`.
    pub fn to_permutation(&self, m: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..m).collect();
        for (k, &p) in self.ipiv.iter().enumerate() {
            perm.swap(self.offset + k, p);
        }
        perm
    }

    /// Appends another sequence whose offset continues this one.
    pub fn extend(&mut self, other: &PivotSeq) {
        debug_assert_eq!(other.offset, self.offset + self.ipiv.len(), "pivot sequences must be contiguous");
        self.ipiv.extend_from_slice(&other.ipiv);
    }
}

/// Applies an explicit permutation to the rows of a matrix view:
/// row `i` of the result is row `perm[i]` of the input.
///
/// Allocates a scratch column; use on full-height views.
pub fn permute_rows<T: Scalar>(perm: &[usize], mut a: MatViewMut<'_, T>) {
    assert_eq!(perm.len(), a.nrows(), "permutation length must match row count");
    let mut scratch = vec![T::ZERO; a.nrows()];
    for j in 0..a.ncols() {
        let col = a.col_mut(j);
        for (i, &p) in perm.iter().enumerate() {
            scratch[i] = col[p];
        }
        col.copy_from_slice(&scratch);
    }
}

/// Checks that `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Inverts an explicit permutation.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn pivot_seq_apply_and_inverse_cancel() {
        let mut a = Matrix::from_fn(5, 2, |i, j| (i * 2 + j) as f64);
        let orig = a.clone();
        let mut ps = PivotSeq::new(0);
        ps.push(3);
        ps.push(1);
        ps.push(4);
        ps.apply(a.view_mut());
        assert_ne!(a, orig);
        ps.apply_inverse(a.view_mut());
        assert_eq!(a, orig);
    }

    #[test]
    fn to_permutation_matches_apply() {
        let m = 6;
        let mut ps = PivotSeq::new(1);
        ps.push(4);
        ps.push(2);
        ps.push(5);
        let perm = ps.to_permutation(m);
        assert!(is_permutation(&perm));

        let mut a = Matrix::from_fn(m, 1, |i, _| i as f64);
        ps.apply(a.view_mut());
        for i in 0..m {
            assert_eq!(a[(i, 0)], perm[i] as f64);
        }
    }

    #[test]
    fn permute_rows_matches_permutation_semantics() {
        let a0 = Matrix::from_fn(4, 3, |i, j| (10 * i + j) as f64);
        let mut a = a0.clone();
        let perm = vec![2, 0, 3, 1];
        permute_rows(&perm, a.view_mut());
        for i in 0..4 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], a0[(perm[i], j)]);
            }
        }
    }

    #[test]
    fn invert_permutation_is_inverse() {
        let perm = vec![3, 1, 4, 0, 2];
        let inv = invert_permutation(&perm);
        for i in 0..perm.len() {
            assert_eq!(inv[perm[i]], i);
            assert_eq!(perm[inv[i]], i);
        }
    }

    #[test]
    fn is_permutation_rejects_bad_input() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(is_permutation(&[]));
        assert!(!is_permutation(&[0, 0, 2]));
        assert!(!is_permutation(&[0, 3]));
    }

    #[test]
    fn extend_concatenates_contiguous_sequences() {
        let mut p1 = PivotSeq::new(0);
        p1.push(2);
        p1.push(3);
        let mut p2 = PivotSeq::new(2);
        p2.push(4);
        p1.extend(&p2);
        assert_eq!(p1.len(), 3);
        assert_eq!(p1.ipiv, vec![2, 3, 4]);
    }

    #[test]
    fn apply_vec_matches_matrix_apply() {
        let mut ps = PivotSeq::new(0);
        ps.push(2);
        ps.push(3);
        let mut v = vec![0.0, 1.0, 2.0, 3.0];
        ps.apply_vec(&mut v);
        let mut a = Matrix::from_fn(4, 1, |i, _| i as f64);
        ps.apply(a.view_mut());
        for i in 0..4 {
            assert_eq!(v[i], a[(i, 0)]);
        }
    }
}
