//! Owned column-major dense matrix, generic over [`Scalar`] (default `f64`).

use crate::scalar::Scalar;
use crate::view::{MatView, MatViewMut};
use core::fmt;
use core::ops::{Index, IndexMut};

/// Owned dense matrix stored column-major with leading dimension equal to the
/// row count (a "packed" LAPACK matrix). Generic over the element type; the
/// `f64` default keeps every pre-existing call site source-compatible.
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar = f64> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Scalar> Matrix<T> {
    /// Allocates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { data: vec![T::ZERO; rows * cols], rows, cols }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix from a function of `(row, column)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { data, rows, cols }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<T>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self { data, rows, cols }
    }

    /// Builds from row-major data (convenient for literals in tests).
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[T]) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must equal rows*cols");
        Self::from_fn(rows, cols, |i, j| data[i * cols + j])
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The underlying column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying column-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn view(&self) -> MatView<'_, T> {
        MatView::from_slice(&self.data, self.rows, self.cols)
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn view_mut(&mut self) -> MatViewMut<'_, T> {
        MatViewMut::from_slice(&mut self.data, self.rows, self.cols)
    }

    /// Immutable view of the `r × c` block starting at `(i, j)`.
    #[inline]
    pub fn block(&self, i: usize, j: usize, r: usize, c: usize) -> MatView<'_, T> {
        self.view().sub(i, j, r, c)
    }

    /// Mutable view of the `r × c` block starting at `(i, j)`.
    #[inline]
    pub fn block_mut(&mut self, i: usize, j: usize, r: usize, c: usize) -> MatViewMut<'_, T> {
        self.view_mut().into_sub(i, j, r, c)
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix product `self * rhs` (naive reference product; kernels live in
    /// `ca-kernels`, this is for tests and small examples only).
    ///
    /// # Panics
    /// If inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for j in 0..rhs.cols {
            for k in 0..self.cols {
                let r = rhs[(k, j)];
                if r == T::ZERO {
                    continue;
                }
                for i in 0..self.rows {
                    out[(i, j)] += self[(i, k)] * r;
                }
            }
        }
        out
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    /// If shapes disagree.
    pub fn sub_matrix(&self, rhs: &Matrix<T>) -> Matrix<T> {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| a - b).collect();
        Matrix::from_vec(data, self.rows, self.cols)
    }

    /// Swaps rows `i1` and `i2`.
    pub fn swap_rows(&mut self, i1: usize, i2: usize) {
        self.view_mut().swap_rows(i1, i2);
    }

    /// Extracts the lower-triangular factor with unit diagonal from a packed
    /// LU factorization result (the strictly-lower part of `self`, with ones
    /// on the diagonal), as an `m × min(m, n)` matrix.
    pub fn unit_lower(&self) -> Matrix<T> {
        let k = self.rows.min(self.cols);
        Matrix::from_fn(self.rows, k, |i, j| {
            if i == j {
                T::ONE
            } else if i > j {
                self[(i, j)]
            } else {
                T::ZERO
            }
        })
    }

    /// Extracts the upper-triangular factor from a packed LU/QR result, as a
    /// `min(m, n) × n` matrix.
    pub fn upper(&self) -> Matrix<T> {
        let k = self.rows.min(self.cols);
        Matrix::from_fn(k, self.cols, |i, j| if i <= j { self[(i, j)] } else { T::ZERO })
    }

    /// Stacks `blocks` vertically. All blocks must share a column count.
    ///
    /// # Panics
    /// If `blocks` is empty or column counts disagree.
    pub fn vstack(blocks: &[MatView<'_, T>]) -> Matrix<T> {
        assert!(!blocks.is_empty(), "vstack of zero blocks");
        let cols = blocks[0].ncols();
        let rows: usize = blocks.iter().map(|b| b.nrows()).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r0 = 0;
        for b in blocks {
            assert_eq!(b.ncols(), cols, "vstack column mismatch");
            out.block_mut(r0, 0, b.nrows(), cols).copy_from(*b);
            r0 += b.nrows();
        }
        out
    }

    /// Lossless-to-`f64` copy, for precision-independent norms/residuals
    /// (the accuracy suite measures f32 factorizations in f64 arithmetic).
    pub fn to_f64(&self) -> Matrix<f64> {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].to_f64())
    }

    /// Rounding conversion from an `f64` matrix (test-input generation for
    /// the f32 tier: generate in f64, round once).
    pub fn from_f64(src: &Matrix<f64>) -> Matrix<T> {
        Matrix::from_fn(src.nrows(), src.ncols(), |i, j| T::from_f64(src[(i, j)]))
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline]
    #[track_caller]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds ({}x{})", self.rows, self.cols);
        &self.data[i + j * self.rows]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    #[track_caller]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds ({}x{})", self.rows, self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let rmax = self.rows.min(8);
        let cmax = self.cols.min(8);
        for i in 0..rmax {
            write!(f, "  ")?;
            for j in 0..cmax {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if cmax < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if rmax < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

// The vendored serde_derive stand-in cannot handle type parameters, so the
// value-tree impls are written out for the one element type that is ever
// persisted (job snapshots and the service wire format are f64-only).
#[cfg(feature = "serde")]
impl serde::Serialize for Matrix<f64> {
    fn to_value(&self) -> serde::value::Value {
        serde::value::Value::Object(vec![
            (String::from("data"), serde::Serialize::to_value(&self.data)),
            (String::from("rows"), serde::Serialize::to_value(&self.rows)),
            (String::from("cols"), serde::Serialize::to_value(&self.cols)),
        ])
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Matrix<f64> {
    fn deserialize(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        let data: Vec<f64> = serde::Deserialize::deserialize(v.field("data")?)?;
        let rows: usize = serde::Deserialize::deserialize(v.field("rows")?)?;
        let cols: usize = serde::Deserialize::deserialize(v.field("cols")?)?;
        if data.len() != rows * cols {
            return Err(serde::value::Error::new(format!(
                "matrix buffer length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Self { data, rows, cols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn from_rows_matches_index() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(0, 2)], 3.0);
        assert_eq!(a[(1, 0)], 4.0);
        assert_eq!(a[(1, 2)], 6.0);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_fn(4, 2, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_small_known_product() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]));
    }

    #[test]
    fn lu_factor_extraction() {
        // Packed LU-like content: diag+upper is U, strict lower is L.
        let a = Matrix::from_rows(3, 3, &[2.0, 1.0, 1.0, 0.5, 2.0, 1.0, 0.5, 0.5, 2.0]);
        let l = a.unit_lower();
        let u = a.upper();
        assert_eq!(l[(0, 0)], 1.0);
        assert_eq!(l[(1, 0)], 0.5);
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(u[(0, 0)], 2.0);
        assert_eq!(u[(1, 0)], 0.0);
        assert_eq!(u[(1, 2)], 1.0);
    }

    #[test]
    fn rectangular_factor_shapes() {
        let tall: Matrix = Matrix::zeros(5, 3);
        assert_eq!(tall.unit_lower().nrows(), 5);
        assert_eq!(tall.unit_lower().ncols(), 3);
        assert_eq!(tall.upper().nrows(), 3);
        assert_eq!(tall.upper().ncols(), 3);
        let wide: Matrix = Matrix::zeros(3, 5);
        assert_eq!(wide.unit_lower().ncols(), 3);
        assert_eq!(wide.upper().nrows(), 3);
        assert_eq!(wide.upper().ncols(), 5);
    }

    #[test]
    fn vstack_stacks_in_order() {
        let a = Matrix::from_rows(1, 2, &[1.0, 2.0]);
        let b = Matrix::from_rows(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let s = Matrix::vstack(&[a.view(), b.view()]);
        assert_eq!(s, Matrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
    }

    #[test]
    fn block_views_alias_owned_storage() {
        let mut a: Matrix = Matrix::zeros(4, 4);
        a.block_mut(1, 1, 2, 2).fill(7.0);
        assert_eq!(a[(1, 1)], 7.0);
        assert_eq!(a[(2, 2)], 7.0);
        assert_eq!(a[(0, 0)], 0.0);
        assert_eq!(a[(3, 3)], 0.0);
    }

    #[test]
    fn f32_matrix_and_conversions() {
        let a64 = Matrix::from_rows(2, 2, &[1.0, 2.5, -3.0, 0.125]);
        let a32: Matrix<f32> = Matrix::from_f64(&a64);
        assert_eq!(a32[(0, 1)], 2.5f32);
        assert_eq!(a32.to_f64(), a64);
        let id: Matrix<f32> = Matrix::identity(3);
        assert_eq!(id.matmul(&id), id);
    }
}
