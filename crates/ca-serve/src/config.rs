//! Service configuration: worker pool size, admission control, batching.

use ca_core::CaParams;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// What happens when a submission arrives while the service is already at
/// [`ServiceConfig::queue_capacity`] active jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail the submission immediately with [`crate::ServeError::Rejected`].
    Reject,
    /// Block the submitting thread until capacity frees up (or the service
    /// shuts down).
    Block,
    /// Evict the oldest job that has not started running yet (it finalizes
    /// as cancelled-shed) to make room; if every active job is already
    /// running, fall back to rejecting the new submission.
    ShedOldest,
}

/// Small-problem batching: factorization requests at or below
/// [`BatchConfig::max_dim`] are coalesced into one fused frontier job (one
/// sequential-kernel task per member), amortizing per-job scheduling
/// overhead that would otherwise dominate tiny problems.
///
/// Only *plain* submissions batch: a request with a deadline, a non-default
/// weight, or `batchable = false` always gets its own job.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Coalesce factorizations whose larger dimension is ≤ this (the
    /// paper-scale heuristic is the panel width `b`). `0` disables.
    pub max_dim: usize,
    /// Flush the pending batch when it reaches this many members.
    pub max_batch: usize,
    /// Flush the pending batch once its oldest member has waited this long.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_dim: 0, max_batch: 16, max_delay: Duration::from_millis(2) }
    }
}

impl BatchConfig {
    /// Batching at the given size threshold with default flush parameters.
    pub fn up_to(max_dim: usize) -> Self {
        Self { max_dim, ..Self::default() }
    }
}

/// Recovery behavior for service jobs: task-level retry (write-set
/// snapshot/replay inside the running graph), job-level retry with
/// exponential backoff (rebuild and resubmit from the retained request
/// payload), and an optional O(n²) post-factorization integrity probe that
/// catches silent corruption.
///
/// Job retries are **deadline-aware**: a job is never resubmitted when the
/// backoff would run past its deadline, and resubmissions carry only the
/// deadline budget that remains.
#[derive(Clone, Copy, Debug)]
pub struct RetryConfig {
    /// Per-task replay budget (see [`ca_sched::RetryPolicy::max_retries`]).
    pub task_retries: usize,
    /// Job-level resubmissions after a failed (or corrupted) run.
    pub job_retries: usize,
    /// Initial job-resubmission backoff.
    pub backoff: Duration,
    /// Backoff growth per resubmission (clamped to ≥ 1).
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Run the random-vector integrity probe on completed LU/QR factors;
    /// a probe hit fails (or retries) the job as corrupted.
    pub probe: bool,
    /// Seed for the probe's random vector.
    pub probe_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            task_retries: 3,
            job_retries: 2,
            backoff: Duration::from_millis(1),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(100),
            probe: true,
            probe_seed: 0x5eed,
        }
    }
}

impl RetryConfig {
    /// Sets the job-level resubmission budget.
    pub fn with_job_retries(mut self, n: usize) -> Self {
        self.job_retries = n;
        self
    }

    /// Sets the per-task replay budget.
    pub fn with_task_retries(mut self, n: usize) -> Self {
        self.task_retries = n;
        self
    }

    /// Disables the post-factorization integrity probe.
    pub fn without_probe(mut self) -> Self {
        self.probe = false;
        self
    }

    /// The task-level [`ca_sched::RetryPolicy`] this config implies. Task
    /// replays reuse the job backoff parameters at a 100× shorter scale —
    /// a task replay is local to one worker, not a whole resubmission.
    pub fn task_policy(&self) -> ca_sched::RetryPolicy {
        ca_sched::RetryPolicy::default()
            .with_max_retries(self.task_retries)
            .with_backoff(self.backoff / 100)
    }

    /// The job-level backoff schedule as a [`ca_sched::RetryPolicy`] (for
    /// its bounded-exponential [`ca_sched::RetryPolicy::delay_for`]).
    pub fn job_policy(&self) -> ca_sched::RetryPolicy {
        ca_sched::RetryPolicy {
            max_retries: self.job_retries,
            backoff: self.backoff,
            multiplier: self.multiplier,
            max_backoff: self.max_backoff,
        }
    }
}

/// Chaos-drill configuration: every submitted graph is built under a seeded
/// [`ca_sched::ChaosPlan`] injecting failures, panics, delays, and silent
/// corruption at the profile's per-task rates. Each job (and each job-level
/// resubmission) draws a distinct seed derived from [`ChaosConfig::seed`],
/// so a drill is reproducible per submission order while retried jobs are
/// not pinned into identical injections.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Base seed for per-job plan derivation.
    pub seed: u64,
    /// Injection rates (defaults to [`ca_sched::ChaosProfile::default`]:
    /// 1% fail, 0.5% panic, 0.1% corrupt).
    pub profile: ca_sched::ChaosProfile,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self { seed: 0xC0FFEE, profile: ca_sched::ChaosProfile::default() }
    }
}

impl ChaosConfig {
    /// Default profile under an explicit seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Overrides the injection profile.
    pub fn with_profile(mut self, profile: ca_sched::ChaosProfile) -> Self {
        self.profile = profile;
        self
    }
}

/// Always-on telemetry for a [`crate::Service`]: a process-wide metrics
/// registry with per-tenant/per-class families, an optional per-worker
/// flight recorder, and an optional periodic exposition thread that writes
/// Prometheus-text and JSON snapshots to a file via atomic rename.
///
/// The metric registry itself is created whenever this config is present;
/// hot-path updates are single relaxed atomic operations, cheap enough to
/// leave on in production (the `telemetry_overhead` bench gates the cost at
/// ≤ 2% on a 1024² CALU serve trace).
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Write periodic snapshots to this file (Prometheus text format; a
    /// sibling `<file>.json` carries the same snapshot as JSON). `None`
    /// keeps the registry in-memory only ([`crate::Service::metrics`]).
    pub metrics_file: Option<PathBuf>,
    /// Snapshot-thread period when `metrics_file` is set.
    pub interval: Duration,
    /// Per-worker flight recorder depth (events retained per lane);
    /// `None` disables the recorder and failure dumps.
    pub flight_recorder: Option<usize>,
    /// Directory for flight-recorder failure dumps; defaults to the
    /// `metrics_file` parent (or the current directory).
    pub dump_dir: Option<PathBuf>,
    /// Cap on flight-dump files written over the service lifetime; further
    /// triggers only increment the `ca_serve_flight_dumps_suppressed_total`
    /// counter. Keeps a shed-storm from filling the disk.
    pub max_dumps: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            metrics_file: None,
            interval: Duration::from_millis(500),
            flight_recorder: Some(256),
            dump_dir: None,
            max_dumps: 8,
        }
    }
}

impl TelemetryConfig {
    /// Periodic Prometheus/JSON exposition to `path`.
    pub fn with_metrics_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_file = Some(path.into());
        self
    }

    /// Sets the exposition period.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the per-worker flight-recorder depth (`0` disables).
    pub fn with_flight_recorder(mut self, depth: usize) -> Self {
        self.flight_recorder = (depth > 0).then_some(depth);
        self
    }

    /// Sets the flight-dump directory.
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dump_dir = Some(dir.into());
        self
    }

    /// Caps the number of flight-dump files written.
    pub fn with_max_dumps(mut self, n: usize) -> Self {
        self.max_dumps = n;
        self
    }
}

/// Configuration for a [`crate::Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads owned by the service for its whole lifetime.
    pub workers: usize,
    /// Maximum admitted-but-unfinished jobs (the bounded queue).
    pub queue_capacity: usize,
    /// Behavior at capacity.
    pub admission: AdmissionPolicy,
    /// Small-problem batching; `None` disables coalescing.
    pub batch: Option<BatchConfig>,
    /// Default factorization parameters (per-submission override via
    /// [`crate::SubmitOptions::params`]). The `threads` field is ignored —
    /// parallelism comes from the service's worker pool.
    pub params: CaParams,
    /// Deadline applied to submissions that don't set their own.
    pub default_deadline: Option<Duration>,
    /// Task- and job-level recovery; `None` disables retry and probing.
    /// Requests eligible for batching bypass recovery, so batching is
    /// suppressed while this is set.
    pub retry: Option<RetryConfig>,
    /// Chaos drill; `None` (production) injects nothing.
    pub chaos: Option<ChaosConfig>,
    /// Always-on telemetry: metrics registry, flight recorder, periodic
    /// exposition. `None` disables the subsystem entirely.
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_capacity: 64,
            admission: AdmissionPolicy::Block,
            batch: None,
            params: CaParams::new(64, 4, 1),
            default_deadline: None,
            retry: None,
            chaos: None,
            telemetry: None,
        }
    }
}

impl ServiceConfig {
    /// Config with an explicit worker count.
    pub fn new(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }

    /// Sets the bounded-queue capacity.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enables small-problem batching.
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Sets the default factorization parameters.
    pub fn with_params(mut self, params: CaParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the default per-job deadline.
    pub fn with_default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }

    /// Enables task- and job-level recovery.
    pub fn with_retry(mut self, retry: RetryConfig) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Enables the chaos drill.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Enables always-on telemetry.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// Per-submission options.
#[derive(Clone, Debug)]
pub struct SubmitOptions {
    /// Fair-share weight (> 0): relative flop share across concurrent jobs.
    pub weight: f64,
    /// Deadline for this job (queue + execution); overrides
    /// [`ServiceConfig::default_deadline`].
    pub deadline: Option<std::time::Duration>,
    /// Factorization parameters override.
    pub params: Option<CaParams>,
    /// Allow this request to be coalesced into a batch when eligible.
    pub batchable: bool,
    /// Tenant attribution for telemetry: when the service runs with a
    /// [`TelemetryConfig`], this job's submit/outcome counters and latency
    /// histograms are labeled `tenant="…"` in the exposed metrics
    /// (unlabeled submissions aggregate under `tenant=""`).
    pub tenant: Option<Arc<str>>,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self { weight: 1.0, deadline: None, params: None, batchable: true, tenant: None }
    }
}

impl SubmitOptions {
    /// Sets the fair-share weight.
    pub fn with_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0 && w.is_finite(), "weight must be positive");
        self.weight = w;
        self
    }

    /// Sets the deadline.
    pub fn with_deadline(mut self, d: std::time::Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Overrides the factorization parameters.
    pub fn with_params(mut self, p: CaParams) -> Self {
        self.params = Some(p);
        self
    }

    /// Forbids batching for this request.
    pub fn unbatched(mut self) -> Self {
        self.batchable = false;
        self
    }

    /// Attributes this job to a tenant in the exposed metrics.
    pub fn with_tenant(mut self, tenant: impl Into<Arc<str>>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}
