//! Service configuration: worker pool size, admission control, batching.

use ca_core::CaParams;
use std::time::Duration;

/// What happens when a submission arrives while the service is already at
/// [`ServiceConfig::queue_capacity`] active jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail the submission immediately with [`crate::ServeError::Rejected`].
    Reject,
    /// Block the submitting thread until capacity frees up (or the service
    /// shuts down).
    Block,
    /// Evict the oldest job that has not started running yet (it finalizes
    /// as cancelled-shed) to make room; if every active job is already
    /// running, fall back to rejecting the new submission.
    ShedOldest,
}

/// Small-problem batching: factorization requests at or below
/// [`BatchConfig::max_dim`] are coalesced into one fused frontier job (one
/// sequential-kernel task per member), amortizing per-job scheduling
/// overhead that would otherwise dominate tiny problems.
///
/// Only *plain* submissions batch: a request with a deadline, a non-default
/// weight, or `batchable = false` always gets its own job.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    /// Coalesce factorizations whose larger dimension is ≤ this (the
    /// paper-scale heuristic is the panel width `b`). `0` disables.
    pub max_dim: usize,
    /// Flush the pending batch when it reaches this many members.
    pub max_batch: usize,
    /// Flush the pending batch once its oldest member has waited this long.
    pub max_delay: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_dim: 0, max_batch: 16, max_delay: Duration::from_millis(2) }
    }
}

impl BatchConfig {
    /// Batching at the given size threshold with default flush parameters.
    pub fn up_to(max_dim: usize) -> Self {
        Self { max_dim, ..Self::default() }
    }
}

/// Configuration for a [`crate::Service`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads owned by the service for its whole lifetime.
    pub workers: usize,
    /// Maximum admitted-but-unfinished jobs (the bounded queue).
    pub queue_capacity: usize,
    /// Behavior at capacity.
    pub admission: AdmissionPolicy,
    /// Small-problem batching; `None` disables coalescing.
    pub batch: Option<BatchConfig>,
    /// Default factorization parameters (per-submission override via
    /// [`crate::SubmitOptions::params`]). The `threads` field is ignored —
    /// parallelism comes from the service's worker pool.
    pub params: CaParams,
    /// Deadline applied to submissions that don't set their own.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_capacity: 64,
            admission: AdmissionPolicy::Block,
            batch: None,
            params: CaParams::new(64, 4, 1),
            default_deadline: None,
        }
    }
}

impl ServiceConfig {
    /// Config with an explicit worker count.
    pub fn new(workers: usize) -> Self {
        Self { workers, ..Self::default() }
    }

    /// Sets the bounded-queue capacity.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        assert!(cap > 0, "queue capacity must be positive");
        self.queue_capacity = cap;
        self
    }

    /// Sets the admission policy.
    pub fn with_admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = policy;
        self
    }

    /// Enables small-problem batching.
    pub fn with_batching(mut self, batch: BatchConfig) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Sets the default factorization parameters.
    pub fn with_params(mut self, params: CaParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the default per-job deadline.
    pub fn with_default_deadline(mut self, d: Duration) -> Self {
        self.default_deadline = Some(d);
        self
    }
}

/// Per-submission options.
#[derive(Clone, Copy, Debug)]
pub struct SubmitOptions {
    /// Fair-share weight (> 0): relative flop share across concurrent jobs.
    pub weight: f64,
    /// Deadline for this job (queue + execution); overrides
    /// [`ServiceConfig::default_deadline`].
    pub deadline: Option<std::time::Duration>,
    /// Factorization parameters override.
    pub params: Option<CaParams>,
    /// Allow this request to be coalesced into a batch when eligible.
    pub batchable: bool,
}

impl Default for SubmitOptions {
    fn default() -> Self {
        Self { weight: 1.0, deadline: None, params: None, batchable: true }
    }
}

impl SubmitOptions {
    /// Sets the fair-share weight.
    pub fn with_weight(mut self, w: f64) -> Self {
        assert!(w > 0.0 && w.is_finite(), "weight must be positive");
        self.weight = w;
        self
    }

    /// Sets the deadline.
    pub fn with_deadline(mut self, d: std::time::Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Overrides the factorization parameters.
    pub fn with_params(mut self, p: CaParams) -> Self {
        self.params = Some(p);
        self
    }

    /// Forbids batching for this request.
    pub fn unbatched(mut self) -> Self {
        self.batchable = false;
        self
    }
}
