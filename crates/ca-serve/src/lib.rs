//! `ca-serve` — a persistent multi-tenant factorization service.
//!
//! The one-shot entry points in `ca-core` spawn a worker pool, run a single
//! CALU/CAQR task graph, and tear the pool down. That is the right shape for
//! a benchmark, and the wrong one for a long-lived process answering many
//! factorization requests: pool churn and per-request setup dominate small
//! problems, and unrelated requests serialize.
//!
//! [`Service`] owns one worker pool for the process lifetime and executes
//! many factorization/solve jobs *concurrently* by merging their task graphs
//! into a shared ready-queue (`ca_sched::MultiFrontier`):
//!
//! - each job keeps its own DAG edges and the paper's lookahead priority
//!   order internally, while worker time is weighted-fair-shared across jobs
//!   (stride scheduling on completed flops);
//! - admission is bounded ([`ServiceConfig::queue_capacity`]) with a choice
//!   of [`AdmissionPolicy`]: reject, block, or shed the oldest queued job;
//! - per-job deadlines cancel expired jobs at dispatch points, reusing the
//!   scheduler's transitive-successor cancellation;
//! - tiny factorizations (≤ [`BatchConfig::max_dim`]) coalesce into fused
//!   batch jobs, amortizing per-job scheduling overhead;
//! - [`Service::stats`] snapshots per-job latency (queue/exec/total),
//!   throughput, occupancy, and shed/reject/deadline counters, and
//!   [`Service::chrome_trace`] reuses the existing chrome-trace pipeline;
//! - an optional recovery tier ([`RetryConfig`]): task-level replay from
//!   write-set snapshots inside the running graph, job-level resubmission
//!   with deadline-aware exponential backoff from the retained request
//!   payload, and a random-vector integrity probe that turns silent factor
//!   corruption into [`ServeError::Corrupted`] (or a retry). A seeded
//!   [`ChaosConfig`] drill injects failures/panics/corruption for testing.
//!
//! ```
//! use ca_serve::{Service, ServiceConfig, SubmitOptions};
//!
//! let svc = Service::new(ServiceConfig::new(2));
//! let a = ca_matrix::random_uniform(64, 64, &mut ca_matrix::seeded_rng(1));
//! let handle = svc.submit_lu(a, SubmitOptions::default()).unwrap();
//! let factors = handle.wait().unwrap();
//! assert_eq!(factors.lu.nrows(), 64);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod batch;
mod config;
mod metrics;
mod service;
mod stats;

pub use config::{
    AdmissionPolicy, BatchConfig, ChaosConfig, RetryConfig, ServiceConfig, SubmitOptions,
    TelemetryConfig,
};
pub use service::{serialized_baseline, JobHandle, Service};
pub use stats::{LatencySummary, ServeError, ServiceStats};

// Frontier types that surface through the service API.
pub use ca_sched::{CancelReason, ChaosProfile, JobId, RecoveryStats};
// Telemetry types that surface through [`Service::metrics_snapshot`].
pub use ca_telemetry::{RegistrySnapshot, SeriesValue};
