//! Small-problem batching internals: the pending batch a flusher thread
//! (or a full-batch trigger) turns into one fused frontier job, and the
//! ticket a batched handle waits on until its batch is flushed.

use ca_sched::{DynJob, JobWatch, TaskMeta};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Hands a batched [`crate::JobHandle`] its [`JobWatch`] once the fused job
/// is submitted. Fulfilled exactly once, at flush time.
pub(crate) struct BatchTicket {
    slot: Mutex<Option<JobWatch>>,
    cv: Condvar,
}

impl BatchTicket {
    pub(crate) fn new() -> Self {
        Self { slot: Mutex::new(None), cv: Condvar::new() }
    }

    pub(crate) fn fulfill(&self, watch: JobWatch) {
        let mut slot = self.slot.lock().expect("ticket lock");
        debug_assert!(slot.is_none(), "batch ticket fulfilled twice");
        *slot = Some(watch);
        self.cv.notify_all();
    }

    /// The watch, if the batch already flushed.
    pub(crate) fn try_get(&self) -> Option<JobWatch> {
        self.slot.lock().expect("ticket lock").clone()
    }

    /// Blocks until the batch flushes, then returns the fused job's watch.
    pub(crate) fn wait(&self) -> JobWatch {
        let mut slot = self.slot.lock().expect("ticket lock");
        loop {
            if let Some(w) = slot.as_ref() {
                return w.clone();
            }
            slot = self.cv.wait(slot).expect("ticket lock");
        }
    }
}

/// One coalesced request: a single sequential-kernel task plus the ticket
/// its handle waits on.
pub(crate) struct PendingMember {
    pub(crate) meta: TaskMeta,
    pub(crate) body: DynJob,
    pub(crate) ticket: std::sync::Arc<BatchTicket>,
}

/// The batch currently accumulating members.
pub(crate) struct PendingBatch {
    pub(crate) members: Vec<PendingMember>,
    /// When the first member arrived (drives the max-delay flush).
    pub(crate) opened: Instant,
}

impl PendingBatch {
    pub(crate) fn new() -> Self {
        Self { members: Vec::new(), opened: Instant::now() }
    }
}
