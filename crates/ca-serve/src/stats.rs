//! Service-level observability: counters, latency distributions, errors.

use ca_core::FactorError;
use ca_sched::CancelReason;

/// Why a service request did not produce a result.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the job (queue full under `Reject`, or
    /// nothing sheddable under `ShedOldest`).
    Rejected,
    /// The service is shutting down.
    ShuttingDown,
    /// The job's deadline expired — while queued or mid-execution, or
    /// because a retry backoff would have run past it.
    DeadlineExceeded,
    /// The job was evicted by the shed-oldest admission policy to make
    /// room for a newer submission.
    Shed,
    /// The job was cancelled before completing (user cancel or shutdown;
    /// deadline and shed have their own variants).
    Cancelled(CancelReason),
    /// The job completed but the integrity probe found its factors
    /// silently corrupted (and the retry budget, if any, was exhausted).
    Corrupted {
        /// The scaled probe residual.
        residual: f64,
        /// The threshold it was compared against.
        threshold: f64,
    },
    /// A task of the job failed (numerical breakdown, panic, …).
    Failed {
        /// Label of the failing task.
        label: String,
        /// Failure description.
        message: String,
    },
    /// The request was invalid before any work was scheduled.
    Invalid(FactorError),
    /// Internal error: the job completed but its output slot is empty.
    Lost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "rejected: service at capacity"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
            ServeError::DeadlineExceeded => write!(f, "job missed its deadline"),
            ServeError::Shed => write!(f, "job shed: evicted at capacity"),
            ServeError::Cancelled(r) => write!(f, "job cancelled: {r}"),
            ServeError::Corrupted { residual, threshold } => write!(
                f,
                "job result corrupted: probe residual {residual:.2e} exceeds {threshold:.2e}"
            ),
            ServeError::Failed { label, message } => {
                write!(f, "job failed at task {label}: {message}")
            }
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Lost => write!(f, "internal: job output missing"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Latency-sample cap: enough for every benchmark trace while bounding the
/// service's footprint over a long lifetime.
const MAX_SAMPLES: usize = 1 << 16;

/// Mutable aggregation state behind the service's stats lock.
#[derive(Default)]
pub(crate) struct Counters {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub rejected: u64,
    pub shed: u64,
    pub deadline_missed: u64,
    pub batches_flushed: u64,
    pub batched_jobs: u64,
    pub job_retries: u64,
    pub jobs_recovered: u64,
    pub corruption_detected: u64,
    pub probes_run: u64,
    pub queue_s: Vec<f64>,
    pub exec_s: Vec<f64>,
    pub total_s: Vec<f64>,
    /// Recovery durations: first failure observation → eventual success.
    pub mttr_s: Vec<f64>,
}

impl Counters {
    /// Records one finished job's latency decomposition (capped reservoir;
    /// once full, new samples are dropped — fine for bounded benchmark runs
    /// and long-lived services alike).
    pub fn sample(&mut self, queue: f64, exec: f64, total: f64) {
        if self.total_s.len() < MAX_SAMPLES {
            self.queue_s.push(queue);
            self.exec_s.push(exec);
            self.total_s.push(total);
        }
    }
}

/// Summary of one latency distribution (seconds).
#[derive(Clone, Copy, Debug, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl LatencySummary {
    pub(crate) fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pct = |p: f64| {
            let idx = ((sorted.len() as f64) * p).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        Self {
            count: sorted.len(),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: pct(0.50),
            p95_s: pct(0.95),
            p99_s: pct(0.99),
            max_s: sorted[sorted.len() - 1],
        }
    }
}

/// Point-in-time snapshot of the service ([`crate::Service::stats`]).
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Worker threads.
    pub workers: usize,
    /// Bounded-queue capacity (max admitted-but-unfinished jobs).
    pub queue_capacity: usize,
    /// Jobs admitted (including batched members).
    pub submitted: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that failed (task failure / numerical breakdown).
    pub failed: u64,
    /// Jobs cancelled for any reason (user, deadline, shed, shutdown).
    pub cancelled: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Jobs evicted by the shed-oldest policy.
    pub shed: u64,
    /// Jobs cancelled because their deadline expired.
    pub deadline_missed: u64,
    /// Fused batches submitted.
    pub batches_flushed: u64,
    /// Member jobs that ran inside fused batches.
    pub batched_jobs: u64,
    /// Job-level resubmissions performed by the retry layer.
    pub job_retries: u64,
    /// Jobs that ultimately completed after at least one resubmission (or
    /// a probe-triggered rerun).
    pub jobs_recovered: u64,
    /// Probe hits: completed runs whose factors failed the integrity check.
    pub corruption_detected: u64,
    /// Integrity probes executed.
    pub probes_run: u64,
    /// Task-level recovery counters aggregated across every job (attempts,
    /// replays, restores, chaos injections).
    pub task_recovery: ca_sched::RecoveryStats,
    /// Mean time to recovery: first failure observation → eventual
    /// success, for jobs that recovered.
    pub mttr: LatencySummary,
    /// Jobs admitted and not yet finished at snapshot time.
    pub active_jobs: usize,
    /// Seconds since the service started.
    pub elapsed_s: f64,
    /// Cumulative seconds workers spent executing task bodies.
    pub busy_s: f64,
    /// `busy_s / (elapsed_s · workers)` — pool utilization in `[0, 1]`.
    pub occupancy: f64,
    /// Completed jobs per second of service lifetime.
    pub jobs_per_s: f64,
    /// Time from admission to first task dispatch.
    pub queue_latency: LatencySummary,
    /// Time from first dispatch to finalization.
    pub exec_latency: LatencySummary,
    /// Time from admission to finalization.
    pub total_latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
        let empty = LatencySummary::from_samples(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn serve_error_display() {
        assert!(ServeError::Rejected.to_string().contains("capacity"));
        assert!(ServeError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(ServeError::Shed.to_string().contains("shed"));
        assert!(ServeError::Cancelled(CancelReason::Shutdown)
            .to_string()
            .contains("cancelled"));
        let e = ServeError::Corrupted { residual: 1.0, threshold: 1e-10 };
        assert!(e.to_string().contains("corrupted"));
        let e = ServeError::Failed { label: "P[0]".into(), message: "boom".into() };
        assert!(e.to_string().contains("P[0]") && e.to_string().contains("boom"));
    }
}
