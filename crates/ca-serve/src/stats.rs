//! Service-level observability: counters, latency distributions, errors.

use ca_core::FactorError;
use ca_sched::CancelReason;

/// Why a service request did not produce a result.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the job (queue full under `Reject`, or
    /// nothing sheddable under `ShedOldest`).
    Rejected,
    /// The service is shutting down.
    ShuttingDown,
    /// The job's deadline expired — while queued or mid-execution, or
    /// because a retry backoff would have run past it.
    DeadlineExceeded,
    /// The job was evicted by the shed-oldest admission policy to make
    /// room for a newer submission.
    Shed,
    /// The job was cancelled before completing (user cancel or shutdown;
    /// deadline and shed have their own variants).
    Cancelled(CancelReason),
    /// The job completed but the integrity probe found its factors
    /// silently corrupted (and the retry budget, if any, was exhausted).
    Corrupted {
        /// The scaled probe residual.
        residual: f64,
        /// The threshold it was compared against.
        threshold: f64,
    },
    /// A task of the job failed (numerical breakdown, panic, …).
    Failed {
        /// Label of the failing task.
        label: String,
        /// Failure description.
        message: String,
    },
    /// The request was invalid before any work was scheduled.
    Invalid(FactorError),
    /// Internal error: the job completed but its output slot is empty.
    Lost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected => write!(f, "rejected: service at capacity"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
            ServeError::DeadlineExceeded => write!(f, "job missed its deadline"),
            ServeError::Shed => write!(f, "job shed: evicted at capacity"),
            ServeError::Cancelled(r) => write!(f, "job cancelled: {r}"),
            ServeError::Corrupted { residual, threshold } => write!(
                f,
                "job result corrupted: probe residual {residual:.2e} exceeds {threshold:.2e}"
            ),
            ServeError::Failed { label, message } => {
                write!(f, "job failed at task {label}: {message}")
            }
            ServeError::Invalid(e) => write!(f, "invalid request: {e}"),
            ServeError::Lost => write!(f, "internal: job output missing"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Mutable aggregation state behind the service's stats lock.
///
/// Latency distributions are fixed-bucket [`ca_telemetry::Histogram`]s —
/// constant memory regardless of service lifetime, and the same quantile
/// estimator as every other exposed histogram (no private percentile path).
pub(crate) struct Counters {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub rejected: u64,
    pub shed: u64,
    pub deadline_missed: u64,
    pub batches_flushed: u64,
    pub batched_jobs: u64,
    pub job_retries: u64,
    pub jobs_recovered: u64,
    pub corruption_detected: u64,
    pub probes_run: u64,
    pub queue_s: ca_telemetry::Histogram,
    pub exec_s: ca_telemetry::Histogram,
    pub total_s: ca_telemetry::Histogram,
    /// Recovery durations: first failure observation → eventual success.
    pub mttr_s: ca_telemetry::Histogram,
}

impl Default for Counters {
    fn default() -> Self {
        let h = || ca_telemetry::Histogram::new(ca_telemetry::LATENCY_BOUNDS);
        Self {
            submitted: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            rejected: 0,
            shed: 0,
            deadline_missed: 0,
            batches_flushed: 0,
            batched_jobs: 0,
            job_retries: 0,
            jobs_recovered: 0,
            corruption_detected: 0,
            probes_run: 0,
            queue_s: h(),
            exec_s: h(),
            total_s: h(),
            mttr_s: h(),
        }
    }
}

impl Counters {
    /// Records one finished job's latency decomposition.
    pub fn sample(&mut self, queue: f64, exec: f64, total: f64) {
        self.queue_s.observe(queue);
        self.exec_s.observe(exec);
        self.total_s.observe(total);
    }
}

/// Summary of one latency distribution (seconds).
///
/// Percentiles are bucket estimates from the shared
/// [`ca_telemetry::Histogram`] quantile path (see
/// [`ca_telemetry::HistogramSnapshot::quantile`]); `count`, `mean_s` and
/// `max_s` are exact.
#[derive(Clone, Copy, Debug, Default)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

impl LatencySummary {
    pub(crate) fn from_histogram(h: &ca_telemetry::Histogram) -> Self {
        Self::from(h.summary())
    }
}

impl From<ca_telemetry::HistogramSummary> for LatencySummary {
    fn from(s: ca_telemetry::HistogramSummary) -> Self {
        Self {
            count: s.count as usize,
            mean_s: s.mean_s,
            p50_s: s.p50_s,
            p95_s: s.p95_s,
            p99_s: s.p99_s,
            max_s: s.max_s,
        }
    }
}

/// Point-in-time snapshot of the service ([`crate::Service::stats`]).
#[derive(Clone, Debug)]
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Worker threads.
    pub workers: usize,
    /// Bounded-queue capacity (max admitted-but-unfinished jobs).
    pub queue_capacity: usize,
    /// Jobs admitted (including batched members).
    pub submitted: u64,
    /// Jobs that completed successfully.
    pub completed: u64,
    /// Jobs that failed (task failure / numerical breakdown).
    pub failed: u64,
    /// Jobs cancelled for any reason (user, deadline, shed, shutdown).
    pub cancelled: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Jobs evicted by the shed-oldest policy.
    pub shed: u64,
    /// Jobs cancelled because their deadline expired.
    pub deadline_missed: u64,
    /// Fused batches submitted.
    pub batches_flushed: u64,
    /// Member jobs that ran inside fused batches.
    pub batched_jobs: u64,
    /// Job-level resubmissions performed by the retry layer.
    pub job_retries: u64,
    /// Jobs that ultimately completed after at least one resubmission (or
    /// a probe-triggered rerun).
    pub jobs_recovered: u64,
    /// Probe hits: completed runs whose factors failed the integrity check.
    pub corruption_detected: u64,
    /// Integrity probes executed.
    pub probes_run: u64,
    /// Task-level recovery counters aggregated across every job (attempts,
    /// replays, restores, chaos injections).
    pub task_recovery: ca_sched::RecoveryStats,
    /// Mean time to recovery: first failure observation → eventual
    /// success, for jobs that recovered.
    pub mttr: LatencySummary,
    /// Jobs admitted and not yet finished at snapshot time.
    pub active_jobs: usize,
    /// Seconds since the service started.
    pub elapsed_s: f64,
    /// Cumulative seconds workers spent executing task bodies.
    pub busy_s: f64,
    /// `busy_s / (elapsed_s · workers)` — pool utilization in `[0, 1]`.
    pub occupancy: f64,
    /// Completed jobs per second of service lifetime.
    pub jobs_per_s: f64,
    /// Time from admission to first task dispatch.
    pub queue_latency: LatencySummary,
    /// Time from first dispatch to finalization.
    pub exec_latency: LatencySummary,
    /// Time from admission to finalization.
    pub total_latency: LatencySummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        // Samples in milliseconds: count/mean/max are exact; percentiles
        // are histogram-bucket estimates, so assert they land in the right
        // bucket neighborhoods and stay ordered.
        let h = ca_telemetry::Histogram::new(ca_telemetry::LATENCY_BOUNDS);
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3);
        }
        let s = LatencySummary::from_histogram(&h);
        assert_eq!(s.count, 100);
        assert!((s.mean_s - 50.5e-3).abs() < 1e-12, "mean is exact: {}", s.mean_s);
        assert_eq!(s.max_s, 0.1, "max is exact");
        assert!(s.p50_s >= 0.025 && s.p50_s <= 0.1, "p50 estimate {} off", s.p50_s);
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.max_s);
        let empty = LatencySummary::from_histogram(&ca_telemetry::Histogram::new(
            ca_telemetry::LATENCY_BOUNDS,
        ));
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max_s, 0.0);
    }

    #[test]
    fn serve_error_display() {
        assert!(ServeError::Rejected.to_string().contains("capacity"));
        assert!(ServeError::DeadlineExceeded.to_string().contains("deadline"));
        assert!(ServeError::Shed.to_string().contains("shed"));
        assert!(ServeError::Cancelled(CancelReason::Shutdown)
            .to_string()
            .contains("cancelled"));
        let e = ServeError::Corrupted { residual: 1.0, threshold: 1e-10 };
        assert!(e.to_string().contains("corrupted"));
        let e = ServeError::Failed { label: "P[0]".into(), message: "boom".into() };
        assert!(e.to_string().contains("P[0]") && e.to_string().contains("boom"));
    }
}
