//! The factorization service: one persistent worker pool, many tenants.

use crate::batch::{BatchTicket, PendingBatch, PendingMember};
use crate::config::{AdmissionPolicy, ServiceConfig, SubmitOptions};
use crate::metrics::{ServeMetrics, TenantSeries};
use crate::stats::{Counters, LatencySummary, ServeError, ServiceStats};
use ca_core::{
    calu_serve_graph, calu_serve_graph_recovering, caqr_serve_graph,
    caqr_serve_graph_recovering, lu_solve_serve_graph, lu_solve_serve_graph_recovering,
    qr_lstsq_serve_graph, qr_lstsq_serve_graph_recovering, CaParams, FactorError, JobRecovery,
    LuFactors, QrFactors, ServeGraph,
};
use ca_matrix::Matrix;
use ca_sched::{
    CancelReason, ChaosPlan, DynJob, JobId, JobOptions, JobOutcome, JobReport, JobWatch,
    MultiFrontier, PanicHookGuard, RecoveryCounters, TaskGraph, TaskKind, TaskLabel, TaskMeta,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Cap on retained recovery-mark events (chrome-trace annotations).
const MAX_MARKS: usize = 4096;

/// First non-finite entry of `a` in column-major order, if any.
fn find_non_finite(a: &Matrix) -> Option<(usize, usize)> {
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            if !a[(i, j)].is_finite() {
                return Some((i, j));
            }
        }
    }
    None
}

/// How a handle learns its job finished.
enum Waiter {
    /// A job submitted directly to the frontier.
    Direct {
        id: JobId,
        watch: JobWatch,
    },
    /// A batched member: the watch materializes when the batch flushes.
    Batched(Arc<BatchTicket>),
}

/// Job-level recovery state carried by a handle when the service runs with
/// a [`crate::RetryConfig`]: the retained request payload (inside
/// `rebuild`), the backoff schedule, and the absolute deadline the retry
/// loop must never run past.
struct RetryState<T> {
    opts: SubmitOptions,
    /// Job class ("lu", "qr", …) for telemetry attribution of resubmissions.
    class: &'static str,
    /// Absolute deadline: admission time + the job's deadline, if any.
    deadline_at: Option<Instant>,
    /// Job-level backoff schedule (`max_retries` is the resubmission budget).
    backoff: ca_sched::RetryPolicy,
    /// Resubmissions performed so far.
    used: usize,
    /// Rebuilds a fresh graph from the retained owning payload; `None`
    /// when `job_retries` is 0 (probe-only recovery).
    #[allow(clippy::type_complexity)]
    rebuild: Option<Box<dyn Fn(&JobRecovery) -> Result<ServeGraph<T>, FactorError> + Send>>,
    /// Integrity probe over the completed result, if configured.
    #[allow(clippy::type_complexity)]
    probe: Option<Box<dyn Fn(&T) -> Result<(), FactorError> + Send>>,
    /// When the first failed/corrupted attempt was observed (MTTR anchor).
    first_failure: Option<Instant>,
}

/// Handle to a submitted job: poll, wait (with or without timeout), cancel.
///
/// Dropping a handle detaches it — the job keeps running (use
/// [`JobHandle::cancel`] first to abort it).
pub struct JobHandle<T> {
    core: Arc<ServiceCore>,
    waiter: Waiter,
    output: Arc<OnceLock<T>>,
    /// Boxed: the retry state is cold and would otherwise dominate the
    /// handle's (and its `Result`'s) size.
    retry: Option<Box<RetryState<T>>>,
}

impl<T> JobHandle<T> {
    /// The frontier job id — `None` for a batched member whose batch has
    /// not flushed yet (batched members share their fused job's id after).
    pub fn id(&self) -> Option<JobId> {
        match &self.waiter {
            Waiter::Direct { id, .. } => Some(*id),
            Waiter::Batched(t) => t.try_get().and_then(|w| w.try_get()).map(|r| r.job),
        }
    }

    /// `true` once the job reached a terminal state.
    pub fn is_done(&self) -> bool {
        match &self.waiter {
            Waiter::Direct { watch, .. } => watch.is_done(),
            Waiter::Batched(t) => t.try_get().is_some_and(|w| w.is_done()),
        }
    }

    /// Requests cancellation: undispatched tasks are dropped, in-flight
    /// tasks finish, the job finalizes as cancelled. Returns `false` if the
    /// job already finished — or for a batched member (members cannot be
    /// cancelled individually without killing their batch-mates).
    pub fn cancel(&self) -> bool {
        match &self.waiter {
            Waiter::Direct { id, .. } => self.core.frontier.cancel(*id),
            Waiter::Batched(_) => false,
        }
    }

    /// Blocks until the job finishes — retrying it under the service's
    /// [`crate::RetryConfig`], if any — and returns its result.
    pub fn wait(mut self) -> Result<T, ServeError> {
        loop {
            let watch = match &self.waiter {
                Waiter::Direct { watch, .. } => watch.clone(),
                Waiter::Batched(t) => t.wait(),
            };
            let report = watch.wait();
            match self.settle(report) {
                Ok(result) => return result,
                Err(retried) => self = retried,
            }
        }
    }

    /// Waits up to `timeout`; returns the handle back if the job is still
    /// running (batched members count flush-waiting time against the
    /// timeout too, as do retry backoffs and resubmitted attempts).
    pub fn wait_for(mut self, timeout: Duration) -> Result<Result<T, ServeError>, Self> {
        let until = Instant::now() + timeout;
        loop {
            let watch = match &self.waiter {
                Waiter::Direct { watch, .. } => watch.clone(),
                Waiter::Batched(t) => match t.try_get() {
                    Some(w) => w,
                    None => {
                        // Poll for the flush within the timeout budget;
                        // flushes are bounded by the batch max-delay, so
                        // this resolves fast in practice.
                        loop {
                            if let Some(w) = {
                                let Waiter::Batched(t) = &self.waiter else { unreachable!() };
                                t.try_get()
                            } {
                                break w;
                            }
                            if Instant::now() >= until {
                                return Err(self);
                            }
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                },
            };
            let remaining = until.saturating_duration_since(Instant::now());
            match watch.wait_timeout(remaining) {
                None => return Err(self),
                Some(report) => match self.settle(report) {
                    Ok(result) => return Ok(result),
                    Err(retried) => self = retried,
                },
            }
        }
    }

    /// Maps a terminal report to a result, or resubmits the job (returning
    /// the updated handle in `Err`) when the outcome is retryable under the
    /// handle's [`RetryState`]: a task failure, or a completed run whose
    /// factors fail the integrity probe. Deadline and shed cancellations
    /// are never retried.
    fn settle(mut self, report: JobReport) -> Result<Result<T, ServeError>, Self> {
        match report.outcome {
            JobOutcome::Completed => {
                let output = std::mem::replace(&mut self.output, Arc::new(OnceLock::new()));
                let value = match Arc::try_unwrap(output) {
                    Ok(slot) => match slot.into_inner() {
                        Some(v) => v,
                        None => return Ok(Err(ServeError::Lost)),
                    },
                    Err(_) => return Ok(Err(ServeError::Lost)),
                };
                if let Some(probe) = self.retry.as_ref().and_then(|r| r.probe.as_ref()) {
                    self.core.stats.lock().expect("stats lock").probes_run += 1;
                    if let Err(FactorError::Corrupted { residual, threshold }) = probe(&value)
                    {
                        {
                            let mut s = self.core.stats.lock().expect("stats lock");
                            s.corruption_detected += 1;
                            // The completion hook counted this attempt as
                            // completed, but its result is unusable.
                            s.completed = s.completed.saturating_sub(1);
                        }
                        self.core.mark_recovery(format!(
                            "probe: corrupted factors (residual {residual:.2e})"
                        ));
                        self.core.dump_flight("probe-corrupt");
                        drop(value);
                        return match self.try_resubmit() {
                            Ok(retried) => Err(retried),
                            Err(None) => {
                                Ok(Err(ServeError::Corrupted { residual, threshold }))
                            }
                            Err(Some(e)) => Ok(Err(e)),
                        };
                    }
                }
                if let Some(t0) = self.retry.as_ref().and_then(|r| r.first_failure) {
                    let mttr = t0.elapsed().as_secs_f64();
                    {
                        let mut s = self.core.stats.lock().expect("stats lock");
                        s.jobs_recovered += 1;
                        s.mttr_s.observe(mttr);
                    }
                    if let Some(tm) = &self.core.telemetry {
                        tm.mttr_s.observe(mttr);
                    }
                    self.core.mark_recovery("job recovered".into());
                }
                Ok(Ok(value))
            }
            JobOutcome::Failed(e) => match self.try_resubmit() {
                Ok(retried) => {
                    // The failed attempt was not terminal: undo the
                    // completion hook's job-level count for it.
                    let mut s = retried.core.stats.lock().expect("stats lock");
                    s.failed = s.failed.saturating_sub(1);
                    drop(s);
                    Err(retried)
                }
                Err(None) => Ok(Err(ServeError::Failed {
                    label: e.label.to_string(),
                    message: e.message,
                })),
                Err(Some(err)) => Ok(Err(err)),
            },
            JobOutcome::Cancelled(reason) => Ok(Err(match reason {
                CancelReason::Deadline => ServeError::DeadlineExceeded,
                CancelReason::Shed => ServeError::Shed,
                other => ServeError::Cancelled(other),
            })),
        }
    }

    /// Attempts one job-level resubmission: sleep the backoff (unless that
    /// would cross the job's deadline), re-admit, rebuild the graph from
    /// the retained payload under a fresh chaos seed, and submit it with
    /// the *remaining* deadline budget. `Err(None)` means no retry is
    /// available (the caller returns the original error); `Err(Some(e))`
    /// means the retry itself failed.
    fn try_resubmit(mut self) -> Result<Self, Option<ServeError>> {
        let Some(st) = self.retry.as_mut() else { return Err(None) };
        if st.rebuild.is_none() || st.used >= st.backoff.max_retries {
            return Err(None);
        }
        if st.first_failure.is_none() {
            st.first_failure = Some(Instant::now());
        }
        let delay = st.backoff.delay_for(st.used);
        if let Some(at) = st.deadline_at {
            // Deadline-aware: never retry past the job's deadline.
            if Instant::now() + delay >= at {
                return Err(Some(ServeError::DeadlineExceeded));
            }
        }
        st.used += 1;
        std::thread::sleep(delay);
        self.core.admit().map_err(Some)?;
        let rec = self.core.recovery_for_attempt().expect("retry implies recovery");
        let st = self.retry.as_ref().expect("checked above");
        let sg = match st.rebuild.as_ref().expect("checked above")(&rec) {
            Ok(sg) => sg,
            Err(e) => {
                self.core.release_one();
                return Err(Some(ServeError::Invalid(e)));
            }
        };
        let mut jopts = JobOptions::default().with_weight(st.opts.weight);
        if let Some(at) = st.deadline_at {
            jopts = jopts.with_deadline(at.saturating_duration_since(Instant::now()));
        }
        {
            let mut s = self.core.stats.lock().expect("stats lock");
            s.job_retries += 1;
        }
        self.core.mark_recovery(format!("job retry {}", st.used));
        let series = self.core.series_for(&st.opts, st.class);
        if let Some(s) = &series {
            s.retries.inc();
        }
        let (id, watch) = self.core.frontier.submit(sg.graph, jopts);
        self.core.register_job(id, series);
        self.output = sg.output;
        self.waiter = Waiter::Direct { id, watch };
        Ok(self)
    }
}

/// One entry of the job-attribution map. The completion hook and the
/// submitting thread race on fast jobs: the frontier hands out the job id
/// only as `submit` returns, so a worker can finalize the job before the
/// submitter records which tenant it belongs to. Whichever side arrives
/// second completes the hand-off.
enum SeriesSlot {
    /// Submitter arrived first: attribution waiting for the completion hook.
    Pending(Arc<TenantSeries>),
    /// Completion hook arrived first: the parked outcome, applied when the
    /// submitter registers the series.
    Done { counts: OutcomeCounts, n: u64, queue_s: f64, exec_s: f64, flops: f64 },
}

/// Which per-tenant outcome counters a finalized job increments.
#[derive(Clone, Copy)]
enum OutcomeCounts {
    Completed,
    Failed,
    Cancelled { deadline: bool, shed: bool },
}

impl OutcomeCounts {
    fn of(outcome: &JobOutcome) -> Self {
        match outcome {
            JobOutcome::Completed => OutcomeCounts::Completed,
            JobOutcome::Failed(_) => OutcomeCounts::Failed,
            JobOutcome::Cancelled(reason) => OutcomeCounts::Cancelled {
                deadline: matches!(reason, ca_sched::CancelReason::Deadline),
                shed: matches!(reason, ca_sched::CancelReason::Shed),
            },
        }
    }

    fn apply(self, series: &TenantSeries, n: u64) {
        match self {
            OutcomeCounts::Completed => series.completed.add(n),
            OutcomeCounts::Failed => series.failed.add(n),
            OutcomeCounts::Cancelled { deadline, shed } => {
                series.cancelled.add(n);
                if deadline {
                    series.deadline_missed.add(n);
                }
                if shed {
                    series.shed.add(n);
                }
            }
        }
    }
}

/// Shared service state; the frontier's completion hook holds a `Weak` to
/// it (broken cycle), every handle an `Arc`.
pub(crate) struct ServiceCore {
    cfg: ServiceConfig,
    pub(crate) frontier: MultiFrontier,
    /// Admitted-but-unfinished jobs (the bounded queue).
    admission: Mutex<usize>,
    admission_cv: Condvar,
    pub(crate) stats: Mutex<Counters>,
    /// The accumulating batch, if batching is enabled and members pending.
    pending: Mutex<Option<PendingBatch>>,
    flush_cv: Condvar,
    shutdown: AtomicBool,
    started: Instant,
    /// Task-level recovery counters, shared by every job's retry wrappers.
    recovery: Arc<RecoveryCounters>,
    /// Monotone counter deriving a distinct chaos seed per built graph.
    chaos_jobs: AtomicU64,
    /// Recovery events `(seconds since start, description)` for the trace.
    recovery_marks: Mutex<Vec<(f64, String)>>,
    /// Always-on telemetry hub, when configured.
    telemetry: Option<Arc<ServeMetrics>>,
    /// Telemetry attribution for in-flight frontier jobs; entries are
    /// removed by the completion hook, so the map stays bounded by the
    /// admission capacity.
    job_series: Mutex<HashMap<JobId, SeriesSlot>>,
    /// Exposition-thread gate: set true (and notified) on shutdown.
    metrics_gate: Mutex<bool>,
    metrics_cv: Condvar,
}

impl ServiceCore {
    /// Completion hook: runs on a worker (or shedding/submitting) thread
    /// for every finalized frontier job, with no frontier lock held.
    fn on_job_done(&self, r: &JobReport) {
        // A fused batch carries its member count in the tag; direct jobs
        // leave it 0.
        let n = r.tag.max(1);
        {
            let mut s = self.stats.lock().expect("stats lock");
            match &r.outcome {
                JobOutcome::Completed => s.completed += n,
                JobOutcome::Failed(_) => s.failed += n,
                JobOutcome::Cancelled(reason) => {
                    s.cancelled += n;
                    match reason {
                        ca_sched::CancelReason::Deadline => s.deadline_missed += n,
                        ca_sched::CancelReason::Shed => s.shed += n,
                        _ => {}
                    }
                }
            }
            let (q, e, t) = (r.queue_seconds(), r.exec_seconds(), r.total_seconds());
            for _ in 0..n {
                s.sample(q, e, t);
            }
        }
        self.note_telemetry(r, n);
        {
            let mut active = self.admission.lock().expect("admission lock");
            *active = active.saturating_sub(n as usize);
        }
        self.admission_cv.notify_all();
    }

    /// Telemetry half of job finalization: per-tenant outcome counters and
    /// latency histograms, plus the flight-recorder dump on failure
    /// classes. All updates are lock-free except the bounded series-map
    /// removal; a dump does file I/O but is capped by
    /// [`crate::TelemetryConfig::max_dumps`].
    fn note_telemetry(&self, r: &JobReport, n: u64) {
        let Some(tm) = &self.telemetry else { return };
        let counts = OutcomeCounts::of(&r.outcome);
        let series = {
            let mut map = self.job_series.lock().expect("series lock");
            match map.remove(&r.job) {
                Some(SeriesSlot::Pending(s)) => Some(s),
                // The submitter has not registered attribution yet (the job
                // finished before `submit` returned its id to the caller):
                // park the outcome for `register_job` to apply.
                _ => {
                    map.insert(
                        r.job,
                        SeriesSlot::Done {
                            counts,
                            n,
                            queue_s: r.queue_seconds(),
                            exec_s: r.exec_seconds(),
                            flops: r.flops,
                        },
                    );
                    None
                }
            }
        };
        if let Some(series) = &series {
            counts.apply(series, n);
            tm.observe_done(series, r.queue_seconds(), r.exec_seconds(), r.flops);
        }
        let trigger = match &r.outcome {
            JobOutcome::Failed(_) => Some("job-fail"),
            JobOutcome::Cancelled(ca_sched::CancelReason::Deadline) => Some("deadline"),
            JobOutcome::Cancelled(ca_sched::CancelReason::Shed) => Some("shed"),
            _ => None,
        };
        if let Some(trigger) = trigger {
            if let Some(rec) = self.frontier.flight_recorder() {
                tm.dump_flight(&rec, trigger);
            }
        }
    }

    /// The cached telemetry series for `(opts.tenant, class)`, or `None`
    /// when telemetry is off.
    fn series_for(&self, opts: &SubmitOptions, class: &'static str) -> Option<Arc<TenantSeries>> {
        self.telemetry
            .as_ref()
            .map(|tm| tm.series(opts.tenant.as_deref().unwrap_or(""), class))
    }

    /// Remembers a frontier job's telemetry attribution until the
    /// completion hook consumes it — or, if the hook already fired (fast
    /// jobs finalize before `submit` returns), applies the parked outcome
    /// to the series right here.
    fn register_job(&self, id: JobId, series: Option<Arc<TenantSeries>>) {
        let Some(series) = series else { return };
        let parked = {
            let mut map = self.job_series.lock().expect("series lock");
            match map.remove(&id) {
                Some(done @ SeriesSlot::Done { .. }) => Some(done),
                _ => {
                    map.insert(id, SeriesSlot::Pending(series.clone()));
                    None
                }
            }
        };
        if let (Some(SeriesSlot::Done { counts, n, queue_s, exec_s, flops }), Some(tm)) =
            (parked, &self.telemetry)
        {
            counts.apply(&series, n);
            tm.observe_done(&series, queue_s, exec_s, flops);
        }
    }

    /// Dumps the flight recorder (if both it and telemetry are on).
    fn dump_flight(&self, trigger: &str) {
        if let Some(tm) = &self.telemetry {
            if let Some(rec) = self.frontier.flight_recorder() {
                tm.dump_flight(&rec, trigger);
            }
        }
    }

    /// Claims one admission slot, applying the configured policy at
    /// capacity. On success the slot is released by the completion hook
    /// when the job (or its fused batch) finalizes.
    fn admit(&self) -> Result<(), ServeError> {
        let mut active = self.admission.lock().expect("admission lock");
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            if *active < self.cfg.queue_capacity {
                *active += 1;
                return Ok(());
            }
            match self.cfg.admission {
                AdmissionPolicy::Reject => {
                    drop(active);
                    self.stats.lock().expect("stats lock").rejected += 1;
                    return Err(ServeError::Rejected);
                }
                AdmissionPolicy::Block => {
                    active = self.admission_cv.wait(active).expect("admission lock");
                }
                AdmissionPolicy::ShedOldest => {
                    // Shed without the admission lock: the shed job
                    // finalizes synchronously, re-entering the hook (which
                    // takes this lock to free the victim's slot).
                    drop(active);
                    if self.frontier.shed_oldest_queued().is_none() {
                        self.stats.lock().expect("stats lock").rejected += 1;
                        return Err(ServeError::Rejected);
                    }
                    active = self.admission.lock().expect("admission lock");
                }
            }
        }
    }

    /// The recovery context for one graph build, or `None` when neither
    /// retry nor chaos is configured. Every call under chaos derives a
    /// fresh plan seed, so a resubmitted job is not pinned into the exact
    /// injection pattern that killed its previous attempt.
    fn recovery_for_attempt(&self) -> Option<JobRecovery> {
        let retry = self.cfg.retry;
        let chaos = self.cfg.chaos;
        if retry.is_none() && chaos.is_none() {
            return None;
        }
        let policy = retry.map_or_else(ca_sched::RetryPolicy::none, |r| r.task_policy());
        let plan = match chaos {
            Some(c) => {
                let k = self.chaos_jobs.fetch_add(1, Ordering::Relaxed);
                let seed = c.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Arc::new(ChaosPlan::with_profile(seed, c.profile))
            }
            None => Arc::new(ChaosPlan::quiet(0)),
        };
        Some(JobRecovery { policy, chaos: plan, counters: Arc::clone(&self.recovery) })
    }

    /// Records a recovery event for the chrome trace (bounded).
    fn mark_recovery(&self, msg: String) {
        let mut marks = self.recovery_marks.lock().expect("marks lock");
        if marks.len() < MAX_MARKS {
            marks.push((self.started.elapsed().as_secs_f64(), msg));
        }
    }

    /// Returns an admission slot unused (submission failed after admit).
    fn release_one(&self) {
        {
            let mut active = self.admission.lock().expect("admission lock");
            *active = active.saturating_sub(1);
        }
        self.admission_cv.notify_all();
    }

    /// Appends a member to the pending batch, flushing if it fills up.
    fn enqueue_member(&self, member: PendingMember, max_batch: usize) {
        let full = {
            let mut pending = self.pending.lock().expect("pending lock");
            let batch = pending.get_or_insert_with(PendingBatch::new);
            batch.members.push(member);
            batch.members.len() >= max_batch
        };
        if full {
            self.flush_pending();
        } else {
            self.flush_cv.notify_all();
        }
    }

    /// Submits the pending batch (if any) as one fused frontier job and
    /// hands every member its watch.
    pub(crate) fn flush_pending(&self) {
        let Some(batch) = self.pending.lock().expect("pending lock").take() else {
            return;
        };
        let n = batch.members.len();
        let mut graph: TaskGraph<DynJob> = TaskGraph::new();
        let mut tickets = Vec::with_capacity(n);
        for m in batch.members {
            graph.add_task(m.meta, m.body);
            tickets.push(m.ticket);
        }
        {
            let mut s = self.stats.lock().expect("stats lock");
            s.batches_flushed += 1;
            s.batched_jobs += n as u64;
        }
        // Batched members carry no tenant attribution (they were admitted
        // individually); the fused job aggregates under class="batch".
        let series = self.telemetry.as_ref().map(|tm| tm.series("", "batch"));
        if let Some(s) = &series {
            s.submitted.add(n as u64);
        }
        let (id, watch) =
            self.frontier.submit(graph, JobOptions::default().with_tag(n as u64));
        self.register_job(id, series);
        for t in tickets {
            t.fulfill(watch.clone());
        }
    }

    /// Flusher-thread body: wake on enqueue/shutdown, flush once the
    /// pending batch is older than `max_delay`.
    fn flusher_loop(&self, max_delay: Duration) {
        loop {
            let mut pending = self.pending.lock().expect("pending lock");
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let wait_for = match pending.as_ref() {
                None => Duration::from_millis(50),
                Some(b) => {
                    let age = b.opened.elapsed();
                    if age >= max_delay {
                        drop(pending);
                        self.flush_pending();
                        continue;
                    }
                    max_delay - age
                }
            };
            let (guard, _) =
                self.flush_cv.wait_timeout(pending, wait_for).expect("pending lock");
            pending = guard;
            drop(pending);
        }
    }

    /// Point-in-time service statistics (see [`Service::stats`]).
    fn stats_snapshot(&self) -> ServiceStats {
        let active = *self.admission.lock().expect("admission lock");
        let c = self.stats.lock().expect("stats lock");
        let elapsed = self.started.elapsed().as_secs_f64();
        let busy = self.frontier.busy_seconds();
        let workers = self.cfg.workers;
        ServiceStats {
            workers,
            queue_capacity: self.cfg.queue_capacity,
            submitted: c.submitted,
            completed: c.completed,
            failed: c.failed,
            cancelled: c.cancelled,
            rejected: c.rejected,
            shed: c.shed,
            deadline_missed: c.deadline_missed,
            batches_flushed: c.batches_flushed,
            batched_jobs: c.batched_jobs,
            job_retries: c.job_retries,
            jobs_recovered: c.jobs_recovered,
            corruption_detected: c.corruption_detected,
            probes_run: c.probes_run,
            task_recovery: self.recovery.snapshot(),
            mttr: LatencySummary::from_histogram(&c.mttr_s),
            active_jobs: active,
            elapsed_s: elapsed,
            busy_s: busy,
            occupancy: if elapsed > 0.0 { busy / (elapsed * workers as f64) } else { 0.0 },
            jobs_per_s: if elapsed > 0.0 { c.completed as f64 / elapsed } else { 0.0 },
            queue_latency: LatencySummary::from_histogram(&c.queue_s),
            exec_latency: LatencySummary::from_histogram(&c.exec_s),
            total_latency: LatencySummary::from_histogram(&c.total_s),
        }
    }

    /// Exposition-thread body: sync the registry from the live sources and
    /// write the snapshot files every `interval` until shutdown (one final
    /// snapshot is written on the way out, so short-lived runs still leave
    /// a complete file behind).
    fn exposition_loop(&self, path: &std::path::Path, interval: Duration) {
        let tm = self.telemetry.as_ref().expect("exposition requires telemetry");
        loop {
            tm.sync(&self.stats_snapshot());
            if let Err(e) = tm.write_snapshot(path) {
                eprintln!("ca-serve: cannot write metrics snapshot {}: {e}", path.display());
            }
            let gate = self.metrics_gate.lock().expect("metrics gate");
            if *gate {
                return;
            }
            let (gate, _) =
                self.metrics_cv.wait_timeout(gate, interval).expect("metrics gate");
            if *gate {
                tm.sync(&self.stats_snapshot());
                if let Err(e) = tm.write_snapshot(path) {
                    eprintln!(
                        "ca-serve: cannot write metrics snapshot {}: {e}",
                        path.display()
                    );
                }
                return;
            }
        }
    }
}

/// A persistent multi-tenant factorization service.
///
/// One worker pool lives for the service's lifetime; every submission
/// becomes a job on the shared [`MultiFrontier`], which preserves each
/// job's DAG dependencies and the paper's lookahead priorities *within* a
/// job while weighted-fair-sharing worker time *across* jobs. Admission is
/// bounded ([`ServiceConfig::queue_capacity`]); tiny factorizations can be
/// coalesced into fused batch jobs ([`ServiceConfig::batch`]).
pub struct Service {
    core: Arc<ServiceCore>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Periodic metrics-exposition thread, when telemetry writes to a file.
    exposer: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Keeps the guarded-panic-hook filter installed for the service
    /// lifetime when recovery/chaos is configured, instead of churning the
    /// process hook on every task replay.
    _hook_guard: Option<PanicHookGuard>,
}

impl Service {
    /// Starts the service: spawns the worker pool (and the batch flusher
    /// when batching is enabled, and the metrics-exposition thread when
    /// telemetry writes to a file).
    pub fn new(cfg: ServiceConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        let workers = cfg.workers;
        let batch = cfg.batch;
        let hook_guard =
            (cfg.retry.is_some() || cfg.chaos.is_some()).then(PanicHookGuard::new);
        let telemetry = cfg.telemetry.as_ref().map(ServeMetrics::new);
        let core = Arc::new_cyclic(|weak: &std::sync::Weak<ServiceCore>| {
            let weak = weak.clone();
            let hook: Box<dyn Fn(&JobReport) + Send + Sync> = Box::new(move |report| {
                if let Some(core) = weak.upgrade() {
                    core.on_job_done(report);
                }
            });
            ServiceCore {
                frontier: MultiFrontier::with_hook(workers, hook),
                cfg,
                admission: Mutex::new(0),
                admission_cv: Condvar::new(),
                stats: Mutex::new(Counters::default()),
                pending: Mutex::new(None),
                flush_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                recovery: Arc::new(RecoveryCounters::new()),
                chaos_jobs: AtomicU64::new(0),
                recovery_marks: Mutex::new(Vec::new()),
                telemetry,
                job_series: Mutex::new(HashMap::new()),
                metrics_gate: Mutex::new(false),
                metrics_cv: Condvar::new(),
            }
        });
        if let Some(depth) = core.cfg.telemetry.as_ref().and_then(|t| t.flight_recorder) {
            let _ = core.frontier.set_flight_recorder(depth);
        }
        let flusher = batch.map(|b| {
            let core = Arc::clone(&core);
            std::thread::Builder::new()
                .name("ca-serve-flush".into())
                .spawn(move || core.flusher_loop(b.max_delay))
                .expect("spawn batch flusher")
        });
        let exposer = core.cfg.telemetry.as_ref().and_then(|t| {
            t.metrics_file.clone().map(|path| {
                let interval = t.interval;
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name("ca-serve-metrics".into())
                    .spawn(move || core.exposition_loop(&path, interval))
                    .expect("spawn metrics exposer")
            })
        });
        Self {
            core,
            flusher: Mutex::new(flusher),
            exposer: Mutex::new(exposer),
            _hook_guard: hook_guard,
        }
    }

    fn params_for(&self, opts: &SubmitOptions) -> CaParams {
        opts.params.unwrap_or(self.core.cfg.params)
    }

    fn deadline_for(&self, opts: &SubmitOptions) -> Option<Duration> {
        opts.deadline.or(self.core.cfg.default_deadline)
    }

    /// Whether a factorization of shape `m × n` under `opts` may join the
    /// pending batch. Batched members run as single fused tasks without
    /// write-set wrappers or resubmission payloads, so recovery (and chaos)
    /// suppresses batching entirely.
    fn batchable(&self, m: usize, n: usize, opts: &SubmitOptions) -> bool {
        let Some(b) = self.core.cfg.batch else { return false };
        opts.batchable
            && opts.weight == 1.0
            && self.deadline_for(opts).is_none()
            && self.core.cfg.retry.is_none()
            && self.core.cfg.chaos.is_none()
            && b.max_dim > 0
            && m.max(n) <= b.max_dim
    }

    fn submit_direct<T>(
        &self,
        sg: ServeGraph<T>,
        opts: &SubmitOptions,
        retry: Option<Box<RetryState<T>>>,
        class: &'static str,
    ) -> JobHandle<T> {
        let mut jopts = JobOptions::default().with_weight(opts.weight);
        if let Some(d) = self.deadline_for(opts) {
            jopts = jopts.with_deadline(d);
        }
        self.core.stats.lock().expect("stats lock").submitted += 1;
        let series = self.core.series_for(opts, class);
        if let Some(s) = &series {
            s.submitted.inc();
        }
        let (id, watch) = self.core.frontier.submit(sg.graph, jopts);
        self.core.register_job(id, series);
        JobHandle {
            core: Arc::clone(&self.core),
            waiter: Waiter::Direct { id, watch },
            output: sg.output,
            retry,
        }
    }

    /// The probe seed when integrity probing is configured.
    fn probe_seed(&self) -> Option<u64> {
        self.core.cfg.retry.and_then(|r| r.probe.then_some(r.probe_seed))
    }

    /// Builds and submits a graph under the given recovery context, wiring
    /// up the handle's [`RetryState`] (rebuild closure retained only when
    /// `job_retries > 0`). The caller has already claimed an admission
    /// slot; a build error releases it.
    #[allow(clippy::type_complexity)]
    fn submit_recovering<T: Send + Sync + 'static>(
        &self,
        opts: &SubmitOptions,
        rec: JobRecovery,
        build: impl Fn(&JobRecovery) -> Result<ServeGraph<T>, FactorError> + Send + 'static,
        probe: Option<Box<dyn Fn(&T) -> Result<(), FactorError> + Send>>,
        class: &'static str,
    ) -> Result<JobHandle<T>, ServeError> {
        match build(&rec) {
            Ok(sg) => {
                let retry = self.core.cfg.retry.map(|r| Box::new(RetryState {
                    opts: opts.clone(),
                    class,
                    deadline_at: self.deadline_for(opts).map(|d| Instant::now() + d),
                    backoff: r.job_policy(),
                    used: 0,
                    rebuild: (r.job_retries > 0).then(|| {
                        Box::new(build)
                            as Box<
                                dyn Fn(&JobRecovery) -> Result<ServeGraph<T>, FactorError>
                                    + Send,
                            >
                    }),
                    probe,
                    first_failure: None,
                }));
                Ok(self.submit_direct(sg, opts, retry, class))
            }
            Err(e) => {
                self.core.release_one();
                Err(ServeError::Invalid(e))
            }
        }
    }

    fn submit_batched<T, F>(
        &self,
        flops: f64,
        factor: F,
    ) -> JobHandle<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let max_batch = self.core.cfg.batch.expect("batching enabled").max_batch;
        let output: Arc<OnceLock<T>> = Arc::new(OnceLock::new());
        let out = Arc::clone(&output);
        let ticket = Arc::new(BatchTicket::new());
        let member = PendingMember {
            meta: TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), flops),
            body: ca_sched::dyn_job(move || {
                let _ = out.set(factor());
            }),
            ticket: Arc::clone(&ticket),
        };
        self.core.stats.lock().expect("stats lock").submitted += 1;
        self.core.enqueue_member(member, max_batch);
        JobHandle {
            core: Arc::clone(&self.core),
            waiter: Waiter::Batched(ticket),
            output,
            retry: None,
        }
    }

    /// Submits an LU (CALU) factorization of `a`.
    ///
    /// Small matrices may be coalesced into a fused batch job (sequential
    /// kernels, bitwise-identical factors — see DESIGN.md §11); everything
    /// else runs the full CALU DAG under fair-share scheduling.
    pub fn submit_lu(
        &self,
        a: Matrix,
        opts: SubmitOptions,
    ) -> Result<JobHandle<LuFactors>, ServeError> {
        let p = self.params_for(&opts);
        if self.batchable(a.nrows(), a.ncols(), &opts) {
            if let Some((row, col)) = find_non_finite(&a) {
                return Err(ServeError::Invalid(FactorError::NonFiniteInput { row, col }));
            }
            self.core.admit()?;
            let (m, n) = (a.nrows() as f64, a.ncols() as f64);
            let k = m.min(n);
            let flops = m * n * k - (m + n) * k * k / 2.0 + k * k * k / 3.0;
            return Ok(self.submit_batched(flops, move || {
                ca_core::calu_seq_factor(a, &p)
            }));
        }
        self.core.admit()?;
        match self.core.recovery_for_attempt() {
            None => match calu_serve_graph(a, &p) {
                Ok(sg) => Ok(self.submit_direct(sg, &opts, None, "lu")),
                Err(e) => {
                    self.core.release_one();
                    Err(ServeError::Invalid(e))
                }
            },
            Some(rec) => {
                let a0 = Arc::new(a);
                let probe = self.probe_seed().map(|seed| {
                    let a0 = Arc::clone(&a0);
                    Box::new(move |f: &LuFactors| f.verify_integrity(&a0, seed))
                        as Box<dyn Fn(&LuFactors) -> Result<(), FactorError> + Send>
                });
                let build =
                    move |r: &JobRecovery| calu_serve_graph_recovering((*a0).clone(), &p, r);
                self.submit_recovering(&opts, rec, build, probe, "lu")
            }
        }
    }

    /// Submits a QR (CAQR) factorization of `a`.
    pub fn submit_qr(
        &self,
        a: Matrix,
        opts: SubmitOptions,
    ) -> Result<JobHandle<QrFactors>, ServeError> {
        let p = self.params_for(&opts);
        if self.batchable(a.nrows(), a.ncols(), &opts) {
            if let Some((row, col)) = find_non_finite(&a) {
                return Err(ServeError::Invalid(FactorError::NonFiniteInput { row, col }));
            }
            self.core.admit()?;
            let (m, n) = (a.nrows() as f64, a.ncols() as f64);
            let flops = 2.0 * m * n * n - 2.0 * n * n * n / 3.0;
            return Ok(self.submit_batched(flops, move || ca_core::caqr_seq(a, &p)));
        }
        self.core.admit()?;
        match self.core.recovery_for_attempt() {
            None => match caqr_serve_graph(a, &p) {
                Ok(sg) => Ok(self.submit_direct(sg, &opts, None, "qr")),
                Err(e) => {
                    self.core.release_one();
                    Err(ServeError::Invalid(e))
                }
            },
            Some(rec) => {
                let a0 = Arc::new(a);
                let probe = self.probe_seed().map(|seed| {
                    let a0 = Arc::clone(&a0);
                    Box::new(move |f: &QrFactors| f.verify_integrity(&a0, seed))
                        as Box<dyn Fn(&QrFactors) -> Result<(), FactorError> + Send>
                });
                let build =
                    move |r: &JobRecovery| caqr_serve_graph_recovering((*a0).clone(), &p, r);
                self.submit_recovering(&opts, rec, build, probe, "qr")
            }
        }
    }

    /// Submits an out-of-core LU (left-looking CALU) factorization of the
    /// matrix resident in `store`, running under `budget_bytes` of resident
    /// memory (see [`ca_ooc::ooc_calu`]).
    ///
    /// The factorization is sequential by design — the disk, not the cores,
    /// is the bottleneck, and only the trailing `par_gemm` update fans out
    /// (within the job, governed by the effective [`CaParams::threads`]) —
    /// so the job occupies exactly one pool task. Admission control,
    /// fair-share weighting, and deadlines apply as usual under telemetry
    /// class `"lu_ooc"`. On success the store holds the packed `L\U`
    /// factors in place and the handle yields the pivots, plan, and I/O
    /// accounting; on failure ([`FactorError`] rendered into the task
    /// failure) the output slot stays empty and the store's contents are
    /// unspecified.
    pub fn submit_lu_ooc(
        &self,
        store: Arc<ca_ooc::TileStore<f64>>,
        budget_bytes: usize,
        opts: SubmitOptions,
    ) -> Result<JobHandle<ca_ooc::OocLu>, ServeError> {
        let p = self.params_for(&opts);
        self.core.admit()?;
        let (m, n) = (store.nrows() as f64, store.ncols() as f64);
        let k = m.min(n);
        let flops = m * n * k - (m + n) * k * k / 2.0 + k * k * k / 3.0;
        let output: Arc<OnceLock<ca_ooc::OocLu>> = Arc::new(OnceLock::new());
        let out = Arc::clone(&output);
        let mut graph: TaskGraph<DynJob> = TaskGraph::new();
        let body: DynJob = Box::new(move || {
            let f = ca_ooc::ooc_calu(&store, &p, budget_bytes)
                .map_err(|e| ca_sched::TaskFailure::new(e.to_string()))?;
            let _ = out.set(f);
            Ok(())
        });
        graph.add_task(TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), flops), body);
        Ok(self.submit_direct(ServeGraph { graph, output }, &opts, None, "lu_ooc"))
    }

    /// Submits a factor-and-solve job for square `A·X = rhs` (CALU followed
    /// by the pivoted triangular solves). A singular `A` fails the job.
    ///
    /// # Panics
    /// Panics if `A` is not square or `rhs` has the wrong row count.
    pub fn submit_solve(
        &self,
        a: Matrix,
        rhs: Matrix,
        opts: SubmitOptions,
    ) -> Result<JobHandle<Matrix>, ServeError> {
        let p = self.params_for(&opts);
        self.core.admit()?;
        match self.core.recovery_for_attempt() {
            None => match lu_solve_serve_graph(a, rhs, &p) {
                Ok(sg) => Ok(self.submit_direct(sg, &opts, None, "solve")),
                Err(e) => {
                    self.core.release_one();
                    Err(ServeError::Invalid(e))
                }
            },
            Some(rec) => {
                let a0 = Arc::new(a);
                let r0 = Arc::new(rhs);
                // No probe on solve jobs: the factors are consumed inside
                // the graph; task retry + job retry still apply.
                let build = move |r: &JobRecovery| {
                    lu_solve_serve_graph_recovering((*a0).clone(), (*r0).clone(), &p, r)
                };
                self.submit_recovering(&opts, rec, build, None, "solve")
            }
        }
    }

    /// Submits a factor-and-least-squares job for tall `A` (CAQR followed
    /// by `R⁻¹·Qᵀ·rhs`). A rank-deficient `A` fails the job.
    ///
    /// # Panics
    /// Panics if `m < n` or `rhs` has the wrong row count.
    pub fn submit_lstsq(
        &self,
        a: Matrix,
        rhs: Matrix,
        opts: SubmitOptions,
    ) -> Result<JobHandle<Matrix>, ServeError> {
        let p = self.params_for(&opts);
        self.core.admit()?;
        match self.core.recovery_for_attempt() {
            None => match qr_lstsq_serve_graph(a, rhs, &p) {
                Ok(sg) => Ok(self.submit_direct(sg, &opts, None, "lstsq")),
                Err(e) => {
                    self.core.release_one();
                    Err(ServeError::Invalid(e))
                }
            },
            Some(rec) => {
                let a0 = Arc::new(a);
                let r0 = Arc::new(rhs);
                let build = move |r: &JobRecovery| {
                    qr_lstsq_serve_graph_recovering((*a0).clone(), (*r0).clone(), &p, r)
                };
                self.submit_recovering(&opts, rec, build, None, "lstsq")
            }
        }
    }

    /// Forces the pending batch out immediately (normally the flusher
    /// handles this after the configured max delay).
    pub fn flush(&self) {
        self.core.flush_pending();
    }

    /// Jobs admitted and not yet finished.
    pub fn active_jobs(&self) -> usize {
        *self.core.admission.lock().expect("admission lock")
    }

    /// Enables or disables execution-span tracing for [`Service::chrome_trace`].
    pub fn set_tracing(&self, on: bool) {
        self.core.frontier.set_tracing(on);
    }

    /// Chrome-trace JSON of the worker timeline recorded while tracing was
    /// enabled (`chrome://tracing` / Perfetto format, same pipeline as the
    /// one-shot `--profile` path). Recovery events — job retries, probe
    /// hits, recoveries — appear as global instant markers.
    pub fn chrome_trace(&self) -> String {
        let marks = self.core.recovery_marks.lock().expect("marks lock").clone();
        ca_sched::chrome_trace_json_with_marks(&self.core.frontier.timeline(), &marks)
    }

    /// Point-in-time service statistics.
    pub fn stats(&self) -> ServiceStats {
        self.core.stats_snapshot()
    }

    /// Point-in-time snapshot of the telemetry registry (synced from the
    /// live counters first), or `None` when the service runs without a
    /// [`crate::TelemetryConfig`]. Render with
    /// [`ca_telemetry::RegistrySnapshot::render_prometheus`] or serialize
    /// to JSON.
    pub fn metrics_snapshot(&self) -> Option<ca_telemetry::RegistrySnapshot> {
        self.core.telemetry.as_ref().map(|tm| {
            tm.sync(&self.core.stats_snapshot());
            tm.registry.snapshot()
        })
    }

    /// Shuts the service down: pending batch members are flushed (and run
    /// or finalize as cancelled), every still-active job is cancelled with
    /// [`ca_sched::CancelReason::Shutdown`] (in-flight tasks finish), and
    /// the worker pool is joined (as are the flusher and metrics-exposition
    /// threads; the exposer writes one final snapshot first). Idempotent.
    pub fn shutdown(&self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        self.core.admission_cv.notify_all();
        self.core.flush_cv.notify_all();
        if let Some(h) = self.flusher.lock().expect("flusher lock").take() {
            let _ = h.join();
        }
        self.core.flush_pending();
        self.core.frontier.shutdown();
        *self.core.metrics_gate.lock().expect("metrics gate") = true;
        self.core.metrics_cv.notify_all();
        if let Some(h) = self.exposer.lock().expect("exposer lock").take() {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Replays `requests` strictly one at a time on a fresh one-shot runtime
/// per request — the serialize-every-request baseline the service's
/// throughput is measured against (used by `serve_sweep`; lives here so
/// tests and benches share one definition).
///
/// Each closure runs a complete factorization the way a standalone CLI
/// invocation would (spawn pool, run graph, join pool) with no cross-job
/// overlap; returns total wall seconds.
pub fn serialized_baseline(requests: VecDeque<Box<dyn FnOnce() + Send>>) -> f64 {
    let t0 = Instant::now();
    for job in requests {
        job();
    }
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionPolicy, BatchConfig, ServiceConfig, SubmitOptions};
    use ca_matrix::seeded_rng;
    use ca_sched::CancelReason;

    fn cfg(workers: usize) -> ServiceConfig {
        ServiceConfig::new(workers).with_params(CaParams::new(16, 4, 1))
    }

    #[test]
    fn lu_and_qr_jobs_match_sequential_references() {
        let svc = Service::new(cfg(2));
        let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(40));
        let q = ca_matrix::random_uniform(64, 48, &mut seeded_rng(41));
        let p = CaParams::new(16, 4, 1);
        let lu_ref = ca_core::calu_seq_factor(a.clone(), &p);
        let qr_ref = ca_core::caqr_seq(q.clone(), &p);

        let h1 = svc.submit_lu(a, SubmitOptions::default()).expect("admit");
        let h2 = svc.submit_qr(q, SubmitOptions::default()).expect("admit");
        let lu = h1.wait().expect("lu completes");
        let qr = h2.wait().expect("qr completes");
        assert_eq!(lu.lu.as_slice(), lu_ref.lu.as_slice());
        assert_eq!(lu.pivots.ipiv, lu_ref.pivots.ipiv);
        assert_eq!(qr.a.as_slice(), qr_ref.a.as_slice());
        let s = svc.stats();
        assert_eq!(s.completed, 2);
        assert_eq!(s.submitted, 2);
        assert_eq!(s.active_jobs, 0);
        svc.shutdown();
    }

    #[test]
    fn solve_and_lstsq_round_trip() {
        let svc = Service::new(cfg(2));
        let n = 40;
        let a = ca_matrix::random_uniform(n, n, &mut seeded_rng(42));
        let x_true = ca_matrix::random_uniform(n, 1, &mut seeded_rng(43));
        let b = a.matmul(&x_true);
        let h = svc.submit_solve(a, b, SubmitOptions::default()).expect("admit");
        let x = h.wait().expect("solve completes");
        assert!(ca_matrix::norm_max(x.sub_matrix(&x_true).view()) < 1e-8);

        let t = ca_matrix::random_uniform(60, 20, &mut seeded_rng(44));
        let rhs = ca_matrix::random_uniform(60, 1, &mut seeded_rng(45));
        let p = CaParams::new(16, 4, 1);
        let want = ca_core::caqr_seq(t.clone(), &p).solve_ls(&rhs);
        let h = svc.submit_lstsq(t, rhs, SubmitOptions::default()).expect("admit");
        let got = h.wait().expect("lstsq completes");
        assert!(ca_matrix::norm_max(got.sub_matrix(&want).view()) < 1e-10);
        svc.shutdown();
    }

    #[test]
    fn reject_policy_surfaces_at_capacity() {
        let svc = Service::new(
            cfg(1).with_capacity(1).with_admission(AdmissionPolicy::Reject),
        );
        // Occupy the only slot with a solve of a biggish matrix.
        let a = ca_matrix::random_uniform(128, 128, &mut seeded_rng(46));
        let h = svc.submit_lu(a, SubmitOptions::default()).expect("first admits");
        let tiny = ca_matrix::random_uniform(8, 8, &mut seeded_rng(47));
        // The first job may finish quickly; retry until we observe either a
        // rejection or completion of the occupant.
        let r = svc.submit_lu(tiny, SubmitOptions::default());
        if h.is_done() {
            // Raced: occupant finished before second submit; nothing to assert.
        } else {
            assert!(matches!(r, Err(ServeError::Rejected)), "expected rejection");
            assert!(svc.stats().rejected >= 1);
        }
        drop(r);
        let _ = h.wait();
        svc.shutdown();
    }

    #[test]
    fn invalid_input_is_rejected_synchronously_and_frees_the_slot() {
        let svc = Service::new(cfg(1).with_capacity(1));
        let mut a = ca_matrix::random_uniform(16, 16, &mut seeded_rng(48));
        a[(1, 2)] = f64::NAN;
        match svc.submit_lu(a, SubmitOptions::default()) {
            Err(ServeError::Invalid(FactorError::NonFiniteInput { row: 1, col: 2 })) => {}
            Err(other) => panic!("expected invalid-input error, got {other:?}"),
            Ok(_) => panic!("expected invalid-input error, got a handle"),
        }
        assert_eq!(svc.active_jobs(), 0, "failed submit must not leak a slot");
        // The slot is free: a valid job still admits under capacity 1.
        let good = ca_matrix::random_uniform(16, 16, &mut seeded_rng(49));
        let h = svc.submit_lu(good, SubmitOptions::default()).expect("admit");
        h.wait().expect("completes");
        svc.shutdown();
    }

    #[test]
    fn batched_tiny_jobs_match_unbatched_results() {
        let svc = Service::new(cfg(1).with_batching(BatchConfig::up_to(32)));
        let p = CaParams::new(16, 4, 1);
        let mats: Vec<Matrix> = (0..6)
            .map(|i| ca_matrix::random_uniform(24, 24, &mut seeded_rng(50 + i)))
            .collect();
        let handles: Vec<_> = mats
            .iter()
            .map(|m| svc.submit_lu(m.clone(), SubmitOptions::default()).expect("admit"))
            .collect();
        svc.flush();
        for (m, h) in mats.iter().zip(handles) {
            let got = h.wait().expect("batched job completes");
            let want = ca_core::calu_seq_factor(m.clone(), &p);
            assert_eq!(got.lu.as_slice(), want.lu.as_slice());
            assert_eq!(got.pivots.ipiv, want.pivots.ipiv);
        }
        let s = svc.stats();
        assert!(s.batches_flushed >= 1, "batching must have fused jobs");
        assert_eq!(s.batched_jobs, 6);
        assert_eq!(s.completed, 6);
        svc.shutdown();
    }

    #[test]
    fn batch_flushes_by_max_delay_without_manual_flush() {
        let svc = Service::new(cfg(1).with_batching(BatchConfig {
            max_dim: 32,
            max_batch: 1000,
            max_delay: Duration::from_millis(5),
        }));
        let a = ca_matrix::random_uniform(16, 16, &mut seeded_rng(60));
        let h = svc.submit_lu(a, SubmitOptions::default()).expect("admit");
        // No manual flush: the flusher thread must fire within max_delay.
        let out = h.wait_for(Duration::from_secs(10)).map_err(|_| "timed out");
        assert!(out.expect("flusher fired").is_ok());
        svc.shutdown();
    }

    #[test]
    fn deadline_zero_misses_and_counts() {
        let svc = Service::new(cfg(1));
        let a = ca_matrix::random_uniform(48, 48, &mut seeded_rng(61));
        let h = svc
            .submit_lu(a, SubmitOptions::default().with_deadline(Duration::ZERO))
            .expect("admit");
        match h.wait() {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected deadline cancellation, got {other:?}"),
        }
        let s = svc.stats();
        assert_eq!(s.deadline_missed, 1);
        assert_eq!(s.cancelled, 1);
        svc.shutdown();
    }

    #[test]
    fn shutdown_resolves_everything_and_rejects_new_work() {
        let svc = Service::new(cfg(1));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(70 + i));
                svc.submit_lu(a, SubmitOptions::default()).expect("admit")
            })
            .collect();
        svc.shutdown();
        for h in handles {
            // Every handle resolves: either the job finished before
            // shutdown or it was cancelled by it — never a hang.
            match h.wait() {
                Ok(_) | Err(ServeError::Cancelled(CancelReason::Shutdown)) => {}
                other => panic!("unexpected terminal state: {other:?}"),
            }
        }
        let a = ca_matrix::random_uniform(8, 8, &mut seeded_rng(80));
        assert!(matches!(
            svc.submit_lu(a, SubmitOptions::default()),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn stats_snapshot_serializes() {
        let svc = Service::new(cfg(1));
        let a = ca_matrix::random_uniform(32, 32, &mut seeded_rng(81));
        svc.submit_lu(a, SubmitOptions::default()).expect("admit").wait().expect("ok");
        let s = svc.stats();
        let json = serde_json::to_string(&s).expect("serializable");
        assert!(json.contains("\"completed\":1"));
        assert!(json.contains("total_latency"));
        assert!(json.contains("task_recovery"));
        svc.shutdown();
    }

    #[test]
    fn retry_path_matches_sequential_reference_without_faults() {
        // Recovery plumbing engaged (wrapped bodies, probes) but no chaos:
        // results must be bitwise-identical to the sequential reference.
        let svc = Service::new(cfg(2).with_retry(crate::config::RetryConfig::default()));
        let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(90));
        let p = CaParams::new(16, 4, 1);
        let lu_ref = ca_core::calu_seq_factor(a.clone(), &p);
        let h = svc.submit_lu(a, SubmitOptions::default()).expect("admit");
        let lu = h.wait().expect("completes");
        assert_eq!(lu.lu.as_slice(), lu_ref.lu.as_slice());
        assert_eq!(lu.pivots.ipiv, lu_ref.pivots.ipiv);
        let s = svc.stats();
        assert_eq!(s.completed, 1);
        assert_eq!(s.probes_run, 1);
        assert_eq!(s.corruption_detected, 0);
        svc.shutdown();
    }

    #[test]
    fn chaos_drill_jobs_all_complete_correctly() {
        // Aggressive per-task fault rates + task retry: every job must still
        // complete, and completed results must equal the fault-free
        // reference (replay determinism end to end through the service).
        let profile = ca_sched::ChaosProfile { fail_rate: 0.05, panic_rate: 0.02, ..ca_sched::ChaosProfile::quiet() };
        let svc = Service::new(
            cfg(2)
                .with_retry(crate::config::RetryConfig::default())
                .with_chaos(crate::config::ChaosConfig::seeded(7).with_profile(profile)),
        );
        let p = CaParams::new(16, 4, 1);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(100 + i));
                svc.submit_lu(a, SubmitOptions::default()).expect("admit")
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(100 + i as u64));
            let lu_ref = ca_core::calu_seq_factor(a, &p);
            let lu = h.wait().expect("job survives chaos");
            assert_eq!(lu.lu.as_slice(), lu_ref.lu.as_slice());
        }
        let s = svc.stats();
        assert_eq!(s.completed, 4);
        assert_eq!(s.failed, 0);
        // At these rates over 4 × 64×64 graphs some injection must fire.
        let inj = s.task_recovery.injected_failures + s.task_recovery.injected_panics;
        assert!(inj > 0, "chaos drill injected nothing: {:?}", s.task_recovery);
        assert_eq!(s.task_recovery.exhausted_tasks, 0);
        svc.shutdown();
    }

    #[test]
    fn job_level_retry_recovers_from_exhausted_task_budget() {
        // Task retries disabled: any injected fault fails the whole job, so
        // recovery must come from job-level resubmission. Resubmitted jobs
        // draw fresh chaos seeds, so with a modest fault rate the retried
        // run eventually completes.
        // ~60 wrapped tasks per graph → a 1% per-task rate fails roughly
        // half the attempts; 20 fresh-seeded resubmissions make exhausting
        // the budget (~0.5^21) vanishingly unlikely.
        let profile = ca_sched::ChaosProfile { fail_rate: 0.01, ..ca_sched::ChaosProfile::quiet() };
        let retry = crate::config::RetryConfig::default()
            .with_task_retries(0)
            .with_job_retries(20)
            .without_probe();
        let svc = Service::new(
            cfg(2)
                .with_retry(retry)
                .with_chaos(crate::config::ChaosConfig::seeded(11).with_profile(profile)),
        );
        let p = CaParams::new(16, 4, 1);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(120 + i));
                svc.submit_lu(a, SubmitOptions::default()).expect("admit")
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(120 + i as u64));
            let lu_ref = ca_core::calu_seq_factor(a, &p);
            let lu = h.wait().expect("job-level retry recovers");
            assert_eq!(lu.lu.as_slice(), lu_ref.lu.as_slice());
        }
        let s = svc.stats();
        assert_eq!(s.completed, 4);
        if s.job_retries > 0 {
            assert!(s.jobs_recovered > 0, "retried jobs should be counted recovered");
            assert!(s.mttr.count as u64 == s.jobs_recovered);
        }
        svc.shutdown();
    }

    #[test]
    fn corruption_injection_is_caught_by_probe_and_retried() {
        // Only silent corruption injected: corrupted runs "succeed"
        // numerically wrong, the probe must catch each one, and the
        // job-level retry must eventually produce a clean
        // (reference-identical) result. At a 2% per-task rate roughly 70%
        // of attempts carry an injection; 30 retries make exhaustion
        // vanishingly unlikely.
        let profile =
            ca_sched::ChaosProfile { corrupt_rate: 0.02, ..ca_sched::ChaosProfile::quiet() };
        let retry = crate::config::RetryConfig::default().with_job_retries(30);
        let svc = Service::new(
            cfg(2)
                .with_retry(retry)
                .with_chaos(crate::config::ChaosConfig::seeded(3).with_profile(profile)),
        );
        let p = CaParams::new(16, 4, 1);
        let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(130));
        let lu_ref = ca_core::calu_seq_factor(a.clone(), &p);
        let h = svc.submit_lu(a, SubmitOptions::default()).expect("admit");
        let lu = h.wait().expect("probe-triggered retry recovers");
        assert_eq!(lu.lu.as_slice(), lu_ref.lu.as_slice());
        let s = svc.stats();
        assert_eq!(s.completed, 1);
        // The probe ran on every completed attempt, and every resubmission
        // was triggered by a detection.
        assert_eq!(s.probes_run, 1 + s.job_retries);
        assert_eq!(s.corruption_detected, s.job_retries);
        if s.job_retries > 0 {
            assert_eq!(s.jobs_recovered, 1);
        }
        svc.shutdown();
    }

    #[test]
    fn exhausted_corruption_budget_surfaces_corrupted_error() {
        // Certain corruption on every task: every attempt completes with
        // poisoned factors, the probe flags each, and once the job-retry
        // budget is spent the handle resolves with `Corrupted`.
        let profile =
            ca_sched::ChaosProfile { corrupt_rate: 1.0, ..ca_sched::ChaosProfile::quiet() };
        let retry = crate::config::RetryConfig::default().with_job_retries(2);
        let svc = Service::new(
            cfg(2)
                .with_retry(retry)
                .with_chaos(crate::config::ChaosConfig::seeded(13).with_profile(profile)),
        );
        let a = ca_matrix::random_uniform(64, 64, &mut seeded_rng(131));
        let h = svc.submit_lu(a, SubmitOptions::default()).expect("admit");
        match h.wait() {
            Err(ServeError::Corrupted { residual, threshold }) => {
                assert!(residual > threshold);
            }
            other => panic!("expected corrupted, got {other:?}"),
        }
        let s = svc.stats();
        assert_eq!(s.job_retries, 2);
        assert_eq!(s.probes_run, 3);
        assert_eq!(s.corruption_detected, 3);
        // Each attempt's completion count was rolled back on detection.
        assert_eq!(s.completed, 0);
        assert!(s.task_recovery.injected_corruptions > 0);
        svc.shutdown();
    }

    #[test]
    fn deadline_aware_backoff_refuses_to_retry_past_deadline() {
        // Job fails every run (certain injection, no task retries) and the
        // backoff exceeds the deadline: the handle must resolve with
        // DeadlineExceeded instead of sleeping past it.
        let profile = ca_sched::ChaosProfile { fail_rate: 1.0, ..ca_sched::ChaosProfile::quiet() };
        let retry = crate::config::RetryConfig {
            task_retries: 0,
            job_retries: 50,
            backoff: Duration::from_millis(250),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            probe: false,
            probe_seed: 0,
        };
        let svc = Service::new(
            cfg(1)
                .with_retry(retry)
                .with_chaos(crate::config::ChaosConfig::seeded(5).with_profile(profile)),
        );
        let a = ca_matrix::random_uniform(48, 48, &mut seeded_rng(140));
        let h = svc
            .submit_lu(a, SubmitOptions::default().with_deadline(Duration::from_millis(300)))
            .expect("admit");
        match h.wait() {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected deadline-bounded retry, got {other:?}"),
        }
        svc.shutdown();
    }
}
