//! Per-tenant serve metrics: registry families, periodic exposition, and
//! bounded flight-recorder failure dumps.
//!
//! [`ServeMetrics`] is created when the service runs with a
//! [`crate::TelemetryConfig`]. Submission paths resolve one
//! [`TenantSeries`] per `(tenant, class)` pair — a one-time registration
//! behind a lock, after which every update is a single relaxed atomic
//! operation. Process-wide scheduler and recovery counters are folded into
//! the registry at snapshot time by delta-addition, so the exposed families
//! stay monotone even though several services may share the globals.

use crate::config::TelemetryConfig;
use crate::stats::ServiceStats;
use ca_sched::FlightRecorder;
use ca_telemetry::{
    write_atomic, Counter, Gauge, Histogram, Registry, LATENCY_BOUNDS,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Lock-free metric handles for one `(tenant, class)` label pair, resolved
/// once at first submission and cached for the service lifetime.
pub(crate) struct TenantSeries {
    pub submitted: Arc<Counter>,
    pub completed: Arc<Counter>,
    pub failed: Arc<Counter>,
    pub cancelled: Arc<Counter>,
    pub shed: Arc<Counter>,
    pub deadline_missed: Arc<Counter>,
    pub retries: Arc<Counter>,
    pub queue_s: Arc<Histogram>,
    pub exec_s: Arc<Histogram>,
    /// Useful flops completed under this label pair (gauge: f64 cell).
    pub flops: Arc<Gauge>,
}

/// The service's telemetry hub: the metric registry, cached per-tenant
/// series handles, and the bounded flight-dump writer.
pub(crate) struct ServeMetrics {
    pub(crate) registry: Arc<Registry>,
    series: Mutex<HashMap<(String, &'static str), Arc<TenantSeries>>>,
    // Global gauges refreshed by `sync`.
    active_jobs: Arc<Gauge>,
    occupancy: Arc<Gauge>,
    workers: Arc<Gauge>,
    gflops: Arc<Gauge>,
    flops_total: Arc<Gauge>,
    /// MTTR histogram observed directly at recovery points.
    pub(crate) mttr_s: Arc<Histogram>,
    // Monotone counters delta-synced from the service stats.
    rejected: Arc<Counter>,
    job_retries: Arc<Counter>,
    jobs_recovered: Arc<Counter>,
    corruption_detected: Arc<Counter>,
    probes_run: Arc<Counter>,
    /// Task-level recovery counters, aligned with the field order of
    /// [`ca_sched::RecoveryStats`] as listed in `TASK_RECOVERY_NAMES`.
    task_recovery: Vec<Arc<Counter>>,
    /// Process-wide scheduler counters, aligned with
    /// [`ca_sched::SchedCountersSnapshot::pairs`] order.
    sched: Vec<Arc<Counter>>,
    // Flight-dump bookkeeping.
    dump_dir: Option<PathBuf>,
    max_dumps: u64,
    dump_seq: AtomicU64,
    dumps_written: Arc<Counter>,
    dumps_suppressed: Arc<Counter>,
}

const TASK_RECOVERY_NAMES: [&str; 9] = [
    "attempts",
    "retries",
    "recovered_tasks",
    "exhausted_tasks",
    "restores",
    "injected_failures",
    "injected_panics",
    "injected_delays",
    "injected_corruptions",
];

fn task_recovery_values(t: &ca_sched::RecoveryStats) -> [u64; 9] {
    [
        t.attempts,
        t.retries,
        t.recovered_tasks,
        t.exhausted_tasks,
        t.restores,
        t.injected_failures,
        t.injected_panics,
        t.injected_delays,
        t.injected_corruptions,
    ]
}

/// Adds `current - handle.get()` so the registry copy of a monotone source
/// counter catches up without double-counting across syncs.
fn sync_counter(handle: &Counter, current: u64) {
    let prev = handle.get();
    if current > prev {
        handle.add(current - prev);
    }
}

impl ServeMetrics {
    pub(crate) fn new(cfg: &TelemetryConfig) -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        let r = &registry;
        // Out-of-core transfer instruments share the process-wide handles,
        // so `submit_lu_ooc` traffic shows up in every exposition/`top`.
        ca_ooc::register_ooc_metrics(r);
        let task_recovery = TASK_RECOVERY_NAMES
            .iter()
            .map(|n| {
                r.counter(
                    &format!("ca_serve_task_{n}_total"),
                    "Task-level recovery counter aggregated across jobs",
                    &[],
                )
            })
            .collect();
        let sched = ca_sched::sched_counters()
            .snapshot()
            .pairs()
            .iter()
            .map(|(n, _)| {
                r.counter(
                    &format!("ca_sched_{n}_total"),
                    "Process-wide scheduler counter",
                    &[],
                )
            })
            .collect();
        let dump_dir = cfg.dump_dir.clone().or_else(|| {
            cfg.metrics_file.as_ref().map(|f| {
                f.parent()
                    .filter(|p| !p.as_os_str().is_empty())
                    .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
            })
        });
        Arc::new(Self {
            series: Mutex::new(HashMap::new()),
            active_jobs: r.gauge("ca_serve_active_jobs", "Jobs admitted and not yet finished", &[]),
            occupancy: r.gauge("ca_serve_pool_occupancy", "Worker-pool utilization in [0,1]", &[]),
            workers: r.gauge("ca_serve_workers", "Worker threads owned by the service", &[]),
            gflops: r.gauge("ca_serve_gflops", "Achieved GFlop/s over worker busy time", &[]),
            flops_total: r.gauge("ca_serve_flops_total", "Useful flops completed", &[]),
            mttr_s: r.histogram(
                "ca_serve_mttr_seconds",
                "Time from first failure observation to eventual success",
                &[],
                LATENCY_BOUNDS,
            ),
            rejected: r.counter("ca_serve_rejected_total", "Submissions refused by admission control", &[]),
            job_retries: r.counter("ca_serve_job_retries_total", "Job-level resubmissions", &[]),
            jobs_recovered: r.counter(
                "ca_serve_jobs_recovered_total",
                "Jobs completed after at least one resubmission",
                &[],
            ),
            corruption_detected: r.counter(
                "ca_serve_corruption_detected_total",
                "Integrity-probe hits on completed factors",
                &[],
            ),
            probes_run: r.counter("ca_serve_probes_run_total", "Integrity probes executed", &[]),
            task_recovery,
            sched,
            dump_dir,
            max_dumps: cfg.max_dumps as u64,
            dump_seq: AtomicU64::new(0),
            dumps_written: r.counter(
                "ca_serve_flight_dumps_written_total",
                "Flight-recorder dump files written",
                &[],
            ),
            dumps_suppressed: r.counter(
                "ca_serve_flight_dumps_suppressed_total",
                "Flight-dump triggers suppressed by the max-dumps cap",
                &[],
            ),
            registry: Arc::clone(&registry),
        })
    }

    /// The cached series handles for `(tenant, class)`, registering the
    /// label pair's families on first use.
    pub(crate) fn series(&self, tenant: &str, class: &'static str) -> Arc<TenantSeries> {
        let mut cache = self.series.lock().expect("series lock");
        if let Some(s) = cache.get(&(tenant.to_string(), class)) {
            return Arc::clone(s);
        }
        let labels = [("tenant", tenant), ("class", class)];
        let r = &self.registry;
        let s = Arc::new(TenantSeries {
            submitted: r.counter("ca_serve_jobs_submitted_total", "Jobs admitted", &labels),
            completed: r.counter("ca_serve_jobs_completed_total", "Jobs completed successfully", &labels),
            failed: r.counter("ca_serve_jobs_failed_total", "Jobs failed", &labels),
            cancelled: r.counter("ca_serve_jobs_cancelled_total", "Jobs cancelled", &labels),
            shed: r.counter("ca_serve_jobs_shed_total", "Jobs evicted by shed-oldest admission", &labels),
            deadline_missed: r.counter(
                "ca_serve_deadline_missed_total",
                "Jobs cancelled because their deadline expired",
                &labels,
            ),
            retries: r.counter("ca_serve_retries_total", "Job-level resubmissions", &labels),
            queue_s: r.histogram(
                "ca_serve_queue_seconds",
                "Admission to first task dispatch",
                &labels,
                LATENCY_BOUNDS,
            ),
            exec_s: r.histogram(
                "ca_serve_exec_seconds",
                "First task dispatch to finalization",
                &labels,
                LATENCY_BOUNDS,
            ),
            flops: r.gauge("ca_serve_flops", "Useful flops completed", &labels),
        });
        cache.insert((tenant.to_string(), class), Arc::clone(&s));
        s
    }

    /// Records one finalized job's latency decomposition and flop count
    /// against its series (called from the completion hook).
    pub(crate) fn observe_done(&self, series: &TenantSeries, queue: f64, exec: f64, flops: f64) {
        series.queue_s.observe(queue);
        series.exec_s.observe(exec);
        if flops > 0.0 {
            series.flops.add(flops);
            self.flops_total.add(flops);
        }
    }

    /// Refreshes gauges and delta-syncs the monotone counters whose source
    /// of truth lives outside the registry (service stats, process-wide
    /// scheduler and recovery counters). Called before each exposition.
    pub(crate) fn sync(&self, s: &ServiceStats) {
        self.active_jobs.set(s.active_jobs as f64);
        self.occupancy.set(s.occupancy);
        self.workers.set(s.workers as f64);
        if s.busy_s > 0.0 {
            self.gflops.set(self.flops_total.get() / s.busy_s / 1e9);
        }
        sync_counter(&self.rejected, s.rejected);
        sync_counter(&self.job_retries, s.job_retries);
        sync_counter(&self.jobs_recovered, s.jobs_recovered);
        sync_counter(&self.corruption_detected, s.corruption_detected);
        sync_counter(&self.probes_run, s.probes_run);
        for (h, v) in self.task_recovery.iter().zip(task_recovery_values(&s.task_recovery)) {
            sync_counter(h, v);
        }
        for (h, (_, v)) in
            self.sched.iter().zip(ca_sched::sched_counters().snapshot().pairs())
        {
            sync_counter(h, v);
        }
    }

    /// Writes the current registry snapshot to `path` (Prometheus text
    /// format) and `path.json` (the same snapshot as JSON), each via
    /// write-to-temp + atomic rename so a scraper never sees a torn file.
    pub(crate) fn write_snapshot(&self, path: &Path) -> std::io::Result<()> {
        let snap = self.registry.snapshot();
        write_atomic(path, snap.render_prometheus().as_bytes())?;
        let json = serde_json::to_string(&snap)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let sibling = PathBuf::from(format!("{}.json", path.display()));
        write_atomic(&sibling, json.as_bytes())
    }

    /// Dumps the flight recorder's current contents as a chrome-trace
    /// fragment named `flight-NNN-<trigger>.json`, atomically, honoring the
    /// lifetime cap on dump files. No-op (not even counted) when no dump
    /// directory could be resolved from the config.
    pub(crate) fn dump_flight(&self, recorder: &FlightRecorder, trigger: &str) {
        let Some(dir) = &self.dump_dir else { return };
        let n = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        if n >= self.max_dumps {
            self.dumps_suppressed.inc();
            return;
        }
        let path = dir.join(format!("flight-{n:03}-{trigger}.json"));
        let fragment = recorder.chrome_trace_fragment(trigger);
        match write_atomic(&path, fragment.as_bytes()) {
            Ok(()) => self.dumps_written.inc(),
            Err(e) => eprintln!("ca-serve: cannot write flight dump {}: {e}", path.display()),
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_with_dir(dir: &Path) -> TelemetryConfig {
        TelemetryConfig::default().with_dump_dir(dir).with_max_dumps(3)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("ca-serve-metrics-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mkdir");
        d
    }

    #[test]
    fn series_handles_are_cached_and_labeled() {
        let m = ServeMetrics::new(&TelemetryConfig::default());
        let a = m.series("acme", "lu");
        let b = m.series("acme", "lu");
        assert!(Arc::ptr_eq(&a, &b), "same label pair must reuse handles");
        a.submitted.inc();
        a.submitted.inc();
        m.series("acme", "qr").submitted.inc();
        let prom = m.registry.snapshot().render_prometheus();
        assert!(prom
            .contains("ca_serve_jobs_submitted_total{tenant=\"acme\",class=\"lu\"} 2"));
        assert!(prom
            .contains("ca_serve_jobs_submitted_total{tenant=\"acme\",class=\"qr\"} 1"));
    }

    #[test]
    fn sync_is_idempotent_for_unchanged_sources() {
        let m = ServeMetrics::new(&TelemetryConfig::default());
        let mut s = crate::stats::ServiceStats {
            workers: 2,
            queue_capacity: 4,
            submitted: 0,
            completed: 0,
            failed: 0,
            cancelled: 0,
            rejected: 7,
            shed: 0,
            deadline_missed: 0,
            batches_flushed: 0,
            batched_jobs: 0,
            job_retries: 3,
            jobs_recovered: 2,
            corruption_detected: 1,
            probes_run: 5,
            task_recovery: ca_sched::RecoveryStats::default(),
            mttr: Default::default(),
            active_jobs: 1,
            elapsed_s: 1.0,
            busy_s: 0.5,
            occupancy: 0.25,
            jobs_per_s: 0.0,
            queue_latency: Default::default(),
            exec_latency: Default::default(),
            total_latency: Default::default(),
        };
        m.sync(&s);
        m.sync(&s);
        assert_eq!(m.rejected.get(), 7, "double sync must not double-count");
        assert_eq!(m.job_retries.get(), 3);
        s.rejected = 9;
        m.sync(&s);
        assert_eq!(m.rejected.get(), 9);
    }

    #[test]
    fn flight_dumps_are_capped() {
        let dir = temp_dir("cap");
        let m = ServeMetrics::new(&cfg_with_dir(&dir));
        let rec = FlightRecorder::new(2, 16);
        rec.record(0, ca_sched::FlightEventKind::TaskFail, 1, None);
        for _ in 0..10 {
            m.dump_flight(&rec, "shed");
        }
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        assert_eq!(files.len(), 3, "cap must bound dump files, got {files:?}");
        assert!(files.iter().all(|f| f.starts_with("flight-") && f.ends_with("-shed.json")));
        assert_eq!(m.dumps_written.get(), 3);
        assert_eq!(m.dumps_suppressed.get(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_files_are_written_atomically_with_json_sibling() {
        let dir = temp_dir("snap");
        let m = ServeMetrics::new(&TelemetryConfig::default());
        m.series("t0", "lu").submitted.inc();
        let path = dir.join("metrics.prom");
        m.write_snapshot(&path).expect("write snapshot");
        let prom = std::fs::read_to_string(&path).expect("prom file");
        assert!(prom.contains("# TYPE ca_serve_jobs_submitted_total counter"));
        let json = std::fs::read_to_string(dir.join("metrics.prom.json")).expect("json file");
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        assert!(v.get("families").is_some(), "snapshot json must carry families");
        // No stray temp files from the atomic-rename protocol.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .filter(|f| f.contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "stray temp files: {stray:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
