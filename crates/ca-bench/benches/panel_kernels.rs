//! Criterion benchmarks of the panel factorization kernels — the ablation
//! behind the paper's choice of *recursive* LU/QR inside TSLU/TSQR leaves
//! ("the best available sequential algorithm can be used"):
//! `dgetf2` (BLAS2) vs `rgetf2` (recursive), `dgeqr2` vs `dgeqr3`,
//! and the TSLU/TSQR panel under binary vs flat reduction trees.

use ca_core::{tslu_factor, tsqr_factor, CaParams, TreeShape};
use ca_kernels::{geqr2, geqr3, getf2, rgetf2};
use ca_matrix::{seeded_rng, Matrix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const M: usize = 8000;
const B: usize = 100;

fn bench_lu_panels(c: &mut Criterion) {
    let a0 = ca_matrix::random_uniform(M, B, &mut seeded_rng(1));
    let mut group = c.benchmark_group("lu_panel");
    group.throughput(Throughput::Elements(ca_kernels::flops::getrf(M, B) as u64));

    let mut a = a0.clone();
    group.bench_function("dgetf2_blas2", |bch| {
        bch.iter(|| {
            a.view_mut().copy_from(a0.view());
            getf2(a.view_mut())
        })
    });
    let mut a = a0.clone();
    group.bench_function("rgetf2_recursive", |bch| {
        bch.iter(|| {
            a.view_mut().copy_from(a0.view());
            rgetf2(a.view_mut())
        })
    });
    for (name, tree) in [("tslu_binary_tr8", TreeShape::Binary), ("tslu_flat_tr8", TreeShape::Flat)] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let mut p = CaParams::new(B, 8, 1);
                p.tree = tree;
                tslu_factor(a0.clone(), 8, &p)
            })
        });
    }
    group.finish();
}

fn bench_qr_panels(c: &mut Criterion) {
    let a0 = ca_matrix::random_uniform(M, B, &mut seeded_rng(2));
    let mut group = c.benchmark_group("qr_panel");
    group.throughput(Throughput::Elements(ca_kernels::flops::geqrf(M, B) as u64));

    let mut a = a0.clone();
    let mut tau = Vec::new();
    group.bench_function("dgeqr2_blas2", |bch| {
        bch.iter(|| {
            a.view_mut().copy_from(a0.view());
            geqr2(a.view_mut(), &mut tau)
        })
    });
    let mut a = a0.clone();
    let mut t = Matrix::zeros(B, B);
    group.bench_function("dgeqr3_recursive", |bch| {
        bch.iter(|| {
            a.view_mut().copy_from(a0.view());
            geqr3(a.view_mut(), t.view_mut())
        })
    });
    for (name, tree) in [("tsqr_binary_tr8", TreeShape::Binary), ("tsqr_flat_tr8", TreeShape::Flat)] {
        group.bench_function(name, |bch| {
            bch.iter(|| {
                let mut p = CaParams::new(B, 8, 1);
                p.tree = tree;
                tsqr_factor(a0.clone(), 8, &p)
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lu_panels, bench_qr_panels
);
criterion_main!(benches);
