//! Criterion benchmarks of the end-to-end factorizations at laptop scale:
//! CALU vs blocked LAPACK-style LU vs PLASMA-style tiled LU, and the QR
//! trio, on a square and a tall-and-skinny matrix.

use ca_baselines::{geqrf_blocked, getrf_blocked, tiled_lu, tiled_qr};
use ca_core::{calu, caqr, CaParams, TreeShape};
use ca_matrix::seeded_rng;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_lu(c: &mut Criterion) {
    for &(m, n, tag) in &[(512usize, 512usize, "square512"), (8192, 128, "tall8192x128")] {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(1));
        let mut group = c.benchmark_group(format!("lu_{tag}"));
        group.throughput(Throughput::Elements(ca_kernels::flops::getrf(m, n) as u64));
        let b = 100.min(n);

        group.bench_function("calu_tr4", |bch| {
            let mut p = CaParams::new(b, 4, 2);
            p.tree = TreeShape::Binary;
            bch.iter(|| calu(a0.clone(), &p))
        });
        group.bench_function("blocked_dgetrf", |bch| {
            bch.iter(|| {
                let mut a = a0.clone();
                getrf_blocked(&mut a, 64.min(n), 2)
            })
        });
        group.bench_function("tiled_dgetrf", |bch| {
            bch.iter(|| tiled_lu(a0.clone(), b, 2))
        });
        group.finish();
    }
}

fn bench_qr(c: &mut Criterion) {
    for &(m, n, tag) in &[(512usize, 512usize, "square512"), (8192, 128, "tall8192x128")] {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(2));
        let mut group = c.benchmark_group(format!("qr_{tag}"));
        group.throughput(Throughput::Elements(ca_kernels::flops::geqrf(m, n) as u64));
        let b = 100.min(n);

        group.bench_function("caqr_tr4_flat", |bch| {
            let mut p = CaParams::new(b, 4, 2);
            p.tree = TreeShape::Flat;
            bch.iter(|| caqr(a0.clone(), &p))
        });
        group.bench_function("blocked_dgeqrf", |bch| {
            bch.iter(|| {
                let mut a = a0.clone();
                geqrf_blocked(&mut a, 64.min(n), 2)
            })
        });
        group.bench_function("tiled_dgeqrf", |bch| {
            bch.iter(|| tiled_qr(a0.clone(), b, 2))
        });
        group.finish();
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lu, bench_qr
);
criterion_main!(benches);
