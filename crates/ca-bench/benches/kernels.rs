//! Criterion benchmarks of the BLAS-level kernels: `gemm` across shapes
//! (square and the trailing-update shape), `trsm`, and `larfb`. Throughput
//! is reported in elements so Criterion's `GiB/s`-style scaling applies;
//! GFlop/s can be derived from the flop counts printed by `ca-bench`'s
//! calibration pass.

use ca_bench::calibrate::Calibration;
use ca_kernels::{gemm, larfb_left, trsm_right_upper_notrans, Trans};
use ca_matrix::{seeded_rng, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &(m, n, k) in &[(256usize, 256usize, 256usize), (2000, 100, 100), (8000, 100, 100)] {
        let mut rng = seeded_rng(1);
        let a = ca_matrix::random_uniform(m, k, &mut rng);
        let b = ca_matrix::random_uniform(k, n, &mut rng);
        let mut cm = Matrix::zeros(m, n);
        group.throughput(Throughput::Elements((2 * m * n * k) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}x{k}")), &(), |bch, _| {
            bch.iter(|| {
                gemm(Trans::No, Trans::No, -1.0, a.view(), b.view(), 1.0, cm.view_mut());
            })
        });
    }
    group.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("trsm_right_upper");
    for &(m, n) in &[(2000usize, 100usize), (8000, 100)] {
        let mut rng = seeded_rng(2);
        let mut u = ca_matrix::random_uniform(n, n, &mut rng);
        for i in 0..n {
            for j in 0..i {
                u[(i, j)] = 0.0;
            }
            u[(i, i)] += 2.0;
        }
        let mut b = ca_matrix::random_uniform(m, n, &mut rng);
        group.throughput(Throughput::Elements((m * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{n}")), &(), |bch, _| {
            bch.iter(|| trsm_right_upper_notrans(u.view(), b.view_mut()))
        });
    }
    group.finish();
}

fn bench_larfb(c: &mut Criterion) {
    let mut group = c.benchmark_group("larfb_left");
    for &(m, k) in &[(2000usize, 100usize), (8000, 100)] {
        let mut rng = seeded_rng(3);
        let mut v = ca_matrix::random_uniform(m, k, &mut rng);
        let mut t = Matrix::zeros(k, k);
        ca_kernels::geqr3(v.view_mut(), t.view_mut());
        let mut cmat = ca_matrix::random_uniform(m, k, &mut rng);
        group.throughput(Throughput::Elements((4 * m * k * k) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(format!("{m}x{k}")), &(), |bch, _| {
            bch.iter(|| larfb_left(Trans::Yes, v.view(), t.view(), cmat.view_mut()))
        });
    }
    group.finish();
}

fn bench_calibration_snapshot(c: &mut Criterion) {
    // Not a kernel: records how long a quick calibration pass takes, and
    // prints the measured throughputs once for reference.
    let cal = ca_bench::calibrate(true);
    eprintln!("quick calibration snapshot: {:?}", cal.throughput);
    let _ = Calibration::reference();
    c.bench_function("calibrate_quick", |b| b.iter(|| ca_bench::calibrate(true)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm, bench_trsm, bench_larfb, bench_calibration_snapshot
);
criterion_main!(benches);
