//! Shared sweep driver for the figure/table binaries.

use crate::model::MachineModel;
use crate::report::{Cli, Series};
use crate::runners::Algo;

/// A named contender whose parameters may depend on the current column
/// count (the paper's `b = min(n, 100)` rule).
pub struct Contender {
    /// Column label.
    pub name: String,
    /// Algorithm factory, given the sweep's current `n`.
    pub make: Box<dyn Fn(usize) -> Algo>,
}

impl Contender {
    /// Creates a contender.
    pub fn new(name: impl Into<String>, make: impl Fn(usize) -> Algo + 'static) -> Self {
        Self { name: name.into(), make: Box::new(make) }
    }
}

/// Fills `series` with one column per contender: GFlop/s at each `x`,
/// where the matrix is `rows(x) × cols(x)`.
pub fn sweep(
    series: &mut Series,
    rows: impl Fn(usize) -> usize,
    cols: impl Fn(usize) -> usize,
    contenders: &[Contender],
    cli: &Cli,
    machine: &MachineModel,
) {
    for c in contenders {
        let mut vals = Vec::with_capacity(series.xs.len());
        for &x in &series.xs {
            let (m, n) = (rows(x), cols(x));
            let algo = (c.make)(n);
            let gf = if cli.measured {
                algo.measured_gflops(m, n, cli.threads, 42)
            } else {
                algo.sim_gflops(m, n, machine)
            };
            eprintln!("  {} @ {}x{}: {:.2} GFlop/s", c.name, m, n, gf);
            vals.push(gf);
        }
        series.push_column(c.name.clone(), vals);
    }
}

/// Prints, saves, and returns the series (shared tail of every binary).
pub fn finish(series: Series, cli: &Cli, stem: &str) -> Series {
    println!("{}", series.to_text());
    if let Err(e) = series.save(&cli.out, stem) {
        eprintln!("warning: could not save results: {e}");
    } else {
        println!("saved {}/{stem}.{{csv,json}}", cli.out.display());
    }
    series
}
