//! Output helpers for the figure/table binaries: aligned text tables,
//! CSV, and JSON dumps under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A GFlop/s series table: one row per x-value, one column per algorithm.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Series {
    /// Table caption (e.g. "Figure 5 ...").
    pub title: String,
    /// Name of the x column (e.g. "n").
    pub xlabel: String,
    /// x values.
    pub xs: Vec<usize>,
    /// `(column name, values)` pairs; each value list matches `xs`.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl Series {
    /// Creates an empty series table.
    pub fn new(title: impl Into<String>, xlabel: impl Into<String>, xs: Vec<usize>) -> Self {
        Self { title: title.into(), xlabel: xlabel.into(), xs, columns: Vec::new() }
    }

    /// Appends a column.
    pub fn push_column(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.xs.len(), "column length mismatch");
        self.columns.push((name.into(), values));
    }

    /// Renders an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let width = self
            .columns
            .iter()
            .map(|(n, _)| n.len() + 2)
            .max()
            .unwrap_or(12)
            .max(12);
        let _ = write!(out, "{:>8}", self.xlabel);
        for (name, _) in &self.columns {
            let _ = write!(out, "{name:>width$}");
        }
        let _ = writeln!(out);
        for (i, &x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x:>8}");
            for (_, vals) in &self.columns {
                let _ = write!(out, "{:>width$.2}", vals[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.xlabel);
        for (name, _) in &self.columns {
            let _ = write!(out, ",{name}");
        }
        let _ = writeln!(out);
        for (i, &x) in self.xs.iter().enumerate() {
            let _ = write!(out, "{x}");
            for (_, vals) in &self.columns {
                let _ = write!(out, ",{:.4}", vals[i]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Writes `<stem>.csv` and `<stem>.json` under `dir`, creating it.
    pub fn save(&self, dir: &Path, stem: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{stem}.csv")), self.to_csv())?;
        let json = serde_json::to_string_pretty(self).expect("serializable");
        fs::write(dir.join(format!("{stem}.json")), json)?;
        Ok(())
    }

    /// Ratio between two named columns at each x (e.g. speedup of CALU over
    /// MKL), for shape assertions and summaries.
    pub fn ratio(&self, over: &str, under: &str) -> Vec<f64> {
        let a = &self.columns.iter().find(|(n, _)| n == over).expect("column").1;
        let b = &self.columns.iter().find(|(n, _)| n == under).expect("column").1;
        a.iter().zip(b.iter()).map(|(x, y)| x / y).collect()
    }
}

/// Minimal CLI flags shared by the figure binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Row-count scale factor applied to the paper's `m`.
    pub scale: f64,
    /// Run real factorizations instead of the simulator.
    pub measured: bool,
    /// Use the paper's full sizes (overrides the safety default of fig6).
    pub full: bool,
    /// Simulated core count override.
    pub cores: Option<usize>,
    /// Threads for measured mode.
    pub threads: usize,
    /// Output directory.
    pub out: std::path::PathBuf,
    /// Quick mode: shrink sweeps for smoke-testing.
    pub quick: bool,
    /// Use the fixed reference calibration instead of measuring the host.
    pub reference_calibration: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            scale: 1.0,
            measured: false,
            full: false,
            cores: None,
            threads: 4,
            out: std::path::PathBuf::from("results"),
            quick: false,
            reference_calibration: false,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`-style flags. Unknown flags abort with usage.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut cli = Cli::default();
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    cli.scale = it.next().expect("--scale VALUE").parse().expect("scale number")
                }
                "--measured" => cli.measured = true,
                "--full" => cli.full = true,
                "--quick" => cli.quick = true,
                "--reference-calibration" => cli.reference_calibration = true,
                "--cores" => {
                    cli.cores = Some(it.next().expect("--cores N").parse().expect("core count"))
                }
                "--threads" => {
                    cli.threads = it.next().expect("--threads N").parse().expect("thread count")
                }
                "--out" => cli.out = it.next().expect("--out DIR").into(),
                other => {
                    eprintln!(
                        "unknown flag {other}\nflags: --scale F --measured --full --quick \
                         --reference-calibration --cores N --threads N --out DIR"
                    );
                    std::process::exit(2);
                }
            }
        }
        cli
    }

    /// The calibration to use: measured on this host unless
    /// `--reference-calibration` (or quick mode) requests the fixed one.
    pub fn calibration(&self) -> crate::calibrate::Calibration {
        if self.reference_calibration {
            crate::calibrate::Calibration::reference()
        } else {
            crate::calibrate::calibrate(self.quick)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_render_and_ratio() {
        let mut s = Series::new("t", "n", vec![10, 20]);
        s.push_column("a", vec![2.0, 4.0]);
        s.push_column("b", vec![1.0, 2.0]);
        let txt = s.to_text();
        assert!(txt.contains("a"));
        assert!(txt.contains("2.00"));
        let csv = s.to_csv();
        assert!(csv.starts_with("n,a,b"));
        assert_eq!(s.ratio("a", "b"), vec![2.0, 2.0]);
    }

    #[test]
    fn cli_parses_flags() {
        let cli = Cli::parse(
            ["--scale", "0.5", "--measured", "--cores", "16", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(cli.scale, 0.5);
        assert!(cli.measured);
        assert_eq!(cli.cores, Some(16));
        assert_eq!(cli.out, std::path::PathBuf::from("/tmp/x"));
    }

    #[test]
    fn series_save_writes_files() {
        let mut s = Series::new("t", "n", vec![1]);
        s.push_column("a", vec![1.5]);
        let dir = std::env::temp_dir().join("ca_bench_report_test");
        s.save(&dir, "unit").unwrap();
        assert!(dir.join("unit.csv").exists());
        assert!(dir.join("unit.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
