//! Host calibration: measures the single-thread throughput (flops/s) of
//! every kernel class on this machine. The multicore simulator divides task
//! flop counts by these throughputs, so simulated GFlop/s are anchored to
//! what the kernels actually achieve here — only the core count is virtual
//! (see DESIGN.md, hardware substitution).

use ca_kernels::flops;
use ca_matrix::{seeded_rng, Matrix};
use ca_sched::KernelClass;
use std::collections::HashMap;
use std::time::Instant;

/// Measured flops-per-second by kernel class, plus stream bandwidth.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Calibration {
    /// flops/s per kernel class (keys serialized as class names).
    pub throughput: HashMap<String, f64>,
    /// Single-core memory bandwidth in bytes/s (large-copy stream measure),
    /// used by the roofline cost model.
    pub bandwidth: f64,
}

fn key(c: KernelClass) -> String {
    format!("{c:?}")
}

impl Calibration {
    /// Throughput for a class, falling back to the `Other` entry.
    pub fn flops_per_sec(&self, c: KernelClass) -> f64 {
        self.throughput
            .get(&key(c))
            .or_else(|| self.throughput.get(&key(KernelClass::Other)))
            .copied()
            .unwrap_or(1e9)
    }

    /// A fixed reference calibration (used by tests and for reproducible
    /// simulated figures independent of host noise). Ratios follow what the
    /// measured pass typically reports on commodity x86: BLAS3 ≈ 3–5× the
    /// BLAS2 panels, recursive panels close to BLAS3.
    pub fn reference() -> Self {
        let mut t = HashMap::new();
        t.insert(key(KernelClass::Gemm), 3.0e9);
        t.insert(key(KernelClass::Trsm), 2.0e9);
        t.insert(key(KernelClass::Larfb), 2.5e9);
        t.insert(key(KernelClass::LuBlas2), 0.8e9);
        t.insert(key(KernelClass::LuRecursive), 2.2e9);
        t.insert(key(KernelClass::QrBlas2), 1.0e9);
        t.insert(key(KernelClass::QrRecursive), 2.0e9);
        t.insert(key(KernelClass::Memory), 1.0e9);
        t.insert(key(KernelClass::Other), 1.0e9);
        Self { throughput: t, bandwidth: 8.0e9 }
    }
}

/// Times `f` (which performs `fl` flops per call), repeating until at least
/// `min_time` has elapsed; returns flops/s.
fn time_kernel(mut f: impl FnMut(), fl: f64, min_time: f64) -> f64 {
    // Warm-up.
    f();
    let mut reps = 1u32;
    loop {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= min_time {
            return fl * reps as f64 / dt;
        }
        reps = reps.saturating_mul(2).min(1 << 20);
    }
}

/// Measures all kernel classes. `quick` shrinks problem sizes and the
/// minimum timing window (for tests / smoke runs).
pub fn calibrate(quick: bool) -> Calibration {
    let mut rng = seeded_rng(12345);
    let (mt, b) = if quick { (2000, 50) } else { (20_000, 100) };
    let min_time = if quick { 0.02 } else { 0.25 };
    let mut t = HashMap::new();

    // Gemm: tall panel times block row — the trailing-update shape.
    {
        let l = ca_matrix::random_uniform(mt, b, &mut rng);
        let u = ca_matrix::random_uniform(b, b, &mut rng);
        let mut c = Matrix::zeros(mt, b);
        let fl = flops::gemm(mt, b, b);
        let tput = time_kernel(
            || {
                ca_kernels::gemm(
                    ca_kernels::Trans::No,
                    ca_kernels::Trans::No,
                    -1.0,
                    l.view(),
                    u.view(),
                    1.0,
                    c.view_mut(),
                )
            },
            fl,
            min_time,
        );
        t.insert(key(KernelClass::Gemm), tput);
    }

    // Trsm: the Task-L shape (tall block times b×b triangle).
    {
        let mut u = ca_matrix::random_uniform(b, b, &mut rng);
        for i in 0..b {
            for j in 0..i {
                u[(i, j)] = 0.0;
            }
            u[(i, i)] += 2.0;
        }
        let mut c = ca_matrix::random_uniform(mt, b, &mut rng);
        let fl = flops::trsm_right(mt, b);
        let tput = time_kernel(
            || ca_kernels::trsm_right_upper_notrans(u.view(), c.view_mut()),
            fl,
            min_time,
        );
        t.insert(key(KernelClass::Trsm), tput);
    }

    // Larfb: compact-WY application on a tall block.
    {
        let mut v = ca_matrix::random_uniform(mt, b, &mut rng);
        let mut tt = Matrix::zeros(b, b);
        ca_kernels::geqr3(v.view_mut(), tt.view_mut());
        let mut c = ca_matrix::random_uniform(mt, b, &mut rng);
        let fl = flops::larfb(mt, b, b);
        let tput = time_kernel(
            || ca_kernels::larfb_left(ca_kernels::Trans::Yes, v.view(), tt.view(), c.view_mut()),
            fl,
            min_time,
        );
        t.insert(key(KernelClass::Larfb), tput);
    }

    // Panel kernels on the tall-panel shape, fresh input per repetition via
    // restore-from-copy (the copy cost is charged; panels are factored once
    // per panel in reality, so warm-cache repetition would flatter them).
    let a0 = ca_matrix::random_uniform(mt, b, &mut rng);
    {
        let mut a = a0.clone();
        let fl = flops::getrf(mt, b);
        let tput = time_kernel(
            || {
                a.view_mut().copy_from(a0.view());
                ca_kernels::getf2(a.view_mut());
            },
            fl,
            min_time,
        );
        t.insert(key(KernelClass::LuBlas2), tput);
    }
    {
        let mut a = a0.clone();
        let fl = flops::getrf(mt, b);
        let tput = time_kernel(
            || {
                a.view_mut().copy_from(a0.view());
                ca_kernels::rgetf2(a.view_mut());
            },
            fl,
            min_time,
        );
        t.insert(key(KernelClass::LuRecursive), tput);
    }
    {
        let mut a = a0.clone();
        let mut tau = Vec::new();
        let fl = flops::geqrf(mt, b);
        let tput = time_kernel(
            || {
                a.view_mut().copy_from(a0.view());
                ca_kernels::geqr2(a.view_mut(), &mut tau);
            },
            fl,
            min_time,
        );
        t.insert(key(KernelClass::QrBlas2), tput);
    }
    {
        let mut a = a0.clone();
        let mut tt = Matrix::zeros(b, b);
        let fl = flops::geqrf(mt, b);
        let tput = time_kernel(
            || {
                a.view_mut().copy_from(a0.view());
                ca_kernels::geqr3(a.view_mut(), tt.view_mut());
            },
            fl,
            min_time,
        );
        t.insert(key(KernelClass::QrRecursive), tput);
    }

    // Memory class: row swaps over a tall panel, expressed as "flops"/s with
    // one nominal flop per element moved.
    {
        let mut a = a0.clone();
        let swaps = b;
        let fl = (swaps * b) as f64;
        let tput = time_kernel(
            || {
                for k in 0..swaps {
                    a.swap_rows(k, mt - 1 - k);
                }
            },
            fl,
            min_time,
        );
        t.insert(key(KernelClass::Memory), tput);
    }

    t.insert(key(KernelClass::Other), t[&key(KernelClass::Gemm)]);

    // Stream bandwidth: copy a buffer far larger than cache.
    let bandwidth = {
        let len = if quick { 4 << 20 } else { 32 << 20 }; // elements
        let src = vec![1.0f64; len];
        let mut dst = vec![0.0f64; len];
        let bytes = 16.0 * len as f64; // read + write
        time_kernel(
            || {
                dst.copy_from_slice(&src);
                std::hint::black_box(dst[len / 2]);
            },
            bytes,
            min_time,
        )
    };
    Calibration { throughput: t, bandwidth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_produces_sane_numbers() {
        let c = calibrate(true);
        for class in [
            KernelClass::Gemm,
            KernelClass::Trsm,
            KernelClass::Larfb,
            KernelClass::LuBlas2,
            KernelClass::LuRecursive,
            KernelClass::QrBlas2,
            KernelClass::QrRecursive,
        ] {
            let f = c.flops_per_sec(class);
            assert!(f > 1e6 && f < 1e12, "{class:?}: {f}");
        }
    }

    #[test]
    fn reference_calibration_orders_blas_levels() {
        let c = Calibration::reference();
        assert!(c.flops_per_sec(KernelClass::Gemm) > c.flops_per_sec(KernelClass::LuBlas2));
        assert!(c.flops_per_sec(KernelClass::LuRecursive) > c.flops_per_sec(KernelClass::LuBlas2));
    }

    #[test]
    fn unknown_class_falls_back() {
        let c = Calibration::reference();
        assert!(c.flops_per_sec(KernelClass::Other) > 0.0);
    }

    #[test]
    fn bandwidth_is_measured_and_sane() {
        let c = calibrate(true);
        assert!(c.bandwidth > 1e8 && c.bandwidth < 1e12, "bandwidth {}", c.bandwidth);
    }
}
