//! # ca-bench
//!
//! Evaluation harness reproducing every table and figure of Donfack,
//! Grigori & Gupta (IPDPS 2010). See DESIGN.md §4 for the experiment index
//! and EXPERIMENTS.md for paper-vs-measured results.
//!
//! Layers:
//! * [`calibrate`] — measures per-kernel-class throughput on this host;
//! * [`MachineModel`] — the simulated 8/16-core machine (hardware
//!   substitution layer) replaying task graphs with calibrated costs;
//! * [`Algo`] — uniform simulated/measured access to every contender
//!   (CALU, CAQR, TSQR, blocked LAPACK "vendor" baselines, BLAS2 routines,
//!   PLASMA-style tiled LU/QR);
//! * [`Series`] / [`Cli`] — table rendering, CSV/JSON export, shared flags.
//!
//! Binaries: `fig5 fig6 fig7 fig8 table1 table2 table3 traces stability`
//! (one per paper artifact), each accepting `--measured`, `--scale`,
//! `--cores`, `--quick`, `--reference-calibration`; plus `profile`, which
//! prints the scheduler-native profiling report (roofline attribution,
//! dispatch latency, critical-path efficiency, lookahead metric) and emits
//! Chrome-trace + `BENCH_profile_*.json` baselines.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod calibrate;
pub mod comm;
pub mod figures;
pub mod model;
pub mod report;
pub mod runners;

pub use calibrate::{calibrate, Calibration};
pub use model::MachineModel;
pub use report::{Cli, Series};
pub use runners::{paper_b, Algo};
