//! Prints the host calibration: measured single-thread throughput of every
//! kernel class (the anchors of the simulated figures) plus stream
//! bandwidth, and derived ratios — including the recursive-vs-BLAS2 panel
//! advantage that underpins TSLU/TSQR ("the best available sequential
//! algorithm", paper §II).

use ca_bench::{calibrate, Cli};
use ca_sched::KernelClass;

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let c = if cli.reference_calibration {
        ca_bench::Calibration::reference()
    } else {
        calibrate(cli.quick)
    };

    println!("Host calibration (single thread):");
    let classes = [
        (KernelClass::Gemm, "gemm (trailing update)"),
        (KernelClass::Trsm, "trsm (task L)"),
        (KernelClass::Larfb, "larfb (QR update)"),
        (KernelClass::LuBlas2, "dgetf2 (BLAS2 LU panel)"),
        (KernelClass::LuRecursive, "rgetf2 (recursive LU panel)"),
        (KernelClass::QrBlas2, "dgeqr2 (BLAS2 QR panel)"),
        (KernelClass::QrRecursive, "dgeqr3 (recursive QR panel)"),
        (KernelClass::Memory, "row swaps"),
    ];
    for (k, name) in classes {
        println!("  {name:<30} {:>8.2} GFlop/s", c.flops_per_sec(k) / 1e9);
    }
    println!("  {:<30} {:>8.2} GB/s", "stream bandwidth", c.bandwidth / 1e9);

    let lu_ratio = c.flops_per_sec(KernelClass::LuRecursive) / c.flops_per_sec(KernelClass::LuBlas2);
    let qr_ratio = c.flops_per_sec(KernelClass::QrRecursive) / c.flops_per_sec(KernelClass::QrBlas2);
    println!("\nRecursive-panel advantage (the sequential half of TSLU/TSQR):");
    println!("  rgetf2 / dgetf2 = {lu_ratio:.2}x");
    println!("  dgeqr3 / dgeqr2 = {qr_ratio:.2}x");
    println!(
        "  gemm / dgetf2   = {:.2}x (BLAS3 vs BLAS2 gap)",
        c.flops_per_sec(KernelClass::Gemm) / c.flops_per_sec(KernelClass::LuBlas2)
    );

    if let Ok(json) = serde_json::to_string_pretty(&c) {
        let _ = std::fs::create_dir_all(&cli.out);
        let path = cli.out.join("calibration.json");
        if std::fs::write(&path, json).is_ok() {
            println!("\nsaved {}", path.display());
        }
    }
}
