//! Figure 6: LU GFlop/s on the (simulated) 8-core Intel machine for
//! tall-and-skinny matrices, m = 10^6, n ∈ {10 … 1000}.
//!
//! Default shrinks m to 2·10^5 (an 8 GB matrix times a one-core container is
//! impractical in measured mode); pass `--full` for the paper's 10^6.

use ca_bench::figures::{finish, sweep, Contender};
use ca_bench::{paper_b, Algo, Cli, MachineModel, Series};
use ca_core::TreeShape;

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let base = if cli.full { 1e6 } else { 2e5 };
    let m = ((base * cli.scale) as usize).max(2000);
    let ns: Vec<usize> =
        if cli.quick { vec![10, 100, 500] } else { vec![10, 25, 50, 100, 150, 200, 500, 1000] };
    let cores = cli.cores.unwrap_or(8);
    let machine = MachineModel::new(cores, cli.calibration());

    let contenders = [
        Contender::new("CALU(Tr=4)", |n| Algo::Calu { b: paper_b(n), tr: 4, tree: TreeShape::Binary }),
        Contender::new("CALU(Tr=8)", |n| Algo::Calu { b: paper_b(n), tr: 8, tree: TreeShape::Binary }),
        Contender::new("MKL_dgetrf", |_| Algo::BlockedLu { nb: 64 }),
        Contender::new("MKL_dgetf2", |_| Algo::Blas2Lu),
        Contender::new("PLASMA_dgetrf", |n| Algo::TiledLu { b: paper_b(n) }),
    ];

    let mode = if cli.measured { "measured" } else { format!("simulated {cores}-core").leak() as &str };
    let mut series = Series::new(
        format!("Figure 6 — LU of tall-skinny m={m}, varying n ({mode}); GFlop/s"),
        "n",
        ns,
    );
    sweep(&mut series, |_| m, |n| n, &contenders, &cli, &machine);
    finish(series, &cli, "fig6");
}
