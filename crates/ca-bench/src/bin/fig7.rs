//! Figure 7: LU GFlop/s on the (simulated) 16-core AMD machine for
//! tall-and-skinny matrices, m = 10^5, n ∈ {10 … 1000}.
//! Contenders: CALU (Tr = 8, 16), ACML_dgetrf (blocked), PLASMA_dgetrf.

use ca_bench::figures::{finish, sweep, Contender};
use ca_bench::{paper_b, Algo, Cli, MachineModel, Series};
use ca_core::TreeShape;

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let m = ((1e5 * cli.scale) as usize).max(2000);
    let ns: Vec<usize> =
        if cli.quick { vec![10, 100, 500] } else { vec![10, 25, 50, 100, 150, 200, 500, 1000] };
    let cores = cli.cores.unwrap_or(16);
    let machine = MachineModel::new(cores, cli.calibration());

    let contenders = [
        Contender::new("CALU(Tr=8)", |n| Algo::Calu { b: paper_b(n), tr: 8, tree: TreeShape::Binary }),
        Contender::new("CALU(Tr=16)", |n| Algo::Calu { b: paper_b(n), tr: 16, tree: TreeShape::Binary }),
        Contender::new("ACML_dgetrf", |_| Algo::BlockedLu { nb: 64 }),
        Contender::new("PLASMA_dgetrf", |n| Algo::TiledLu { b: paper_b(n) }),
    ];

    let mode = if cli.measured { "measured" } else { format!("simulated {cores}-core").leak() as &str };
    let mut series = Series::new(
        format!("Figure 7 — LU of tall-skinny m={m}, varying n ({mode}); GFlop/s"),
        "n",
        ns,
    );
    sweep(&mut series, |_| m, |n| n, &contenders, &cli, &machine);
    finish(series, &cli, "fig7");
}
