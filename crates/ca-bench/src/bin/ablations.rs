//! Ablations of the design choices DESIGN.md calls out, evaluated on the
//! simulated machine (where the effects the paper discusses — tree shape,
//! lookahead, Tr, task granularity/scheduling overhead — are visible
//! regardless of how many physical cores this container has):
//!
//! 1. reduction tree: binary vs flat, across Tr;
//! 2. lookahead-of-1 priority: on vs off;
//! 3. Tr sweep at fixed size (the paper's main tuning knob);
//! 4. panel-width (b) sweep — granularity vs BLAS3 efficiency;
//! 5. scheduling overhead sensitivity (the paper's "too many tasks" remark).

use ca_bench::{Cli, MachineModel};
use ca_core::{calu_task_graph, caqr_task_graph, CaParams, TreeShape};

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let calib = cli.calibration();
    let cores = cli.cores.unwrap_or(8);
    let machine = MachineModel::new(cores, calib.clone());
    let m = ((1e5 * cli.scale) as usize).max(4000);

    println!("== Ablation 1: reduction tree shape (CALU panel, m={m}, n=100, {cores} cores)");
    println!("{:>6} {:>14} {:>14} {:>12}", "Tr", "binary (s)", "flat (s)", "flat/binary");
    for tr in [2usize, 4, 8, 16, 32] {
        let mk = |tree| {
            let mut p = CaParams::new(100, tr, cores);
            p.tree = tree;
            machine.run(&calu_task_graph(m, 100, &p)).makespan
        };
        let tb = mk(TreeShape::Binary);
        let tf = mk(TreeShape::Flat);
        println!("{tr:>6} {tb:>14.4} {tf:>14.4} {:>12.3}", tf / tb);
    }

    println!("\n== Ablation 2: lookahead-of-1 priorities (CALU, n=1000, {cores} cores)");
    println!("{:>10} {:>14} {:>14} {:>10}", "size", "on (s)", "off (s)", "off/on");
    for &(mm, nn) in &[(m / 5, 1000.min(m / 5)), (4000, 4000.min(m))] {
        let p_on = CaParams::new(100, 4, cores);
        let p_off = p_on.without_lookahead();
        let t_on = machine.run(&calu_task_graph(mm, nn, &p_on)).makespan;
        let t_off = machine.run(&calu_task_graph(mm, nn, &p_off)).makespan;
        println!("{:>10} {t_on:>14.4} {t_off:>14.4} {:>10.3}", format!("{mm}x{nn}"), t_off / t_on);
    }

    println!("\n== Ablation 3: Tr sweep (CALU, m={m}, n=100, {cores} cores; GFlop/s)");
    let useful = ca_kernels::flops::getrf(m, 100);
    for tr in [1usize, 2, 4, 8, 16] {
        let p = CaParams::new(100, tr, cores);
        let gf = machine.gflops(&calu_task_graph(m, 100, &p), useful);
        println!("  Tr={tr:<3} {gf:>8.2}");
    }

    println!("\n== Ablation 4: panel width b (CALU square 4000, Tr=4, {cores} cores; GFlop/s)");
    let useful_sq = ca_kernels::flops::getrf(4000, 4000);
    for b in [25usize, 50, 100, 200, 400] {
        let p = CaParams::new(b, 4, cores);
        let g = calu_task_graph(4000, 4000, &p);
        let gf = machine.gflops(&g, useful_sq);
        println!("  b={b:<4} tasks={:<7} {gf:>8.2}", g.len());
    }

    println!("\n== Ablation 5: scheduling overhead (CALU square 4000, b=50, Tr=8)");
    let p = CaParams::new(50, 8, cores);
    let g = calu_task_graph(4000, 4000, &p);
    println!("  ({} tasks)", g.len());
    for ovh in [0.0, 1e-6, 1e-5, 1e-4, 1e-3] {
        let mut mm = MachineModel::new(cores, calib.clone());
        mm.task_overhead = ovh;
        let gf = mm.gflops(&g, useful_sq);
        println!("  overhead={ovh:>8.0e}s  {gf:>8.2} GFlop/s");
    }

    println!("\n== Ablation 6: two-level update blocking B = k*b (paper §V future work)");
    println!("   (CALU square 4000, b=50, Tr=8, {cores} cores)");
    for ub in [1usize, 2, 4, 8] {
        let p = CaParams::new(50, 8, cores).with_update_blocking(ub);
        let g = calu_task_graph(4000, 4000, &p);
        let gf = machine.gflops(&g, useful_sq);
        println!("  B={:<4} tasks={:<7} {gf:>8.2} GFlop/s", ub * 50, g.len());
    }

    println!("\n== Bonus: CAQR tree shape (panel only, m={m}, n=100)");
    for tr in [4usize, 8, 16] {
        let mk = |tree| {
            let mut p = CaParams::new(100, tr, cores);
            p.tree = tree;
            machine.run(&caqr_task_graph(m, 100, &p)).makespan
        };
        let tb = mk(TreeShape::Binary);
        let tf = mk(TreeShape::Flat);
        println!("  Tr={tr:<3} binary {tb:.4}s  flat {tf:.4}s  (flat/binary {:.3})", tf / tb);
    }
}
