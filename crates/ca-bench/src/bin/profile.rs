//! Scheduler profiling report: runtime metrics, per-kernel roofline
//! attribution, dispatch-latency summary, critical-path efficiency, and the
//! lookahead metric, for CALU and CAQR.
//!
//! Subcommands (first positional argument): `lu`, `qr`, or `all` (default).
//!
//! By default the task graph is replayed on the deterministic simulated
//! machine (calibrated costs); with `--measured` the real factorization runs
//! on the profiled executors instead, so the report reflects actual wall
//! times, steal counters, and dispatch latencies.
//!
//! Outputs under `--out` (default `results/`):
//! * `BENCH_profile_{lu,qr}.json` — the full [`ca_sched::SchedMetrics`]
//!   record, suitable as a baseline for regression tracking;
//! * `profile_{lu,qr}_trace.json` — Chrome-trace JSON (spans + DAG flow
//!   events + counter tracks) for `chrome://tracing` or Perfetto.

use ca_bench::{Cli, MachineModel};
use ca_core::{calu_task_graph, caqr_task_graph, CaParams};
use ca_matrix::seeded_rng;
use ca_sched::Profile;

fn save(profile: &Profile, cli: &Cli, stem: &str) {
    let metrics = profile.metrics();
    println!("{metrics}");
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
        return;
    }
    let json = serde_json::to_string_pretty(&metrics).expect("serializable");
    let metrics_path = cli.out.join(format!("BENCH_profile_{stem}.json"));
    let trace_path = cli.out.join(format!("profile_{stem}_trace.json"));
    match std::fs::write(&metrics_path, json) {
        Ok(()) => println!("saved {}", metrics_path.display()),
        Err(e) => eprintln!("warning: could not save metrics: {e}"),
    }
    match std::fs::write(&trace_path, profile.chrome_trace()) {
        Ok(()) => println!("saved {}", trace_path.display()),
        Err(e) => eprintln!("warning: could not save trace: {e}"),
    }
    println!();
}

fn simulated(cli: &Cli, machine: &MachineModel, which: &str) {
    let m = ((1e5 * cli.scale) as usize).max(4000);
    let m = if cli.quick { m.min(10_000) } else { m };
    let n = 1000.min(m);
    let p = CaParams::new(100, 8, machine.cores);
    if which == "lu" || which == "all" {
        println!(
            "CALU profile — {m}x{n}, b=100, Tr=8, simulated {} cores\n",
            machine.cores
        );
        save(&machine.profile(&calu_task_graph(m, n, &p)), cli, "lu");
    }
    if which == "qr" || which == "all" {
        println!(
            "CAQR profile — {m}x{n}, b=100, Tr=8, simulated {} cores\n",
            machine.cores
        );
        save(&machine.profile(&caqr_task_graph(m, n, &p)), cli, "qr");
    }
}

fn measured(cli: &Cli, which: &str) {
    let m = ((4000.0 * cli.scale) as usize).max(400);
    let m = if cli.quick { m.min(1200) } else { m };
    let n = 200.min(m);
    let p = CaParams::new(50.min(n), 4, cli.threads);
    let a = ca_matrix::random_uniform(m, n, &mut seeded_rng(42));
    if which == "lu" || which == "all" {
        println!("CALU profile — measured {m}x{n}, b={}, Tr=4, {} threads\n", p.b, p.threads);
        match ca_core::try_calu_profiled(a.clone(), &p) {
            Ok((_, profile)) => save(&profile, cli, "lu"),
            Err(e) => eprintln!("CALU failed: {e}"),
        }
    }
    if which == "qr" || which == "all" {
        println!("CAQR profile — measured {m}x{n}, b={}, Tr=4, {} threads\n", p.b, p.threads);
        match ca_core::try_caqr_profiled(a, &p) {
            Ok((_, profile)) => save(&profile, cli, "qr"),
            Err(e) => eprintln!("CAQR failed: {e}"),
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let which = if !args.is_empty() && !args[0].starts_with("--") {
        args.remove(0)
    } else {
        "all".to_string()
    };
    if !matches!(which.as_str(), "lu" | "qr" | "all") {
        eprintln!("unknown subcommand {which}; use lu|qr|all");
        std::process::exit(2);
    }
    let cli = Cli::parse(args.into_iter());
    if cli.measured {
        measured(&cli, &which);
    } else {
        let machine = MachineModel::new(cli.cores.unwrap_or(8), cli.calibration());
        simulated(&cli, &machine, &which);
    }
}
