//! Stability experiment backing the paper's §II claim that CALU's
//! tournament (ca-)pivoting is "as stable as Gaussian elimination with
//! partial pivoting in practice" (after Grigori, Demmel & Xiang 2008).
//!
//! For a set of matrix classes, reports element growth factors and LU
//! residuals for GEPP and CALU across Tr and both tree shapes.

use ca_bench::Cli;
use ca_core::{calu_seq_factor, CaParams, TreeShape};
use ca_matrix::{growth_factor, seeded_rng, Matrix};

fn gepp_stats(a0: &Matrix) -> (f64, f64) {
    let mut a = a0.clone();
    let info = ca_kernels::getf2(a.view_mut());
    let g = growth_factor(a0, &a.upper());
    let perm = info.pivots.to_permutation(a0.nrows());
    let res = ca_matrix::lu_residual(a0, &perm, &a.unit_lower(), &a.upper());
    (g, res)
}

fn calu_stats(a0: &Matrix, b: usize, tr: usize, tree: TreeShape) -> (f64, f64) {
    let mut p = CaParams::new(b, tr, 1);
    p.tree = tree;
    let f = calu_seq_factor(a0.clone(), &p);
    (growth_factor(a0, &f.u()), f.residual(a0))
}

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let n = if cli.quick { 128 } else { 512 };
    let b = 32;
    let mut rng = seeded_rng(2026);

    let cases: Vec<(&str, Matrix)> = vec![
        ("random uniform", ca_matrix::random_uniform(n, n, &mut rng)),
        ("random normal", ca_matrix::random_normal(n, n, &mut rng)),
        ("graded rows (1.2^i)", ca_matrix::graded_rows(n, n, 1.2, &mut rng)),
        ("Wilkinson growth (n=56)", ca_matrix::wilkinson_growth(56)),
        ("Kahan (theta=1.2)", ca_matrix::kahan(n.min(256), 1.2)),
        ("random orthogonal", ca_matrix::random_orthogonal(n.min(256), &mut rng)),
    ];

    println!("Stability: growth factor g = max|U| / max|A| and relative residual ‖ΠA−LU‖/‖A‖");
    println!(
        "{:<26} {:>14} {:>10} | {:>14} {:>10} | {:>14} {:>10}",
        "matrix", "GEPP g", "resid", "CALU bin g", "resid", "CALU flat g", "resid"
    );
    for (name, a0) in &cases {
        let (gg, gr) = gepp_stats(a0);
        let (cbg, cbr) = calu_stats(a0, b.min(a0.ncols()), 8, TreeShape::Binary);
        let (cfg_, cfr) = calu_stats(a0, b.min(a0.ncols()), 8, TreeShape::Flat);
        println!(
            "{name:<26} {gg:>14.3e} {gr:>10.2e} | {cbg:>14.3e} {cbr:>10.2e} | {cfg_:>14.3e} {cfr:>10.2e}"
        );
    }

    println!("\nCALU growth vs Tr (random uniform, n={n}, b={b}, binary tree):");
    let a0 = ca_matrix::random_uniform(n, n, &mut rng);
    let (gg, _) = gepp_stats(&a0);
    println!("  GEPP: {gg:.3}");
    for tr in [1usize, 2, 4, 8, 16] {
        let (g, r) = calu_stats(&a0, b, tr, TreeShape::Binary);
        println!("  Tr={tr:<3} growth {g:>8.3}  residual {r:.2e}");
    }
    println!("\nConclusion check: CALU growth within a small factor of GEPP on every class");
    println!("(the Wilkinson matrix defeats BOTH pivoting strategies — growth 2^(n-1)).");
}
