//! Out-of-core CALU/CAQR sweep: factor a matrix several times larger than
//! the resident-memory budget through the [`ca_ooc::TileStore`] tier and
//! gate the measured disk traffic against the sequential communication
//! lower bound `elem_bytes · (2mn + flops/√M)` (arXiv 0806.2159) — the
//! out-of-core claim of DESIGN.md §16, quantified.
//!
//! The full run factors 8192×8192 `f64` (512 MiB) under a 128 MiB budget —
//! the matrix is 4× fast memory — and verifies each factorization with the
//! streamed `O(n²)` probes, gated at the accuracy suite's
//! `residual_threshold(m, n, 100)`. In-core CALU/CAQR at the same shape
//! provide the GFlop/s comparison. Writes `BENCH_ooc.json` under `--out`
//! (default `results/`); exits 1 if any gate fails.
//!
//! Flags: `--quick` (1024² under a 4 MiB budget, for CI smoke tests),
//! `--threads N`, `--out DIR`.

use ca_core::{try_calu, try_caqr, CaParams};
use ca_kernels::flops;
use ca_kernels::traffic::{ooc_lu_lower_bound, ooc_qr_lower_bound};
use ca_matrix::{random_uniform, residual_threshold, seeded_rng};
use ca_ooc::{ooc_calu, ooc_caqr, probe, TileStore};
use serde_json::json;
use std::time::Instant;

/// Maximum admissible ratio of measured traffic to the lower bound.
const IO_GATE: f64 = 1.5;
/// Accuracy-gate constant, matching `tests/accuracy.rs`.
const C: f64 = 100.0;

fn main() {
    let cli = ca_bench::Cli::parse(std::env::args().skip(1));
    // Quick keeps the same ≥2× matrix-to-budget ratio shape but fits in a
    // CI smoke slot; full is the paper-scale 4× configuration.
    let (n, b, budget) = if cli.quick { (1024usize, 16usize, 4usize << 20) } else { (8192, 64, 128 << 20) };
    let m = n;
    let tr = 2; // sequential OOC: tr shapes the tournament, not parallelism
    let mut p = CaParams::new(b, tr, cli.threads.max(2));
    p.tree = ca_core::TreeShape::Binary;
    let matrix_bytes = m * n * 8;

    println!(
        "OOC sweep — {m}x{n} f64 ({} MiB) under a {} MiB budget ({}x fast memory), b={b} tr={tr}",
        matrix_bytes >> 20,
        budget >> 20,
        matrix_bytes / budget,
    );

    let dir = std::env::temp_dir().join(format!("ca_ooc_sweep_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create scratch dir {}: {e}", dir.display());
        std::process::exit(1);
    }

    let mut rows = Vec::new();
    let mut gate_pass = true;
    for qr in [false, true] {
        let name = if qr { "CAQR" } else { "CALU" };
        let a = random_uniform(m, n, &mut seeded_rng(0x00C5EED + qr as u64));
        let path = dir.join(format!("{}.castore", name.to_lowercase()));
        let store = TileStore::<f64>::create(&path, m, n, b).expect("create store");
        store.import_matrix(&a).expect("import");

        let x: Vec<f64> = {
            let xm = random_uniform(n, 1, &mut seeded_rng(0x0b5e ^ qr as u64));
            (0..n).map(|i| xm[(i, 0)]).collect()
        };
        let (want, a_fro) = probe::stream_matvec(&store, &x).expect("probe baseline");

        let fl = if qr { flops::geqrf(m, n) } else { flops::getrf(m, n) };
        let t0 = Instant::now();
        let (plan, io, got) = if qr {
            let f = ooc_caqr(&store, &p, budget).expect("ooc qr");
            let got = probe::qr_probe_apply(&store, &f.panels, &x).expect("qr probe");
            (f.plan, f.io, got)
        } else {
            let f = ooc_calu(&store, &p, budget).expect("ooc lu");
            let got = probe::lu_probe_apply(&store, &f.pivots, &x).expect("lu probe");
            (f.plan, f.io, got)
        };
        let dt_ooc = t0.elapsed().as_secs_f64();
        let gf_ooc = fl / dt_ooc / 1e9;
        let residual = probe::probe_residual(&got, &want, a_fro, &x);
        drop(store);
        std::fs::remove_file(&path).ok();

        let moved = (io.bytes_read + io.bytes_written) as f64;
        let bound = if qr {
            ooc_qr_lower_bound(m, n, budget, 8)
        } else {
            ooc_lu_lower_bound(m, n, budget, 8)
        };
        let ratio = moved / bound;

        // In-core comparison at the same shape: the task-parallel DAG path,
        // i.e. what you would run if the matrix *did* fit in RAM.
        let t1 = Instant::now();
        if qr {
            let _ = try_caqr(a, &p).expect("in-core qr");
        } else {
            let _ = try_calu(a, &p).expect("in-core lu");
        }
        let dt_in = t1.elapsed().as_secs_f64();
        let gf_in = fl / dt_in / 1e9;

        let thr = residual_threshold(m, n, C);
        let io_ok = ratio <= IO_GATE;
        let acc_ok = residual < thr;
        gate_pass &= io_ok && acc_ok;

        println!(
            "{name}: superpanel w={} x{}  {dt_ooc:.2}s {gf_ooc:.2} GF/s  \
             (in-core {dt_in:.2}s {gf_in:.2} GF/s, {:.0}% of in-core)",
            plan.w,
            plan.nsuper,
            100.0 * gf_ooc / gf_in,
        );
        println!(
            "  io: read {:.1} MiB + wrote {:.1} MiB = {:.2}x lower bound ({:.1} MiB)  [gate <= {IO_GATE}x: {}]",
            io.bytes_read as f64 / (1 << 20) as f64,
            io.bytes_written as f64 / (1 << 20) as f64,
            ratio,
            bound / (1 << 20) as f64,
            if io_ok { "pass" } else { "FAIL" },
        );
        println!(
            "  probe residual {residual:.2e} vs threshold {thr:.2e}  [gate: {}]",
            if acc_ok { "pass" } else { "FAIL" },
        );

        rows.push(json!({
            "algorithm": name,
            "m": m as f64, "n": n as f64, "b": b as f64, "tr": tr as f64,
            "budget_bytes": budget as f64,
            "superpanel_cols": plan.w as f64,
            "superpanels": plan.nsuper as f64,
            "seconds": dt_ooc,
            "gflops": gf_ooc,
            "incore_seconds": dt_in,
            "incore_gflops": gf_in,
            "bytes_read": io.bytes_read as f64,
            "bytes_written": io.bytes_written as f64,
            "panel_loads": io.panel_loads as f64,
            "load_seconds": io.load_seconds,
            "lower_bound_bytes": bound,
            "io_ratio": ratio,
            "probe_residual": residual,
            "residual_threshold": thr,
            "io_gate_pass": io_ok,
            "accuracy_gate_pass": acc_ok,
        }));
    }
    std::fs::remove_dir_all(&dir).ok();

    let report = json!({
        "bench": "ooc_sweep",
        "quick": cli.quick,
        "matrix_bytes": matrix_bytes as f64,
        "budget_bytes": budget as f64,
        "memory_ratio": matrix_bytes as f64 / budget as f64,
        "io_gate": IO_GATE,
        "threads": p.threads as f64,
        "rows": rows,
        "gate_pass": gate_pass,
    });

    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
    }
    let path = cli.out.join("BENCH_ooc.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable")) {
        Ok(()) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save {}: {e}", path.display()),
    }
    if !gate_pass {
        eprintln!("ooc_sweep: gate FAILED");
        std::process::exit(1);
    }
}
