//! Pool-churn microbench: the one-shot graph executor's scoped worker pool
//! (spawn threads, run, join — per call) against the process-wide
//! persistent pool (`ca_sched::run_graph_persistent`, what the
//! `persistent-pool` feature makes the default), on the workload the
//! satellite targets: many small factorization-shaped graphs where thread
//! spawn/join is a visible fraction of every call.
//!
//! Each call runs a panel-and-updates graph (1 root + `width` dependent
//! trailing updates, the shape of one CALU step) whose tasks do real GEMM
//! work on `nb × nb` blocks. Writes `results/BENCH_pool.json`.
//! Flags: `--quick`, `--threads W`, `--out DIR`.

use ca_kernels::{gemm, Trans};
use ca_matrix::{random_uniform, seeded_rng, Matrix};
use ca_sched::{job, Job, KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta};
use serde_json::json;
use std::time::Instant;

/// Builds the panel-and-updates graph: task 0 (panel) then `width` update
/// tasks depending on it, each GEMM-ing its own `nb²` block.
fn build_graph<'a>(
    a: &'a Matrix,
    b: &'a Matrix,
    cs: &'a mut [Matrix],
) -> TaskGraph<Job<'a>> {
    let nb = a.nrows();
    let fl = ca_kernels::flops::gemm(nb, nb, nb);
    let mut g = TaskGraph::new();
    let root = g.add_task(
        TaskMeta::new(TaskLabel::new(TaskKind::Panel, 0, 0, 0), fl)
            .with_class(KernelClass::Gemm),
        job(move || {
            std::hint::black_box(a.view());
        }),
    );
    for (j, c) in cs.iter_mut().enumerate() {
        let t = g.add_task(
            TaskMeta::new(TaskLabel::new(TaskKind::Update, 0, 0, j), fl)
                .with_class(KernelClass::Gemm),
            job(move || {
                gemm(Trans::No, Trans::No, -1.0, a.view(), b.view(), 1.0, c.view_mut());
            }),
        );
        g.add_dep(root, t);
    }
    g
}

/// Best-of-3 total seconds for `reps` calls of `f`, each on a fresh graph.
fn time_calls(
    nb: usize,
    width: usize,
    reps: usize,
    f: impl Fn(TaskGraph<Job<'_>>),
) -> f64 {
    let mut rng = seeded_rng(nb as u64);
    let a = random_uniform(nb, nb, &mut rng);
    let b = random_uniform(nb, nb, &mut rng);
    let mut cs: Vec<Matrix> = (0..width).map(|_| Matrix::zeros(nb, nb)).collect();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f(build_graph(&a, &b, &mut cs));
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let cli = ca_bench::Cli::parse(std::env::args().skip(1));
    let threads = cli.threads;
    let reps = if cli.quick { 30 } else { 200 };
    let shapes: &[(usize, usize)] =
        if cli.quick { &[(16, 4), (32, 8)] } else { &[(16, 4), (32, 8), (64, 8), (100, 10)] };

    println!(
        "pool churn — {reps} graph runs per row, {threads} thread(s), persistent pool: {} lane(s)",
        ca_sched::persistent_pool_threads()
    );
    println!("{:>5} {:>6}  {:>12} {:>12} {:>9}", "nb", "tasks", "scoped µs", "persist µs", "speedup");

    let mut rows = Vec::new();
    for &(nb, width) in shapes {
        let t_scoped =
            time_calls(nb, width, reps, |g| drop(ca_sched::run_graph_scoped(g, threads)));
        let t_persist =
            time_calls(nb, width, reps, |g| drop(ca_sched::run_graph_persistent(g, threads)));
        let speedup = t_scoped / t_persist;
        let per = |t: f64| t / reps as f64 * 1e6;
        println!(
            "{nb:>5} {:>6}  {:>12.1} {:>12.1} {speedup:>8.2}x",
            width + 1,
            per(t_scoped),
            per(t_persist)
        );
        rows.push(json!({
            "nb": nb as f64,
            "tasks": (width + 1) as f64,
            "reps": reps as f64,
            "scoped_us_per_call": per(t_scoped),
            "persistent_us_per_call": per(t_persist),
            "speedup": speedup,
        }));
    }

    let report = json!({
        "bench": "pool_churn",
        "threads": threads as f64,
        "rows": rows,
    });
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
        return;
    }
    let path = cli.out.join("BENCH_pool.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable")) {
        Ok(()) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save {}: {e}", path.display()),
    }
}
