//! Service throughput and latency sweep: the persistent multi-tenant
//! factorization service (`ca-serve`) against a serialize-every-request
//! baseline that handles each job with the existing one-shot API (build
//! graph, spawn pool, run, join — what serving costs without the service
//! layer), at equal worker count.
//!
//! Three experiments, all seeded and bitwise cross-checked:
//!
//! 1. **mixed64** — the acceptance trace: 64 jobs, 16 large (1024²) and 48
//!    small (256²), mixed LU/QR, submitted open-loop as fast as possible.
//! 2. **tiny batch** — 64 panel-width jobs (32²), where per-request runtime
//!    setup dominates and the service's fused batching pays off hardest.
//! 3. **poisson** — an open-loop Poisson arrival trace replayed at several
//!    offered loads; reports p50/p95/p99 latency and jobs/sec per load,
//!    plus shed counters at the overload point (bounded-queue behavior).
//!
//! Writes `results/BENCH_serve.json`. Flags: `--quick` (shrink sizes),
//! `--threads W` (worker count for both systems), `--out DIR`.

use ca_core::CaParams;
use ca_matrix::{random_uniform, seeded_rng, Matrix};
use ca_serve::{
    AdmissionPolicy, BatchConfig, JobHandle, Service, ServiceConfig, SubmitOptions,
};
use serde_json::json;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Lu,
    Qr,
}

/// One request of the synthetic trace.
struct Req {
    kind: Kind,
    a: Matrix,
    p: CaParams,
}

fn params(b: usize, n: usize, threads: usize) -> CaParams {
    CaParams::new(b.min(n), 4, threads)
}

/// The acceptance trace: `nbig` large + `nsmall` small jobs, mixed LU/QR,
/// large jobs spread through the submission order (1 in 4).
fn mixed_trace(nbig: usize, nsmall: usize, big: usize, small: usize, threads: usize) -> Vec<Req> {
    let mut rng = seeded_rng(0xCA5E);
    let (mut b, mut s) = (0, 0);
    let mut reqs = Vec::with_capacity(nbig + nsmall);
    for i in 0..(nbig + nsmall) {
        let n = if i % 4 == 0 && b < nbig {
            b += 1;
            big
        } else if s < nsmall {
            s += 1;
            small
        } else {
            b += 1;
            big
        };
        let kind = if i % 2 == 0 { Kind::Lu } else { Kind::Qr };
        reqs.push(Req { kind, a: random_uniform(n, n, &mut rng), p: params(100, n, threads) });
    }
    reqs
}

/// Serialize-every-request baseline: each request runs to completion on a
/// fresh one-shot runtime (the pre-service path) before the next starts.
/// Returns (total seconds, per-request outputs for the bitwise check).
fn run_baseline(reqs: &[Req]) -> (f64, Vec<Vec<f64>>) {
    let slots: Vec<Arc<Mutex<Vec<f64>>>> =
        reqs.iter().map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    let calls: VecDeque<Box<dyn FnOnce() + Send>> = reqs
        .iter()
        .zip(&slots)
        .map(|(r, slot)| {
            let (a, p, kind, slot) = (r.a.clone(), r.p, r.kind, Arc::clone(slot));
            Box::new(move || {
                let out = match kind {
                    Kind::Lu => ca_core::calu(a, &p).lu.as_slice().to_vec(),
                    Kind::Qr => ca_core::caqr(a, &p).a.as_slice().to_vec(),
                };
                *slot.lock().expect("slot") = out;
            }) as Box<dyn FnOnce() + Send>
        })
        .collect();
    let dt = ca_serve::serialized_baseline(calls);
    let out = slots
        .into_iter()
        .map(|s| std::mem::take(&mut *s.lock().expect("slot")))
        .collect();
    (dt, out)
}

/// Service run: submit the whole trace open-loop, wait for every handle.
/// Returns (total seconds, per-request outputs, final stats).
fn run_service(
    reqs: &[Req],
    workers: usize,
    batch_dim: usize,
    capacity: usize,
) -> (f64, Vec<Vec<f64>>, ca_serve::ServiceStats) {
    let mut cfg = ServiceConfig::new(workers)
        .with_capacity(capacity)
        .with_admission(AdmissionPolicy::Block);
    if batch_dim > 0 {
        cfg = cfg.with_batching(BatchConfig {
            max_dim: batch_dim,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
        });
    }
    let svc = Service::new(cfg);
    let inputs: Vec<Matrix> = reqs.iter().map(|r| r.a.clone()).collect();
    enum Handle {
        Lu(JobHandle<ca_core::LuFactors>),
        Qr(JobHandle<ca_core::QrFactors>),
    }
    let t0 = Instant::now();
    let handles: Vec<Handle> = reqs
        .iter()
        .zip(inputs)
        .map(|(r, a)| {
            let opts = SubmitOptions::default().with_params(r.p);
            match r.kind {
                Kind::Lu => Handle::Lu(svc.submit_lu(a, opts).expect("admitted")),
                Kind::Qr => Handle::Qr(svc.submit_qr(a, opts).expect("admitted")),
            }
        })
        .collect();
    svc.flush();
    let out: Vec<Vec<f64>> = handles
        .into_iter()
        .map(|h| match h {
            Handle::Lu(h) => h.wait().expect("completes").lu.as_slice().to_vec(),
            Handle::Qr(h) => h.wait().expect("completes").a.as_slice().to_vec(),
        })
        .collect();
    let dt = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    svc.shutdown();
    (dt, out, stats)
}

/// Runs baseline + service on one trace and reports the comparison row.
fn compare(
    name: &str,
    reqs: &[Req],
    workers: usize,
    batch_dim: usize,
    capacity: usize,
) -> serde_json::Value {
    // Best of two passes per system, interleaved, to shield against
    // CPU-steal bursts on shared hosts.
    let (t_svc1, out_svc, stats) = run_service(reqs, workers, batch_dim, capacity);
    let (t_base1, out_base) = run_baseline(reqs);
    let (t_svc2, _, _) = run_service(reqs, workers, batch_dim, capacity);
    let (t_base2, _) = run_baseline(reqs);
    let (t_svc, t_base) = (t_svc1.min(t_svc2), t_base1.min(t_base2));
    let deviations =
        out_svc.iter().zip(&out_base).filter(|(a, b)| a != b).count();
    let speedup = t_base / t_svc;
    let n = reqs.len() as f64;
    println!(
        "{name:>10}: {} jobs  baseline {t_base:.3}s ({:.1} jobs/s)  service {t_svc:.3}s \
         ({:.1} jobs/s)  speedup {speedup:.2}x  batched {}  deviations {deviations}",
        reqs.len(),
        n / t_base,
        n / t_svc,
        stats.batched_jobs,
    );
    json!({
        "trace": name,
        "jobs": reqs.len() as f64,
        "workers": workers as f64,
        "batch_dim": batch_dim as f64,
        "queue_capacity": capacity as f64,
        "baseline_s": t_base,
        "baseline_jobs_per_s": n / t_base,
        "service_s": t_svc,
        "service_jobs_per_s": n / t_svc,
        "speedup": speedup,
        "batched_jobs": stats.batched_jobs as f64,
        "bitwise_deviations": deviations as f64,
        "queue_p50_ms": stats.queue_latency.p50_s * 1e3,
        "exec_p50_ms": stats.exec_latency.p50_s * 1e3,
        "total_p95_ms": stats.total_latency.p95_s * 1e3,
    })
}

/// Open-loop Poisson replay at `offered` jobs/s for `njobs` jobs; mixed
/// sizes (1 in 4 large). Returns the per-load report row.
fn poisson_load(
    offered: f64,
    njobs: usize,
    big: usize,
    small: usize,
    workers: usize,
    capacity: usize,
) -> serde_json::Value {
    let mut rng = seeded_rng(0xB0 + (offered * 100.0) as u64);
    let svc = Service::new(
        ServiceConfig::new(workers)
            .with_capacity(capacity)
            .with_admission(AdmissionPolicy::ShedOldest)
            .with_batching(BatchConfig::up_to(small)),
    );
    enum Handle {
        Lu(JobHandle<ca_core::LuFactors>),
        Qr(JobHandle<ca_core::QrFactors>),
    }
    let mut handles = Vec::with_capacity(njobs);
    let t0 = Instant::now();
    let mut next_arrival = 0.0f64;
    for i in 0..njobs {
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = rand::Rng::gen_range(&mut rng, 0.0..1.0);
        next_arrival += -(1.0 - u).ln() / offered;
        let now = t0.elapsed().as_secs_f64();
        if next_arrival > now {
            std::thread::sleep(Duration::from_secs_f64(next_arrival - now));
        }
        let n = if i % 4 == 0 { big } else { small };
        let a = random_uniform(n, n, &mut rng);
        let opts = SubmitOptions::default().with_params(params(100, n, 1));
        let h = if i % 2 == 0 {
            svc.submit_lu(a, opts).map(Handle::Lu)
        } else {
            svc.submit_qr(a, opts).map(Handle::Qr)
        };
        if let Ok(h) = h {
            handles.push(h);
        } // sheds/rejects are counted by the service
    }
    svc.flush();
    for h in handles {
        match h {
            Handle::Lu(h) => drop(h.wait()),
            Handle::Qr(h) => drop(h.wait()),
        }
    }
    let s = svc.stats();
    svc.shutdown();
    println!(
        "   poisson @ {offered:>6.1} jobs/s offered: completed {:>3}  achieved {:>6.1} jobs/s  \
         shed {}  rejected {}  total p50/p95/p99 {:.1}/{:.1}/{:.1} ms",
        s.completed,
        s.jobs_per_s,
        s.shed,
        s.rejected,
        s.total_latency.p50_s * 1e3,
        s.total_latency.p95_s * 1e3,
        s.total_latency.p99_s * 1e3,
    );
    json!({
        "offered_jobs_per_s": offered,
        "jobs": njobs as f64,
        "completed": s.completed as f64,
        "achieved_jobs_per_s": s.jobs_per_s,
        "shed": s.shed as f64,
        "rejected": s.rejected as f64,
        "occupancy": s.occupancy,
        "queue_p50_ms": s.queue_latency.p50_s * 1e3,
        "total_p50_ms": s.total_latency.p50_s * 1e3,
        "total_p95_ms": s.total_latency.p95_s * 1e3,
        "total_p99_ms": s.total_latency.p99_s * 1e3,
    })
}

fn main() {
    let cli = ca_bench::Cli::parse(std::env::args().skip(1));
    let workers = cli.threads;
    let (big, small, tiny) = if cli.quick { (256, 64, 32) } else { (1024, 256, 32) };
    println!(
        "serve_sweep — {workers} worker(s), host parallelism {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // 1. Acceptance trace: 16 large + 48 small, mixed LU/QR.
    // Bounded admission (capacity 4, block) doubles as a locality lever on
    // few-core hosts: it caps how many large jobs interleave in flight.
    let reqs = mixed_trace(16, 48, big, small, workers);
    let mixed = compare("mixed64", &reqs, workers, small, 4);
    drop(reqs);

    // 2. Batching-dominated trace: 64 tiny (panel-width) jobs.
    let reqs: Vec<Req> = {
        let mut rng = seeded_rng(0xBA7C);
        (0..64)
            .map(|i| Req {
                kind: if i % 2 == 0 { Kind::Lu } else { Kind::Qr },
                a: random_uniform(tiny, tiny, &mut rng),
                p: params(100, tiny, workers),
            })
            .collect()
    };
    let tiny_row = compare("tiny64", &reqs, workers, tiny, 64);
    drop(reqs);

    // 3. Poisson open-loop arrivals at several offered loads. Calibrate the
    //    load axis against the service's closed-loop rate *on the same job
    //    mix*, so 2.0× genuinely means overload on this host.
    let njobs = if cli.quick { 24 } else { 64 };
    let (pbig, psmall) = if cli.quick { (128, 48) } else { (512, 128) };
    let mu = {
        let reqs = mixed_trace(njobs / 4, njobs - njobs / 4, pbig, psmall, workers);
        let (t, _, _) = run_service(&reqs, workers, psmall, reqs.len());
        reqs.len() as f64 / t
    };
    let mut loads = Vec::new();
    println!("poisson sweep (service rate ≈ {mu:.1} jobs/s; capacity 16, shed-oldest, batch ≤{psmall}):");
    for mult in [0.25, 0.75, 2.0] {
        loads.push(poisson_load(mu * mult, njobs, pbig, psmall, workers, 16));
    }

    let report = json!({
        "bench": "serve_sweep",
        "workers": workers as f64,
        "host_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()) as f64,
        "quick": if cli.quick { 1.0 } else { 0.0 },
        "note": "speedup is bounded by compute serialization when jobs are large and \
                 host_parallelism is low; the tiny64 row isolates the per-request overhead \
                 (pool churn, graph setup) the service eliminates, mixed64 adds the \
                 compute-bound large jobs on top",
        "mixed64": mixed,
        "tiny64": tiny_row,
        "poisson": loads,
    });
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
        return;
    }
    let path = cli.out.join("BENCH_serve.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable")) {
        Ok(()) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save {}: {e}", path.display()),
    }
}
