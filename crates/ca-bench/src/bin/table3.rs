//! Table III: QR GFlop/s for square matrices on the (simulated) 8-core
//! Intel machine. Columns: MKL_dgeqrf, PLASMA_dgeqrf, CAQR with
//! Tr = 1, 2, 4, 8 (b = 100, height-1 tree as reported in the paper).

use ca_bench::figures::{finish, sweep, Contender};
use ca_bench::{Algo, Cli, MachineModel, Series};
use ca_core::TreeShape;

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let sizes: Vec<usize> =
        if cli.quick { vec![1000, 3000] } else { vec![1000, 2000, 3000, 4000, 5000] };
    let sizes: Vec<usize> = sizes.iter().map(|&s| ((s as f64 * cli.scale) as usize).max(200)).collect();
    let cores = cli.cores.unwrap_or(8);
    let machine = MachineModel::new(cores, cli.calibration());

    let mut contenders = vec![
        Contender::new("MKL_dgeqrf", |_| Algo::BlockedQr { nb: 64 }),
        Contender::new("PLASMA_dgeqrf", |_| Algo::TiledQr { b: 100 }),
    ];
    for tr in [1usize, 2, 4, 8] {
        contenders.push(Contender::new(format!("CAQR(Tr={tr})"), move |_| Algo::Caqr {
            b: 100,
            tr,
            tree: TreeShape::Flat,
        }));
    }

    let mode = if cli.measured { "measured" } else { format!("simulated {cores}-core").leak() as &str };
    let mut series = Series::new(
        format!("Table III — QR of square matrices ({mode}); GFlop/s"),
        "m=n",
        sizes,
    );
    sweep(&mut series, |s| s, |s| s, &contenders, &cli, &machine);
    finish(series, &cli, "table3");
}
