//! GEMM kernel sweep: the packed BLIS-style kernel against the retained
//! pre-BLIS AXPY baseline (`ca_kernels::gemm_axpy`), plus the
//! scheduler-parallel `par_gemm` decomposition and the single-precision
//! (`f32`) series, in GFlop/s at paper-relevant shapes — square
//! trailing-update blocks and the tall panel-update shape. Writes
//! `BENCH_gemm.json` under `--out` (default `results/`), the before/after
//! record the kernel-tuning methodology in DESIGN.md §10 calls for.
//!
//! Flags: `--quick` (shrink the sweep for smoke tests), `--out DIR`.

use ca_kernels::{flops, gemm, gemm_axpy, gemm_backend, par_gemm, Trans};
use ca_matrix::{seeded_rng, Matrix};
use serde_json::json;
use std::time::Instant;

/// Times `f` over enough repetitions to fill ~0.3 s, returns best seconds.
/// Best-of (not mean) with a floor of 5 reps: the host may be a shared VM
/// and a single CPU-steal episode must not poison a row.
fn time_best(mut f: impl FnMut()) -> f64 {
    f(); // warm-up: populates packing buffers, faults pages
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut reps = 0;
    while (spent < 0.3 || reps < 5) && reps < 20 {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        reps += 1;
    }
    best
}

fn main() {
    let cli = ca_bench::Cli::parse(std::env::args().skip(1));
    let shapes: &[(usize, usize, usize)] = if cli.quick {
        &[(256, 256, 256), (512, 512, 512), (2000, 256, 100)]
    } else {
        &[(256, 256, 256), (512, 512, 512), (1024, 1024, 1024), (2000, 2000, 100), (8000, 100, 100)]
    };

    // At least 2 so the decomposed path (pack tasks + per-slab tiles) is
    // always what gets measured, even on single-CPU CI hosts.
    let workers = std::thread::available_parallelism().map_or(2, |p| p.get()).clamp(2, 8);
    println!("GEMM kernel sweep — backend: {}, par workers: {workers}", gemm_backend());
    println!(
        "{:>6} {:>6} {:>6}  {:>12} {:>12} {:>9} {:>10} {:>10}",
        "m", "n", "k", "packed GF/s", "axpy GF/s", "speedup", "par GF/s", "f32 GF/s"
    );

    let mut rows = Vec::new();
    let mut speedup_1024 = None;
    for &(m, n, k) in shapes {
        let mut rng = seeded_rng((m * 31 + n * 7 + k) as u64);
        let a = ca_matrix::random_uniform(m, k, &mut rng);
        let b = ca_matrix::random_uniform(k, n, &mut rng);
        let a32 = Matrix::<f32>::from_f64(&a);
        let b32 = Matrix::<f32>::from_f64(&b);
        let mut c = Matrix::zeros(m, n);
        let mut c32 = Matrix::<f32>::zeros(m, n);
        let fl = flops::gemm(m, n, k);

        let t_packed = time_best(|| {
            gemm(Trans::No, Trans::No, -1.0, a.view(), b.view(), 1.0, c.view_mut())
        });
        let t_axpy = time_best(|| {
            gemm_axpy(Trans::No, Trans::No, -1.0, a.view(), b.view(), 1.0, c.view_mut())
        });
        let t_par = time_best(|| {
            par_gemm(workers, Trans::No, Trans::No, -1.0, a.view(), b.view(), 1.0, c.view_mut())
        });
        let t_f32 = time_best(|| {
            gemm(Trans::No, Trans::No, -1.0f32, a32.view(), b32.view(), 1.0, c32.view_mut())
        });

        let gf_packed = fl / t_packed / 1e9;
        let gf_axpy = fl / t_axpy / 1e9;
        let gf_par = fl / t_par / 1e9;
        let gf_f32 = fl / t_f32 / 1e9;
        let speedup = gf_packed / gf_axpy;
        println!(
            "{m:>6} {n:>6} {k:>6}  {gf_packed:>12.2} {gf_axpy:>12.2} {speedup:>8.2}x {gf_par:>10.2} {gf_f32:>10.2}"
        );
        if (m, n, k) == (1024, 1024, 1024) {
            speedup_1024 = Some(speedup);
        }
        rows.push(json!({
            "m": m as f64, "n": n as f64, "k": k as f64,
            "packed_gflops": gf_packed,
            "axpy_gflops": gf_axpy,
            "speedup": speedup,
            "par_gflops": gf_par,
            "f32_gflops": gf_f32,
        }));
    }

    // The vendored json! macro is non-recursive: compose nested objects.
    let blocking = json!({
        "MR": ca_kernels::MR as f64, "NR": ca_kernels::NR as f64,
        "MC": ca_kernels::MC as f64, "KC": ca_kernels::KC as f64,
        "NC": ca_kernels::NC as f64,
    });
    let report = json!({
        "bench": "gemm_sweep",
        "backend": gemm_backend(),
        "threads": 1.0,
        "par_workers": workers as f64,
        "blocking": blocking,
        "shapes": rows,
        "speedup_1024_cubed": speedup_1024.unwrap_or(0.0),
    });

    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
        return;
    }
    let path = cli.out.join("BENCH_gemm.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable")) {
        Ok(()) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save {}: {e}", path.display()),
    }
}
