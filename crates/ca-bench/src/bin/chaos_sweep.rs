//! Chaos drill for the recovery tier: a mixed LU/QR workload replayed
//! through the service under seeded fault injection at a sweep of per-task
//! failure rates, with panic and silent-corruption rates held at the
//! acceptance profile (0.5% panics, 0.1% corruption).
//!
//! For every rate the drill checks the two acceptance gates:
//!
//! 1. **survival** — every submitted job completes (task replay plus
//!    job-level resubmission absorb all injected faults), and every
//!    completed result is bitwise identical to the fault-free sequential
//!    reference;
//! 2. **overhead** — wall-clock cost of the recovery tier versus the plain
//!    service (no retry wrappers, no probe, no chaos) stays bounded; the
//!    headline number is the overhead at a 1% fault rate.
//!
//! Writes `results/BENCH_chaos.json`. Flags: `--quick` (shrink sizes),
//! `--threads W`, `--out DIR`.

use ca_core::CaParams;
use ca_matrix::{random_uniform, seeded_rng, Matrix};
use ca_serve::{
    AdmissionPolicy, ChaosConfig, ChaosProfile, JobHandle, RetryConfig, Service,
    ServiceConfig, SubmitOptions,
};
use serde_json::json;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Lu,
    Qr,
}

/// One request of the synthetic trace, with its fault-free reference.
struct Req {
    kind: Kind,
    a: Matrix,
    p: CaParams,
    reference: Vec<f64>,
}

/// Mixed trace: `n` uniform-size jobs alternating LU/QR, each carrying its
/// sequential-reference factors for the bitwise check. Uniform sizes keep
/// every job an equal share of total work, so the overhead measurement is
/// not dominated by whether an injected corruption happens to land on an
/// outsized job (a corruption-triggered rerun costs ~1/n, not ~1/3).
fn trace(n: usize, dim: usize, b: usize) -> Vec<Req> {
    let mut rng = seeded_rng(0xC405);
    (0..n)
        .map(|i| {
            let kind = if i % 2 == 0 { Kind::Lu } else { Kind::Qr };
            let a = random_uniform(dim, dim, &mut rng);
            let p = CaParams::new(b.min(dim), 4, 1);
            let reference = match kind {
                Kind::Lu => ca_core::calu_seq_factor(a.clone(), &p).lu.as_slice().to_vec(),
                Kind::Qr => ca_core::caqr_seq(a.clone(), &p).a.as_slice().to_vec(),
            };
            Req { kind, a, p, reference }
        })
        .collect()
}

struct RunOutcome {
    wall_s: f64,
    deviations: usize,
    stats: ca_serve::ServiceStats,
}

/// Replays the trace through a service built by `cfg`, waits for every
/// handle, and counts results that deviate from the fault-free reference.
fn run(reqs: &[Req], cfg: ServiceConfig) -> RunOutcome {
    let svc = Service::new(cfg);
    enum Handle {
        Lu(JobHandle<ca_core::LuFactors>),
        Qr(JobHandle<ca_core::QrFactors>),
    }
    let t0 = Instant::now();
    let handles: Vec<Handle> = reqs
        .iter()
        .map(|r| {
            let opts = SubmitOptions::default().with_params(r.p).unbatched();
            match r.kind {
                Kind::Lu => Handle::Lu(svc.submit_lu(r.a.clone(), opts).expect("admitted")),
                Kind::Qr => Handle::Qr(svc.submit_qr(r.a.clone(), opts).expect("admitted")),
            }
        })
        .collect();
    let mut deviations = 0usize;
    for (h, r) in handles.into_iter().zip(reqs) {
        let out = match h {
            Handle::Lu(h) => h.wait().expect("job survives chaos").lu.as_slice().to_vec(),
            Handle::Qr(h) => h.wait().expect("job survives chaos").a.as_slice().to_vec(),
        };
        if out != r.reference {
            deviations += 1;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = svc.stats();
    svc.shutdown();
    RunOutcome { wall_s, deviations, stats }
}

fn base_cfg(workers: usize, capacity: usize) -> ServiceConfig {
    ServiceConfig::new(workers)
        .with_capacity(capacity)
        .with_admission(AdmissionPolicy::Block)
}

fn main() {
    let cli = ca_bench::Cli::parse(std::env::args().skip(1));
    let workers = cli.threads;
    let (njobs, dim, b) = if cli.quick { (12, 64, 32) } else { (32, 256, 64) };
    println!(
        "chaos_sweep — {njobs} jobs ({dim}²), {workers} worker(s), host parallelism {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let reqs = trace(njobs, dim, b);
    let capacity = njobs.max(4);

    // Retry budgets sized so budget exhaustion is out of the picture at the
    // swept rates: 3 task replays absorb almost everything, 10 fresh-seeded
    // job resubmissions mop up the rest.
    let retry = RetryConfig::default().with_job_retries(10);
    const RATES: [f64; 4] = [0.0, 0.01, 0.02, 0.05];
    let chaos_cfg = |fail_rate: f64| {
        let profile = ChaosProfile::quiet()
            .with_fail_rate(fail_rate)
            .with_panic_rate(0.005)
            .with_corrupt_rate(0.001);
        base_cfg(workers, capacity)
            .with_retry(retry)
            .with_chaos(ChaosConfig::seeded(0xD1CE).with_profile(profile))
    };

    // Min-of-3 with the configurations interleaved round-robin: on a noisy
    // shared host a CPU-steal burst then inflates one pass of every config
    // instead of silently skewing the plain/chaos ratio.
    const PASSES: usize = 3;
    let mut plain_s = f64::INFINITY;
    let mut chaos_runs: Vec<Option<RunOutcome>> = RATES.iter().map(|_| None).collect();
    for pass in 0..PASSES {
        let p = run(&reqs, base_cfg(workers, capacity));
        assert_eq!(p.deviations, 0, "fault-free service must match the reference");
        plain_s = plain_s.min(p.wall_s);
        for (slot, &rate) in chaos_runs.iter_mut().zip(&RATES) {
            let mut r = run(&reqs, chaos_cfg(rate));
            // Chaos seeds are fixed, so every pass injects identically and
            // the recovery counters agree; keep the fastest wall time.
            if let Some(prev) = slot.take() {
                r.wall_s = r.wall_s.min(prev.wall_s);
            }
            *slot = Some(r);
        }
        let _ = pass;
    }
    println!("  plain service: {plain_s:.3}s (min of {PASSES})");

    let mut rows = Vec::new();
    let mut gates_ok = true;
    for (r1, &fail_rate) in chaos_runs.iter().flatten().zip(&RATES) {
        let wall_s = r1.wall_s;
        let s = &r1.stats;
        let completed_rate = s.completed as f64 / njobs as f64;
        let overhead = wall_s / plain_s - 1.0;
        let t = &s.task_recovery;
        println!(
            "  fail {fail_rate:>5.2}: {wall_s:.3}s  overhead {:+6.1}%  completed {}/{njobs}  \
             deviations {}  task retries {} (exhausted {})  job retries {}  probe hits {}  \
             injected f/p/c {}/{}/{}",
            overhead * 100.0,
            s.completed,
            r1.deviations,
            t.retries,
            t.exhausted_tasks,
            s.job_retries,
            s.corruption_detected,
            t.injected_failures,
            t.injected_panics,
            t.injected_corruptions,
        );
        let survived = completed_rate == 1.0 && r1.deviations == 0;
        if !survived {
            gates_ok = false;
            eprintln!("  GATE FAIL: jobs lost or results deviated at rate {fail_rate}");
        }
        rows.push(json!({
            "fail_rate": fail_rate,
            "panic_rate": 0.005,
            "corrupt_rate": 0.001,
            "wall_s": wall_s,
            "overhead_vs_plain": overhead,
            "completed": s.completed as f64,
            "completed_rate": completed_rate,
            "bitwise_deviations": r1.deviations as f64,
            "task_attempts": t.attempts as f64,
            "task_retries": t.retries as f64,
            "tasks_recovered": t.recovered_tasks as f64,
            "tasks_exhausted": t.exhausted_tasks as f64,
            "snapshot_restores": t.restores as f64,
            "job_retries": s.job_retries as f64,
            "jobs_recovered": s.jobs_recovered as f64,
            "corruption_detected": s.corruption_detected as f64,
            "probes_run": s.probes_run as f64,
            "injected_failures": t.injected_failures as f64,
            "injected_panics": t.injected_panics as f64,
            "injected_corruptions": t.injected_corruptions as f64,
            "mttr_p50_ms": s.mttr.p50_s * 1e3,
            "survived": if survived { 1.0 } else { 0.0 },
        }));
    }
    let overhead_at_1pct = rows
        .iter()
        .find(|r| r["fail_rate"] == 0.01)
        .map(|r| r["overhead_vs_plain"].as_f64().unwrap_or(f64::NAN))
        .unwrap_or(f64::NAN);
    println!(
        "gates: survival {}  overhead@1% {:+.1}% (target ≤ +25%)",
        if gates_ok { "PASS" } else { "FAIL" },
        overhead_at_1pct * 100.0
    );

    let report = json!({
        "bench": "chaos_sweep",
        "jobs": njobs as f64,
        "workers": workers as f64,
        "host_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()) as f64,
        "quick": if cli.quick { 1.0 } else { 0.0 },
        "plain_service_s": plain_s,
        "note": "overhead_vs_plain at fail_rate 0 isolates the cost of the recovery \
                 machinery itself (write-set snapshots, panic guards, integrity probes); \
                 higher rates add the replayed work. survival gate: every job completes \
                 and every result is bitwise identical to the fault-free reference.",
        "overhead_at_1pct": overhead_at_1pct,
        "survival_gate": if gates_ok { 1.0 } else { 0.0 },
        "rates": rows,
    });
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
        return;
    }
    let path = cli.out.join("BENCH_chaos.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable")) {
        Ok(()) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save {}: {e}", path.display()),
    }
    if !gates_ok {
        std::process::exit(1);
    }
}
