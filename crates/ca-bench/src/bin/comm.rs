//! Communication counts (distributed-memory model): the §II optimality
//! claim, quantified from this workspace's actual reduction schedules.
//!
//! Prints, for the paper's panel shapes, critical-path messages and words of
//! TSLU (binary/flat tree) vs the ScaLAPACK-style partial-pivoting panel,
//! and α-β-γ timings on three network profiles.

use ca_bench::comm::{full_lu, gepp_panel, tslu_panel, tsqr_panel};
use ca_core::TreeShape;

fn main() {
    let b = 100usize;
    let m = 1_000_000usize;

    println!("== Panel communication, m=10^6, b=100 (critical path)");
    println!(
        "{:>6} {:>16} {:>12} | {:>14} {:>12} | {:>14} {:>12}",
        "P", "GEPP msgs", "words", "TSLU(bin) msgs", "words", "TSLU(flat) msgs", "words"
    );
    for p in [4usize, 16, 64, 256] {
        let g = gepp_panel(m, b, p);
        let tb = tslu_panel(m, b, p, TreeShape::Binary);
        let tf = tslu_panel(m, b, p, TreeShape::Flat);
        println!(
            "{p:>6} {:>16.0} {:>12.1e} | {:>14.0} {:>12.1e} | {:>14.0} {:>12.1e}",
            g.messages, g.words, tb.messages, tb.words, tf.messages, tf.words
        );
    }

    println!("\n== α-β-γ panel time, P=64 (α latency, β=1/bandwidth, γ=1/flop-rate)");
    println!("{:>22} {:>12} {:>12} {:>12}", "network", "GEPP (s)", "TSLU (s)", "speedup");
    for (name, alpha, beta, gamma) in [
        ("low-latency SMP", 1e-7, 1e-10, 2e-10),
        ("commodity cluster", 1e-5, 1e-9, 2e-10),
        ("high-latency WAN", 1e-3, 1e-8, 2e-10),
    ] {
        let g = gepp_panel(m, b, 64).time(alpha, beta, gamma);
        let t = tslu_panel(m, b, 64, TreeShape::Binary).time(alpha, beta, gamma);
        println!("{name:>22} {g:>12.4} {t:>12.4} {:>12.1}x", g / t);
    }

    println!("\n== Whole LU (m=10^5, n=10^4, b=100): total messages");
    for p in [16usize, 64] {
        let ca = full_lu(100_000, 10_000, b, p, Some(TreeShape::Binary));
        let pp = full_lu(100_000, 10_000, b, p, None);
        println!(
            "  P={p:<4} CALU {:>10.0} msgs / {:.2e} words   PDGETRF-style {:>10.0} msgs / {:.2e} words   ({:.0}x fewer messages)",
            ca.messages, ca.words, pp.messages, pp.words, pp.messages / ca.messages
        );
    }

    println!("\n== TSQR panel messages (m=10^6, b=100)");
    for p in [4usize, 16, 64] {
        let q = tsqr_panel(m, b, p, TreeShape::Binary);
        println!("  P={p:<4} {:>4.0} messages, {:.2e} words", q.messages, q.words);
    }
    println!("\n(The binary tree sends Θ(log P) messages per panel — the optimal count;");
    println!(" partial pivoting needs Θ(b·log P): one reduction per column.)");
}
