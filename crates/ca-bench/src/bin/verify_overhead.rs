//! Overhead gate for rect-granularity static verification: the same CALU
//! and tiled-LU graphs verified at block granularity (whole-tile conflict
//! enumeration, PR 3) and at rect granularity (element-exact enumeration
//! over the region algebra), comparing wall clock.
//!
//! The acceptance gate is **rect ≤ 3× block** at the full problem size
//! (1024², b = 64): the happens-before closure dominates both modes, and
//! the per-cell rect bucketing only adds intersection tests on the cells a
//! pair actually shares.
//!
//! Writes `results/BENCH_verify.json`. Flags: `--quick` (shrink sizes),
//! `--out DIR`.

use ca_core::CaParams;
use ca_sched::{verify_graph_with, Granularity, VerifyOptions};
use serde_json::json;
use std::time::Instant;

/// Min-of-N wall clock of one verification closure.
fn time_verify(passes: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..passes {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let cli = ca_bench::Cli::parse(std::env::args().skip(1));
    let (dim, b) = if cli.quick { (256, 32) } else { (1024, 64) };
    let passes = if cli.quick { 3 } else { 5 };
    let p = CaParams::new(b, 4, 4);

    let (calu_g, calu_access) = ca_core::calu_task_graph_with_access(dim, dim, &p);
    let (tiled_g, tiled_access) = ca_baselines::tiled_lu_task_graph_with_access(dim, dim, b);
    println!(
        "verify_overhead — CALU {dim}² b={b} ({} tasks) + tiled LU ({} tasks), min of {passes}",
        calu_g.len(),
        tiled_g.len()
    );

    let opts_of = |granularity| VerifyOptions { granularity, ..Default::default() };
    // The gate compares the two enumeration modes on the same graph (CALU);
    // the tiled baseline has no block-mode counterpart (the block view
    // cannot express its diagonal-tile split), so its rect time is reported
    // separately, ungated.
    let block = time_verify(passes, || {
        verify_graph_with(&calu_g, &calu_access, &opts_of(Granularity::Block)).expect("sound");
    });
    let rect = time_verify(passes, || {
        verify_graph_with(&calu_g, &calu_access, &opts_of(Granularity::Rect)).expect("sound");
    });
    let tiled_rect = time_verify(passes, || {
        verify_graph_with(&tiled_g, &tiled_access, &opts_of(Granularity::Rect)).expect("sound");
    });
    let lint = time_verify(passes, || {
        let opts = VerifyOptions { granularity: Granularity::Rect, lint_edges: true };
        verify_graph_with(&calu_g, &calu_access, &opts).expect("sound");
    });

    let ratio = rect / block;
    const GATE: f64 = 3.0;
    println!(
        "  block {block:.4}s  rect {rect:.4}s (ratio {ratio:.2}, gate ≤ {GATE:.0}×)  \
         rect+lint {lint:.4}s  tiled-LU rect {tiled_rect:.4}s"
    );
    let gate_ok = ratio <= GATE;

    let report = json!({
        "bench": "verify_overhead",
        "dim": dim,
        "b": b,
        "quick": if cli.quick { 1 } else { 0 },
        "passes": passes,
        "calu_tasks": calu_g.len(),
        "tiled_tasks": tiled_g.len(),
        "block_s": block,
        "rect_s": rect,
        "rect_lint_s": lint,
        "tiled_rect_s": tiled_rect,
        "ratio": ratio,
        "gate": GATE,
        "note": "block = PR 3 whole-tile conflict enumeration on CALU; rect = \
                 element-exact enumeration on the same graph; rect+lint adds the \
                 minimality passes; tiled_rect = the tiled-LU baseline the rect \
                 mode newly covers (no block counterpart, ungated). min-of-N; \
                 gate rect ≤ 3× block at 1024².",
        "gate_pass": if gate_ok { 1 } else { 0 },
    });
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
        return;
    }
    let path = cli.out.join("BENCH_verify.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable")) {
        Ok(()) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save {}: {e}", path.display()),
    }
    if !gate_ok {
        eprintln!("GATE FAIL: rect verification {ratio:.2}× block exceeds {GATE:.0}×");
        std::process::exit(1);
    }
}
