//! Figure 8: QR GFlop/s on the (simulated) 8-core Intel machine for
//! tall-and-skinny matrices, m = 10^5, n ∈ {10 … 1000}.
//! Contenders: TSQR (binary tree), CAQR (Tr = 4, height-1 tree — the
//! configuration the paper reports), MKL_dgeqrf, MKL_dgeqr2, PLASMA_dgeqrf.

use ca_bench::figures::{finish, sweep, Contender};
use ca_bench::{paper_b, Algo, Cli, MachineModel, Series};
use ca_core::TreeShape;

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let m = ((1e5 * cli.scale) as usize).max(2000);
    let ns: Vec<usize> =
        if cli.quick { vec![10, 100, 500] } else { vec![10, 25, 50, 100, 150, 200, 500, 1000] };
    let cores = cli.cores.unwrap_or(8);
    let machine = MachineModel::new(cores, cli.calibration());

    let contenders = [
        Contender::new("TSQR", |_| Algo::Tsqr { tr: 8, tree: TreeShape::Binary }),
        Contender::new("CAQR(Tr=4)", |n| Algo::Caqr { b: paper_b(n), tr: 4, tree: TreeShape::Flat }),
        Contender::new("MKL_dgeqrf", |_| Algo::BlockedQr { nb: 64 }),
        Contender::new("MKL_dgeqr2", |_| Algo::Blas2Qr),
        Contender::new("PLASMA_dgeqrf", |n| Algo::TiledQr { b: paper_b(n) }),
    ];

    let mode = if cli.measured { "measured" } else { format!("simulated {cores}-core").leak() as &str };
    let mut series = Series::new(
        format!("Figure 8 — QR of tall-skinny m={m}, varying n ({mode}); GFlop/s"),
        "n",
        ns,
    );
    sweep(&mut series, |_| m, |n| n, &contenders, &cli, &machine);
    finish(series, &cli, "fig8");
}
