//! Overhead gate for the always-on telemetry tier: the same LU/QR workload
//! replayed through a plain service and through one with full telemetry
//! enabled (metric registry with per-tenant series, periodic Prometheus
//! exposition, per-worker flight recorder), comparing wall clock.
//!
//! The acceptance gate is **overhead ≤ 2%** at the full problem size
//! (1024²): every hot-path update is a relaxed atomic and the exposition
//! thread only wakes on its own interval, so instrumentation must be noise
//! next to the factorization itself.
//!
//! Writes `results/BENCH_telemetry.json`. Flags: `--quick` (shrink sizes),
//! `--threads W`, `--out DIR`.

use ca_core::CaParams;
use ca_matrix::{random_uniform, seeded_rng, Matrix};
use ca_serve::{
    AdmissionPolicy, JobHandle, Service, ServiceConfig, SubmitOptions, TelemetryConfig,
};
use serde_json::json;
use std::time::{Duration, Instant};

/// Mixed trace: alternating LU/QR jobs of uniform size, each tagged with a
/// round-robin tenant so the instrumented run exercises per-tenant series.
fn trace(n: usize, dim: usize, b: usize) -> Vec<(bool, Matrix, CaParams, String)> {
    let mut rng = seeded_rng(0x7E1E);
    (0..n)
        .map(|i| {
            let a = random_uniform(dim, dim, &mut rng);
            let p = CaParams::new(b.min(dim), 4, 1);
            (i % 2 == 0, a, p, format!("tenant-{}", i % 3))
        })
        .collect()
}

/// Replays the trace and returns the wall-clock seconds from first submit
/// to last completion.
fn run(reqs: &[(bool, Matrix, CaParams, String)], cfg: ServiceConfig) -> f64 {
    let svc = Service::new(cfg);
    enum Handle {
        Lu(JobHandle<ca_core::LuFactors>),
        Qr(JobHandle<ca_core::QrFactors>),
    }
    let t0 = Instant::now();
    let handles: Vec<Handle> = reqs
        .iter()
        .map(|(is_lu, a, p, tenant)| {
            let opts =
                SubmitOptions::default().with_params(*p).unbatched().with_tenant(tenant.as_str());
            if *is_lu {
                Handle::Lu(svc.submit_lu(a.clone(), opts).expect("admitted"))
            } else {
                Handle::Qr(svc.submit_qr(a.clone(), opts).expect("admitted"))
            }
        })
        .collect();
    for h in handles {
        match h {
            Handle::Lu(h) => drop(h.wait().expect("completes")),
            Handle::Qr(h) => drop(h.wait().expect("completes")),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    svc.shutdown();
    wall_s
}

fn main() {
    let cli = ca_bench::Cli::parse(std::env::args().skip(1));
    let workers = cli.threads;
    let (njobs, dim, b) = if cli.quick { (8, 256, 64) } else { (4, 1024, 128) };
    println!(
        "telemetry_overhead — {njobs} jobs ({dim}²), {workers} worker(s), host parallelism {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let reqs = trace(njobs, dim, b);
    let capacity = njobs.max(4);

    let base = || {
        ServiceConfig::new(workers)
            .with_capacity(capacity)
            .with_admission(AdmissionPolicy::Block)
    };
    // Full telemetry at the shipped defaults: registry + per-tenant series +
    // flight recorder + 500ms Prometheus exposition writing real files.
    let metrics_path =
        std::env::temp_dir().join(format!("ca-telemetry-overhead-{}.prom", std::process::id()));
    let instrumented = || {
        base().with_telemetry(
            TelemetryConfig::default()
                .with_metrics_file(&metrics_path)
                .with_interval(Duration::from_millis(500))
                .with_flight_recorder(256),
        )
    };

    // Min-of-N with the two configurations interleaved, so a CPU-steal burst
    // on a noisy host inflates one pass of both instead of skewing the ratio.
    let passes = if cli.quick { 3 } else { 5 };
    let mut plain_s = f64::INFINITY;
    let mut instr_s = f64::INFINITY;
    for pass in 0..passes {
        let p = run(&reqs, base());
        let i = run(&reqs, instrumented());
        plain_s = plain_s.min(p);
        instr_s = instr_s.min(i);
        println!("  pass {pass}: plain {p:.3}s  instrumented {i:.3}s");
    }
    let overhead = instr_s / plain_s - 1.0;
    const GATE: f64 = 0.02;
    println!(
        "  plain {plain_s:.3}s  instrumented {instr_s:.3}s (min of {passes})  \
         overhead {:+.2}% (gate ≤ +{:.0}%)",
        overhead * 100.0,
        GATE * 100.0
    );

    // Sanity: an instrumented service must actually expose the per-tenant
    // families the gate is paying for.
    let svc = Service::new(instrumented());
    let (is_lu, a, p, tenant) = &reqs[0];
    let opts = SubmitOptions::default().with_params(*p).unbatched().with_tenant(tenant.as_str());
    if *is_lu {
        drop(svc.submit_lu(a.clone(), opts).expect("admitted").wait().expect("completes"));
    } else {
        drop(svc.submit_qr(a.clone(), opts).expect("admitted").wait().expect("completes"));
    }
    let snap = svc.metrics_snapshot().expect("telemetry configured");
    svc.shutdown();
    let families = snap.families.len();
    let has_tenant_series = snap
        .families
        .iter()
        .any(|f| {
            f.name == "ca_serve_jobs_completed_total"
                && f.series.iter().any(|s| s.labels.iter().any(|(k, _)| k == "tenant"))
        });
    println!("  snapshot: {families} metric families, per-tenant series {}",
        if has_tenant_series { "present" } else { "MISSING" });
    let _ = std::fs::remove_file(&metrics_path);
    let _ = std::fs::remove_file(metrics_path.with_extension("prom.json"));

    let gate_ok = overhead <= GATE && has_tenant_series;
    let report = json!({
        "bench": "telemetry_overhead",
        "jobs": njobs as f64,
        "dim": dim as f64,
        "workers": workers as f64,
        "host_parallelism": std::thread::available_parallelism().map_or(1, |n| n.get()) as f64,
        "quick": if cli.quick { 1.0 } else { 0.0 },
        "passes": passes as f64,
        "plain_s": plain_s,
        "instrumented_s": instr_s,
        "overhead": overhead,
        "gate": GATE,
        "metric_families": families as f64,
        "per_tenant_series": if has_tenant_series { 1.0 } else { 0.0 },
        "note": "instrumented = metric registry with per-tenant series + default 500ms \
                 Prometheus exposition to a real file + 256-deep per-worker flight \
                 recorder. min-of-N interleaved passes; overhead gate ≤ 2% at full size.",
        "gate_pass": if gate_ok { 1.0 } else { 0.0 },
    });
    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("warning: could not create {}: {e}", cli.out.display());
        return;
    }
    let path = cli.out.join("BENCH_telemetry.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&report).expect("serializable")) {
        Ok(()) => println!("saved {}", path.display()),
        Err(e) => eprintln!("warning: could not save {}: {e}", path.display()),
    }
    if !gate_ok {
        eprintln!("GATE FAIL: telemetry overhead {:+.2}% exceeds +{:.0}%", overhead * 100.0, GATE * 100.0);
        std::process::exit(1);
    }
}
