//! Figures 1–4: the CALU task DAG and Gantt-style execution traces.
//!
//! Subcommands (first positional argument):
//! * `dag`  — Figure 1: task dependency graph of CALU on a 4×4-block
//!   matrix, Tr = 2, as Graphviz DOT on stdout.
//! * `fig2` — Figure 2: simulated schedule of that DAG on 4 cores.
//! * `fig3` — Figure 3: CALU trace, 10^5×1000 (scalable), b = 100, Tr = 1,
//!   8 simulated cores — panel idle time visible.
//! * `fig4` — Figure 4: same with Tr = 8 — idle time gone.
//! * `all`  — everything in order.

use ca_bench::{Cli, MachineModel};
use ca_core::{calu_task_graph, CaParams};
use ca_sched::{ascii_gantt, chrome_trace_json};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sub = if !args.is_empty() && !args[0].starts_with("--") {
        args.remove(0)
    } else {
        "all".to_string()
    };
    let cli = Cli::parse(args.into_iter());
    let calib = cli.calibration();

    let dag = || {
        // 4×4 block matrix (Figure 1): 4 blocks of b=50, Tr=2.
        let p = CaParams::new(50, 2, 4);
        let g = calu_task_graph(200, 200, &p);
        println!("// Figure 1 — CALU task DAG, 4x4 blocks, Tr=2 ({} tasks)", g.len());
        println!("{}", g.to_dot());
    };
    let fig2 = || {
        let p = CaParams::new(50, 2, 4);
        let g = calu_task_graph(200, 200, &p);
        let machine = MachineModel::new(4, calib.clone());
        let tl = machine.run(&g);
        println!("Figure 2 — schedule of the 4x4-block CALU DAG on 4 cores");
        println!("{}", ascii_gantt(&tl, 96));
    };
    let trace = |tr: usize, name: &str| {
        let m = ((1e5 * cli.scale) as usize).max(4000);
        let p = CaParams::new(100, tr, 8);
        let g = calu_task_graph(m, 1000.min(m), &p);
        let machine = MachineModel::new(cli.cores.unwrap_or(8), calib.clone());
        let tl = machine.run(&g);
        println!("{name} — CALU trace, {m}x1000, b=100, Tr={tr}, 8 simulated cores");
        println!("(P = panel/tournament, L = L-block, U = U-row, S = update, . = idle)");
        println!("{}", ascii_gantt(&tl, 110));
        let stem = name.to_lowercase().replace(' ', "");
        if std::fs::create_dir_all(&cli.out).is_ok() {
            let path = cli.out.join(format!("{stem}_trace.json"));
            if std::fs::write(&path, chrome_trace_json(&tl)).is_ok() {
                println!("(chrome://tracing JSON written to {})", path.display());
            }
        }
        let by = tl.busy_by_kind();
        for (k, t) in by {
            if t > 0.0 {
                println!("  {:?}: {:.4}s", k, t);
            }
        }
        // The numeric version of the Fig 3 vs Fig 4 contrast: with Tr = 1
        // panels wait on the full trailing update (large panel wait); with
        // lookahead (Tr = 8 splits the update so the next panel's column
        // block finishes first) the wait collapses.
        let metrics = machine.profile(&g).metrics();
        println!(
            "  utilization {:.1}%, scheduling efficiency {:.1}% (critical path {:.4}s, makespan {:.4}s)",
            100.0 * metrics.utilization,
            100.0 * metrics.efficiency,
            metrics.critical_path_seconds,
            metrics.makespan
        );
        let la = &metrics.lookahead;
        if la.panel_steps > 0 {
            println!(
                "  lookahead: {} panel steps, panel wait mean {:.4}s / max {:.4}s (total {:.4}s, worst step {})",
                la.panel_steps, la.mean_wait, la.max_wait, la.total_wait, la.worst_step
            );
        }
        println!();
    };

    match sub.as_str() {
        "dag" => dag(),
        "fig2" => fig2(),
        "fig3" => trace(1, "Figure 3"),
        "fig4" => trace(8, "Figure 4"),
        "all" => {
            dag();
            fig2();
            trace(1, "Figure 3");
            trace(8, "Figure 4");
        }
        other => {
            eprintln!("unknown subcommand {other}; use dag|fig2|fig3|fig4|all");
            std::process::exit(2);
        }
    }
}
