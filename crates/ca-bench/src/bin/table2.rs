//! Table II: LU GFlop/s for square matrices on the (simulated) 16-core AMD
//! machine. Columns: ACML_dgetrf, PLASMA_dgetrf, CALU with
//! Tr = 1, 2, 4, 8, 16 (b = 100).

use ca_bench::figures::{finish, sweep, Contender};
use ca_bench::{Algo, Cli, MachineModel, Series};
use ca_core::TreeShape;

fn main() {
    let cli = Cli::parse(std::env::args().skip(1));
    let sizes: Vec<usize> =
        if cli.quick { vec![1000, 3000] } else { vec![1000, 2000, 3000, 4000, 5000] };
    let sizes: Vec<usize> = sizes.iter().map(|&s| ((s as f64 * cli.scale) as usize).max(200)).collect();
    let cores = cli.cores.unwrap_or(16);
    let machine = MachineModel::new(cores, cli.calibration());

    let mut contenders = vec![
        Contender::new("ACML_dgetrf", |_| Algo::BlockedLu { nb: 64 }),
        Contender::new("PLASMA_dgetrf", |_| Algo::TiledLu { b: 100 }),
    ];
    for tr in [1usize, 2, 4, 8, 16] {
        contenders.push(Contender::new(format!("CALU(Tr={tr})"), move |_| Algo::Calu {
            b: 100,
            tr,
            tree: TreeShape::Binary,
        }));
    }

    let mode = if cli.measured { "measured" } else { format!("simulated {cores}-core").leak() as &str };
    let mut series = Series::new(
        format!("Table II — LU of square matrices ({mode}); GFlop/s"),
        "m=n",
        sizes,
    );
    sweep(&mut series, |s| s, |s| s, &contenders, &cli, &machine);
    finish(series, &cli, "table2");
}
