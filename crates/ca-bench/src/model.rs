//! The simulated multicore machine: P cores, calibrated kernel throughputs,
//! a roofline memory model (per-task time is the max of the compute time
//! and the memory-traffic time — the communication CA algorithms minimize),
//! and a fixed per-task scheduling overhead (the paper: "for a too large
//! number of tasks, the time spent in the scheduling can become
//! significant").

use crate::calibrate::Calibration;
use ca_sched::{profile_simulate, simulate, FaultPlan, Profile, TaskGraph, Timeline};

/// A virtual multicore machine for replaying factorization task graphs.
#[derive(Clone, Debug)]
pub struct MachineModel {
    /// Number of cores.
    pub cores: usize,
    /// Per-kernel-class throughputs.
    pub calib: Calibration,
    /// Fixed scheduling/dispatch overhead added to every task (seconds).
    pub task_overhead: f64,
    /// Per-core effective memory bandwidth divisor: with `P` cores sharing
    /// a memory system, each sees `calib.bandwidth / bandwidth_share`.
    /// `1.0` (default) models a per-core-private bandwidth (optimistic);
    /// raise it toward `P / memory_channels` to model contention.
    pub bandwidth_share: f64,
}

impl MachineModel {
    /// A machine with `cores` cores and the given calibration; overhead
    /// defaults to 2 µs per task (measured dispatch cost of the `ca-sched`
    /// pool is of this order).
    pub fn new(cores: usize, calib: Calibration) -> Self {
        Self { cores, calib, task_overhead: 2e-6, bandwidth_share: 1.0 }
    }

    /// Per-task duration under the roofline model.
    fn task_seconds(&self, meta: &ca_sched::TaskMeta) -> f64 {
        let compute = meta.flops / self.calib.flops_per_sec(meta.class);
        let memory = meta.bytes / (self.calib.bandwidth / self.bandwidth_share);
        compute.max(memory) + self.task_overhead
    }

    /// Replays a task graph; returns the full timeline.
    pub fn run<T>(&self, graph: &TaskGraph<T>) -> Timeline {
        simulate(graph, self.cores, |_, meta| self.task_seconds(meta))
    }

    /// Replays a task graph on the profiled simulator; returns the full
    /// [`Profile`] (exact lifecycle records in simulated seconds — lookahead
    /// metric, critical-path efficiency, roofline attribution). Same
    /// schedule as [`MachineModel::run`], and fully deterministic.
    pub fn profile<T>(&self, graph: &TaskGraph<T>) -> Profile {
        let (profile, failure) =
            profile_simulate(graph, self.cores, |_, meta| self.task_seconds(meta), &FaultPlan::new());
        debug_assert!(failure.is_none(), "no faults injected");
        profile
    }

    /// Replays a task graph and converts to GFlop/s using the *useful*
    /// (LAPACK-convention) flop count, as the paper does.
    pub fn gflops<T>(&self, graph: &TaskGraph<T>, useful_flops: f64) -> f64 {
        let tl = self.run(graph);
        useful_flops / tl.makespan / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::CaParams;

    #[test]
    fn more_cores_never_slower() {
        let calib = Calibration::reference();
        let p = CaParams::new(50, 4, 4);
        let g = ca_core::calu_task_graph(2000, 400, &p);
        let t1 = MachineModel::new(1, calib.clone()).run(&g).makespan;
        let t4 = MachineModel::new(4, calib.clone()).run(&g).makespan;
        let t8 = MachineModel::new(8, calib).run(&g).makespan;
        assert!(t4 <= t1 * 1.0001);
        assert!(t8 <= t4 * 1.0001);
        assert!(t4 < t1 * 0.6, "4 cores should give real speedup: {t4} vs {t1}");
    }

    #[test]
    fn calu_beats_blas2_panel_on_tall_skinny_model() {
        // The headline effect: on a tall-skinny matrix, CALU's parallel
        // recursive panel must beat the blocked algorithm's sequential
        // BLAS2 panel on the simulated 8-core machine.
        let calib = Calibration::reference();
        let m = 50_000;
        let n = 100;
        let machine = MachineModel::new(8, calib);
        let p = CaParams::new(100, 8, 8);
        let g_calu = ca_core::calu_task_graph(m, n, &p);
        let g_blocked = ca_baselines::getrf_blocked_task_graph(m, n, 64, 8);
        let useful = ca_kernels::flops::getrf(m, n);
        let gf_calu = machine.gflops(&g_calu, useful);
        let gf_blocked = machine.gflops(&g_blocked, useful);
        assert!(
            gf_calu > 1.5 * gf_blocked,
            "CALU {gf_calu} GF vs blocked {gf_blocked} GF — expected a clear win"
        );
    }

    #[test]
    fn roofline_makes_memory_bound_tasks_slower() {
        use ca_sched::{KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta};
        let calib = Calibration::reference(); // 8 GB/s, 0.8 GF/s LuBlas2
        let machine = MachineModel::new(1, calib);
        // Two tasks with identical flops; one streams far more bytes.
        let mut g: TaskGraph<()> = TaskGraph::new();
        let lean = TaskMeta::new(TaskLabel::new(TaskKind::Panel, 0, 0, 0), 1e9)
            .with_bytes(1e6)
            .with_class(KernelClass::LuBlas2);
        let fat = TaskMeta::new(TaskLabel::new(TaskKind::Panel, 1, 0, 0), 1e9)
            .with_bytes(64e9)
            .with_class(KernelClass::LuBlas2);
        let a = g.add_task(lean, ());
        let b = g.add_task(fat, ());
        g.add_dep(a, b);
        let tl = machine.run(&g);
        let spans: Vec<_> = tl.lanes[0].iter().map(|s| s.end - s.start).collect();
        // lean: 1e9 / 0.8e9 = 1.25 s (compute-bound);
        // fat:  64e9 / 8e9 = 8 s (bandwidth-bound).
        assert!((spans[0] - 1.25).abs() < 0.01, "lean {}", spans[0]);
        assert!((spans[1] - 8.0).abs() < 0.1, "fat {}", spans[1]);
        // Contention knob scales the memory-bound task only.
        let mut contended = MachineModel::new(1, Calibration::reference());
        contended.bandwidth_share = 4.0;
        let tl2 = contended.run(&g);
        let s2: Vec<_> = tl2.lanes[0].iter().map(|s| s.end - s.start).collect();
        assert!((s2[0] - 1.25).abs() < 0.01);
        assert!((s2[1] - 32.0).abs() < 0.5);
    }

    #[test]
    fn blas2_panel_is_bandwidth_limited_in_calu_vs_blocked() {
        // With traffic estimates wired in, the blocked algorithm's BLAS2
        // panel hits the bandwidth roof on tall panels, widening the CALU
        // gap — the "communication" story made quantitative.
        let calib = Calibration::reference();
        let machine = MachineModel::new(8, calib);
        let p = ca_core::CaParams::new(100, 8, 8);
        let g_calu = ca_core::calu_task_graph(50_000, 100, &p);
        let g_blk = ca_baselines::getrf_blocked_task_graph(50_000, 100, 64, 8);
        let useful = ca_kernels::flops::getrf(50_000, 100);
        let r = machine.gflops(&g_calu, useful) / machine.gflops(&g_blk, useful);
        assert!(r > 2.0, "CALU/blocked ratio {r}");
    }

    #[test]
    fn overhead_hurts_fine_granularity() {
        let calib = Calibration::reference();
        let p = CaParams::new(20, 8, 8); // tiny tasks
        let g = ca_core::calu_task_graph(2000, 400, &p);
        let mut m1 = MachineModel::new(8, calib.clone());
        m1.task_overhead = 0.0;
        let mut m2 = MachineModel::new(8, calib);
        m2.task_overhead = 1e-3; // absurd overhead
        assert!(m2.run(&g).makespan > 2.0 * m1.run(&g).makespan);
    }
}
