//! Uniform access to every contender in the paper's evaluation, in both
//! modes: *simulated* (task graph replayed on the virtual machine) and
//! *measured* (real factorization timed on this host).

use crate::model::MachineModel;
use ca_core::{CaParams, TreeShape};
use ca_kernels::flops;
use ca_matrix::{seeded_rng, Matrix};
use ca_sched::{KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta};
use std::time::Instant;

/// A factorization algorithm with its tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// Multithreaded CALU (the paper's contribution).
    Calu {
        /// Panel width.
        b: usize,
        /// Panel tasks.
        tr: usize,
        /// Reduction tree.
        tree: TreeShape,
    },
    /// LAPACK-style blocked LU — the `MKL_dgetrf`/`ACML_dgetrf` stand-in.
    BlockedLu {
        /// Panel width.
        nb: usize,
    },
    /// Pure BLAS2 LU (`MKL_dgetf2`).
    Blas2Lu,
    /// PLASMA-style tiled LU with incremental pivoting (`PLASMA_dgetrf`).
    TiledLu {
        /// Tile size.
        b: usize,
    },
    /// Multithreaded CAQR.
    Caqr {
        /// Panel width.
        b: usize,
        /// Panel tasks.
        tr: usize,
        /// Reduction tree.
        tree: TreeShape,
    },
    /// Standalone TSQR (single panel of width `n`).
    Tsqr {
        /// Panel tasks.
        tr: usize,
        /// Reduction tree.
        tree: TreeShape,
    },
    /// LAPACK-style blocked QR (`MKL_dgeqrf`).
    BlockedQr {
        /// Panel width.
        nb: usize,
    },
    /// Pure BLAS2 QR (`MKL_dgeqr2`).
    Blas2Qr,
    /// PLASMA-style tiled QR (`PLASMA_dgeqrf`).
    TiledQr {
        /// Tile size.
        b: usize,
    },
}

impl Algo {
    /// `true` for LU-family algorithms (affects the useful-flop count).
    pub fn is_lu(&self) -> bool {
        matches!(
            self,
            Algo::Calu { .. } | Algo::BlockedLu { .. } | Algo::Blas2Lu | Algo::TiledLu { .. }
        )
    }

    /// Useful flops for the GFlop/s convention (LAPACK counts, as in the
    /// paper — redundant CA/tiled flops are *not* credited).
    pub fn useful_flops(&self, m: usize, n: usize) -> f64 {
        if self.is_lu() {
            flops::getrf(m, n.min(m))
        } else {
            flops::geqrf(m, n.min(m))
        }
    }

    /// Builds the algorithm's task graph for the simulator (`cores` sets
    /// the strip count of the vendor baselines' parallel updates).
    pub fn task_graph(&self, m: usize, n: usize, cores: usize) -> TaskGraph<()> {
        match *self {
            Algo::Calu { b, tr, tree } => {
                let mut p = CaParams::new(b.min(n.max(1)), tr, cores);
                p.tree = tree;
                ca_core::calu_task_graph(m, n, &p).map(|_, _| ())
            }
            Algo::Caqr { b, tr, tree } => {
                let mut p = CaParams::new(b.min(n.max(1)), tr, cores);
                p.tree = tree;
                ca_core::caqr_task_graph(m, n, &p).map(|_, _| ())
            }
            Algo::Tsqr { tr, tree } => {
                let mut p = CaParams::new(n.max(1), tr, cores);
                p.tree = tree;
                ca_core::caqr_task_graph(m, n, &p).map(|_, _| ())
            }
            Algo::BlockedLu { nb } => {
                ca_baselines::getrf_blocked_task_graph(m, n, nb.min(n.max(1)), cores)
            }
            Algo::BlockedQr { nb } => {
                ca_baselines::geqrf_blocked_task_graph(m, n, nb.min(n.max(1)), cores)
            }
            Algo::TiledLu { b } => {
                ca_baselines::tiled_lu_task_graph(m, n, b.min(n.max(1))).map(|_, _| ())
            }
            Algo::TiledQr { b } => {
                ca_baselines::tiled_qr_task_graph(m, n, b.min(n.max(1))).map(|_, _| ())
            }
            Algo::Blas2Lu => single_task_graph(
                flops::getrf(m, n.min(m)),
                ca_kernels::traffic::getf2(m, n.min(m)),
                KernelClass::LuBlas2,
            ),
            Algo::Blas2Qr => single_task_graph(
                flops::geqrf(m, n.min(m)),
                ca_kernels::traffic::geqr2(m, n.min(m)),
                KernelClass::QrBlas2,
            ),
        }
    }

    /// Simulated GFlop/s on `machine`.
    pub fn sim_gflops(&self, m: usize, n: usize, machine: &MachineModel) -> f64 {
        let g = self.task_graph(m, n, machine.cores);
        machine.gflops(&g, self.useful_flops(m, n))
    }

    /// Wall-clock run on this host with `threads` workers; returns GFlop/s.
    pub fn measured_gflops(&self, m: usize, n: usize, threads: usize, seed: u64) -> f64 {
        let a = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let useful = self.useful_flops(m, n);
        let secs = self.run_once(a, threads);
        useful / secs / 1e9
    }

    /// Runs the real factorization once, returning elapsed seconds.
    pub fn run_once(&self, a: Matrix, threads: usize) -> f64 {
        let n = a.ncols();
        let t0 = Instant::now();
        match *self {
            Algo::Calu { b, tr, tree } => {
                let mut p = CaParams::new(b.min(n.max(1)), tr, threads);
                p.tree = tree;
                std::hint::black_box(ca_core::calu(a, &p));
            }
            Algo::Caqr { b, tr, tree } => {
                let mut p = CaParams::new(b.min(n.max(1)), tr, threads);
                p.tree = tree;
                std::hint::black_box(ca_core::caqr(a, &p));
            }
            Algo::Tsqr { tr, tree } => {
                let mut p = CaParams::new(n.max(1), tr, threads);
                p.tree = tree;
                std::hint::black_box(ca_core::caqr(a, &p));
            }
            Algo::BlockedLu { nb } => {
                let mut a = a;
                std::hint::black_box(ca_baselines::getrf_blocked(&mut a, nb.min(n.max(1)), threads));
            }
            Algo::BlockedQr { nb } => {
                let mut a = a;
                std::hint::black_box(ca_baselines::geqrf_blocked(&mut a, nb.min(n.max(1)), threads));
            }
            Algo::TiledLu { b } => {
                std::hint::black_box(ca_baselines::tiled_lu(a, b.min(n.max(1)), threads));
            }
            Algo::TiledQr { b } => {
                std::hint::black_box(ca_baselines::tiled_qr(a, b.min(n.max(1)), threads));
            }
            Algo::Blas2Lu => {
                let mut a = a;
                std::hint::black_box(ca_kernels::getf2(a.view_mut()));
            }
            Algo::Blas2Qr => {
                let mut a = a;
                let mut tau = Vec::new();
                ca_kernels::geqr2(a.view_mut(), &mut tau);
                std::hint::black_box(tau.len());
            }
        }
        t0.elapsed().as_secs_f64()
    }
}

fn single_task_graph(fl: f64, bytes: f64, class: KernelClass) -> TaskGraph<()> {
    let mut g = TaskGraph::new();
    g.add_task(
        TaskMeta::new(TaskLabel::new(TaskKind::Panel, 0, 0, 0), fl)
            .with_bytes(bytes)
            .with_class(class),
        (),
    );
    g
}

/// The paper's tall-and-skinny `b = min(n, 100)` convention.
pub fn paper_b(n: usize) -> usize {
    n.clamp(1, 100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::Calibration;

    #[test]
    fn all_lu_graphs_build_and_validate() {
        for algo in [
            Algo::Calu { b: 50, tr: 4, tree: TreeShape::Binary },
            Algo::BlockedLu { nb: 32 },
            Algo::Blas2Lu,
            Algo::TiledLu { b: 50 },
        ] {
            let g = algo.task_graph(500, 200, 8);
            g.validate();
            assert!(g.total_flops() > 0.0, "{algo:?}");
        }
    }

    #[test]
    fn all_qr_graphs_build_and_validate() {
        for algo in [
            Algo::Caqr { b: 50, tr: 4, tree: TreeShape::Flat },
            Algo::Tsqr { tr: 4, tree: TreeShape::Binary },
            Algo::BlockedQr { nb: 32 },
            Algo::Blas2Qr,
            Algo::TiledQr { b: 50 },
        ] {
            let g = algo.task_graph(500, 200, 8);
            g.validate();
            assert!(g.total_flops() > 0.0, "{algo:?}");
        }
    }

    #[test]
    fn sim_gflops_positive_and_bounded() {
        let machine = MachineModel::new(8, Calibration::reference());
        for algo in [
            Algo::Calu { b: 100, tr: 8, tree: TreeShape::Binary },
            Algo::BlockedLu { nb: 64 },
            Algo::Blas2Lu,
        ] {
            let gf = algo.sim_gflops(10_000, 100, &machine);
            assert!(gf > 0.0 && gf < 8.0 * 5.0, "{algo:?}: {gf}");
        }
    }

    #[test]
    fn measured_mode_runs_small_cases() {
        for algo in [
            Algo::Calu { b: 16, tr: 2, tree: TreeShape::Binary },
            Algo::BlockedLu { nb: 16 },
            Algo::TiledLu { b: 16 },
            Algo::Caqr { b: 16, tr: 2, tree: TreeShape::Flat },
            Algo::TiledQr { b: 16 },
        ] {
            let gf = algo.measured_gflops(64, 48, 2, 42);
            assert!(gf > 0.0, "{algo:?}");
        }
    }
}
