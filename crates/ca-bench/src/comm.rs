//! Distributed-memory communication model for the panel factorizations —
//! the §II claim behind the whole CA family: with a binary reduction tree
//! TSLU/TSQR are optimal in the number of messages exchanged, while the
//! classic partial-pivoting panel needs one synchronization **per column**.
//!
//! Counts are derived from this workspace's actual reduction schedules
//! (`ca_core::tree::reduction_schedule`), not closed forms, and evaluated
//! under the standard α-β-γ model:
//! `time = α·messages + β·words + γ·flops` along the critical path.

use ca_core::tree::reduction_schedule;
use ca_core::TreeShape;
use ca_kernels::flops;

/// Critical-path communication/computation counts for one panel
/// factorization distributed over `p` processors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCounts {
    /// Messages on the critical path.
    pub messages: f64,
    /// Words moved on the critical path.
    pub words: f64,
    /// Flops on the critical path.
    pub flops: f64,
}

impl CommCounts {
    /// Evaluates the α-β-γ model.
    pub fn time(&self, alpha: f64, beta: f64, gamma: f64) -> f64 {
        alpha * self.messages + beta * self.words + gamma * self.flops
    }
}

/// Depth of a reduction schedule in levels, and the maximum participants of
/// any node along the deepest path (both drive the critical path).
fn schedule_depth(g: usize, tree: TreeShape) -> Vec<usize> {
    // participants-per-level along the critical path (slot 0's path).
    reduction_schedule(g, tree)
        .into_iter()
        .filter(|n| n.participants[0] == 0)
        .map(|n| n.participants.len())
        .collect()
}

/// TSLU panel communication: an `m × b` panel over `p` processors.
///
/// Leaves run GEPP locally (no communication); every reduction node on the
/// critical path costs **one message** of `b × b` words (the loser's
/// candidate block travels to the winner) and a GEPP of the stacked
/// candidates. The final pivoted panel factorization adds local flops only
/// (the pivot rows are broadcast: one more message of `b²` words per level
/// of the broadcast tree — counted as `log2 p` messages).
pub fn tslu_panel(m: usize, b: usize, p: usize, tree: TreeShape) -> CommCounts {
    let local_rows = m.div_ceil(p);
    let mut messages = 0.0;
    let mut words = 0.0;
    let mut fl = flops::getrf(local_rows, b); // leaf GEPP
    for participants in schedule_depth(p, tree) {
        // (participants − 1) blocks arrive; arrivals are concurrent, so one
        // message latency per level, but all words cross the link.
        messages += 1.0;
        words += ((participants - 1) * b * b) as f64;
        fl += flops::getrf(participants * b, b);
    }
    // Broadcast of the b chosen pivot rows back down the tree.
    let bcast_levels = (p as f64).log2().ceil().max(0.0);
    messages += bcast_levels;
    words += bcast_levels * (b * b) as f64;
    // Local panel factorization with known pivots.
    fl += flops::trsm_right(local_rows, b);
    CommCounts { messages, words, flops: fl }
}

/// TSQR panel: same tree structure; nodes exchange `b × b` `R` factors and
/// pay a stacked QR each.
pub fn tsqr_panel(m: usize, b: usize, p: usize, tree: TreeShape) -> CommCounts {
    let local_rows = m.div_ceil(p);
    let mut messages = 0.0;
    let mut words = 0.0;
    let mut fl = flops::geqrf(local_rows, b);
    for participants in schedule_depth(p, tree) {
        messages += 1.0;
        words += ((participants - 1) * b * (b + 1) / 2) as f64;
        fl += flops::geqrf(participants * b, b);
    }
    CommCounts { messages, words, flops: fl }
}

/// Classic partial-pivoting panel (ScaLAPACK `pdgetf2` structure): every
/// one of the `b` columns needs a max-reduction and a pivot-row broadcast
/// over `p` processors — `2·b·ceil(log2 p)` messages of `O(b)` words —
/// before the rank-1 update proceeds.
pub fn gepp_panel(m: usize, b: usize, p: usize) -> CommCounts {
    let local_rows = m.div_ceil(p);
    let levels = (p as f64).log2().ceil().max(0.0);
    let messages = 2.0 * b as f64 * levels;
    // Reduction carries (value, index); broadcast carries the pivot row of
    // the active block (up to b words).
    let words = b as f64 * levels * (2.0 + b as f64);
    let fl = flops::getrf(local_rows, b);
    CommCounts { messages, words, flops: fl }
}

/// Full factorization estimate: panel counts summed over the `n/b` panels,
/// plus the broadcast of each `U` block row for the update (one message of
/// `b·n_r` words per panel, pipelined across the trailing columns).
pub fn full_lu(
    m: usize,
    n: usize,
    b: usize,
    p: usize,
    tree: Option<TreeShape>, // None = partial-pivoting panel
) -> CommCounts {
    let mut total = CommCounts { messages: 0.0, words: 0.0, flops: 0.0 };
    let nsteps = m.min(n).div_ceil(b);
    for step in 0..nsteps {
        let rows = m - step * b;
        let w = b.min(m.min(n) - step * b);
        let panel = match tree {
            Some(t) => tslu_panel(rows, w, p, t),
            None => gepp_panel(rows, w, p),
        };
        total.messages += panel.messages;
        total.words += panel.words;
        total.flops += panel.flops;
        // Trailing update: broadcast L panel + U row, local gemm.
        let nr = n.saturating_sub((step + 1) * b);
        if nr > 0 {
            let levels = (p as f64).log2().ceil().max(0.0);
            total.messages += levels;
            total.words += (w * nr) as f64;
            total.flops += flops::gemm(rows.div_ceil(p), nr, w);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tslu_sends_log_p_messages_binary() {
        // The headline: O(log2 p) messages per panel vs 2·b·log2 p for GEPP.
        let c = tslu_panel(100_000, 100, 16, TreeShape::Binary);
        // 4 reduce levels + 4 broadcast levels.
        assert_eq!(c.messages, 8.0);
        let g = gepp_panel(100_000, 100, 16);
        assert_eq!(g.messages, 2.0 * 100.0 * 4.0);
        assert!(g.messages / c.messages > 50.0);
    }

    #[test]
    fn flat_tree_minimizes_messages_but_not_critical_flops() {
        let flat = tslu_panel(100_000, 100, 16, TreeShape::Flat);
        let bin = tslu_panel(100_000, 100, 16, TreeShape::Binary);
        assert!(flat.messages < bin.messages);
        // Flat root factors a 16b × b stack serially: more CP flops.
        assert!(flat.flops > bin.flops);
    }

    #[test]
    fn latency_dominated_network_prefers_ca_pivoting() {
        // α large (a high-latency interconnect, the regime CALU targets):
        // 2·b·log2(p) messages at 100 µs each swamp GEPP's panel, while
        // TSLU pays ~log2(p) latencies plus some redundant flops.
        let (alpha, beta, gamma) = (1e-4, 1e-9, 1e-10);
        let ca = tslu_panel(1_000_000, 100, 64, TreeShape::Binary).time(alpha, beta, gamma);
        let pp = gepp_panel(1_000_000, 100, 64).time(alpha, beta, gamma);
        assert!(pp / ca > 2.0, "GEPP {pp} vs TSLU {ca}");
        // On a zero-latency machine the ordering flips: TSLU's redundant
        // tournament flops are pure overhead.
        let ca0 = tslu_panel(1_000_000, 100, 64, TreeShape::Binary).time(0.0, 0.0, gamma);
        let pp0 = gepp_panel(1_000_000, 100, 64).time(0.0, 0.0, gamma);
        assert!(ca0 > pp0);
    }

    #[test]
    fn full_lu_message_ratio_matches_theory() {
        // Over the whole factorization: CALU sends Θ((n/b)·log p) panel
        // messages, PDGETRF Θ(n·log p): ratio ≈ b/…
        let (m, n, b, p) = (100_000, 10_000, 100, 16);
        let ca = full_lu(m, n, b, p, Some(TreeShape::Binary));
        let pp = full_lu(m, n, b, p, None);
        assert!(pp.messages / ca.messages > 10.0, "ratio {}", pp.messages / ca.messages);
        // Words moved are comparable (same asymptotic volume).
        assert!(pp.words / ca.words < 4.0 && ca.words / pp.words < 4.0);
    }

    #[test]
    fn tsqr_counts_mirror_tslu_structure() {
        let q = tsqr_panel(100_000, 100, 8, TreeShape::Binary);
        assert_eq!(q.messages, 3.0); // 3 reduce levels, no pivot broadcast
        assert!(q.flops > 0.0 && q.words > 0.0);
    }

    #[test]
    fn single_processor_needs_no_messages() {
        let c = tslu_panel(10_000, 100, 1, TreeShape::Binary);
        assert_eq!(c.messages, 0.0);
        assert_eq!(c.words, 0.0);
    }
}
