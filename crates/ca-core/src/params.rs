//! Algorithm parameters and the row partitioning shared by every component.
//!
//! The paper's two tuning knobs are the panel width `b` and the number of
//! panel tasks `Tr` (threads cooperating on one panel). At iteration `K`,
//! the active rows (from the panel's diagonal down) are divided into at most
//! `Tr` contiguous groups of whole `b`-blocks — Algorithm 1 lines 5–7.

/// Which runtime executes the task graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Centralized priority queue with the lookahead rule (the paper's
    /// dynamic scheduler).
    PriorityQueue,
    /// Work stealing (Cilk-style): depth-first locality, no global
    /// priorities — the runtime the paper's approach is an alternative to.
    WorkStealing,
}

/// Shape of the reduction tree used by TSLU/TSQR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeShape {
    /// Binary tree of height `log2(Tr)`: optimal parallel communication.
    Binary,
    /// Tree of height 1: all `Tr` candidate sets reduce in a single node.
    /// The paper finds this "an efficient alternative" on shared memory.
    Flat,
    /// `k`-ary tree: every node merges up to `k` children (the paper's §II
    /// "generalization to any reduction tree"; `Kary(2) == Binary`).
    Kary(usize),
    /// Flat reduction over groups of `flat_width` leaves at the first
    /// level, binary above — the tree of Hadri et al. (LAWN 222) that the
    /// paper's conclusion discusses.
    Hybrid {
        /// Leaves merged per first-level node.
        flat_width: usize,
    },
}

/// Parameters of multithreaded CALU / CAQR.
#[derive(Clone, Copy, Debug)]
pub struct CaParams {
    /// Panel (block) width `b`.
    pub b: usize,
    /// Number of panel tasks `Tr` — leaf blocks per panel.
    pub tr: usize,
    /// Reduction tree shape.
    pub tree: TreeShape,
    /// Number of worker threads for the parallel executor.
    pub threads: usize,
    /// Whether the scheduler applies the lookahead-of-1 priority rule.
    pub lookahead: bool,
    /// Which runtime executes the graph.
    pub scheduler: Scheduler,
    /// Use the BLAS2 `getf2` kernel inside TSLU tournament nodes instead of
    /// the recursive `rgetf2` the paper recommends (ablation knob; QR leaves
    /// always use the recursive kernel when tall).
    pub leaf_blas2: bool,
    /// Trailing-update task width in **block columns** (the paper's §V
    /// future-work parameter `B = update_blocks · b`): each `U`/`S` task
    /// covers this many panels' worth of columns, reducing task count and
    /// improving BLAS3 granularity at some loss of parallel slack. `1`
    /// reproduces the published algorithm.
    pub update_blocks: usize,
    /// Minimum trailing-update height (rows) at which a group's `S` task is
    /// decomposed into the scheduler-parallel GEMM sub-DAG (pack-A per slab,
    /// pack-B per panel, one packed-tile multiply per slab × panel — the
    /// BLIS cache loops as graph tasks). Groups below the threshold keep the
    /// single monolithic `dgemm` task; `usize::MAX` disables decomposition
    /// entirely. Both paths are bitwise identical, so this is purely a task
    /// granularity knob.
    pub par_update_rows: usize,
    /// Ceiling on the per-panel element-growth estimate
    /// `max|L_KK\U_KK| / max|panel input|`. When a tournament's winner
    /// exceeds it, the panel is refactored with plain partial pivoting
    /// (GEPP) over all active rows and the fallback is recorded in
    /// [`crate::LuFactors`] stats. The default `f64::INFINITY` disables
    /// monitoring (the paper's algorithm verbatim); the `try_*` entry
    /// points substitute [`crate::DEFAULT_GROWTH_LIMIT`] when the limit is
    /// left infinite.
    pub growth_limit: f64,
}

impl CaParams {
    /// Parameters with the paper's defaults: binary tree, lookahead on.
    pub fn new(b: usize, tr: usize, threads: usize) -> Self {
        assert!(b > 0, "panel width must be positive");
        assert!(tr > 0, "need at least one panel task");
        assert!(threads > 0, "need at least one thread");
        Self {
            b,
            tr,
            tree: TreeShape::Binary,
            threads,
            lookahead: true,
            scheduler: Scheduler::PriorityQueue,
            leaf_blas2: false,
            update_blocks: 1,
            par_update_rows: 2 * ca_kernels::MC,
            growth_limit: f64::INFINITY,
        }
    }

    /// Switches to a flat (height-1) reduction tree.
    pub fn with_flat_tree(mut self) -> Self {
        self.tree = TreeShape::Flat;
        self
    }

    /// Disables the lookahead priority rule (ablation).
    pub fn without_lookahead(mut self) -> Self {
        self.lookahead = false;
        self
    }

    /// Switches execution to the work-stealing runtime (ablation).
    pub fn with_work_stealing(mut self) -> Self {
        self.scheduler = Scheduler::WorkStealing;
        self
    }

    /// Switches TSLU tournament nodes to the BLAS2 `getf2` kernel
    /// (ablation: the paper's recursive-kernel advantage).
    pub fn with_blas2_leaves(mut self) -> Self {
        self.leaf_blas2 = true;
        self
    }

    /// Sets the trailing-update width to `blocks` block columns
    /// (`B = blocks · b`, the paper's §V two-level blocking).
    pub fn with_update_blocking(mut self, blocks: usize) -> Self {
        assert!(blocks > 0, "update width must be positive");
        self.update_blocks = blocks;
        self
    }

    /// Sets the trailing-update decomposition threshold (see
    /// [`CaParams::par_update_rows`]); `usize::MAX` disables the sub-DAG.
    pub fn with_par_update_rows(mut self, rows: usize) -> Self {
        assert!(rows > 0, "decomposition threshold must be positive");
        self.par_update_rows = rows;
        self
    }

    /// Enables growth monitoring with the given per-panel ceiling (see
    /// [`CaParams::growth_limit`]). `NaN` limits are rejected.
    pub fn with_growth_limit(mut self, limit: f64) -> Self {
        assert!(!limit.is_nan(), "growth limit must not be NaN");
        self.growth_limit = limit;
        self
    }

    /// The paper's tall-and-skinny default: `b = min(n, 100)`.
    pub fn paper_default(n: usize, tr: usize, threads: usize) -> Self {
        Self::new(n.clamp(1, 100), tr, threads)
    }
}

/// The row partitioning of the active matrix at one panel iteration.
///
/// All units are *rows* (not blocks); groups always start at multiples of
/// `b` relative to the panel start, and only the final group can be ragged
/// when `m` is not a multiple of `b`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowPartition {
    /// First active row (the panel's diagonal row).
    pub start: usize,
    /// One-past-last row (`m`).
    pub end: usize,
    /// Group boundaries: group `i` spans rows `bounds[i]..bounds[i+1]`.
    pub bounds: Vec<usize>,
}

impl RowPartition {
    /// Number of groups (≤ `Tr`).
    pub fn ngroups(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Row range of group `i`.
    pub fn group(&self, i: usize) -> core::ops::Range<usize> {
        self.bounds[i]..self.bounds[i + 1]
    }

    /// Number of rows in group `i`.
    pub fn group_rows(&self, i: usize) -> usize {
        self.bounds[i + 1] - self.bounds[i]
    }
}

/// Partitions rows `start..m` into at most `tr` groups of whole `b`-blocks,
/// following Algorithm 1: each group gets `ceil(active_blocks / tr)` block
/// rows; the last block may be ragged if `b` does not divide `m`.
///
/// # Panics
/// If `start >= m`.
pub fn partition_rows(m: usize, start: usize, b: usize, tr: usize) -> RowPartition {
    assert!(start < m, "no active rows: start {start} >= m {m}");
    // Active block rows, counting a ragged final block.
    let active_blocks = (m - start).div_ceil(b);
    let per_group = active_blocks.div_ceil(tr);
    let mut bounds = vec![start];
    let mut row = start;
    while row < m {
        row = (row + per_group * b).min(m);
        bounds.push(row);
    }
    RowPartition { start, end: m, bounds }
}

/// Number of `b`-wide column panels a `m × n` factorization iterates over
/// (`min(m, n)` columns get factored).
pub fn num_panels(m: usize, n: usize, b: usize) -> usize {
    m.min(n).div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let p = partition_rows(800, 0, 100, 4);
        assert_eq!(p.ngroups(), 4);
        assert_eq!(p.group(0), 0..200);
        assert_eq!(p.group(3), 600..800);
    }

    #[test]
    fn partition_with_offset_and_raggedness() {
        // m = 750, start = 100 (after one panel), b = 100: 7 active blocks
        // (6 full + 1 of 50 rows), tr = 4 -> 2 blocks per group.
        let p = partition_rows(750, 100, 100, 4);
        assert_eq!(p.ngroups(), 4);
        assert_eq!(p.group(0), 100..300);
        assert_eq!(p.group(1), 300..500);
        assert_eq!(p.group(2), 500..700);
        assert_eq!(p.group(3), 700..750);
    }

    #[test]
    fn fewer_groups_than_tr_when_matrix_is_short() {
        let p = partition_rows(250, 0, 100, 8);
        // 3 blocks, 8 groups requested -> 1 block per group, 3 groups.
        assert_eq!(p.ngroups(), 3);
        assert_eq!(p.group(2), 200..250);
    }

    #[test]
    fn single_group_tr1() {
        let p = partition_rows(1000, 300, 100, 1);
        assert_eq!(p.ngroups(), 1);
        assert_eq!(p.group(0), 300..1000);
    }

    #[test]
    fn groups_cover_active_rows_exactly() {
        for &(m, start, b, tr) in
            &[(103, 0, 10, 4), (1000, 450, 37, 7), (64, 32, 32, 16), (99, 98, 100, 3)]
        {
            let p = partition_rows(m, start, b, tr);
            assert_eq!(p.bounds[0], start);
            assert_eq!(*p.bounds.last().unwrap(), m);
            assert!(p.ngroups() <= tr);
            for i in 0..p.ngroups() {
                assert!(p.group_rows(i) > 0, "empty group {i} for {m},{start},{b},{tr}");
            }
        }
    }

    #[test]
    fn num_panels_counts_min_dimension() {
        assert_eq!(num_panels(1000, 250, 100), 3);
        assert_eq!(num_panels(250, 1000, 100), 3);
        assert_eq!(num_panels(100, 100, 100), 1);
        assert_eq!(num_panels(101, 101, 100), 2);
    }

    #[test]
    fn paper_default_caps_block_size() {
        let p = CaParams::paper_default(1000, 8, 8);
        assert_eq!(p.b, 100);
        let p = CaParams::paper_default(10, 8, 8);
        assert_eq!(p.b, 10);
    }

    #[test]
    #[should_panic(expected = "no active rows")]
    fn empty_partition_rejected() {
        partition_rows(100, 100, 10, 2);
    }
}
