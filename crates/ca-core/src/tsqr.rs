//! TSQR: the tall-skinny QR panel factorization.
//!
//! One CAQR panel (Algorithm 2) consists of:
//! * **leaf QR** of each row group, in place — Householder vectors stay in
//!   the matrix below the diagonal of the group, the compact-WY `T` factor
//!   is kept aside ([`LeafQ`]);
//! * **tree nodes** stacking the participants' `R` factors and refactoring
//!   them; the stacked reflectors and `T` live in per-node scratch
//!   ([`NodeQ`]), the new `R` is written back into the first participant's
//!   top block;
//! * **updates**: every leaf/node `Q` must also hit the trailing columns
//!   (tasks S of Algorithm 2, lines 11 and 26) — and, later, any matrix the
//!   caller applies `Q`/`Qᵀ` to.
//!
//! All operations work through [`SharedMatrix`] block views so the exact
//! same code runs sequentially, inside the task-parallel executor, and in
//! the `Q`-replay of [`crate::QrFactors`].

use crate::params::RowPartition;
use crate::tree::{reduction_schedule, ReduceNode};
use crate::params::TreeShape;
use ca_kernels::{geqr2, geqr3, larfb_left, larfb_left_multi, larft, Kernel, Trans};
use ca_matrix::{Matrix, Scalar, SharedMatrix};
use core::ops::Range;

/// Q-representation of one leaf QR: the reflectors live in the factored
/// matrix itself (below the diagonal of the group's panel block).
#[derive(Clone, Debug)]
pub struct LeafQ<T: Scalar = f64> {
    /// Global row range of the group.
    pub rows: Range<usize>,
    /// Number of reflectors: `min(rows.len(), panel width)`.
    pub kv: usize,
    /// Compact-WY factor (`kv × kv`, upper triangular).
    pub t: Matrix<T>,
}

/// Q-representation of one reduction node: reflectors of the stacked-`R` QR.
#[derive(Clone, Debug)]
pub struct NodeQ<T: Scalar = f64> {
    /// Global row ranges the node's stacked rows come from. `row_ranges[0]`
    /// has length `kk` (the reflector count); the rest are the other
    /// participants' `R` row blocks.
    pub row_ranges: Vec<Range<usize>>,
    /// Packed stacked factorization (`sum(len) × w`): `R` on top, `V` below.
    pub v: Matrix<T>,
    /// Compact-WY factor (`kk × kk`).
    pub t: Matrix<T>,
    /// Number of reflectors: `min(total stacked rows, w)`.
    pub kk: usize,
}

/// Q-representation of a whole panel.
#[derive(Clone, Debug)]
pub struct PanelQ<T: Scalar = f64> {
    /// Panel diagonal row (= panel column start for square grids).
    pub k0: usize,
    /// Panel column start.
    pub c0: usize,
    /// Panel width.
    pub w: usize,
    /// Reflector count of the final `R` (`min(active rows, w)`).
    pub k: usize,
    /// Per-group leaf factorizations.
    pub leaves: Vec<LeafQ<T>>,
    /// Tree nodes in execution order.
    pub nodes: Vec<NodeQ<T>>,
}

/// Static plan of a panel's tree: row ranges for every node, computed from
/// the partition alone (no data needed) so the DAG builder, the sequential
/// path and the executor all agree.
#[derive(Clone, Debug)]
pub struct NodePlan {
    /// Tree level (for tracing).
    pub level: usize,
    /// Participant slots.
    pub participants: Vec<usize>,
    /// Stacked row ranges (see [`NodeQ::row_ranges`]).
    pub row_ranges: Vec<Range<usize>>,
    /// Reflector count of this node.
    pub kk: usize,
}

/// Plans the reduction for a partition: per-leaf reflector counts and the
/// per-node stacked row ranges.
pub fn plan_panel(part: &RowPartition, w: usize, tree: TreeShape) -> (Vec<usize>, Vec<NodePlan>) {
    let g = part.ngroups();
    let mut slot_k: Vec<usize> = (0..g).map(|i| part.group_rows(i).min(w)).collect();
    let leaf_k = slot_k.clone();
    let mut plans = Vec::new();
    for ReduceNode { level, participants } in reduction_schedule(g, tree) {
        let mut row_ranges = Vec::with_capacity(participants.len());
        let mut total = 0usize;
        for &p in &participants {
            let start = part.group(p).start;
            row_ranges.push(start..start + slot_k[p]);
            total += slot_k[p];
        }
        let kk = total.min(w);
        assert!(
            row_ranges[0].len() >= kk,
            "first participant must hold at least kk rows (got {} < {kk})",
            row_ranges[0].len()
        );
        // The reflector block occupies only the first kk rows of slot 0.
        let s0 = row_ranges[0].start;
        row_ranges[0] = s0..s0 + kk;
        slot_k[participants[0]] = kk;
        plans.push(NodePlan { level, participants, row_ranges, kk });
    }
    (leaf_k, plans)
}

/// Leaf QR of the group `rows × w` block at panel columns `c0..c0+w`,
/// in place. Returns the leaf's `T` factor.
// TSQR kernel helper: called from DAG executors whose declared
// footprints `verify_graph` proves conflict-ordered.
#[allow(clippy::disallowed_methods)]
pub fn leaf_qr<T: Kernel>(
    a: &SharedMatrix<T>,
    c0: usize,
    w: usize,
    rows: Range<usize>,
) -> LeafQ<T> {
    let r = rows.len();
    let kv = r.min(w);
    // SAFETY: caller (sequential loop or DAG) guarantees exclusive access.
    let mut blk = unsafe { a.block_mut(rows.start, c0, r, w) };
    let mut t = Matrix::zeros(kv, kv);
    if r >= w {
        geqr3(blk, t.view_mut());
    } else {
        // Wide leaf (ragged bottom group): BLAS2 fallback.
        let mut tau = Vec::new();
        geqr2(blk.rb(), &mut tau);
        larft(blk.as_ref().sub(0, 0, r, kv), &tau, t.view_mut());
    }
    LeafQ { rows, kv, t }
}

/// Applies `op(Q_leaf)` to columns `dcols` of `dst` (rows = the leaf's
/// group). `src` holds the factored panel (the reflectors); during the
/// factorization's own trailing update `src` and `dst` are the same matrix.
// TSQR kernel helper: called from DAG executors whose declared
// footprints `verify_graph` proves conflict-ordered.
#[allow(clippy::disallowed_methods)]
pub fn leaf_apply<T: Kernel>(
    src: &SharedMatrix<T>,
    c0: usize,
    leaf: &LeafQ<T>,
    dst: &SharedMatrix<T>,
    dcols: Range<usize>,
    trans: Trans,
) {
    if dcols.is_empty() {
        return;
    }
    let r = leaf.rows.len();
    // SAFETY: DAG/replay ordering guarantees the V block is read-stable and
    // the destination block is exclusively ours.
    let v = unsafe { src.block(leaf.rows.start, c0, r, leaf.kv) };
    let c = unsafe { dst.block_mut(leaf.rows.start, dcols.start, r, dcols.len()) };
    larfb_left(trans, v, leaf.t.view(), c);
}

/// Reduction-node QR: stacks the participants' current `R` factors (read
/// from `a` at `plan.row_ranges`, panel columns `c0..c0+w`), refactors them,
/// writes the merged `R` back into the first participant's rows, and returns
/// the node's reflectors.
// TSQR kernel helper: called from DAG executors whose declared
// footprints `verify_graph` proves conflict-ordered.
#[allow(clippy::disallowed_methods)]
pub fn node_qr<T: Kernel>(
    a: &SharedMatrix<T>,
    c0: usize,
    w: usize,
    plan: &NodePlan,
) -> NodeQ<T> {
    let s: usize = plan.row_ranges.iter().map(|r| r.len()).sum();
    let kk = plan.kk;
    let mut stack = Matrix::zeros(s, w);
    let mut off = 0usize;
    for (pi, range) in plan.row_ranges.iter().enumerate() {
        let len = range.len();
        // SAFETY: ordered read of the participants' R blocks.
        let blk = unsafe { a.block(range.start, c0, len, w) };
        for j in 0..w {
            // Copy the upper-trapezoid R entries; below lives V junk.
            // For participant 0 on upper tree levels the R occupies only
            // `len` rows anyway, so trapezoid copy is always correct.
            let imax = (j + 1).min(len);
            let _ = pi;
            for i in 0..imax {
                stack[(off + i, j)] = blk.at(i, j);
            }
        }
        off += len;
    }

    let mut t = Matrix::zeros(kk, kk);
    if s >= w {
        geqr3(stack.view_mut(), t.view_mut());
    } else {
        let mut tau = Vec::new();
        geqr2(stack.view_mut(), &mut tau);
        larft(stack.block(0, 0, s, kk), &tau, t.view_mut());
    }

    // Write the merged R (upper trapezoid of the top kk rows) back into the
    // first participant's rows — without clobbering the leaf V entries that
    // live below the diagonal there.
    {
        let r0 = plan.row_ranges[0].start;
        // SAFETY: exclusive write ordered by the DAG.
        let mut top = unsafe { a.block_mut(r0, c0, kk, w) };
        for j in 0..w {
            for i in 0..(j + 1).min(kk) {
                top.set(i, j, stack[(i, j)]);
            }
        }
    }

    NodeQ { row_ranges: plan.row_ranges.clone(), v: stack, t, kk }
}

/// Applies `op(Q_node)` to columns `dcols` of `dst`, touching only the
/// node's stacked rows (the paper's task S at inner tree nodes).
// TSQR kernel helper: called from DAG executors whose declared
// footprints `verify_graph` proves conflict-ordered.
#[allow(clippy::disallowed_methods)]
pub fn node_apply<T: Kernel>(
    node: &NodeQ<T>,
    dst: &SharedMatrix<T>,
    dcols: Range<usize>,
    trans: Trans,
) {
    if dcols.is_empty() {
        return;
    }
    let kk = node.kk;
    let v_top = node.v.block(0, 0, kk, kk);
    let mut v_rest = Vec::with_capacity(node.row_ranges.len() - 1);
    let mut off = kk;
    for range in &node.row_ranges[1..] {
        v_rest.push(node.v.block(off, 0, range.len(), kk));
        off += range.len();
    }
    // SAFETY: the DAG orders this as the exclusive writer of these blocks.
    let c_top = unsafe {
        dst.block_mut(node.row_ranges[0].start, dcols.start, kk, dcols.len())
    };
    let mut c_rest: Vec<_> = node.row_ranges[1..]
        .iter()
        .map(|r| unsafe { dst.block_mut(r.start, dcols.start, r.len(), dcols.len()) })
        .collect();
    larfb_left_multi(trans, v_top, &v_rest, node.t.view(), c_top, &mut c_rest);
}

/// Applies `op(Q_panel)` for a full panel to columns `dcols` of `dst`:
/// `Qᵀ` = leaves then nodes in order; `Q` = nodes in reverse then leaves.
///
/// This is the replay path (`Q` application after factorization): the
/// reflectors are read safely from the owned factored matrix `src`; `dst`
/// is a [`SharedMatrix`] only because the node updates need several disjoint
/// mutable row blocks of it at once.
// TSQR kernel helper: called from DAG executors whose declared
// footprints `verify_graph` proves conflict-ordered.
#[allow(clippy::disallowed_methods)]
pub fn panel_apply<T: Kernel>(
    src: &Matrix<T>,
    panel: &PanelQ<T>,
    dst: &SharedMatrix<T>,
    dcols: Range<usize>,
    trans: Trans,
) {
    let one_leaf = |leaf: &LeafQ<T>| {
        let r = leaf.rows.len();
        let v = src.block(leaf.rows.start, panel.c0, r, leaf.kv);
        // SAFETY: replay is sequential; no other view of dst is live.
        let c = unsafe { dst.block_mut(leaf.rows.start, dcols.start, r, dcols.len()) };
        larfb_left(trans, v, leaf.t.view(), c);
    };
    match trans {
        Trans::Yes => {
            for leaf in &panel.leaves {
                one_leaf(leaf);
            }
            for node in &panel.nodes {
                node_apply(node, dst, dcols.clone(), trans);
            }
        }
        Trans::No => {
            for node in panel.nodes.iter().rev() {
                node_apply(node, dst, dcols.clone(), trans);
            }
            for leaf in &panel.leaves {
                one_leaf(leaf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::partition_rows;
    use ca_matrix::{norm_max, seeded_rng};

    /// Factor one whole panel sequentially using the module's pieces.
    fn factor_panel_seq(
        a: &SharedMatrix,
        k0: usize,
        c0: usize,
        w: usize,
        tr: usize,
        tree: TreeShape,
    ) -> PanelQ {
        let m = a.nrows();
        let part = partition_rows(m, k0, w.max(1), tr);
        let (leaf_ks, plans) = plan_panel(&part, w, tree);
        let mut leaves = Vec::new();
        for (i, &leaf_k) in leaf_ks.iter().enumerate().take(part.ngroups()) {
            let leaf = leaf_qr(a, c0, w, part.group(i));
            assert_eq!(leaf.kv, leaf_k);
            leaves.push(leaf);
        }
        let mut nodes = Vec::new();
        for plan in &plans {
            nodes.push(node_qr(a, c0, w, plan));
        }
        let k = (m - k0).min(w);
        PanelQ { k0, c0, w, k, leaves, nodes }
    }

    fn check_tsqr_r(m: usize, w: usize, tr: usize, tree: TreeShape, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, w, &mut seeded_rng(seed));
        // Reference R from plain Householder QR.
        let mut aref = a0.clone();
        let mut tau = Vec::new();
        geqr2(aref.view_mut(), &mut tau);
        let r_ref = aref.upper();

        let sh = SharedMatrix::new(a0.clone());
        let panel = factor_panel_seq(&sh, 0, 0, w, tr, tree);
        let fac = sh.into_inner();
        let r = fac.upper();
        // R unique up to row signs.
        for i in 0..w {
            for j in i..w {
                let x = r[(i, j)].abs();
                let y = r_ref[(i, j)].abs();
                assert!(
                    (x - y).abs() < 1e-11 * (1.0 + y),
                    "R mismatch at ({i},{j}): {x} vs {y} (m={m} w={w} tr={tr} {tree:?})"
                );
            }
        }
        let _ = panel;
    }

    #[test]
    fn tsqr_r_matches_householder_binary() {
        check_tsqr_r(64, 8, 4, TreeShape::Binary, 1);
        check_tsqr_r(100, 10, 8, TreeShape::Binary, 2);
        check_tsqr_r(37, 5, 3, TreeShape::Binary, 3);
    }

    #[test]
    fn tsqr_r_matches_householder_flat() {
        check_tsqr_r(64, 8, 4, TreeShape::Flat, 4);
        check_tsqr_r(128, 16, 16, TreeShape::Flat, 5);
    }

    #[test]
    fn tsqr_q_is_orthogonal_and_reconstructs() {
        let m = 80;
        let w = 10;
        let a0 = ca_matrix::random_uniform(m, w, &mut seeded_rng(6));
        let sh = SharedMatrix::new(a0.clone());
        let panel = factor_panel_seq(&sh, 0, 0, w, 4, TreeShape::Binary);
        let fac = sh.into_inner();
        let r = fac.upper();

        // Q thin = Q * [I; 0].
        let mut qt = Matrix::zeros(m, w);
        for i in 0..w {
            qt[(i, i)] = 1.0;
        }
        let dstq = SharedMatrix::new(qt);
        panel_apply(&fac, &panel, &dstq, 0..w, Trans::No);
        let q = dstq.into_inner();

        assert!(ca_matrix::orthogonality(&q) < 1e-12 * m as f64);
        let res = ca_matrix::qr_residual(&a0, &q, &r);
        assert!(res < 1e-12 * m as f64, "residual {res}");
    }

    #[test]
    fn qt_then_q_is_identity() {
        let m = 60;
        let w = 6;
        let a0 = ca_matrix::random_uniform(m, w, &mut seeded_rng(7));
        let sh = SharedMatrix::new(a0);
        let panel = factor_panel_seq(&sh, 0, 0, w, 4, TreeShape::Binary);
        let fac = sh.into_inner();

        let c0 = ca_matrix::random_uniform(m, 3, &mut seeded_rng(8));
        let dc = SharedMatrix::new(c0.clone());
        panel_apply(&fac, &panel, &dc, 0..3, Trans::Yes);
        panel_apply(&fac, &panel, &dc, 0..3, Trans::No);
        let c1 = dc.into_inner();
        let err = norm_max(c1.sub_matrix(&c0).view());
        assert!(err < 1e-12, "Q Qᵀ c != c (err {err})");
    }

    #[test]
    fn qt_applied_to_original_gives_r() {
        // Qᵀ A = [R; 0].
        let m = 50;
        let w = 5;
        let a0 = ca_matrix::random_uniform(m, w, &mut seeded_rng(9));
        let sh = SharedMatrix::new(a0.clone());
        let panel = factor_panel_seq(&sh, 0, 0, w, 2, TreeShape::Binary);
        let fac = sh.into_inner();
        let r = fac.upper();

        let dst = SharedMatrix::new(a0);
        panel_apply(&fac, &panel, &dst, 0..w, Trans::Yes);
        let qta = dst.into_inner();
        for j in 0..w {
            for i in 0..w {
                let expect = if i <= j { r[(i, j)] } else { 0.0 };
                assert!((qta[(i, j)] - expect).abs() < 1e-11, "top block mismatch at ({i},{j})");
            }
        }
        // Rows below the R region of the *first group* are annihilated only
        // conceptually across groups; check the Frobenius mass matches.
        let total: f64 = ca_matrix::norm_fro(qta.view());
        let rmass: f64 = ca_matrix::norm_fro(r.view());
        assert!((total - rmass).abs() < 1e-9 * rmass.max(1.0), "‖QᵀA‖ must equal ‖R‖");
    }

    #[test]
    fn plan_ranges_are_consistent() {
        // 900 active rows in 9 blocks over 4 groups -> 3 groups of 300 rows.
        let part = partition_rows(1000, 100, 100, 4);
        let (leaf_ks, plans) = plan_panel(&part, 100, TreeShape::Binary);
        assert_eq!(leaf_ks, vec![100, 100, 100]);
        for p in &plans {
            assert_eq!(p.row_ranges[0].len(), p.kk);
            for r in &p.row_ranges {
                assert!(r.start >= 100 && r.end <= 1000);
            }
        }
    }

    #[test]
    fn ragged_last_group_plans_short_ranges() {
        // 250 rows, b=100, tr=4 -> 3 groups, last has 50 rows.
        let part = partition_rows(250, 0, 100, 4);
        let (leaf_ks, plans) = plan_panel(&part, 100, TreeShape::Binary);
        assert_eq!(leaf_ks, vec![100, 100, 50]);
        // Node merging group 2 must stack only 50 rows from it.
        let has_short = plans.iter().any(|p| p.row_ranges.iter().any(|r| r.len() == 50));
        assert!(has_short, "{plans:?}");
    }
}
