//! CAQR: communication-avoiding QR.
//!
//! [`caqr_seq`] is the sequential reference (Algorithm 2 in program order);
//! [`caqr`] executes the same task decomposition on the worker pool.
//! Both produce [`QrFactors`]: `R` packed in the matrix plus the TSQR tree's
//! `Q` representation (in-place leaf reflectors + per-node scratch), with
//! `Q`/`Qᵀ` application and thin-`Q` reconstruction.

use crate::dag_caqr;
use crate::error::{find_non_finite, FactorError};
use crate::params::{num_panels, partition_rows, CaParams};
use crate::tsqr::{leaf_apply, leaf_qr, node_apply, node_qr, panel_apply, plan_panel, PanelQ};
use ca_kernels::{trsm_left_upper_notrans, Kernel, Trans};
use ca_matrix::{Matrix, Scalar, SharedMatrix};

/// The result of a CAQR/TSQR factorization.
#[derive(Debug)]
pub struct QrFactors<T: Scalar = f64> {
    /// Factored matrix: `R` in the upper triangle, leaf Householder vectors
    /// below the diagonal (tree-node reflectors live in [`PanelQ`] scratch).
    pub a: Matrix<T>,
    /// Per-panel `Q` representation, in factorization order.
    pub panels: Vec<PanelQ<T>>,
}

impl<T: Kernel> QrFactors<T> {
    /// The upper-triangular/trapezoidal factor `R` (`min(m,n) × n`).
    pub fn r(&self) -> Matrix<T> {
        self.a.upper()
    }

    /// Applies `Qᵀ` to `c` in place (`c` must have `m` rows).
    pub fn apply_qt(&self, c: &mut Matrix<T>) {
        self.apply(c, Trans::Yes);
    }

    /// Applies `Q` to `c` in place (`c` must have `m` rows).
    pub fn apply_q(&self, c: &mut Matrix<T>) {
        self.apply(c, Trans::No);
    }

    fn apply(&self, c: &mut Matrix<T>, trans: Trans) {
        assert_eq!(c.nrows(), self.a.nrows(), "row count mismatch with Q");
        let ncols = c.ncols();
        let owned = std::mem::replace(c, Matrix::zeros(0, 0));
        let dst = SharedMatrix::new(owned);
        match trans {
            Trans::Yes => {
                for p in &self.panels {
                    panel_apply(&self.a, p, &dst, 0..ncols, trans);
                }
            }
            Trans::No => {
                for p in self.panels.iter().rev() {
                    panel_apply(&self.a, p, &dst, 0..ncols, trans);
                }
            }
        }
        *c = dst.into_inner();
    }

    /// The thin orthogonal factor `Q` (`m × min(m,n)`).
    pub fn q_thin(&self) -> Matrix<T> {
        let m = self.a.nrows();
        let k = m.min(self.a.ncols());
        let mut q = Matrix::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = T::ONE;
        }
        self.apply_q(&mut q);
        q
    }

    /// Relative residual `‖A − Q·R‖_F / ‖A‖_F` against the original matrix,
    /// accumulated in `f64` whatever the working precision.
    pub fn residual(&self, a0: &Matrix<T>) -> f64 {
        let q = self.q_thin();
        let r = Matrix::from_fn(q.ncols(), self.a.ncols(), |i, j| {
            if i <= j {
                self.a[(i, j)]
            } else {
                T::ZERO
            }
        });
        ca_matrix::qr_residual(&a0.to_f64(), &q.to_f64(), &r.to_f64())
    }

    /// Orthogonality `‖I − QᵀQ‖_F` of the thin factor (in `f64`).
    pub fn orthogonality(&self) -> f64 {
        ca_matrix::orthogonality(&self.q_thin().to_f64())
    }

    /// Least-squares solve: `x = argmin ‖A·x − rhs‖₂` via `R⁻¹ (Qᵀ rhs)`
    /// (full-column-rank `A`, `m ≥ n`).
    pub fn solve_ls(&self, rhs: &Matrix<T>) -> Matrix<T> {
        let m = self.a.nrows();
        let n = self.a.ncols();
        assert!(m >= n, "least squares needs a tall matrix");
        assert_eq!(rhs.nrows(), m, "rhs row mismatch");
        let mut qtb = rhs.clone();
        self.apply_qt(&mut qtb);
        let mut x = Matrix::from_fn(n, rhs.ncols(), |i, j| qtb[(i, j)]);
        let r = self.a.block(0, 0, n, n);
        let rmat = Matrix::from_fn(n, n, |i, j| if i <= j { r.at(i, j) } else { T::ZERO });
        trsm_left_upper_notrans(rmat.view(), x.view_mut());
        x
    }
}

/// Sequential CAQR (Algorithm 2 in program order), consuming `a` — generic
/// over the working precision (`caqr_seq::<f32>` is the single-precision
/// path).
pub fn caqr_seq<T: Kernel>(a: Matrix<T>, p: &CaParams) -> QrFactors<T> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(m > 0 && n > 0, "empty matrix");
    let nsteps = num_panels(m, n, p.b);
    let sh = SharedMatrix::new(a);
    let mut panels = Vec::with_capacity(nsteps);

    for step in 0..nsteps {
        let k0 = step * p.b;
        let c0 = k0;
        let w = p.b.min(n - c0);
        let part = partition_rows(m, k0, p.b, p.tr);
        let (_leaf_ks, plans) = plan_panel(&part, w, p.tree);
        let trailing = (c0 + w)..n;

        let mut leaves = Vec::with_capacity(part.ngroups());
        for grp in 0..part.ngroups() {
            let leaf = leaf_qr(&sh, c0, w, part.group(grp));
            leaf_apply(&sh, c0, &leaf, &sh, trailing.clone(), Trans::Yes);
            leaves.push(leaf);
        }
        let mut nodes = Vec::with_capacity(plans.len());
        for plan in &plans {
            let node = node_qr(&sh, c0, w, plan);
            node_apply(&node, &sh, trailing.clone(), Trans::Yes);
            nodes.push(node);
        }
        let k = (m - k0).min(w);
        panels.push(PanelQ { k0, c0, w, k, leaves, nodes });
    }

    QrFactors { a: sh.into_inner(), panels }
}

/// Multithreaded CAQR (Algorithm 2): task-graph execution with the
/// lookahead-of-1 priority rule on `p.threads` workers.
pub fn caqr(a: Matrix, p: &CaParams) -> QrFactors {
    dag_caqr::run(a, p).0
}

/// Like [`caqr`], also returning the executor's wall-clock timeline.
pub fn caqr_with_stats(a: Matrix, p: &CaParams) -> (QrFactors, ca_sched::ExecStats) {
    dag_caqr::run(a, p)
}

/// TSQR as a standalone tall-and-skinny factorization: a single panel of
/// width `n` reduced over `tr` row blocks (the paper's TSQR benchmark).
pub fn tsqr_factor<T: Kernel>(a: Matrix<T>, tr: usize, p: &CaParams) -> QrFactors<T> {
    let n = a.ncols();
    let params = CaParams { b: n.max(1), tr, ..*p };
    caqr_seq(a, &params)
}

/// Fallible multithreaded CAQR: pre-scans the input for NaN/Inf (which
/// would silently poison the Householder reflectors) and reports worker
/// failure as [`FactorError::TaskFailed`] instead of panicking. QR needs no
/// pivot-breakdown handling — orthogonal transforms cannot blow up.
pub fn try_caqr(a: Matrix, p: &CaParams) -> Result<QrFactors, FactorError> {
    try_caqr_with_faults(a, p, &ca_sched::FaultPlan::new()).map(|(f, _)| f)
}

/// [`try_caqr`] executed under a [`ca_sched::FaultPlan`] (the deterministic
/// fault-injection harness), also returning the executor's timeline.
pub fn try_caqr_with_faults(
    a: Matrix,
    p: &CaParams,
    faults: &ca_sched::FaultPlan,
) -> Result<(QrFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    dag_caqr::try_run(a, p, faults)
}

/// [`try_caqr_with_faults`] on the recovering executor: every task body is
/// wrapped by [`ca_sched::retrying_job`] so that a failure or panic
/// restores the task's declared write-set from a pre-attempt snapshot and
/// replays it under `policy` — fault-free replays are bitwise-identical.
/// `chaos` injects seeded faults for testing; recovery activity accumulates
/// into `counters`.
pub fn try_caqr_recovering(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(QrFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    dag_caqr::try_run_recovering(a, p, policy, chaos, counters)
}

/// [`try_caqr_recovering`] in checked execution mode: the retry wrapper's
/// snapshot capture and write-set restores run under the shadow lease
/// registry, so recovery itself is audited against the declared footprints.
pub fn try_caqr_recovering_checked(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(QrFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    dag_caqr::try_run_recovering_checked(a, p, policy, chaos, counters)
}

/// [`try_caqr`] in checked execution mode: the task graph is first proven
/// sound by the static verifier ([`ca_sched::verify_graph`]), then executed
/// with every [`ca_matrix::SharedMatrix`] block access audited against the
/// builder's declared footprints through a [`ca_matrix::ShadowRegistry`].
/// Any unordered conflict, runtime lease overlap, or out-of-footprint
/// access is reported as [`FactorError::Soundness`] naming the offending
/// task labels. Numerical contract is identical to [`try_caqr`].
pub fn try_caqr_checked(
    a: Matrix,
    p: &CaParams,
) -> Result<(QrFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    dag_caqr::try_run_checked(a, p)
}

/// [`try_caqr`] on the profiled executor: same input prescan, but returns
/// the scheduler's full [`ca_sched::Profile`] alongside the factors (see
/// [`crate::try_calu_profiled`]).
pub fn try_caqr_profiled(
    a: Matrix,
    p: &CaParams,
) -> Result<(QrFactors, ca_sched::Profile), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    dag_caqr::profile_run(a, p, &ca_sched::FaultPlan::new())
}

/// Fallible sequential CAQR with the input pre-scan of [`try_caqr`],
/// generic over the working precision.
pub fn try_caqr_seq<T: Kernel>(a: Matrix<T>, p: &CaParams) -> Result<QrFactors<T>, FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    Ok(caqr_seq(a, p))
}

/// Fallible standalone TSQR with the input pre-scan of [`try_caqr`].
pub fn try_tsqr_factor<T: Kernel>(
    a: Matrix<T>,
    tr: usize,
    p: &CaParams,
) -> Result<QrFactors<T>, FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    Ok(tsqr_factor(a, tr, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreeShape;
    use ca_matrix::seeded_rng;

    fn check_seq(m: usize, n: usize, b: usize, tr: usize, tree: TreeShape, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut p = CaParams::new(b, tr, 1);
        p.tree = tree;
        let f = caqr_seq(a0.clone(), &p);
        let res = f.residual(&a0);
        let orth = f.orthogonality();
        let scale = 1e-12 * (m.max(n) as f64);
        assert!(res < scale, "residual {res} for {m}x{n} b={b} tr={tr} {tree:?}");
        assert!(orth < scale, "orthogonality {orth} for {m}x{n} b={b} tr={tr} {tree:?}");
    }

    #[test]
    fn square_multi_panel() {
        check_seq(64, 64, 16, 4, TreeShape::Binary, 1);
        check_seq(60, 60, 16, 4, TreeShape::Flat, 2); // ragged last panel
        check_seq(100, 100, 25, 2, TreeShape::Binary, 3);
    }

    #[test]
    fn tall_skinny() {
        check_seq(400, 24, 8, 8, TreeShape::Binary, 4);
        check_seq(333, 30, 10, 4, TreeShape::Flat, 5);
        check_seq(500, 10, 10, 8, TreeShape::Binary, 6); // single panel
    }

    #[test]
    fn kary_and_hybrid_trees() {
        check_seq(256, 48, 16, 8, TreeShape::Kary(4), 30);
        check_seq(256, 48, 16, 8, TreeShape::Hybrid { flat_width: 4 }, 31);
    }

    #[test]
    fn odd_shapes() {
        check_seq(97, 53, 13, 3, TreeShape::Binary, 7);
        check_seq(41, 41, 100, 2, TreeShape::Binary, 8); // b > n
        check_seq(129, 65, 32, 5, TreeShape::Flat, 9);
    }

    #[test]
    fn r_matches_lapack_style_qr_up_to_signs() {
        let m = 90;
        let n = 30;
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(10));
        let f = caqr_seq(a0.clone(), &CaParams::new(10, 4, 1));
        let r = f.r();
        let mut aref = a0.clone();
        let mut tau = Vec::new();
        ca_kernels::geqr2(aref.view_mut(), &mut tau);
        let rref = aref.upper();
        for i in 0..n {
            for j in i..n {
                assert!(
                    (r[(i, j)].abs() - rref[(i, j)].abs()).abs() < 1e-10,
                    "R mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn least_squares_recovers_planted_solution() {
        let m = 200;
        let n = 12;
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(11));
        let x_true = ca_matrix::random_uniform(n, 2, &mut seeded_rng(12));
        let b = a0.matmul(&x_true);
        let f = tsqr_factor(a0, 8, &CaParams::new(100, 8, 1));
        let x = f.solve_ls(&b);
        let err = ca_matrix::norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-10, "LS error {err}");
    }

    #[test]
    fn apply_q_then_qt_roundtrips() {
        let m = 70;
        let n = 20;
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(13));
        let f = caqr_seq(a0, &CaParams::new(8, 4, 1));
        let c0 = ca_matrix::random_uniform(m, 4, &mut seeded_rng(14));
        let mut c = c0.clone();
        f.apply_q(&mut c);
        f.apply_qt(&mut c);
        let err = ca_matrix::norm_max(c.sub_matrix(&c0).view());
        assert!(err < 1e-11, "roundtrip error {err}");
    }

    #[test]
    fn tsqr_equals_caqr_single_panel() {
        let m = 300;
        let n = 16;
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(15));
        let f1 = tsqr_factor(a0.clone(), 4, &CaParams::new(100, 4, 1));
        let mut p = CaParams::new(16, 4, 1);
        p.tree = TreeShape::Binary;
        let f2 = caqr_seq(a0, &p);
        // Same single-panel factorization: identical R.
        assert_eq!(f1.a.as_slice(), f2.a.as_slice());
    }
}
