//! CALU: communication-avoiding LU with tournament pivoting.
//!
//! [`calu_seq`] is the sequential reference (exactly Algorithm 1 executed in
//! program order); [`calu`] runs the same computation as a task graph on the
//! `ca-sched` worker pool. Both write LAPACK-`dgetrf`-compatible output:
//! packed `L\U` in place plus a global interchange sequence.

use crate::dag_calu;
use crate::error::{find_non_finite, FactorError, DEFAULT_GROWTH_LIMIT};
use crate::params::CaParams;
use crate::tslu::factor_panel_limited;
use ca_kernels::{gemm, trsm_left_lower_unit, trsm_left_upper_notrans, Kernel, Trans};
use ca_matrix::{lu_residual, Matrix, PivotSeq, Scalar};

/// Numerical diagnostics collected while factoring, one entry per panel.
#[derive(Clone, Debug, Default)]
pub struct LuStats {
    /// Per-panel element-growth estimate `max|L_KK\U_KK| / max|panel
    /// input|` of the selection finally used, in panel order.
    pub panel_growth: Vec<f64>,
    /// Global column indices (`k0`) of panels where tournament instability
    /// forced a plain-GEPP refactorization.
    pub fallback_panels: Vec<usize>,
}

impl LuStats {
    /// The largest per-panel growth estimate observed (`0` when empty).
    pub fn max_growth(&self) -> f64 {
        self.panel_growth.iter().fold(0.0f64, |a, &g| a.max(g))
    }
}

/// The result of an LU factorization: packed factors plus pivots.
#[derive(Clone, Debug)]
pub struct LuFactors<T: Scalar = f64> {
    /// Packed factors: unit-lower `L` strictly below the diagonal, `U` on
    /// and above (LAPACK `dgetrf` layout).
    pub lu: Matrix<T>,
    /// Global row interchanges (offset 0, length `min(m, n)`).
    pub pivots: PivotSeq,
    /// First column where a panel hit an exactly-zero pivot, if any.
    pub breakdown: Option<usize>,
    /// Per-panel growth estimates and GEPP-fallback record.
    pub stats: LuStats,
}

impl<T: Kernel> LuFactors<T> {
    /// Explicit permutation: entry `i` is the original row now at position `i`.
    pub fn permutation(&self) -> Vec<usize> {
        self.pivots.to_permutation(self.lu.nrows())
    }

    /// The unit-lower factor `L` (`m × min(m,n)`).
    pub fn l(&self) -> Matrix<T> {
        self.lu.unit_lower()
    }

    /// The upper factor `U` (`min(m,n) × n`).
    pub fn u(&self) -> Matrix<T> {
        self.lu.upper()
    }

    /// Relative residual `‖ΠA − LU‖_F / ‖A‖_F` against the original matrix,
    /// accumulated in `f64` whatever the working precision.
    pub fn residual(&self, a0: &Matrix<T>) -> f64 {
        lu_residual(&a0.to_f64(), &self.permutation(), &self.l().to_f64(), &self.u().to_f64())
    }

    /// Determinant of a square factored matrix:
    /// `det(A) = sign(Π) · Π U_ii` (accumulated in `f64`).
    pub fn det(&self) -> f64 {
        let n = self.lu.nrows();
        assert_eq!(self.lu.ncols(), n, "determinant requires square A");
        let mut d = 1.0f64;
        for i in 0..n {
            d *= self.lu[(i, i)].to_f64();
        }
        // Parity of the interchange sequence: each ipiv[k] != offset+k swap
        // flips the sign.
        for (k, &p) in self.pivots.ipiv.iter().enumerate() {
            if p != self.pivots.offset + k {
                d = -d;
            }
        }
        d
    }

    /// Solves `A·X = rhs` in place using the factors (square `A` only).
    ///
    /// # Panics
    /// If the factored matrix is not square or shapes mismatch.
    pub fn solve_in_place(&self, rhs: &mut Matrix<T>) {
        let n = self.lu.nrows();
        assert_eq!(self.lu.ncols(), n, "solve requires a square factorization");
        assert_eq!(rhs.nrows(), n, "rhs row count mismatch");
        self.pivots.apply(rhs.view_mut());
        trsm_left_lower_unit(self.lu.view(), rhs.view_mut());
        trsm_left_upper_notrans(self.lu.view(), rhs.view_mut());
    }

    /// Convenience wrapper returning the solution.
    pub fn solve(&self, rhs: &Matrix<T>) -> Matrix<T> {
        let mut x = rhs.clone();
        self.solve_in_place(&mut x);
        x
    }
}

/// Sequential CALU, in place. Returns the pivot sequence and breakdown info.
///
/// This is Algorithm 1 run on one thread: for each panel, tournament
/// pivoting + packed panel factorization (TSLU), interchanges applied to the
/// columns left and right of the panel, `U` block row by triangular solve,
/// trailing update by `gemm`.
pub fn calu_seq<T: Kernel>(a: &mut Matrix<T>, p: &CaParams) -> (PivotSeq, Option<usize>) {
    let (pivots, breakdown, _) = calu_seq_stats(a, p);
    (pivots, breakdown)
}

/// [`calu_seq`] also returning the per-panel growth/fallback diagnostics.
pub(crate) fn calu_seq_stats<T: Kernel>(
    a: &mut Matrix<T>,
    p: &CaParams,
) -> (PivotSeq, Option<usize>, LuStats) {
    let m = a.nrows();
    let n = a.ncols();
    let kmax = m.min(n);
    let mut pivots = PivotSeq::new(0);
    let mut breakdown: Option<usize> = None;
    let mut stats = LuStats::default();

    let mut k0 = 0usize;
    while k0 < kmax {
        let w = p.b.min(n - k0);
        let k = w.min(m - k0);

        // Panel factorization on columns k0..k0+w.
        let outcome = {
            let panel = a.block_mut(0, k0, m, w);
            factor_panel_limited(panel, k0, p.b, p.tr, p.tree, !p.leaf_blas2, p.growth_limit)
        };
        if breakdown.is_none() {
            breakdown = outcome.breakdown.map(|c| k0 + c);
        }
        stats.panel_growth.push(outcome.growth);
        if outcome.fallback {
            stats.fallback_panels.push(k0);
        }

        // Apply interchanges to the left and right of the panel.
        if k0 > 0 {
            outcome.pivots.apply(a.block_mut(0, 0, m, k0));
        }
        if k0 + w < n {
            outcome.pivots.apply(a.block_mut(0, k0 + w, m, n - k0 - w));
        }
        pivots.extend(&outcome.pivots);

        // U block row: U[k0..k0+k, k0+w..] := L_KK⁻¹ · A[k0..k0+k, k0+w..].
        if k0 + w < n && k > 0 {
            let (panel_cols, trailing) = a.view_mut().split_at_col(k0 + w);
            let lkk = panel_cols.as_ref().sub(k0, k0, k, k);
            let mut trailing = trailing;
            let u_row = trailing.rb().into_sub(k0, 0, k, n - k0 - w);
            trsm_left_lower_unit(lkk, u_row);

            // Trailing update: A[k0+k.., k0+w..] -= L[k0+k.., k0..k0+k] · U.
            if k0 + k < m {
                let l_below = panel_cols.as_ref().sub(k0 + k, k0, m - k0 - k, k);
                let (u_row, a_below) = trailing.split_at_row(k0 + k);
                let u_row = u_row.as_ref().sub(k0, 0, k, n - k0 - w);
                gemm(Trans::No, Trans::No, -T::ONE, l_below, u_row, T::ONE, a_below);
            }
        }

        k0 += w;
    }
    (pivots, breakdown, stats)
}

/// Sequential CALU returning owned factors (generic over the working
/// precision — `calu_seq_factor::<f32>` is the single-precision path).
pub fn calu_seq_factor<T: Kernel>(mut a: Matrix<T>, p: &CaParams) -> LuFactors<T> {
    let (pivots, breakdown, stats) = calu_seq_stats(&mut a, p);
    LuFactors { lu: a, pivots, breakdown, stats }
}

/// Multithreaded CALU (Algorithm 1): builds the task dependency graph and
/// executes it on `p.threads` workers with the lookahead-of-1 priority rule.
pub fn calu(a: Matrix, p: &CaParams) -> LuFactors {
    dag_calu::run(a, p).0
}

/// Like [`calu`], also returning the executor's wall-clock timeline
/// (usable with [`ca_sched::ascii_gantt`] for real execution traces).
pub fn calu_with_stats(a: Matrix, p: &CaParams) -> (LuFactors, ca_sched::ExecStats) {
    dag_calu::run(a, p)
}

/// TSLU as a standalone factorization of a tall-and-skinny matrix: a single
/// panel of width `n` (the paper's TSLU benchmark configuration).
pub fn tslu_factor<T: Kernel>(mut a: Matrix<T>, tr: usize, p: &CaParams) -> LuFactors<T> {
    let n = a.ncols();
    let params = CaParams { b: n.max(1), tr, ..*p };
    let (pivots, breakdown, stats) = calu_seq_stats(&mut a, &params);
    LuFactors { lu: a, pivots, breakdown, stats }
}

/// Substitutes the finite [`DEFAULT_GROWTH_LIMIT`] when the caller left
/// growth monitoring disabled — the `try_*` contract always monitors.
fn monitored(p: &CaParams) -> CaParams {
    if p.growth_limit.is_finite() {
        *p
    } else {
        p.with_growth_limit(DEFAULT_GROWTH_LIMIT)
    }
}

/// Maps post-factorization diagnostics to the `try_*` error contract:
/// exact breakdown wins, then any panel whose growth (even after the GEPP
/// fallback) broke the limit. A successful fallback is *not* an error —
/// the degradation is recorded in [`LuStats::fallback_panels`].
fn check_factors<T: Scalar>(f: LuFactors<T>, p: &CaParams) -> Result<LuFactors<T>, FactorError> {
    if let Some(col) = f.breakdown {
        return Err(FactorError::ZeroPivot { col });
    }
    for (panel, &g) in f.stats.panel_growth.iter().enumerate() {
        if g > p.growth_limit {
            return Err(FactorError::GrowthExplosion { col: panel * p.b, growth: g });
        }
    }
    Ok(f)
}

/// Fallible multithreaded CALU: pre-scans the input for NaN/Inf, monitors
/// per-panel element growth (falling back to plain GEPP on tournament
/// instability), and reports exact singularity and worker-task failure as
/// errors instead of poisoned factors.
pub fn try_calu(a: Matrix, p: &CaParams) -> Result<LuFactors, FactorError> {
    try_calu_with_stats(a, p).map(|(f, _)| f)
}

/// Like [`try_calu`], also returning the executor's timeline.
pub fn try_calu_with_stats(
    a: Matrix,
    p: &CaParams,
) -> Result<(LuFactors, ca_sched::ExecStats), FactorError> {
    try_calu_with_faults(a, p, &ca_sched::FaultPlan::new())
}

/// [`try_calu_with_stats`] executed under a [`ca_sched::FaultPlan`] — the
/// deterministic fault-injection harness, for testing the recovery paths.
pub fn try_calu_with_faults(
    a: Matrix,
    p: &CaParams,
    faults: &ca_sched::FaultPlan,
) -> Result<(LuFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let params = monitored(p);
    let (f, stats) = dag_calu::try_run(a, &params, faults)?;
    check_factors(f, &params).map(|f| (f, stats))
}

/// [`try_calu_with_stats`] on the recovering executor: every task body is
/// wrapped by [`ca_sched::retrying_job`] so that a failure or panic
/// restores the task's declared write-set from a pre-attempt snapshot and
/// replays it under `policy` — fault-free replays are bitwise-identical, so
/// a recovered run produces exactly the factors of an undisturbed one.
/// `chaos` injects seeded faults/panics/delays/corruption for testing
/// (use [`ca_sched::ChaosPlan::quiet`] when none are wanted); observed
/// recovery activity accumulates into `counters`.
pub fn try_calu_recovering(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(LuFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let params = monitored(p);
    let (f, stats) = dag_calu::try_run_recovering(a, &params, policy, chaos, counters)?;
    check_factors(f, &params).map(|f| (f, stats))
}

/// [`try_calu_recovering`] in checked execution mode: the retry wrapper's
/// snapshot capture and write-set restores run under the shadow lease
/// registry, so recovery itself is audited against the declared footprints.
pub fn try_calu_recovering_checked(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(LuFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let params = monitored(p);
    let (f, stats) = dag_calu::try_run_recovering_checked(a, &params, policy, chaos, counters)?;
    check_factors(f, &params).map(|f| (f, stats))
}

/// [`try_calu`] in checked execution mode: the task graph is first proven
/// sound by the static verifier ([`ca_sched::verify_graph`]), then executed
/// with every [`ca_matrix::SharedMatrix`] block access audited against the
/// builder's declared footprints through a [`ca_matrix::ShadowRegistry`].
/// Any unordered conflict, runtime lease overlap, or out-of-footprint
/// access is reported as [`FactorError::Soundness`] naming the offending
/// task labels. Numerical contract is identical to [`try_calu`].
pub fn try_calu_checked(
    a: Matrix,
    p: &CaParams,
) -> Result<(LuFactors, ca_sched::ExecStats), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let params = monitored(p);
    let (f, stats) = dag_calu::try_run_checked(a, &params)?;
    check_factors(f, &params).map(|f| (f, stats))
}

/// [`try_calu`] on the profiled executor: same numerical contract (NaN/Inf
/// prescan, growth monitoring, breakdown detection), but returns the
/// scheduler's full [`ca_sched::Profile`] alongside the factors —
/// lifecycle records for every task, per-kernel-class flop/byte totals for
/// roofline attribution, and queue/steal counters. Derive the report with
/// [`ca_sched::Profile::metrics`] or a Perfetto-loadable trace with
/// [`ca_sched::Profile::chrome_trace`].
pub fn try_calu_profiled(
    a: Matrix,
    p: &CaParams,
) -> Result<(LuFactors, ca_sched::Profile), FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let params = monitored(p);
    let (f, profile) = dag_calu::profile_run(a, &params, &ca_sched::FaultPlan::new())?;
    check_factors(f, &params).map(|f| (f, profile))
}

/// Fallible sequential CALU with the same contract as [`try_calu`],
/// generic over the working precision.
pub fn try_calu_seq<T: Kernel>(a: Matrix<T>, p: &CaParams) -> Result<LuFactors<T>, FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let params = monitored(p);
    check_factors(calu_seq_factor(a, &params), &params)
}

/// Fallible standalone TSLU with the same contract as [`try_calu`].
pub fn try_tslu_factor<T: Kernel>(
    a: Matrix<T>,
    tr: usize,
    p: &CaParams,
) -> Result<LuFactors<T>, FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let n = a.ncols();
    let params = monitored(&CaParams { b: n.max(1), tr, ..*p });
    check_factors(tslu_factor(a, tr, &params), &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreeShape;
    use ca_matrix::seeded_rng;

    fn check_seq(m: usize, n: usize, b: usize, tr: usize, tree: TreeShape, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut params = CaParams::new(b, tr, 1);
        params.tree = tree;
        let f = calu_seq_factor(a0.clone(), &params);
        assert!(f.breakdown.is_none(), "breakdown {m}x{n} b={b} tr={tr}");
        assert_eq!(f.pivots.len(), m.min(n));
        let res = f.residual(&a0);
        assert!(res < 1e-12, "residual {res} for {m}x{n} b={b} tr={tr} {tree:?}");
    }

    #[test]
    fn square_matrices_multiple_panels() {
        check_seq(64, 64, 16, 4, TreeShape::Binary, 1);
        check_seq(100, 100, 25, 2, TreeShape::Binary, 2);
        check_seq(60, 60, 16, 4, TreeShape::Flat, 3); // ragged last panel
    }

    #[test]
    fn kary_and_hybrid_trees_factor_correctly() {
        check_seq(256, 64, 16, 8, TreeShape::Kary(4), 30);
        check_seq(256, 64, 16, 8, TreeShape::Hybrid { flat_width: 4 }, 31);
        check_seq(100, 100, 25, 6, TreeShape::Kary(3), 32);
    }

    #[test]
    fn tall_skinny_matrices() {
        check_seq(500, 40, 10, 8, TreeShape::Binary, 4);
        check_seq(333, 30, 10, 4, TreeShape::Flat, 5);
        check_seq(1000, 10, 10, 8, TreeShape::Binary, 6); // single panel
    }

    #[test]
    fn odd_shapes_and_block_sizes() {
        check_seq(97, 53, 13, 3, TreeShape::Binary, 7);
        check_seq(53, 97, 13, 3, TreeShape::Binary, 8); // wide
        check_seq(41, 41, 41, 2, TreeShape::Binary, 9); // one panel exactly
        check_seq(41, 41, 100, 2, TreeShape::Binary, 10); // b > n
    }

    #[test]
    fn b_equals_one_is_partial_pivoting_exactly() {
        // Paper §II: "when b = 1 or Tr = 1, CALU is equivalent to partial
        // pivoting". With b = 1 the tournament over single columns picks
        // the max-magnitude entry, exactly like GEPP.
        let m = 24;
        let n = 24;
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(11));
        let mut a = a0.clone();
        let (piv, _) = calu_seq(&mut a, &CaParams::new(1, 4, 1));
        let mut r = a0.clone();
        let info = ca_kernels::getf2(r.view_mut());
        assert_eq!(piv.ipiv, info.pivots.ipiv, "pivot sequences differ");
        for j in 0..n {
            for i in 0..m {
                assert_eq!(a[(i, j)], r[(i, j)], "factors differ at ({i},{j})");
            }
        }
    }

    #[test]
    fn tr_one_gives_partial_pivoting_pivots() {
        let m = 60;
        let n = 24;
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(12));
        let mut a = a0.clone();
        let (piv, _) = calu_seq(&mut a, &CaParams::new(8, 1, 1));
        let mut r = a0.clone();
        let info = ca_kernels::getf2(r.view_mut());
        assert_eq!(piv.ipiv, info.pivots.ipiv);
    }

    #[test]
    fn solve_square_system() {
        let n = 50;
        let a0 = ca_matrix::random_uniform(n, n, &mut seeded_rng(13));
        let x_true = ca_matrix::random_uniform(n, 3, &mut seeded_rng(14));
        let b = a0.matmul(&x_true);
        let f = calu_seq_factor(a0.clone(), &CaParams::new(10, 4, 1));
        let x = f.solve(&b);
        let err = ca_matrix::norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-9, "solve error {err}");
    }

    #[test]
    fn determinant_of_known_matrices() {
        // det(I) = 1; det of a permutation-like matrix = ±1; 2x2 known.
        let f = calu_seq_factor(ca_matrix::Matrix::<f64>::identity(6), &CaParams::new(2, 2, 1));
        assert!((f.det() - 1.0).abs() < 1e-12);
        let a = ca_matrix::Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let f = calu_seq_factor(a, &CaParams::new(1, 1, 1));
        assert!((f.det() + 2.0).abs() < 1e-12, "det {}", f.det());
        // det is invariant to tournament parameters.
        let a = ca_matrix::random_uniform(30, 30, &mut seeded_rng(40));
        let d1 = calu_seq_factor(a.clone(), &CaParams::new(5, 4, 1)).det();
        let d2 = calu_seq_factor(a, &CaParams::new(30, 1, 1)).det();
        assert!((d1 - d2).abs() < 1e-9 * d1.abs().max(1.0), "{d1} vs {d2}");
    }

    #[test]
    fn tslu_factor_single_panel() {
        let a0 = ca_matrix::random_uniform(400, 20, &mut seeded_rng(15));
        let f = tslu_factor(a0.clone(), 8, &CaParams::new(100, 8, 1));
        assert!(f.residual(&a0) < 1e-12);
    }

    #[test]
    fn singular_matrix_reports_breakdown_column() {
        // An exactly-zero column makes GEPP hit an exact zero pivot when
        // elimination reaches it (floating-point near-singularity would only
        // give tiny pivots, which is not a breakdown).
        let n = 20;
        let mut a0 = ca_matrix::random_uniform(n, n, &mut seeded_rng(16));
        for i in 0..n {
            a0[(i, 7)] = 0.0;
        }
        let f = calu_seq_factor(a0, &CaParams::new(5, 2, 1));
        assert!(f.breakdown.is_some());
    }

    #[test]
    fn growth_factor_comparable_to_gepp() {
        // Stability sanity: tournament pivoting growth within 4x of GEPP on
        // random matrices.
        let n = 96;
        let a0 = ca_matrix::random_uniform(n, n, &mut seeded_rng(17));
        let f = calu_seq_factor(a0.clone(), &CaParams::new(16, 8, 1));
        let g_calu = ca_matrix::growth_factor(&a0, &f.u());
        let mut r = a0.clone();
        ca_kernels::getf2(r.view_mut());
        let g_gepp = ca_matrix::growth_factor(&a0, &r.upper());
        assert!(g_calu < 4.0 * g_gepp + 4.0, "CALU growth {g_calu} vs GEPP {g_gepp}");
    }
}
