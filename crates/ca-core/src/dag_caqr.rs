//! Task-graph construction and parallel execution of multithreaded CAQR
//! (Algorithm 2 of the paper).
//!
//! Tasks:
//! * `P` — leaf QR of a row group (line 8) and reduction-node QR of stacked
//!   `R` factors (line 19);
//! * `S` — trailing updates: per (group × block column) compact-WY
//!   application for leaves (line 11), per (node × block column) stacked
//!   application for tree nodes (line 26).
//!
//! Unlike CALU there is no second panel factorization and no pivoting: the
//! reduction tree itself drives the trailing update.

use crate::caqr::QrFactors;
use ca_sched::{row_blocks, AccessMap, BlockTracker, CheckedError, SoundnessError, VerifyReport};
use crate::params::{num_panels, partition_rows, CaParams};
use crate::tsqr::{leaf_apply, leaf_qr, node_apply, node_qr, plan_panel, LeafQ, NodePlan, NodeQ, PanelQ};
use ca_kernels::{flops, traffic};
use ca_kernels::Trans;
use ca_matrix::{Matrix, SharedMatrix};
use ca_sched::{run_graph, ExecStats, Job, KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta};
use std::sync::OnceLock;

/// What a CAQR task does (payload of the task graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field names (step/grp/node/jblk) are the documentation
pub enum CaqrTask {
    /// Leaf QR of row group `grp` of panel `step`.
    LeafQr { step: usize, grp: usize },
    /// Leaf trailing update of (group `grp`) × (block column `jblk`).
    LeafUpdate { step: usize, grp: usize, jblk: usize },
    /// Reduction-node QR (`node` indexes the panel's plan list).
    NodeQr { step: usize, node: usize },
    /// Node trailing update of (node `node`) × (block column `jblk`).
    NodeUpdate { step: usize, node: usize, jblk: usize },
}

pub(crate) struct PanelCtx {
    k0: usize,
    c0: usize,
    w: usize,
    k: usize,
    groups: Vec<core::ops::Range<usize>>,
    plans: Vec<NodePlan>,
    leaves: Vec<OnceLock<LeafQ>>,
    nodes: Vec<OnceLock<NodeQ>>,
}

pub(crate) struct CaqrPlan {
    pub graph: TaskGraph<CaqrTask>,
    /// Declared block footprints of every task (for verification / checked
    /// execution).
    pub access: AccessMap,
    pub panels: Vec<PanelCtx>,
    n: usize,
    pub(crate) b: usize,
}

fn prio(nsteps: usize, step: usize, lookahead: bool, kind: TaskKind, jblk: usize) -> i64 {
    let critical = ((nsteps - step) as i64) * 1000;
    match kind {
        TaskKind::Panel => critical + 900,
        TaskKind::Update => {
            if lookahead && jblk == step + 1 {
                critical + 800
            } else {
                critical - 500
            }
        }
        _ => 0,
    }
}

/// Builds the CAQR task graph for an `m × n` matrix with parameters `p`.
pub(crate) fn build(m: usize, n: usize, p: &CaParams) -> CaqrPlan {
    assert!(m > 0 && n > 0, "empty matrix");
    ca_sched::sched_counters().factor_graphs_built.inc();
    let b = p.b;
    let nsteps = num_panels(m, n, b);
    let nb = n.div_ceil(b);

    let mut graph: TaskGraph<CaqrTask> = TaskGraph::new();
    // Element geometry so the retained footprints support rect-granularity
    // verification and the minimality lints, not just the block view.
    let mut tracker = BlockTracker::with_geometry(b, m, n);
    let mut panels: Vec<PanelCtx> = Vec::with_capacity(nsteps);

    for step in 0..nsteps {
        let k0 = step * b;
        let c0 = k0;
        let w = b.min(n - c0);
        let k = w.min(m - k0);
        let part = partition_rows(m, k0, b, p.tr);
        let g = part.ngroups();
        let (leaf_ks, plans) = plan_panel(&part, w, p.tree);

        // --- Leaf QR tasks + their trailing updates.
        let mut leaf_qr_ids = Vec::with_capacity(g);
        for (grp, &leaf_k) in leaf_ks.iter().enumerate() {
            let rows = part.group(grp);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Panel, step, grp, step),
                flops::geqrf(rows.len(), leaf_k),
            )
            .with_bytes(traffic::geqr3(rows.len(), leaf_k))
            .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Panel, step))
            .with_class(KernelClass::QrRecursive);
            let id = graph.add_task(meta, CaqrTask::LeafQr { step, grp });
            tracker.write(&mut graph, id, row_blocks(rows, b), step..step + 1);
            leaf_qr_ids.push(id);
        }
        for jblk in step + 1..nb {
            let jc0 = jblk * b;
            let wj = b.min(n - jc0);
            for grp in 0..g {
                let rows = part.group(grp);
                let meta = TaskMeta::new(
                    TaskLabel::new(TaskKind::Update, step, grp, jblk),
                    flops::larfb(rows.len(), wj, leaf_ks[grp]),
                )
                .with_bytes(traffic::larfb(rows.len(), wj, leaf_ks[grp]))
                .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Update, jblk))
                .with_class(KernelClass::Larfb);
                let id = graph.add_task(meta, CaqrTask::LeafUpdate { step, grp, jblk });
                graph.add_dep(leaf_qr_ids[grp], id); // the LeafQ (T factor)
                tracker.read(&mut graph, id, row_blocks(rows.clone(), b), step..step + 1);
                tracker.write(&mut graph, id, row_blocks(rows, b), jblk..jblk + 1);
            }
        }

        // --- Node QR tasks + their trailing updates.
        let mut node_qr_ids = Vec::with_capacity(plans.len());
        for (ni, plan) in plans.iter().enumerate() {
            let s: usize = plan.row_ranges.iter().map(|r| r.len()).sum();
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Panel, step, g + ni, step),
                flops::geqrf(s.max(plan.kk), plan.kk),
            )
            .with_bytes(traffic::geqr3(s.max(plan.kk), plan.kk))
            .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Panel, step))
            .with_class(KernelClass::QrRecursive);
            let id = graph.add_task(meta, CaqrTask::NodeQr { step, node: ni });
            // Reads + writes the participants' top block rows of the panel.
            for r in &plan.row_ranges {
                tracker.write(&mut graph, id, row_blocks(r.clone(), b), step..step + 1);
            }
            node_qr_ids.push(id);
        }
        for (ni, plan) in plans.iter().enumerate() {
            for jblk in step + 1..nb {
                let jc0 = jblk * b;
                let wj = b.min(n - jc0);
                let s: usize = plan.row_ranges.iter().map(|r| r.len()).sum();
                let meta = TaskMeta::new(
                    TaskLabel::new(TaskKind::Update, step, g + ni, jblk),
                    flops::larfb(s, wj, plan.kk),
                )
                .with_bytes(traffic::larfb(s, wj, plan.kk))
                .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Update, jblk))
                .with_class(KernelClass::Larfb);
                let id = graph.add_task(meta, CaqrTask::NodeUpdate { step, node: ni, jblk });
                graph.add_dep(node_qr_ids[ni], id); // the NodeQ (V, T scratch)
                for r in &plan.row_ranges {
                    tracker.write(&mut graph, id, row_blocks(r.clone(), b), jblk..jblk + 1);
                }
            }
        }

        panels.push(PanelCtx {
            k0,
            c0,
            w,
            k,
            groups: (0..g).map(|i| part.group(i)).collect(),
            plans,
            leaves: (0..g).map(|_| OnceLock::new()).collect(),
            nodes: (0..node_qr_ids.len()).map(|_| OnceLock::new()).collect(),
        });
    }

    // The tracker's per-block reasoning cannot see orderings already implied
    // by the explicitly added edges (reduction tree, pivot broadcast), so it
    // over-wires conflict edges a path already covers. Reduce to the minimal
    // equivalent DAG: ready times and conflict orderings are unchanged, and
    // the schedulers track fewer dependences.
    ca_sched::reduce_transitive_edges(&mut graph);

    CaqrPlan { graph, access: tracker.into_access_map(), panels, n, b }
}

impl CaqrPlan {
    // DAG executor: every access falls inside the footprint declared in
    // build(), which `verify_graph` proves conflict-ordered.
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn exec(&self, a: &SharedMatrix, t: CaqrTask) {
        let b = self.b;
        let n = self.n;
        match t {
            CaqrTask::LeafQr { step, grp } => {
                let ctx = &self.panels[step];
                let leaf = leaf_qr(a, ctx.c0, ctx.w, ctx.groups[grp].clone());
                ctx.leaves[grp].set(leaf).expect("leaf ran twice");
            }
            CaqrTask::LeafUpdate { step, grp, jblk } => {
                let ctx = &self.panels[step];
                let leaf = ctx.leaves[grp].get().expect("leaf T not ready");
                let jc0 = jblk * b;
                let wj = b.min(n - jc0);
                leaf_apply(a, ctx.c0, leaf, a, jc0..jc0 + wj, Trans::Yes);
            }
            CaqrTask::NodeQr { step, node } => {
                let ctx = &self.panels[step];
                let nq = node_qr(a, ctx.c0, ctx.w, &ctx.plans[node]);
                ctx.nodes[node].set(nq).expect("node ran twice");
            }
            CaqrTask::NodeUpdate { step, node, jblk } => {
                let ctx = &self.panels[step];
                let nq = ctx.nodes[node].get().expect("node V/T not ready");
                let jc0 = jblk * b;
                let wj = b.min(n - jc0);
                node_apply(nq, a, jc0..jc0 + wj, Trans::Yes);
            }
        }
    }
}

/// Runs multithreaded CAQR, consuming `a`.
pub(crate) fn run(a: Matrix, p: &CaParams) -> (QrFactors, ExecStats) {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let stats = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => run_graph(jobs, p.threads),
        crate::params::Scheduler::WorkStealing => ca_sched::run_graph_stealing(jobs, p.threads),
    };
    (collect_factors(plan, shared), stats)
}

/// Fallible variant of [`run`]: executes on the failure-aware pool (under
/// the given fault plan), mapping a worker failure to
/// [`FactorError::TaskFailed`] without touching unfilled result slots.
pub(crate) fn try_run(
    a: Matrix,
    p: &CaParams,
    faults: &ca_sched::FaultPlan,
) -> Result<(QrFactors, ExecStats), crate::error::FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::try_run_graph_with_faults(jobs, p.threads, faults)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing_with_faults(jobs, p.threads, faults)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(plan, shared), stats)),
        Err(e) => Err(crate::error::FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Checked-mode variant of [`try_run`]: statically verifies the graph +
/// declared footprints, then executes under the dynamic race detector. Any
/// violation maps to [`crate::error::FactorError::Soundness`].
pub(crate) fn try_run_checked(
    a: Matrix,
    p: &CaParams,
) -> Result<(QrFactors, ExecStats), crate::error::FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    ca_sched::verify_graph(&plan.graph, &plan.access)
        .map_err(|violation| crate::error::FactorError::Soundness { violation })?;
    let registry = ca_sched::build_shadow_registry(&plan.graph, &plan.access, plan.b, m, n);
    let shared = SharedMatrix::with_shadow(a, registry.clone());

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::try_run_graph_checked(jobs, p.threads, &registry)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing_checked(jobs, p.threads, &registry)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(plan, shared), stats)),
        Err(CheckedError::Soundness(violation)) => {
            Err(crate::error::FactorError::Soundness { violation })
        }
        Err(CheckedError::Exec(e)) => Err(crate::error::FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Recovering variant of [`try_run`]: every task body is wrapped by
/// [`ca_sched::retrying_job`], which snapshots the task's declared
/// write-set before each attempt and, on failure or panic, restores it and
/// replays under `policy`; successors are cancelled only once retries are
/// exhausted. `chaos` injects seeded faults for testing.
pub(crate) fn try_run_recovering(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(QrFactors, ExecStats), crate::error::FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|id, &spec| {
        let plan = &plan;
        let shared = &shared;
        let label = plan.graph.meta(id).label;
        let writes = ca_sched::write_set(&plan.access, id, plan.b, m, n);
        ca_sched::retrying_job(label, writes, shared, policy, chaos, counters, move || {
            plan.exec(shared, spec)
        })
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => ca_sched::try_run_graph(jobs, p.threads),
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing(jobs, p.threads)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(plan, shared), stats)),
        Err(e) => Err(crate::error::FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Checked-mode variant of [`try_run_recovering`]: the retry wrapper runs
/// under the shadow lease registry, so snapshot capture and write-set
/// restore are themselves audited against the declared footprints.
pub(crate) fn try_run_recovering_checked(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(QrFactors, ExecStats), crate::error::FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    ca_sched::verify_graph(&plan.graph, &plan.access)
        .map_err(|violation| crate::error::FactorError::Soundness { violation })?;
    let registry = ca_sched::build_shadow_registry(&plan.graph, &plan.access, plan.b, m, n);
    let shared = SharedMatrix::with_shadow(a, registry.clone());

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|id, &spec| {
        let plan = &plan;
        let shared = &shared;
        let label = plan.graph.meta(id).label;
        let writes = ca_sched::write_set(&plan.access, id, plan.b, m, n);
        ca_sched::retrying_job(label, writes, shared, policy, chaos, counters, move || {
            plan.exec(shared, spec)
        })
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::try_run_graph_checked(jobs, p.threads, &registry)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing_checked(jobs, p.threads, &registry)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(plan, shared), stats)),
        Err(CheckedError::Soundness(violation)) => {
            Err(crate::error::FactorError::Soundness { violation })
        }
        Err(CheckedError::Exec(e)) => Err(crate::error::FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Profiling variant of [`try_run`]: executes on the profiled pool matching
/// `p.scheduler` and returns the factors together with the full
/// [`ca_sched::Profile`]. A task failure maps to
/// [`crate::error::FactorError::TaskFailed`] like [`try_run`].
pub(crate) fn profile_run(
    a: Matrix,
    p: &CaParams,
    faults: &ca_sched::FaultPlan,
) -> Result<(QrFactors, ca_sched::Profile), crate::error::FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let (profile, failure) = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::profile_run_graph(jobs, p.threads, faults)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::profile_run_graph_stealing(jobs, p.threads, faults)
        }
    };
    match failure {
        None => Ok((collect_factors(plan, shared), profile)),
        Some(e) => Err(crate::error::FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Gathers the per-panel `Q` representations after a successful run.
pub(crate) fn collect_factors(plan: CaqrPlan, shared: SharedMatrix) -> QrFactors {
    let mut panels = Vec::with_capacity(plan.panels.len());
    for ctx in plan.panels {
        let leaves = ctx.leaves.into_iter().map(|l| l.into_inner().expect("leaf missing")).collect();
        let nodes = ctx.nodes.into_iter().map(|n| n.into_inner().expect("node missing")).collect();
        panels.push(PanelQ { k0: ctx.k0, c0: ctx.c0, w: ctx.w, k: ctx.k, leaves, nodes });
    }
    QrFactors { a: shared.into_inner(), panels }
}

/// Builds just the task graph (for the multicore simulator and DAG figures).
pub fn caqr_task_graph(m: usize, n: usize, p: &CaParams) -> TaskGraph<CaqrTask> {
    build(m, n, p).graph
}

/// Builds the task graph together with the declared block footprints, for
/// soundness verification ([`ca_sched::verify_graph`]) and checked
/// simulation.
pub fn caqr_task_graph_with_access(
    m: usize,
    n: usize,
    p: &CaParams,
) -> (TaskGraph<CaqrTask>, AccessMap) {
    let plan = build(m, n, p);
    (plan.graph, plan.access)
}

/// Statically verifies the CAQR task graph for an `m × n` factorization:
/// structural invariants, every conflicting block pair ordered by a
/// happens-before path, and the §III lookahead priority rule.
pub fn verify_caqr(m: usize, n: usize, p: &CaParams) -> Result<VerifyReport, SoundnessError> {
    verify_caqr_with(m, n, p, &ca_sched::VerifyOptions::default())
}

/// [`verify_caqr`] with explicit [`ca_sched::VerifyOptions`]: element-rect
/// conflict enumeration ([`ca_sched::Granularity::Rect`]) and/or the
/// edge-minimality lint passes.
pub fn verify_caqr_with(
    m: usize,
    n: usize,
    p: &CaParams,
    opts: &ca_sched::VerifyOptions,
) -> Result<VerifyReport, SoundnessError> {
    let plan = build(m, n, p);
    ca_sched::verify_graph_with(&plan.graph, &plan.access, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::caqr::{caqr, caqr_seq};
    use crate::params::TreeShape;
    use ca_matrix::seeded_rng;

    fn check_parallel(m: usize, n: usize, b: usize, tr: usize, threads: usize, tree: TreeShape, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut p = CaParams::new(b, tr, threads);
        p.tree = tree;
        let f = caqr(a0.clone(), &p);
        let scale = 1e-12 * (m.max(n) as f64);
        let res = f.residual(&a0);
        assert!(res < scale, "residual {res} for {m}x{n} b={b} tr={tr} t={threads}");
        // Bitwise agreement with the sequential reference.
        let fs = caqr_seq(a0, &p);
        assert_eq!(f.a.as_slice(), fs.a.as_slice(), "factored matrix differs from sequential");
    }

    #[test]
    fn parallel_matches_sequential_square() {
        check_parallel(64, 64, 16, 2, 4, TreeShape::Binary, 1);
        check_parallel(96, 96, 24, 4, 3, TreeShape::Flat, 2);
    }

    #[test]
    fn parallel_matches_sequential_tall() {
        check_parallel(400, 30, 10, 8, 4, TreeShape::Binary, 3);
        check_parallel(250, 20, 10, 4, 2, TreeShape::Flat, 4);
    }

    #[test]
    fn parallel_matches_sequential_ragged() {
        check_parallel(97, 53, 13, 3, 5, TreeShape::Binary, 5);
        check_parallel(130, 70, 32, 4, 4, TreeShape::Binary, 6);
    }

    #[test]
    fn graph_is_valid() {
        let p = CaParams::new(100, 8, 8);
        let g = caqr_task_graph(1000, 500, &p);
        g.validate();
        assert!(g.total_flops() > 0.0);
        // QR flop count: within CA-overhead margin of the LAPACK count.
        let lapack = ca_kernels::flops::geqrf(1000, 500);
        let total = g.total_flops();
        assert!(total >= lapack * 0.9, "{total} vs {lapack}");
    }

    #[test]
    fn q_from_parallel_run_is_orthogonal() {
        let a0 = ca_matrix::random_uniform(200, 40, &mut seeded_rng(7));
        let f = caqr(a0, &CaParams::new(10, 4, 4));
        assert!(f.orthogonality() < 1e-11);
    }
}
