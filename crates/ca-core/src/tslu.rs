//! TSLU: the tall-skinny LU panel factorization (sequential core).
//!
//! One panel iteration of CALU (Algorithm 1): tournament pivoting over the
//! active rows, pivot-row interchanges within the panel, packed `L\U` write
//! of the top block, and the triangular solves producing the rest of the
//! panel's `L` column. The parallel executor in `dag_calu` decomposes these
//! same steps into tasks; this module is the single source of the numerics.

use crate::params::{partition_rows, RowPartition, TreeShape};
use crate::tournament::{select, stack_candidates, Selected};
use crate::tree::reduction_schedule;
use ca_kernels::{trsm_right_upper_notrans, Kernel};
use ca_matrix::{MatView, MatViewMut, PivotSeq, Scalar};

/// Result of factoring one panel.
#[derive(Clone, Debug)]
pub struct PanelOutcome {
    /// Row interchanges with `offset = k0` (global indices), length
    /// `min(active rows, panel cols)`.
    pub pivots: PivotSeq,
    /// First zero pivot column within the panel, if the winner block was
    /// singular (panel-local column index).
    pub breakdown: Option<usize>,
    /// Element-growth estimate `max|L_KK\U_KK| / max|panel input|` of the
    /// selection finally used (post-fallback when one happened).
    pub growth: f64,
    /// Whether tournament instability forced a plain-GEPP refactorization
    /// of this panel (see [`apply_growth_policy`]).
    pub fallback: bool,
}

/// Builds the interchange sequence that moves global rows `idx[0..k]` to
/// positions `k0..k0+k`, in order — the `Π_KK` of Algorithm 1.
pub fn pivot_seq_from_targets(k0: usize, idx: &[usize]) -> PivotSeq {
    use std::collections::HashMap;
    let mut seq = PivotSeq::new(k0);
    // Track where displaced rows currently live (sparse: only moved rows).
    let mut cur: HashMap<usize, usize> = HashMap::new(); // original row -> position
    let mut at: HashMap<usize, usize> = HashMap::new(); // position -> original row
    for (j, &want) in idx.iter().enumerate() {
        let target = k0 + j;
        let p = *cur.get(&want).unwrap_or(&want);
        debug_assert!(p >= target, "pivot row {p} precedes its target {target}");
        seq.push(p);
        if p != target {
            let displaced = *at.get(&target).unwrap_or(&target);
            cur.insert(displaced, p);
            at.insert(p, displaced);
            cur.insert(want, target);
            at.insert(target, want);
        }
    }
    seq
}

/// Runs the tournament over the panel `a[part.start.., k0_col..k0_col+w]`
/// and returns the winner (selected rows + packed top factors).
///
/// `a` here is a view of the **panel columns only**, full matrix height.
pub fn run_tournament<T: Kernel>(
    panel: &MatViewMut<'_, T>,
    part: &RowPartition,
    tree: TreeShape,
    recursive: bool,
) -> Selected<T> {
    let g = part.ngroups();
    let mut slots: Vec<Option<Selected<T>>> = Vec::with_capacity(g);
    for i in 0..g {
        let r = part.group(i);
        let block = panel.as_ref().sub(r.start, 0, r.len(), panel.ncols());
        let idx: Vec<usize> = r.collect();
        slots.push(Some(select(block, &idx, recursive)));
    }
    for node in reduction_schedule(g, tree) {
        let parts: Vec<&Selected<T>> =
            node.participants.iter().map(|&p| slots[p].as_ref().expect("candidate present")).collect();
        let (stacked, idx) = stack_candidates(&parts);
        let merged = select(stacked.view(), &idx, recursive);
        for &p in &node.participants[1..] {
            slots[p] = None;
        }
        slots[node.participants[0]] = Some(merged);
    }
    slots[0].take().expect("tournament winner")
}

fn max_abs_view<T: Scalar>(v: MatView<'_, T>) -> f64 {
    let mut mx = 0.0f64;
    for j in 0..v.ncols() {
        for i in 0..v.nrows() {
            mx = mx.max(v.at(i, j).abs().to_f64());
        }
    }
    mx
}

/// Growth check + GEPP fallback shared by the sequential panel
/// factorization and the parallel root task.
///
/// `active` is the panel's active region (rows `k0..m` of the panel
/// columns, still holding their **pre-interchange** values — selection
/// works on copies, so nothing has been written back yet); `row0` is the
/// global row index of its first row. Estimates the element growth of the
/// tournament `winner`; when it exceeds `limit`, re-runs the selection over
/// *all* active rows as a single group — which is exactly partial pivoting
/// (GEPP) on the panel — and reports the refactorization via the `bool`.
///
/// Returns `(selection to use, growth estimate of it, fallback happened)`.
pub(crate) fn apply_growth_policy<T: Kernel>(
    active: MatView<'_, T>,
    row0: usize,
    winner: Selected<T>,
    limit: f64,
    recursive: bool,
) -> (Selected<T>, f64, bool) {
    let max_in = max_abs_view(active);
    let growth_of = |s: &Selected<T>| {
        let g = max_abs_view(s.packed.view());
        if max_in > 0.0 { g / max_in } else { 0.0 }
    };
    let growth = growth_of(&winner);
    // A NaN estimate (non-finite input fed through the infallible API) must
    // never trigger the fallback path, hence the explicit `partial_cmp`.
    if growth.partial_cmp(&limit) != Some(std::cmp::Ordering::Greater) {
        return (winner, growth, false);
    }
    let idx: Vec<usize> = (row0..row0 + active.nrows()).collect();
    let gepp = select(active, &idx, recursive);
    let growth = growth_of(&gepp);
    (gepp, growth, true)
}

/// Factors one panel of the matrix in place (sequential reference).
///
/// * `a` — full-height view of the **panel columns** (width ≤ b);
/// * `k0` — global row of the panel's diagonal (active rows are `k0..m`);
/// * `tr`, `tree`, `recursive` — TSLU parameters.
///
/// Interchanges are applied to the panel columns only; the caller applies
/// the returned sequence to the columns left and right of the panel.
pub fn factor_panel<T: Kernel>(
    a: MatViewMut<'_, T>,
    k0: usize,
    b: usize,
    tr: usize,
    tree: TreeShape,
    recursive: bool,
) -> PanelOutcome {
    factor_panel_limited(a, k0, b, tr, tree, recursive, f64::INFINITY)
}

/// [`factor_panel`] with growth monitoring: when the tournament winner's
/// element growth exceeds `growth_limit`, the panel is refactored with
/// plain GEPP (see [`apply_growth_policy`]) before anything is written.
#[allow(clippy::too_many_arguments)]
pub fn factor_panel_limited<T: Kernel>(
    mut a: MatViewMut<'_, T>,
    k0: usize,
    b: usize,
    tr: usize,
    tree: TreeShape,
    recursive: bool,
    growth_limit: f64,
) -> PanelOutcome {
    let m = a.nrows();
    let w = a.ncols();
    assert!(k0 < m, "panel has no active rows");
    let part = partition_rows(m, k0, b, tr);

    let (winner, growth, fallback) = {
        let panel = a.rb();
        let winner = run_tournament(&panel, &part, tree, recursive);
        let active = panel.as_ref().sub(k0, 0, m - k0, w);
        apply_growth_policy(active, k0, winner, growth_limit, recursive)
    };
    let k = winner.idx.len(); // min(active rows, w)
    debug_assert_eq!(k, (m - k0).min(w));

    let pivots = pivot_seq_from_targets(k0, &winner.idx);
    pivots.apply(a.rb());

    // Write the packed L_KK\U_KK block (k × w).
    a.sub(k0, 0, k, w).copy_from(winner.packed.view());

    // L blocks below: A[k0+k.., 0..k] := A[k0+k.., 0..k] · U_KK⁻¹.
    if k0 + k < m && k > 0 {
        let (upper, lower) = a.split_at_row(k0 + k);
        let ukk = upper.as_ref().sub(k0, 0, k, k);
        let l_rows = lower.into_sub(0, 0, m - k0 - k, k);
        trsm_right_upper_notrans(ukk, l_rows);
    }

    PanelOutcome { pivots, breakdown: winner.breakdown, growth, fallback }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{lu_residual, seeded_rng, Matrix};

    #[test]
    fn pivot_seq_moves_targets_to_top() {
        // Want rows [5, 2, 7] at positions [1, 2, 3].
        let seq = pivot_seq_from_targets(1, &[5, 2, 7]);
        let mut v = Matrix::from_fn(8, 1, |i, _| i as f64);
        seq.apply(v.view_mut());
        assert_eq!(v[(1, 0)], 5.0);
        assert_eq!(v[(2, 0)], 2.0);
        assert_eq!(v[(3, 0)], 7.0);
    }

    #[test]
    fn pivot_seq_handles_collision_with_displaced_rows() {
        // Want [3, 0-displaced case]: moving row 3 to pos 0 displaces row 0
        // to pos 3; then wanting row 0 must find it at 3.
        let seq = pivot_seq_from_targets(0, &[3, 0]);
        let mut v = Matrix::from_fn(4, 1, |i, _| i as f64);
        seq.apply(v.view_mut());
        assert_eq!(v[(0, 0)], 3.0);
        assert_eq!(v[(1, 0)], 0.0);
    }

    #[test]
    fn pivot_seq_identity_when_rows_in_place() {
        let seq = pivot_seq_from_targets(2, &[2, 3, 4]);
        assert_eq!(seq.ipiv, vec![2, 3, 4]);
        let mut v = Matrix::from_fn(6, 1, |i, _| i as f64);
        let v0 = v.clone();
        seq.apply(v.view_mut());
        assert_eq!(v, v0);
    }

    fn check_panel(m: usize, w: usize, tr: usize, tree: TreeShape, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, w, &mut seeded_rng(seed));
        let mut a = a0.clone();
        let out = factor_panel(a.view_mut(), 0, w.max(1), tr, tree, true);
        assert!(out.breakdown.is_none(), "breakdown for {m}x{w} tr={tr}");
        let perm = out.pivots.to_permutation(m);
        let res = lu_residual(&a0, &perm, &a.unit_lower(), &a.upper());
        assert!(res < 1e-12, "residual {res} for {m}x{w} tr={tr} {tree:?}");
    }

    #[test]
    fn whole_panel_factorization_binary_tree() {
        check_panel(64, 8, 4, TreeShape::Binary, 1);
        check_panel(100, 10, 8, TreeShape::Binary, 2);
        check_panel(37, 5, 3, TreeShape::Binary, 3); // ragged groups
    }

    #[test]
    fn whole_panel_factorization_flat_tree() {
        check_panel(64, 8, 4, TreeShape::Flat, 4);
        check_panel(100, 10, 16, TreeShape::Flat, 5);
    }

    #[test]
    fn tr_one_matches_plain_gepp_pivots() {
        let m = 40;
        let w = 6;
        let a0 = ca_matrix::random_uniform(m, w, &mut seeded_rng(6));
        let mut a = a0.clone();
        let out = factor_panel(a.view_mut(), 0, w, 1, TreeShape::Binary, false);
        let mut r = a0.clone();
        let info = ca_kernels::getf2(r.view_mut());
        // Same pivot positions...
        let gepp_perm = info.pivots.to_permutation(m);
        let tslu_perm = out.pivots.to_permutation(m);
        assert_eq!(&gepp_perm[..w], &tslu_perm[..w]);
        // ...and identical factors in the factored region.
        for j in 0..w {
            for i in 0..m {
                let x = a[(i, j)];
                let y = r[(i, j)];
                assert!((x - y).abs() <= 1e-14 * y.abs().max(1.0), "mismatch at ({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn panel_with_offset_leaves_top_rows_alone() {
        let m = 30;
        let w = 4;
        let k0 = 10;
        let mut a = ca_matrix::random_uniform(m, w, &mut seeded_rng(7));
        let top_before: Vec<f64> = (0..k0).map(|i| a[(i, 0)]).collect();
        let out = factor_panel(a.view_mut(), k0, w, 4, TreeShape::Binary, true);
        let top_after: Vec<f64> = (0..k0).map(|i| a[(i, 0)]).collect();
        assert_eq!(top_before, top_after, "rows above the panel must not move");
        assert!(out.pivots.ipiv.iter().all(|&p| p >= k0));
        assert_eq!(out.pivots.offset, k0);
    }

    #[test]
    fn multiplier_growth_is_bounded_by_two_for_tournament() {
        // Tournament pivoting guarantees |L| entries bounded (by 2^height in
        // theory for the panel); in practice they stay small. Check ≤ ~4.
        let m = 256;
        let w = 16;
        let mut a = ca_matrix::random_uniform(m, w, &mut seeded_rng(8));
        factor_panel(a.view_mut(), 0, w, 8, TreeShape::Binary, true);
        let l = a.unit_lower();
        let mut lmax = 0.0f64;
        for j in 0..w {
            for i in j + 1..m {
                lmax = lmax.max(l[(i, j)].abs());
            }
        }
        assert!(lmax < 8.0, "|L| grew to {lmax}");
    }

    #[test]
    fn deficient_panel_reports_breakdown() {
        // Rank-1 panel: the tournament winner block is exactly singular; the
        // factorization must finish (BLAS trsm semantics give inf/NaN in L)
        // and flag the breakdown like LAPACK info.
        let a0 = ca_matrix::Matrix::from_fn(16, 4, |i, j| ((i % 2) * (j + 1)) as f64);
        let mut a = a0.clone();
        let out = factor_panel(a.view_mut(), 0, 4, 4, TreeShape::Binary, false);
        assert!(out.breakdown.is_some());
    }
}
