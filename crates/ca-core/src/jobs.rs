//! `'static` task graphs for the serving runtime (`ca-serve`).
//!
//! The one-shot entry points ([`crate::calu`], [`crate::caqr`]) build jobs
//! that borrow the plan and matrix from the submitting stack frame — fine
//! when the caller blocks until the graph drains. A service job outlives
//! its submission call, so the builders here produce graphs of owning
//! [`DynJob`] closures (`Arc`-shared plan and matrix) plus a *sink task*
//! that assembles the result once every compute task has finished:
//!
//! * Every compute task holds an `Arc` to the plan and the shared matrix
//!   and is consumed when it runs (the executor calls the `FnOnce` by
//!   value), dropping its clones.
//! * The sink depends on every task without successors — and therefore,
//!   transitively, on every task of the graph — so when it runs it holds
//!   the *last* `Arc` and can unwrap the shared matrix to collect factors
//!   exactly like the one-shot paths do.
//! * If any task fails or the job is cancelled, the sink never runs and
//!   the output slot stays empty; the dropped closures release the `Arc`s.

use crate::calu::LuFactors;
use crate::caqr::QrFactors;
use crate::error::{find_non_finite, FactorError};
use crate::params::CaParams;
use crate::{dag_calu, dag_caqr};
use ca_matrix::{Matrix, SharedMatrix};
use ca_sched::{
    ChaosPlan, DynJob, RecoveryCounters, RetryPolicy, TaskFailure, TaskGraph, TaskId, TaskKind,
    TaskLabel, TaskMeta,
};
use std::sync::{Arc, OnceLock};

/// Recovery context for a serve graph: wraps every *compute* task with
/// [`ca_sched::retrying_dyn_job`] (sinks and solve epilogues — `FnOnce`
/// closures that consume `Arc`s — are never wrapped; they only run after
/// every compute task already succeeded).
#[derive(Clone)]
pub struct JobRecovery {
    /// Per-task retry policy (snapshot/restore + bounded replay).
    pub policy: RetryPolicy,
    /// Fault-injection plan; [`ChaosPlan::quiet`] for production graphs.
    pub chaos: Arc<ChaosPlan>,
    /// Shared recovery counters, typically service-wide.
    pub counters: Arc<RecoveryCounters>,
}

impl JobRecovery {
    /// Recovery with no fault injection: `policy` plus a quiet chaos plan.
    pub fn new(policy: RetryPolicy) -> Self {
        Self { policy, chaos: Arc::new(ChaosPlan::quiet(0)), counters: Arc::default() }
    }

    /// Recovery under a chaos plan (testing / chaos drills).
    pub fn with_chaos(policy: RetryPolicy, chaos: Arc<ChaosPlan>) -> Self {
        Self { policy, chaos, counters: Arc::default() }
    }

    /// Accumulate into the given (typically service-wide) counters.
    pub fn with_counters(mut self, counters: Arc<RecoveryCounters>) -> Self {
        self.counters = counters;
        self
    }
}

/// Graph, sink task id, and output slot — the pieces a serve-graph builder
/// assembles before the sink id is discarded or reused by a fused builder.
type GraphParts<T> = (TaskGraph<DynJob>, TaskId, Arc<OnceLock<T>>);

/// A `'static` job graph plus the handle its sink task deposits the result
/// into. Submit `graph` to a [`ca_sched::MultiFrontier`]; `output` is
/// filled iff the job completes (every task succeeded).
pub struct ServeGraph<T> {
    /// The job graph, ready for [`ca_sched::MultiFrontier::submit`].
    pub graph: TaskGraph<DynJob>,
    /// Written by the sink task on successful completion.
    pub output: Arc<OnceLock<T>>,
}

/// Appends `body` as a sink task depending on every current leaf (and thus
/// transitively on every task). Returns the sink's id.
fn add_sink(
    graph: &mut TaskGraph<DynJob>,
    flops: f64,
    body: impl FnOnce() + Send + 'static,
) -> TaskId {
    let leaves: Vec<TaskId> =
        (0..graph.len()).filter(|&t| graph.successors(t).is_empty()).collect();
    let sink = graph.add_task(
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 0), flops),
        ca_sched::dyn_job(body),
    );
    graph.add_deps(leaves, sink);
    sink
}

/// CALU serve graph: the full multithreaded DAG of [`crate::calu`] with an
/// owning payload per task and a factor-collecting sink.
///
/// Rejects matrices with non-finite entries up front (the service returns
/// the error synchronously instead of poisoning a running job).
pub fn calu_serve_graph(
    a: Matrix,
    p: &CaParams,
) -> Result<ServeGraph<LuFactors>, FactorError> {
    let (graph, _, output) = calu_graph_parts(a, p, None)?;
    Ok(ServeGraph { graph, output })
}

/// [`calu_serve_graph`] with every compute task wrapped for write-set
/// snapshot/restore retry under `rec` (see [`JobRecovery`]).
pub fn calu_serve_graph_recovering(
    a: Matrix,
    p: &CaParams,
    rec: &JobRecovery,
) -> Result<ServeGraph<LuFactors>, FactorError> {
    let (graph, _, output) = calu_graph_parts(a, p, Some(rec))?;
    Ok(ServeGraph { graph, output })
}

fn calu_graph_parts(
    a: Matrix,
    p: &CaParams,
    rec: Option<&JobRecovery>,
) -> Result<GraphParts<LuFactors>, FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let m = a.nrows();
    let n = a.ncols();
    let plan = Arc::new(dag_calu::build(m, n, p));
    let shared = Arc::new(SharedMatrix::new(a));
    let output = Arc::new(OnceLock::new());

    let mut graph: TaskGraph<DynJob> = plan.graph.map_ref(|id, &spec| {
        let plan = Arc::clone(&plan);
        let shared = Arc::clone(&shared);
        match rec {
            None => ca_sched::dyn_job(move || plan.exec(&shared, spec)),
            Some(r) => {
                let label = plan.graph.meta(id).label;
                let writes = ca_sched::write_set(&plan.access, id, plan.b, m, n);
                ca_sched::retrying_dyn_job(
                    label,
                    writes,
                    Arc::clone(&shared),
                    r.policy,
                    Arc::clone(&r.chaos),
                    Arc::clone(&r.counters),
                    move || plan.exec(&shared, spec),
                )
            }
        }
    });
    let sink = {
        let plan = Arc::clone(&plan);
        let shared = Arc::clone(&shared);
        let output = Arc::clone(&output);
        add_sink(&mut graph, 0.0, move || {
            let shared = Arc::try_unwrap(shared)
                .unwrap_or_else(|_| panic!("matrix still referenced at sink"));
            let _ = output.set(dag_calu::collect_factors(&plan, shared));
        })
    };
    Ok((graph, sink, output))
}

/// CAQR serve graph: the full multithreaded DAG of [`crate::caqr`] with an
/// owning payload per task and a factor-collecting sink.
pub fn caqr_serve_graph(
    a: Matrix,
    p: &CaParams,
) -> Result<ServeGraph<QrFactors>, FactorError> {
    let (graph, _, output) = caqr_graph_parts(a, p, None)?;
    Ok(ServeGraph { graph, output })
}

/// [`caqr_serve_graph`] with every compute task wrapped for write-set
/// snapshot/restore retry under `rec` (see [`JobRecovery`]).
pub fn caqr_serve_graph_recovering(
    a: Matrix,
    p: &CaParams,
    rec: &JobRecovery,
) -> Result<ServeGraph<QrFactors>, FactorError> {
    let (graph, _, output) = caqr_graph_parts(a, p, Some(rec))?;
    Ok(ServeGraph { graph, output })
}

fn caqr_graph_parts(
    a: Matrix,
    p: &CaParams,
    rec: Option<&JobRecovery>,
) -> Result<GraphParts<QrFactors>, FactorError> {
    if let Some((row, col)) = find_non_finite(&a) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let m = a.nrows();
    let n = a.ncols();
    let plan = Arc::new(dag_caqr::build(m, n, p));
    let shared = Arc::new(SharedMatrix::new(a));
    let output = Arc::new(OnceLock::new());

    let mut graph: TaskGraph<DynJob> = plan.graph.map_ref(|id, &spec| {
        let plan = Arc::clone(&plan);
        let shared = Arc::clone(&shared);
        match rec {
            None => ca_sched::dyn_job(move || plan.exec(&shared, spec)),
            Some(r) => {
                let label = plan.graph.meta(id).label;
                let writes = ca_sched::write_set(&plan.access, id, plan.b, m, n);
                ca_sched::retrying_dyn_job(
                    label,
                    writes,
                    Arc::clone(&shared),
                    r.policy,
                    Arc::clone(&r.chaos),
                    Arc::clone(&r.counters),
                    move || plan.exec(&shared, spec),
                )
            }
        }
    });
    let sink = {
        let output = Arc::clone(&output);
        add_sink(&mut graph, 0.0, move || {
            // Last holders standing: every compute task's clone was
            // consumed before this sink became ready.
            let plan = Arc::try_unwrap(plan)
                .unwrap_or_else(|_| panic!("plan still referenced at sink"));
            let shared = Arc::try_unwrap(shared)
                .unwrap_or_else(|_| panic!("matrix still referenced at sink"));
            let _ = output.set(dag_caqr::collect_factors(plan, shared));
        })
    };
    Ok((graph, sink, output))
}

/// Factor-and-solve serve graph for square `A·X = rhs`: the CALU DAG plus a
/// solve sink running [`LuFactors::try_solve`]. A pivot breakdown surfaces
/// as a failed job (the [`FactorError`] message travels in the
/// [`ca_sched::ExecError`]); the factors themselves are discarded.
///
/// # Panics
/// Panics if `A` is not square or `rhs` has the wrong row count (the
/// service layer validates shapes before building).
pub fn lu_solve_serve_graph(
    a: Matrix,
    rhs: Matrix,
    p: &CaParams,
) -> Result<ServeGraph<Matrix>, FactorError> {
    lu_solve_parts(a, rhs, p, None)
}

/// [`lu_solve_serve_graph`] with every compute task wrapped for write-set
/// snapshot/restore retry under `rec`. The solve epilogue itself is not
/// wrapped — it reads only completed factors and owns its right-hand side.
pub fn lu_solve_serve_graph_recovering(
    a: Matrix,
    rhs: Matrix,
    p: &CaParams,
    rec: &JobRecovery,
) -> Result<ServeGraph<Matrix>, FactorError> {
    lu_solve_parts(a, rhs, p, Some(rec))
}

fn lu_solve_parts(
    a: Matrix,
    rhs: Matrix,
    p: &CaParams,
    rec: Option<&JobRecovery>,
) -> Result<ServeGraph<Matrix>, FactorError> {
    assert_eq!(a.nrows(), a.ncols(), "solve requires square A");
    assert_eq!(rhs.nrows(), a.nrows(), "rhs row mismatch");
    if let Some((row, col)) = find_non_finite(&rhs) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let flops = 2.0 * (a.nrows() as f64) * (a.nrows() as f64) * (rhs.ncols() as f64);
    let (mut graph, fsink, factors) = calu_graph_parts(a, p, rec)?;
    let output = Arc::new(OnceLock::new());
    let out = Arc::clone(&output);
    let solve = graph.add_task(
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 1), flops),
        Box::new(move || {
            let f = factors.get().expect("factor sink must precede solve");
            match f.try_solve(&rhs) {
                Ok(x) => {
                    let _ = out.set(x);
                    Ok(())
                }
                Err(e) => Err(TaskFailure::new(e.to_string())),
            }
        }),
    );
    graph.add_dep(fsink, solve);
    Ok(ServeGraph { graph, output })
}

/// Factor-and-least-squares serve graph for tall `A` (`m ≥ n`): the CAQR
/// DAG plus a sink running [`QrFactors::try_solve_ls`]. Rank deficiency
/// surfaces as a failed job.
///
/// # Panics
/// Panics if `m < n` or `rhs` has the wrong row count.
pub fn qr_lstsq_serve_graph(
    a: Matrix,
    rhs: Matrix,
    p: &CaParams,
) -> Result<ServeGraph<Matrix>, FactorError> {
    qr_lstsq_parts(a, rhs, p, None)
}

/// [`qr_lstsq_serve_graph`] with every compute task wrapped for write-set
/// snapshot/restore retry under `rec`. The least-squares epilogue itself is
/// not wrapped — it reads only completed factors.
pub fn qr_lstsq_serve_graph_recovering(
    a: Matrix,
    rhs: Matrix,
    p: &CaParams,
    rec: &JobRecovery,
) -> Result<ServeGraph<Matrix>, FactorError> {
    qr_lstsq_parts(a, rhs, p, Some(rec))
}

fn qr_lstsq_parts(
    a: Matrix,
    rhs: Matrix,
    p: &CaParams,
    rec: Option<&JobRecovery>,
) -> Result<ServeGraph<Matrix>, FactorError> {
    assert!(a.nrows() >= a.ncols(), "least squares needs a tall matrix");
    assert_eq!(rhs.nrows(), a.nrows(), "rhs row mismatch");
    if let Some((row, col)) = find_non_finite(&rhs) {
        return Err(FactorError::NonFiniteInput { row, col });
    }
    let flops = 2.0 * (a.ncols() as f64) * (a.nrows() as f64) * (rhs.ncols() as f64);
    let (mut graph, fsink, factors) = caqr_graph_parts(a, p, rec)?;
    let output = Arc::new(OnceLock::new());
    let out = Arc::clone(&output);
    let solve = graph.add_task(
        TaskMeta::new(TaskLabel::new(TaskKind::Other, 0, 0, 1), flops),
        Box::new(move || {
            let f = factors.get().expect("factor sink must precede solve");
            match f.try_solve_ls(&rhs) {
                Ok(x) => {
                    let _ = out.set(x);
                    Ok(())
                }
                Err(e) => Err(TaskFailure::new(e.to_string())),
            }
        }),
    );
    graph.add_dep(fsink, solve);
    Ok(ServeGraph { graph, output })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::calu_seq_factor;
    use crate::caqr::caqr_seq;
    use ca_matrix::{norm_max, seeded_rng};
    use ca_sched::{JobOptions, JobOutcome, MultiFrontier};

    #[test]
    fn calu_serve_graph_matches_sequential_bitwise() {
        let a = ca_matrix::random_uniform(96, 96, &mut seeded_rng(20));
        let p = CaParams::new(16, 4, 2);
        let reference = calu_seq_factor(a.clone(), &p);

        let f = MultiFrontier::new(2);
        let sg = calu_serve_graph(a, &p).expect("finite input");
        let (_, watch) = f.submit(sg.graph, JobOptions::default());
        assert!(watch.wait().outcome.is_completed());
        let lu = sg.output.get().expect("output set");
        assert_eq!(lu.pivots.ipiv, reference.pivots.ipiv);
        assert_eq!(lu.lu.as_slice(), reference.lu.as_slice());
        f.shutdown();
    }

    #[test]
    fn caqr_serve_graph_matches_sequential_bitwise() {
        let a = ca_matrix::random_uniform(96, 64, &mut seeded_rng(21));
        let p = CaParams::new(16, 4, 2);
        let reference = caqr_seq(a.clone(), &p);

        let f = MultiFrontier::new(2);
        let sg = caqr_serve_graph(a, &p).expect("finite input");
        let (_, watch) = f.submit(sg.graph, JobOptions::default());
        assert!(watch.wait().outcome.is_completed());
        let qr = sg.output.get().expect("output set");
        assert_eq!(qr.a.as_slice(), reference.a.as_slice());
        f.shutdown();
    }

    #[test]
    fn solve_graph_solves_and_reports_breakdown() {
        let n = 48;
        let a = ca_matrix::random_uniform(n, n, &mut seeded_rng(22));
        let x_true = ca_matrix::random_uniform(n, 1, &mut seeded_rng(23));
        let b = a.matmul(&x_true);
        let p = CaParams::new(8, 4, 2);

        let f = MultiFrontier::new(2);
        let sg = lu_solve_serve_graph(a, b, &p).expect("finite input");
        let (_, watch) = f.submit(sg.graph, JobOptions::default());
        assert!(watch.wait().outcome.is_completed());
        let x = sg.output.get().expect("solution set");
        assert!(norm_max(x.sub_matrix(&x_true).view()) < 1e-8);

        // Singular system: the solve sink fails the job with ZeroPivot.
        let mut s = ca_matrix::random_uniform(n, n, &mut seeded_rng(24));
        for i in 0..n {
            let v = s[(i, 0)];
            for j in 1..n {
                s[(i, j)] = v; // rank 1
            }
        }
        let rhs = ca_matrix::random_uniform(n, 1, &mut seeded_rng(25));
        let sg = lu_solve_serve_graph(s, rhs, &p).expect("finite input");
        let (_, watch) = f.submit(sg.graph, JobOptions::default());
        match watch.wait().outcome {
            JobOutcome::Failed(e) => {
                assert!(e.message.contains("zero pivot"), "message: {}", e.message)
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert!(sg.output.get().is_none());
        f.shutdown();
    }

    #[test]
    fn lstsq_graph_matches_direct_solve() {
        let (m, n) = (80, 24);
        let a = ca_matrix::random_uniform(m, n, &mut seeded_rng(26));
        let b = ca_matrix::random_uniform(m, 1, &mut seeded_rng(27));
        let p = CaParams::new(8, 4, 2);
        let reference = caqr_seq(a.clone(), &p).solve_ls(&b);

        let f = MultiFrontier::new(2);
        let sg = qr_lstsq_serve_graph(a, b, &p).expect("finite input");
        let (_, watch) = f.submit(sg.graph, JobOptions::default());
        assert!(watch.wait().outcome.is_completed());
        let x = sg.output.get().expect("solution set");
        assert!(norm_max(x.sub_matrix(&reference).view()) < 1e-10);
        f.shutdown();
    }

    #[test]
    fn non_finite_inputs_are_rejected_at_build_time() {
        let mut a = ca_matrix::random_uniform(8, 8, &mut seeded_rng(28));
        a[(2, 3)] = f64::INFINITY;
        let p = CaParams::new(4, 2, 1);
        assert!(matches!(
            calu_serve_graph(a.clone(), &p),
            Err(FactorError::NonFiniteInput { row: 2, col: 3 })
        ));
        assert!(matches!(
            caqr_serve_graph(a, &p),
            Err(FactorError::NonFiniteInput { row: 2, col: 3 })
        ));
    }
}
