//! Error types for the fallible factorization entry points.
//!
//! The infallible APIs ([`crate::calu`], [`crate::caqr`], …) keep their
//! LAPACK-style contract: always return factors, reporting exact breakdown
//! via [`crate::LuFactors::breakdown`] like `info` from `dgetrf`. The
//! `try_*` entry points instead surface numerical trouble as a
//! [`FactorError`], after pre-scanning inputs and monitoring the per-panel
//! element growth during factorization.

use ca_matrix::Matrix;
use std::fmt;

/// Growth-factor ceiling the `try_*` entry points use when the caller left
/// [`crate::CaParams::growth_limit`] at its infinite default. Element growth
/// beyond this is far outside anything tournament pivoting produces on
/// non-adversarial inputs and signals a numerically meaningless
/// factorization.
pub const DEFAULT_GROWTH_LIMIT: f64 = 1e8;

/// Why a fallible factorization or solve refused to produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum FactorError {
    /// The input matrix (or right-hand side) contains a NaN or infinity at
    /// the given position.
    NonFiniteInput {
        /// Row of the first non-finite entry (column-major scan order).
        row: usize,
        /// Column of the first non-finite entry.
        col: usize,
    },
    /// Elimination hit an exactly-zero pivot: the matrix is singular to
    /// working precision at this global column.
    ZeroPivot {
        /// Global column index of the first zero pivot.
        col: usize,
    },
    /// The per-panel element-growth estimate exceeded the configured limit
    /// even after refactoring the panel with plain partial pivoting.
    GrowthExplosion {
        /// Global column index where the offending panel starts.
        col: usize,
        /// The growth estimate that broke the limit.
        growth: f64,
    },
    /// A worker task failed or panicked during parallel execution; its
    /// transitive successors were cancelled by the scheduler.
    TaskFailed {
        /// Display form of the failed task's label (e.g. `P[2,0,2]`).
        label: String,
        /// The scheduler's error message.
        message: String,
    },
    /// The static DAG verifier or checked execution mode found a soundness
    /// violation (unordered conflicting block accesses, a runtime lease
    /// overlap, or an access outside a task's declared footprint).
    Soundness {
        /// The violation, naming the conflicting task labels.
        violation: ca_sched::SoundnessError,
    },
    /// The post-factorization integrity probe found a residual far above
    /// the backward-stability bound: the factors are silently corrupted
    /// (bit flip, torn write, injected chaos) even though every task
    /// reported success.
    Corrupted {
        /// The scaled probe residual that exceeded the threshold.
        residual: f64,
        /// The threshold it was compared against.
        threshold: f64,
    },
    /// An out-of-core tile-store operation failed at the filesystem level
    /// (open, seek, read, write, sync). Carries the operation name and the
    /// OS error rendered to a string — `std::io::Error` itself is neither
    /// `Clone` nor `PartialEq`, which this enum promises.
    Io {
        /// The store operation that failed (e.g. `"read_panel"`).
        op: String,
        /// Display form of the underlying I/O error.
        message: String,
    },
}

impl FactorError {
    /// Wraps a `std::io::Error` from store operation `op`.
    pub fn io(op: impl Into<String>, e: std::io::Error) -> Self {
        Self::Io { op: op.into(), message: e.to_string() }
    }
}

impl fmt::Display for FactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteInput { row, col } => {
                write!(f, "non-finite input entry at ({row}, {col})")
            }
            Self::ZeroPivot { col } => {
                write!(f, "exact zero pivot at column {col} (singular matrix)")
            }
            Self::GrowthExplosion { col, growth } => {
                write!(f, "element growth {growth:.2e} exceeds the limit in the panel at column {col}")
            }
            Self::TaskFailed { label, message } => {
                write!(f, "task {label} failed: {message}")
            }
            Self::Soundness { violation } => {
                write!(f, "soundness violation: {violation}")
            }
            Self::Corrupted { residual, threshold } => {
                write!(
                    f,
                    "silent corruption: probe residual {residual:.2e} exceeds threshold {threshold:.2e}"
                )
            }
            Self::Io { op, message } => {
                write!(f, "out-of-core I/O error during {op}: {message}")
            }
        }
    }
}

impl std::error::Error for FactorError {}

/// Position `(row, col)` of the first non-finite entry, scanning in
/// column-major order, or `None` when every entry is finite.
pub(crate) fn find_non_finite<T: ca_matrix::Scalar>(a: &Matrix<T>) -> Option<(usize, usize)> {
    for j in 0..a.ncols() {
        for i in 0..a.nrows() {
            if !a[(i, j)].is_finite() {
                return Some((i, j));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_site() {
        let e = FactorError::ZeroPivot { col: 7 };
        assert!(e.to_string().contains("column 7"));
        let e = FactorError::NonFiniteInput { row: 3, col: 5 };
        assert!(e.to_string().contains("(3, 5)"));
        let e = FactorError::GrowthExplosion { col: 16, growth: 1e12 };
        assert!(e.to_string().contains("column 16"));
        let e = FactorError::TaskFailed { label: "P[1,0,1]".into(), message: "boom".into() };
        assert!(e.to_string().contains("P[1,0,1]") && e.to_string().contains("boom"));
        let e = FactorError::io(
            "read_panel",
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read"),
        );
        assert!(e.to_string().contains("read_panel") && e.to_string().contains("short read"));
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn non_finite_scan_finds_first_column_major_entry() {
        let mut a = Matrix::zeros(4, 4);
        a[(2, 1)] = f64::NAN;
        a[(0, 3)] = f64::INFINITY;
        assert_eq!(find_non_finite(&a), Some((2, 1)));
        assert_eq!(find_non_finite(&Matrix::<f64>::zeros(3, 3)), None);
    }
}
