//! Reduction-tree topology for TSLU/TSQR.
//!
//! A tree over `g` leaves is flattened into a list of [`ReduceNode`]s in
//! execution order. Each node merges the *current* candidate sets of a group
//! of leaves into the candidate slot of the first participant. After the
//! last node, leaf 0's slot holds the panel result.

use crate::params::TreeShape;

/// One reduction step: the candidate sets currently held by `participants`
/// (leaf slot indices) are stacked and reduced into slot `participants[0]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReduceNode {
    /// Tree level, starting at 1 (leaves are level 0).
    pub level: usize,
    /// Slot indices whose candidates this node consumes; result goes to
    /// `participants[0]`.
    pub participants: Vec<usize>,
}

/// Builds the reduction schedule for `g` leaf groups.
///
/// * `Binary`: level `l` pairs slot `i` with slot `i + 2^(l-1)` for every
///   `i` divisible by `2^l` (Algorithm 1 lines 11–18). Unpaired slots pass
///   through. Height `ceil(log2 g)`.
/// * `Flat`: a single node consuming all `g` slots (height 1).
/// * `Kary(k)`: every level merges runs of up to `k` active slots
///   (height `ceil(log_k g)`; `k = 2` coincides with `Binary`).
/// * `Hybrid { flat_width }`: one flat level over groups of `flat_width`
///   leaves, then binary reduction of the winners.
///
/// For `g == 1` the schedule is empty: the leaf factorization already is the
/// panel result.
pub fn reduction_schedule(g: usize, shape: TreeShape) -> Vec<ReduceNode> {
    assert!(g > 0, "need at least one group");
    if g == 1 {
        return Vec::new();
    }
    let fan = |level: usize| -> usize {
        match shape {
            TreeShape::Binary => 2,
            TreeShape::Flat => g,
            TreeShape::Kary(k) => {
                assert!(k >= 2, "k-ary tree needs k >= 2");
                k
            }
            TreeShape::Hybrid { flat_width } => {
                assert!(flat_width >= 2, "hybrid tree needs flat_width >= 2");
                if level == 1 {
                    flat_width
                } else {
                    2
                }
            }
        }
    };

    let mut nodes = Vec::new();
    let mut active: Vec<usize> = (0..g).collect();
    let mut level = 1usize;
    while active.len() > 1 {
        let k = fan(level);
        let mut next = Vec::with_capacity(active.len().div_ceil(k));
        for chunk in active.chunks(k) {
            if chunk.len() >= 2 {
                nodes.push(ReduceNode { level, participants: chunk.to_vec() });
            }
            next.push(chunk[0]);
        }
        assert!(next.len() < active.len(), "reduction must make progress");
        active = next;
        level += 1;
    }
    nodes
}

/// Nodes grouped by level, for executors that synchronize level by level.
pub fn schedule_by_level(nodes: &[ReduceNode]) -> Vec<Vec<&ReduceNode>> {
    let mut out: Vec<Vec<&ReduceNode>> = Vec::new();
    for n in nodes {
        while out.len() < n.level {
            out.push(Vec::new());
        }
        out[n.level - 1].push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_four_leaves_matches_paper_figure() {
        // Paper §II: A1..A4, level 1 reduces (1,2) and (3,4); level 2
        // reduces the winners. 0-indexed: (0,1), (2,3), then (0,2).
        let s = reduction_schedule(4, TreeShape::Binary);
        assert_eq!(
            s,
            vec![
                ReduceNode { level: 1, participants: vec![0, 1] },
                ReduceNode { level: 1, participants: vec![2, 3] },
                ReduceNode { level: 2, participants: vec![0, 2] },
            ]
        );
    }

    #[test]
    fn binary_non_power_of_two() {
        // 6 leaves: level 1: (0,1),(2,3),(4,5); level 2: (0,2); 4 passes;
        // level 3: (0,4).
        let s = reduction_schedule(6, TreeShape::Binary);
        assert_eq!(s.len(), 5);
        assert_eq!(s[3], ReduceNode { level: 2, participants: vec![0, 2] });
        assert_eq!(s[4], ReduceNode { level: 3, participants: vec![0, 4] });
    }

    #[test]
    fn binary_five_leaves_reaches_everyone() {
        let s = reduction_schedule(5, TreeShape::Binary);
        // Everyone's candidates must flow into slot 0.
        let mut merged: Vec<bool> = vec![false; 5];
        merged[0] = true;
        for n in &s {
            assert_eq!(n.participants[0] % 2, 0);
            for &p in &n.participants[1..] {
                merged[p] = true;
            }
        }
        assert!(merged.iter().all(|&x| x), "some leaf never reduced: {s:?}");
    }

    #[test]
    fn flat_is_single_node() {
        let s = reduction_schedule(8, TreeShape::Flat);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].participants, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn single_leaf_needs_no_reduction() {
        assert!(reduction_schedule(1, TreeShape::Binary).is_empty());
        assert!(reduction_schedule(1, TreeShape::Flat).is_empty());
    }

    #[test]
    fn two_leaves_identical_for_both_shapes() {
        let b = reduction_schedule(2, TreeShape::Binary);
        let f = reduction_schedule(2, TreeShape::Flat);
        assert_eq!(b.len(), 1);
        assert_eq!(f.len(), 1);
        assert_eq!(b[0].participants, f[0].participants);
    }

    #[test]
    fn kary_two_equals_binary() {
        for g in [2usize, 3, 4, 5, 7, 8, 16] {
            assert_eq!(
                reduction_schedule(g, TreeShape::Binary),
                reduction_schedule(g, TreeShape::Kary(2)),
                "g = {g}"
            );
        }
    }

    #[test]
    fn kary_four_has_fewer_levels() {
        let s = reduction_schedule(16, TreeShape::Kary(4));
        assert_eq!(s.iter().map(|n| n.level).max(), Some(2));
        assert_eq!(s.len(), 4 + 1);
        assert_eq!(s[0].participants, vec![0, 1, 2, 3]);
        assert_eq!(s[4].participants, vec![0, 4, 8, 12]);
    }

    #[test]
    fn hybrid_flat_then_binary() {
        // 16 leaves, flat_width 4: level 1 reduces 4 groups of 4; winners
        // {0,4,8,12} reduce binarily in 2 more levels.
        let s = reduction_schedule(16, TreeShape::Hybrid { flat_width: 4 });
        let lv = schedule_by_level(&s);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0].len(), 4);
        assert_eq!(lv[0][0].participants.len(), 4);
        assert_eq!(lv[1].len(), 2);
        assert_eq!(lv[1][0].participants, vec![0, 4]);
        assert_eq!(lv[2][0].participants, vec![0, 8]);
    }

    #[test]
    fn every_shape_reduces_everyone_to_slot_zero() {
        for shape in [
            TreeShape::Binary,
            TreeShape::Flat,
            TreeShape::Kary(3),
            TreeShape::Kary(5),
            TreeShape::Hybrid { flat_width: 3 },
        ] {
            for g in [2usize, 5, 9, 16] {
                let s = reduction_schedule(g, shape);
                let mut merged = vec![false; g];
                merged[0] = true;
                for n in &s {
                    for &p in &n.participants[1..] {
                        assert!(!merged[p], "slot {p} consumed twice ({shape:?}, g={g})");
                        merged[p] = true;
                    }
                }
                assert!(merged.iter().all(|&x| x), "{shape:?} g={g}: {s:?}");
            }
        }
    }

    #[test]
    fn by_level_buckets() {
        let s = reduction_schedule(8, TreeShape::Binary);
        let lv = schedule_by_level(&s);
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0].len(), 4);
        assert_eq!(lv[1].len(), 2);
        assert_eq!(lv[2].len(), 1);
    }
}
