//! Solver companions to the factorizations: transpose solves, iterative
//! refinement, 1-norm condition estimation (the classic LAPACK
//! `dgetrs`/`dgerfs`/`dgecon` trio, built on [`LuFactors`]), and the
//! fallible least-squares solve on [`QrFactors`].

use crate::calu::LuFactors;
use crate::caqr::QrFactors;
use crate::error::{find_non_finite, FactorError};
use ca_kernels::{
    trsm_left_lower_trans_unit, trsm_left_lower_unit, trsm_left_upper_notrans,
    trsm_left_upper_trans,
};
use ca_matrix::{norm_inf, norm_one, Matrix};

/// Outcome of iterative refinement.
#[derive(Clone, Debug)]
pub struct RefineInfo {
    /// Refinement steps actually taken.
    pub iterations: usize,
    /// Relative ∞-norm residual `‖b − A·x‖ / (‖A‖·‖x‖ + ‖b‖)` after the
    /// final step, per RHS column (max over columns).
    pub final_backward_error: f64,
    /// Whether refinement converged (error stopped improving or reached
    /// roundoff level).
    pub converged: bool,
}

impl LuFactors {
    /// Fallible solve: refuses factors with a recorded pivot breakdown
    /// (their `U` contains an exact zero on the diagonal, so the triangular
    /// solves would produce Inf/NaN) and right-hand sides with non-finite
    /// entries, instead of silently returning a poisoned solution.
    pub fn try_solve(&self, rhs: &Matrix) -> Result<Matrix, FactorError> {
        if let Some(col) = self.breakdown {
            return Err(FactorError::ZeroPivot { col });
        }
        if let Some((row, col)) = find_non_finite(rhs) {
            return Err(FactorError::NonFiniteInput { row, col });
        }
        Ok(self.solve(rhs))
    }

    /// Solves `Aᵀ·X = rhs` in place (square `A`): from `ΠA = LU`,
    /// `Aᵀ = Uᵀ Lᵀ Π`, so `x = Πᵀ L⁻ᵀ U⁻ᵀ rhs`.
    pub fn solve_transposed_in_place(&self, rhs: &mut Matrix) {
        let n = self.lu.nrows();
        assert_eq!(self.lu.ncols(), n, "transpose solve requires square A");
        assert_eq!(rhs.nrows(), n, "rhs row count mismatch");
        trsm_left_upper_trans(self.lu.view(), rhs.view_mut());
        trsm_left_lower_trans_unit(self.lu.view(), rhs.view_mut());
        self.pivots.apply_inverse(rhs.view_mut());
    }

    /// Convenience wrapper returning the transpose-solve solution.
    pub fn solve_transposed(&self, rhs: &Matrix) -> Matrix {
        let mut x = rhs.clone();
        self.solve_transposed_in_place(&mut x);
        x
    }

    /// Solves `A·X = rhs` with fixed-precision iterative refinement
    /// (`dgerfs`-style): after the direct solve, repeatedly computes the
    /// true residual against the *original* matrix `a0` and solves a
    /// correction, until the componentwise backward error stops improving
    /// or `max_iter` is reached.
    pub fn solve_refined(&self, a0: &Matrix, rhs: &Matrix, max_iter: usize) -> (Matrix, RefineInfo) {
        let n = self.lu.nrows();
        assert_eq!(a0.nrows(), n, "a0 shape mismatch");
        assert_eq!(a0.ncols(), n, "a0 shape mismatch");
        let mut x = self.solve(rhs);
        let anorm = norm_inf(a0.view());
        let bnorm = norm_inf(rhs.view());

        let backward = |x: &Matrix| -> (Matrix, f64) {
            // r = rhs − A·x
            let ax = a0.matmul(x);
            let r = rhs.sub_matrix(&ax);
            let scale = anorm * norm_inf(x.view()) + bnorm;
            let be = if scale == 0.0 { 0.0 } else { norm_inf(r.view()) / scale };
            (r, be)
        };

        let (mut r, mut be) = backward(&x);
        let mut iterations = 0;
        let mut converged = be <= f64::EPSILON * (n as f64);
        while iterations < max_iter && !converged {
            let dx = self.solve(&r);
            let x_new = Matrix::from_fn(n, x.ncols(), |i, j| x[(i, j)] + dx[(i, j)]);
            let (r_new, be_new) = backward(&x_new);
            iterations += 1;
            if be_new < be * 0.5 {
                x = x_new;
                r = r_new;
                be = be_new;
            } else {
                // No meaningful progress: accept the better iterate and stop.
                if be_new < be {
                    x = x_new;
                    be = be_new;
                }
                converged = true;
                break;
            }
            if be <= f64::EPSILON * (n as f64) {
                converged = true;
            }
        }
        let _ = r;
        (x, RefineInfo { iterations, final_backward_error: be, converged })
    }

    /// Estimates the reciprocal 1-norm condition number
    /// `rcond = 1 / (‖A‖₁ · ‖A⁻¹‖₁)` using Hager's method (as LAPACK
    /// `dgecon` does), with `anorm1 = ‖A‖₁` of the original matrix.
    ///
    /// Returns a value in `[0, 1]`; `0` signals a singular factorization.
    pub fn rcond_estimate(&self, anorm1: f64) -> f64 {
        let n = self.lu.nrows();
        assert_eq!(self.lu.ncols(), n, "rcond requires square A");
        if self.breakdown.is_some() || anorm1 == 0.0 {
            return 0.0;
        }
        // Hager / Higham 1-norm estimator for ‖A⁻¹‖₁.
        let mut x = Matrix::from_fn(n, 1, |_, _| 1.0 / n as f64);
        let mut est = 0.0f64;
        let mut last_j = usize::MAX;
        for _ in 0..5 {
            // y = A⁻¹ x
            let y = self.solve(&x);
            est = norm_one(y.view());
            // ξ = sign(y); z = A⁻ᵀ ξ
            let xi = Matrix::from_fn(n, 1, |i, _| if y[(i, 0)] >= 0.0 { 1.0 } else { -1.0 });
            let z = self.solve_transposed(&xi);
            // Pick the most sensitive unit vector.
            let mut j = 0usize;
            for i in 1..n {
                if z[(i, 0)].abs() > z[(j, 0)].abs() {
                    j = i;
                }
            }
            let ztx: f64 = (0..n).map(|i| z[(i, 0)] * x[(i, 0)]).sum();
            if z[(j, 0)].abs() <= ztx.abs() || j == last_j {
                break;
            }
            last_j = j;
            x = Matrix::from_fn(n, 1, |i, _| if i == j { 1.0 } else { 0.0 });
        }
        if !est.is_finite() || est == 0.0 {
            return 0.0;
        }
        (1.0 / (anorm1 * est)).min(1.0)
    }
}

impl QrFactors {
    /// Fallible least-squares solve `x = argmin ‖A·x − rhs‖₂` via the
    /// implicit product `Qᵀ·rhs` followed by the triangular solve with `R`
    /// (`dgels`-style, full-column-rank `A`, `m ≥ n`).
    ///
    /// Unlike [`QrFactors::solve_ls`] this refuses right-hand sides with
    /// non-finite entries ([`FactorError::NonFiniteInput`]) and factors
    /// whose `R` has a zero (or non-finite) diagonal entry — i.e. a
    /// (numerically) rank-deficient `A` — as [`FactorError::ZeroPivot`],
    /// instead of silently returning a poisoned solution.
    pub fn try_solve_ls(&self, rhs: &Matrix) -> Result<Matrix, FactorError> {
        let m = self.a.nrows();
        let n = self.a.ncols();
        assert!(m >= n, "least squares needs a tall matrix");
        assert_eq!(rhs.nrows(), m, "rhs row mismatch");
        if let Some((row, col)) = find_non_finite(rhs) {
            return Err(FactorError::NonFiniteInput { row, col });
        }
        for col in 0..n {
            let d = self.a[(col, col)];
            if d == 0.0 || !d.is_finite() {
                return Err(FactorError::ZeroPivot { col });
            }
        }
        Ok(self.solve_ls(rhs))
    }
}

/// Forward/backward substitution pair for a packed square LU without
/// pivoting (helper for callers holding raw packed factors).
pub fn lu_packed_solve_in_place(lu: &Matrix, rhs: &mut Matrix) {
    trsm_left_lower_unit(lu.view(), rhs.view_mut());
    trsm_left_upper_notrans(lu.view(), rhs.view_mut());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::calu_seq_factor;
    use crate::params::CaParams;
    use ca_matrix::{norm_max, seeded_rng};

    fn factor(n: usize, seed: u64) -> (Matrix, LuFactors) {
        let a = ca_matrix::random_uniform(n, n, &mut seeded_rng(seed));
        let f = calu_seq_factor(a.clone(), &CaParams::new(16, 4, 1));
        (a, f)
    }

    #[test]
    fn transpose_solve_recovers_solution() {
        let (a, f) = factor(40, 1);
        let x_true = ca_matrix::random_uniform(40, 2, &mut seeded_rng(2));
        let b = a.transpose().matmul(&x_true);
        let x = f.solve_transposed(&b);
        let err = norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-9, "err {err}");
    }

    #[test]
    fn refinement_never_worsens_and_reports_small_backward_error() {
        let n = 60;
        // Ill-scaled system: graded rows stress the solve.
        let a = ca_matrix::graded_rows(n, n, 1.3, &mut seeded_rng(3));
        let f = calu_seq_factor(a.clone(), &CaParams::new(12, 4, 1));
        let x_true = ca_matrix::random_uniform(n, 1, &mut seeded_rng(4));
        let b = a.matmul(&x_true);
        let x0 = f.solve(&b);
        let (x1, info) = f.solve_refined(&a, &b, 5);
        let be = |x: &Matrix| {
            let r = b.sub_matrix(&a.matmul(x));
            norm_inf(r.view()) / (norm_inf(a.view()) * norm_inf(x.view()) + norm_inf(b.view()))
        };
        assert!(be(&x1) <= be(&x0) * 1.01, "refinement worsened: {} vs {}", be(&x1), be(&x0));
        assert!(info.final_backward_error < 1e-13, "be {}", info.final_backward_error);
    }

    #[test]
    fn rcond_of_identity_is_near_one() {
        let n = 30;
        let a = Matrix::identity(n);
        let f = calu_seq_factor(a.clone(), &CaParams::new(8, 2, 1));
        let rc = f.rcond_estimate(norm_one(a.view()));
        assert!(rc > 0.9, "rcond {rc}");
    }

    #[test]
    fn rcond_detects_ill_conditioning() {
        let n = 40;
        // Hilbert-like matrix: severely ill-conditioned.
        let a = Matrix::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64));
        let f = calu_seq_factor(a.clone(), &CaParams::new(8, 2, 1));
        let rc = f.rcond_estimate(norm_one(a.view()));
        assert!(rc < 1e-8, "Hilbert rcond {rc} should be tiny");

        let (aw, fw) = factor(40, 5);
        let rcw = fw.rcond_estimate(norm_one(aw.view()));
        assert!(rcw > 1e-6, "random matrix rcond {rcw} should be moderate");
        assert!(rcw > rc * 1e3);
    }

    #[test]
    fn rcond_zero_for_singular() {
        let n = 10;
        let mut a = ca_matrix::random_uniform(n, n, &mut seeded_rng(6));
        for i in 0..n {
            a[(i, 4)] = 0.0;
        }
        let anorm = norm_one(a.view());
        let f = calu_seq_factor(a, &CaParams::new(4, 2, 1));
        assert_eq!(f.rcond_estimate(anorm), 0.0);
    }

    #[test]
    fn rcond_tracks_true_inverse_norm_on_small_matrix() {
        // For a small well-understood matrix, the estimate must be within
        // a small factor of the true value (Hager is exact surprisingly
        // often; LAPACK documents it as "almost always within a factor 3").
        let n = 12;
        let (a, f) = factor(n, 7);
        // True ‖A⁻¹‖₁ via explicit inverse columns.
        let inv = f.solve(&Matrix::identity(n));
        let true_rcond = 1.0 / (norm_one(a.view()) * norm_one(inv.view()));
        let est = f.rcond_estimate(norm_one(a.view()));
        assert!(est <= true_rcond * 3.0 + 1e-12 && est >= true_rcond / 10.0,
            "est {est} vs true {true_rcond}");
    }

    #[test]
    fn try_solve_ls_residual_is_orthogonal_to_range() {
        // The LS residual r = b − A·x must satisfy Aᵀr ≈ 0 (it is the
        // projection of b onto the orthogonal complement of range(A)).
        let (m, n) = (60, 20);
        let a = ca_matrix::random_uniform(m, n, &mut seeded_rng(10));
        let b = ca_matrix::random_uniform(m, 2, &mut seeded_rng(11));
        let f = crate::caqr::caqr_seq(a.clone(), &CaParams::new(8, 4, 1));
        let x = f.try_solve_ls(&b).expect("full-rank LS solve");
        let r = b.sub_matrix(&a.matmul(&x));
        let atr = a.transpose().matmul(&r);
        let scale = norm_inf(a.view()) * norm_inf(b.view());
        assert!(
            norm_max(atr.view()) < 1e-12 * scale,
            "residual not orthogonal: ‖Aᵀr‖ = {}",
            norm_max(atr.view())
        );
    }

    #[test]
    fn try_solve_ls_matches_known_solution_on_consistent_system() {
        let (m, n) = (50, 15);
        let a = ca_matrix::random_uniform(m, n, &mut seeded_rng(12));
        let x_true = ca_matrix::random_uniform(n, 1, &mut seeded_rng(13));
        let b = a.matmul(&x_true);
        let f = crate::caqr::caqr_seq(a, &CaParams::new(8, 4, 1));
        let x = f.try_solve_ls(&b).expect("consistent system");
        assert!(norm_max(x.sub_matrix(&x_true).view()) < 1e-9);
    }

    #[test]
    fn try_solve_ls_rejects_bad_inputs() {
        let (m, n) = (24, 8);
        // Rank-deficient: column 3 is zero, so R[3,3] == 0.
        let mut a = ca_matrix::random_uniform(m, n, &mut seeded_rng(14));
        for i in 0..m {
            a[(i, 3)] = 0.0;
        }
        let f = crate::caqr::caqr_seq(a.clone(), &CaParams::new(4, 2, 1));
        let b = ca_matrix::random_uniform(m, 1, &mut seeded_rng(15));
        assert!(matches!(
            f.try_solve_ls(&b),
            Err(FactorError::ZeroPivot { col: 3 })
        ));

        let good = ca_matrix::random_uniform(m, n, &mut seeded_rng(16));
        let f = crate::caqr::caqr_seq(good, &CaParams::new(4, 2, 1));
        let mut bad_rhs = b.clone();
        bad_rhs[(5, 0)] = f64::NAN;
        assert!(matches!(
            f.try_solve_ls(&bad_rhs),
            Err(FactorError::NonFiniteInput { row: 5, col: 0 })
        ));
    }

    #[test]
    fn packed_solve_helper() {
        let n = 15;
        let a = ca_matrix::random_diag_dominant(n, &mut seeded_rng(8));
        let mut lu = a.clone();
        assert!(ca_kernels::lu_nopiv(lu.view_mut()).is_none());
        let x_true = ca_matrix::random_uniform(n, 1, &mut seeded_rng(9));
        let mut x = a.matmul(&x_true);
        lu_packed_solve_in_place(&lu, &mut x);
        assert!(norm_max(x.sub_matrix(&x_true).view()) < 1e-10);
    }
}
