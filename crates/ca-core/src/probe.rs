//! Post-factorization integrity probes: O(n²) silent-corruption detection.
//!
//! A task-level fault that slips past the scheduler (a bit flip, a torn
//! write, injected chaos corruption) leaves factors that *look* healthy —
//! every task reported success — but are numerically wrong. Recomputing the
//! full residual `‖PA − LU‖` would cost O(n³), as much as the factorization
//! itself. The probes here use the classic random-vector identity check
//! instead: for a random `x`,
//!
//! * LU: `‖P(A·x) − L·(U·x)‖`,
//! * QR: `‖A·x − Q·(R·x)‖`,
//!
//! each computable with matrix-vector products only — O(n²) work, a
//! vanishing fraction of the O(n³) factorization (about `4/n` of its flops;
//! under 2% for n ≥ 200). A corruption of even one factor entry perturbs
//! the product by an amount far above the backward-error bound unless the
//! random vector happens to annihilate it (probability ~0 for a continuous
//! distribution), so a single probe vector suffices.
//!
//! The threshold is the same LAPACK-style `c · max(m,n) · eps` shape the
//! accuracy suite gates on, with a generous constant: honest factors sit
//! orders of magnitude below it, corrupted ones orders of magnitude above.

use crate::calu::LuFactors;
use crate::caqr::QrFactors;
use crate::error::FactorError;
use ca_matrix::{norm_inf, norm_max, random_uniform, residual_threshold, seeded_rng, Matrix};

/// Constant `c` in the probe acceptance threshold `c · max(m,n) · eps`.
/// Larger than the accuracy suite's constant because the probe statistic
/// carries the growth factor and the norm looseness of a single random
/// vector; real corruption overshoots by many orders of magnitude.
pub const PROBE_TOL: f64 = 1e4;

/// Scaled probe residual `‖lhs − rhs‖_∞ / (‖A‖_∞ · ‖x‖_∞)`.
fn scaled_residual(lhs: &Matrix, rhs: &Matrix, a0: &Matrix, x: &Matrix) -> f64 {
    let d = lhs.sub_matrix(rhs);
    // norm_max folds with f64::max, which drops NaN operands — a NaN-poisoned
    // factor must register as corrupt, not vanish from the norm.
    if crate::error::find_non_finite(&d).is_some() {
        return f64::INFINITY;
    }
    let diff = norm_max(d.view());
    let scale = norm_inf(a0.view()) * norm_max(x.view());
    if scale == 0.0 {
        diff
    } else {
        diff / scale
    }
}

fn verdict(residual: f64, m: usize, n: usize) -> Result<(), FactorError> {
    let counters = ca_sched::sched_counters();
    counters.probes_run.inc();
    let threshold = residual_threshold(m, n, PROBE_TOL);
    if residual.is_finite() && residual < threshold {
        Ok(())
    } else {
        counters.probe_failures.inc();
        ca_sched::record_event(ca_sched::FlightEventKind::ProbeCorrupt, 0, None);
        Err(FactorError::Corrupted { residual, threshold })
    }
}

impl LuFactors {
    /// Probes `P·A₀ = L·U` with one random vector drawn from `seed`
    /// (O(n²)); returns [`FactorError::Corrupted`] when the scaled residual
    /// exceeds the `c · max(m,n) · eps` threshold.
    pub fn verify_integrity(&self, a0: &Matrix, seed: u64) -> Result<(), FactorError> {
        let m = a0.nrows();
        let n = a0.ncols();
        let x = random_uniform(n, 1, &mut seeded_rng(seed));
        let y = a0.matmul(&x);
        let perm = self.permutation();
        let py = Matrix::from_fn(m, 1, |i, _| y[(perm[i], 0)]);
        let w = self.l().matmul(&self.u().matmul(&x));
        verdict(scaled_residual(&py, &w, a0, &x), m, n)
    }
}

impl QrFactors {
    /// Probes `A₀ = Q·R` with one random vector drawn from `seed` (O(n²));
    /// returns [`FactorError::Corrupted`] when the scaled residual exceeds
    /// the `c · max(m,n) · eps` threshold.
    pub fn verify_integrity(&self, a0: &Matrix, seed: u64) -> Result<(), FactorError> {
        let m = a0.nrows();
        let n = a0.ncols();
        let k = m.min(n);
        let x = random_uniform(n, 1, &mut seeded_rng(seed));
        let rx = self.r().matmul(&x);
        let mut z = Matrix::zeros(m, 1);
        for i in 0..k {
            z[(i, 0)] = rx[(i, 0)];
        }
        self.apply_q(&mut z);
        let y = a0.matmul(&x);
        verdict(scaled_residual(&y, &z, a0, &x), m, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CaParams;
    use crate::{calu, caqr};

    #[test]
    fn honest_factors_pass_the_probe() {
        for (m, n) in [(96, 96), (150, 90)] {
            let a = random_uniform(m, n, &mut seeded_rng((m + n) as u64));
            let p = CaParams::new(16, 4, 2);
            calu(a.clone(), &p).verify_integrity(&a, 1).expect("honest LU");
            caqr(a.clone(), &p).verify_integrity(&a, 1).expect("honest QR");
        }
    }

    #[test]
    fn single_element_corruption_is_detected() {
        let a = random_uniform(96, 96, &mut seeded_rng(5));
        let p = CaParams::new(16, 4, 2);
        let mut lu = calu(a.clone(), &p);
        lu.verify_integrity(&a, 2).expect("clean before corruption");
        let v = lu.lu[(40, 40)];
        lu.lu[(40, 40)] = v + v.abs().max(1.0) * 1e-3;
        let err = lu.verify_integrity(&a, 2).expect_err("probe must catch corruption");
        assert!(matches!(err, FactorError::Corrupted { .. }), "got {err:?}");

        let mut qr = caqr(a.clone(), &p);
        qr.verify_integrity(&a, 3).expect("clean before corruption");
        let v = qr.a[(10, 30)];
        qr.a[(10, 30)] = v + v.abs().max(1.0) * 1e-3;
        assert!(qr.verify_integrity(&a, 3).is_err(), "QR probe must catch corruption");
    }

    #[test]
    fn probe_rejects_nan_poisoned_factors() {
        let a = random_uniform(64, 64, &mut seeded_rng(6));
        let p = CaParams::new(16, 4, 1);
        let mut lu = calu(a.clone(), &p);
        lu.lu[(8, 8)] = f64::NAN;
        assert!(lu.verify_integrity(&a, 4).is_err());
    }
}
