//! Tournament pivoting (ca-pivoting): the preprocessing step of TSLU.
//!
//! Every node of the reduction tree — leaf or internal — performs Gaussian
//! elimination with partial pivoting on a *copy* of its input rows and keeps
//! the rows GEPP chose as pivots (`f(A)` in the paper's §II notation: the
//! first `b` rows of `ΠA`). The originals travel up the tree untouched; the
//! factored copy of the final winner doubles as the packed `L_KK\U_KK`
//! factors of the panel's top block (Algorithm 1 line 19).

use ca_kernels::{getf2, rgetf2, Kernel, LuInfo};
use ca_matrix::{MatView, Matrix, Scalar};

/// The outcome of one tournament node: `k = min(rows, cols)` selected rows.
#[derive(Clone, Debug)]
pub struct Selected<T: Scalar = f64> {
    /// The selected rows with their **original** values, in pivot order
    /// (`k × n`): what the next tree level stacks.
    pub rows: Matrix<T>,
    /// Global row index of each selected row.
    pub idx: Vec<usize>,
    /// Packed `L\U` factors of `rows` (`k × n`): GEPP of the node input,
    /// restricted to the winning rows. At the tournament root this is the
    /// panel's `L_KK\U_KK` block.
    pub packed: Matrix<T>,
    /// First exactly-zero pivot column, if the node input was rank deficient.
    pub breakdown: Option<usize>,
}

/// Runs one tournament node on `stack` (the stacked candidate rows, or a
/// leaf's block of the panel), whose rows have global indices `idx`.
///
/// `recursive` selects the GEPP kernel: recursive `rgetf2` (the paper's
/// choice) or BLAS2 `getf2`.
///
/// # Panics
/// If `idx.len() != stack.nrows()` or `stack` is empty.
pub fn select<T: Kernel>(stack: MatView<'_, T>, idx: &[usize], recursive: bool) -> Selected<T> {
    let s = stack.nrows();
    let n = stack.ncols();
    assert_eq!(idx.len(), s, "one global index per stacked row");
    assert!(s > 0 && n > 0, "empty tournament node");

    let mut work = Matrix::zeros(s, n);
    work.view_mut().copy_from(stack);
    let LuInfo { pivots, first_zero_pivot } = if recursive {
        rgetf2(work.view_mut())
    } else {
        getf2(work.view_mut())
    };
    let perm = pivots.to_permutation(s);
    let k = s.min(n);

    let mut rows = Matrix::zeros(k, n);
    let mut out_idx = Vec::with_capacity(k);
    for i in 0..k {
        let src = perm[i];
        for j in 0..n {
            rows[(i, j)] = stack.at(src, j);
        }
        out_idx.push(idx[src]);
    }
    let packed = Matrix::from_fn(k, n, |i, j| work[(i, j)]);
    Selected { rows, idx: out_idx, packed, breakdown: first_zero_pivot }
}

/// Stacks the `rows` matrices and `idx` lists of several [`Selected`]
/// outcomes (in participant order) for the next tree level.
pub fn stack_candidates<T: Scalar>(parts: &[&Selected<T>]) -> (Matrix<T>, Vec<usize>) {
    assert!(!parts.is_empty(), "nothing to stack");
    let views: Vec<MatView<'_, T>> = parts.iter().map(|p| p.rows.view()).collect();
    let stacked = Matrix::vstack(&views);
    let idx = parts.iter().flat_map(|p| p.idx.iter().copied()).collect();
    (stacked, idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::seeded_rng;

    #[test]
    fn single_block_tournament_equals_gepp_pivots() {
        let a = ca_matrix::random_uniform(12, 4, &mut seeded_rng(1));
        let sel = select(a.view(), &(0..12).collect::<Vec<_>>(), true);
        // Reference GEPP.
        let mut w = a.clone();
        let info = ca_kernels::getf2(w.view_mut());
        let perm = info.pivots.to_permutation(12);
        assert_eq!(sel.idx, perm[..4].to_vec());
        // Selected rows carry original values.
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(sel.rows[(i, j)], a[(perm[i], j)]);
            }
        }
        // Packed factors reproduce the winning rows: rows = L * U.
        let l = sel.packed.unit_lower();
        let u = sel.packed.upper();
        let lu = l.matmul(&u);
        let diff = lu.sub_matrix(&sel.rows);
        assert!(ca_matrix::norm_max(diff.view()) < 1e-13);
    }

    #[test]
    fn two_level_tournament_selects_strong_pivots() {
        // Build a matrix whose largest entries sit in the bottom block; a
        // two-node tournament must surface them.
        let mut a = ca_matrix::random_uniform(8, 2, &mut seeded_rng(2));
        a[(6, 0)] = 100.0;
        a[(7, 1)] = 90.0;
        let idx: Vec<usize> = (0..8).collect();
        let top = select(a.block(0, 0, 4, 2), &idx[..4], true);
        let bot = select(a.block(4, 0, 4, 2), &idx[4..], true);
        let (stack, sidx) = stack_candidates(&[&top, &bot]);
        let root = select(stack.view(), &sidx, true);
        assert_eq!(root.idx[0], 6, "first pivot must be the 100.0 row");
        assert!(root.idx.contains(&7) || root.idx.contains(&6));
    }

    #[test]
    fn deficient_leaf_still_yields_candidates() {
        // A rank-1 leaf: GEPP hits zero pivots but must still return k rows.
        let a = ca_matrix::deficient_top_block(8, 2, &mut seeded_rng(3));
        let leaf = select(a.block(0, 0, 2, 2), &[0, 1], false);
        assert_eq!(leaf.idx.len(), 2);
        assert!(leaf.breakdown.is_some());
    }

    #[test]
    fn tournament_winner_invariant_under_block_order() {
        // The *set* of winning rows may differ between tree shapes, but each
        // winner must make the panel factorizable: check |det| of winner
        // block is nonzero for a generic matrix, whatever the grouping.
        let a = ca_matrix::random_uniform(16, 3, &mut seeded_rng(4));
        let idx: Vec<usize> = (0..16).collect();
        let l1 = select(a.block(0, 0, 8, 3), &idx[..8], true);
        let l2 = select(a.block(8, 0, 8, 3), &idx[8..], true);
        let (s, si) = stack_candidates(&[&l1, &l2]);
        let root = select(s.view(), &si, true);
        assert_eq!(root.idx.len(), 3);
        assert!(root.breakdown.is_none());
        // U diagonal (packed upper) nonzero.
        for i in 0..3 {
            assert!(root.packed[(i, i)].abs() > 1e-12);
        }
    }

    #[test]
    fn wide_node_selects_row_count_pivots() {
        // s < n: a 2-row, 5-column node selects 2 rows.
        let a = ca_matrix::random_uniform(2, 5, &mut seeded_rng(5));
        let sel = select(a.view(), &[10, 11], false);
        assert_eq!(sel.idx.len(), 2);
        assert_eq!(sel.rows.nrows(), 2);
        assert_eq!(sel.packed.ncols(), 5);
    }

    #[test]
    fn stack_preserves_order_and_indices() {
        let a = ca_matrix::random_uniform(4, 2, &mut seeded_rng(6));
        let s1 = select(a.block(0, 0, 2, 2), &[0, 1], false);
        let s2 = select(a.block(2, 0, 2, 2), &[2, 3], false);
        let (m, idx) = stack_candidates(&[&s1, &s2]);
        assert_eq!(m.nrows(), 4);
        assert_eq!(idx.len(), 4);
        assert_eq!(&idx[..2], &s1.idx[..]);
        assert_eq!(&idx[2..], &s2.idx[..]);
    }
}
