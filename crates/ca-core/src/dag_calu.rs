//! Task-graph construction and parallel execution of multithreaded CALU
//! (Algorithm 1 of the paper).
//!
//! Tasks follow the paper's P/L/U/S decomposition:
//! * `P` — tournament-pivoting steps: one leaf GEPP per row group, then one
//!   task per reduction-tree node; the final node additionally applies the
//!   winning interchanges to the panel and writes the packed `L_KK\U_KK`
//!   block (Algorithm 1 lines 8, 14, 19).
//! * `L` — per-group `dtrsm` producing the panel's `L` blocks (line 24).
//! * `U` — per trailing block column: interchanges + `L_KK⁻¹` solve
//!   (line 28).
//! * `S` — per (group × block column) `dgemm` trailing update (line 36).
//! * `W` — deferred left-side interchanges, one task per finished block
//!   column (line 41).
//!
//! Dependencies are derived from block-level reads/writes via
//! [`BlockTracker`], which reproduces the dependency structure of Figure 1.
//! Priorities implement the lookahead-of-1 rule from §III.

use crate::calu::{LuFactors, LuStats};
use crate::error::FactorError;
use ca_sched::{row_blocks, AccessMap, BlockTracker, CheckedError, SoundnessError, VerifyReport};
use crate::params::{num_panels, partition_rows, CaParams, RowPartition};
use crate::tournament::{select, stack_candidates, Selected};
use crate::tree::{reduction_schedule, ReduceNode};
use crate::tslu::{apply_growth_policy, pivot_seq_from_targets};
use ca_kernels::{flops, traffic};
use ca_kernels::{
    gemm, gemm_packed, pack_a_slab, pack_b_panel, trsm_left_lower_unit,
    trsm_right_upper_notrans, Trans,
};
use ca_matrix::{AlignedBuf, Matrix, PivotSeq, SharedMatrix};
use ca_sched::{run_graph, ExecStats, Job, KernelClass, TaskGraph, TaskId, TaskKind, TaskLabel, TaskMeta};
use std::sync::OnceLock;

/// What a CALU task does (payload of the task graph).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field names (step/grp/node/jblk) are the documentation
pub enum CaluTask {
    /// Leaf GEPP of row group `grp` of panel `step`. When the panel has a
    /// single group this doubles as the root.
    Leaf { step: usize, grp: usize },
    /// Reduction node `node` (index into the panel's schedule); the last
    /// node is the root and also pivots the panel + writes `L_KK\U_KK`.
    Node { step: usize, node: usize },
    /// `L` block of group `grp`.
    LBlock { step: usize, grp: usize },
    /// Interchanges + `U` block row for trailing block columns
    /// `jblk .. jblk + jcnt` (`jcnt > 1` under §V two-level blocking).
    URow { step: usize, jblk: usize, jcnt: usize },
    /// Trailing update of (group `grp`) × (block columns `jblk..jblk+jcnt`).
    Update { step: usize, grp: usize, jblk: usize, jcnt: usize },
    /// par_gemm sub-DAG: packs slab `slab` of group `grp`'s L block into its
    /// microkernel image — once per step, shared by every column chunk's
    /// tile tasks (the "pack A once per `jc` sweep" rule of the BLIS loops).
    UPackA { step: usize, grp: usize, slab: usize },
    /// par_gemm sub-DAG: packs panel `panel` of the U row chunk at block
    /// columns `jblk..jblk+jcnt`, shared by every group's tile tasks.
    UPackB { step: usize, jblk: usize, jcnt: usize, panel: usize },
    /// par_gemm sub-DAG: one packed-tile trailing update — (slab `slab` of
    /// group `grp`) × (panel `panel` of chunk `jblk..jblk+jcnt`). Replaces
    /// the monolithic [`CaluTask::Update`] when the group's update height
    /// reaches [`CaParams::par_update_rows`].
    UTile { step: usize, grp: usize, jblk: usize, jcnt: usize, slab: usize, panel: usize },
    /// Deferred left-side interchanges for finished block column `jblk`.
    LeftSwap { jblk: usize },
}

/// Tile geometry of the decomposed trailing update: the serial GEMM cache
/// blocks ([`ca_kernels::MC`] rows × [`ca_kernels::NC`] columns) rounded up
/// to whole `b`-blocks, so each tile's block footprint is exact —
/// neighbouring tiles never share a block, block- and rect-granularity
/// verification agree, and no false serialization edges appear between
/// tiles of one group.
fn par_tile(b: usize) -> (usize, usize) {
    (ca_kernels::MC.next_multiple_of(b), ca_kernels::NC.next_multiple_of(b))
}

/// Pack-image storage for one panel's decomposed trailing updates. Each
/// slot is written exactly once by its pack task and then read (shared) by
/// the tile tasks the graph orders after it. The images are side storage
/// the block tracker cannot see, which is why `build()` wires every
/// pack → tile dependence as an explicit graph edge.
pub(crate) struct ParUpdate {
    /// Rows per slab (multiple of `b`, see [`par_tile`]).
    slab_h: usize,
    /// Columns per panel (multiple of `b`).
    pan_w: usize,
    /// Per-group slot offsets: group `grp`'s slab images live at
    /// `apacks[abase[grp]..abase[grp + 1]]` (empty range for groups below
    /// the decomposition threshold).
    abase: Vec<usize>,
    /// Packed-A slab images.
    apacks: Vec<OnceLock<AlignedBuf>>,
    /// `(jblk, base)` pairs: the column chunk at `jblk` keeps its panel `p`
    /// image at `bpacks[base + p]`.
    bbase: Vec<(usize, usize)>,
    /// Packed-B panel images.
    bpacks: Vec<OnceLock<AlignedBuf>>,
}

impl ParUpdate {
    fn aslot(&self, grp: usize, slab: usize) -> &OnceLock<AlignedBuf> {
        &self.apacks[self.abase[grp] + slab]
    }

    fn bslot(&self, jblk: usize, panel: usize) -> &OnceLock<AlignedBuf> {
        let base =
            self.bbase.iter().find(|&&(j, _)| j == jblk).expect("chunk has no packed-B images").1;
        &self.bpacks[base + panel]
    }
}

/// Per-panel shared state filled in by panel tasks at run time.
pub(crate) struct PanelCtx {
    k0: usize,
    /// Panel width (columns).
    w: usize,
    /// Factored rows/columns this panel (`min(w, m - k0)`).
    k: usize,
    part: RowPartition,
    schedule: Vec<ReduceNode>,
    /// Candidate dataflow slots: leaves at `0..g`, node `i` at `g + i`.
    results: Vec<OnceLock<Selected>>,
    /// For each schedule node, the result-slot indices it consumes.
    node_inputs: Vec<Vec<usize>>,
    /// Winning interchanges (offset `k0`), written by the root task.
    pivots: OnceLock<PivotSeq>,
    /// Panel breakdown column (panel-local), written by the root task.
    breakdown: OnceLock<Option<usize>>,
    /// `(growth estimate, GEPP fallback happened)`, written by the root.
    growth: OnceLock<(f64, bool)>,
    /// Pack-image slots of this panel's decomposed trailing updates.
    par: ParUpdate,
}

/// Everything needed to execute a built CALU DAG.
pub(crate) struct CaluPlan {
    pub graph: TaskGraph<CaluTask>,
    /// Declared block footprints of every task (for verification / checked
    /// execution).
    pub access: AccessMap,
    pub panels: Vec<PanelCtx>,
    m: usize,
    n: usize,
    pub(crate) b: usize,
    recursive_leaves: bool,
    growth_limit: f64,
}

/// Priority scheme (see module docs of `ca-sched`): panel work of step `K`
/// outranks everything later; the lookahead rule boosts the updates of block
/// column `K+1` above the rest so panel `K+1` becomes ready early, while
/// non-critical updates of step `K` rank *below* panel `K+1`.
fn prio(nsteps: usize, step: usize, lookahead: bool, kind: TaskKind, jblk: usize) -> i64 {
    let critical = ((nsteps - step) as i64) * 1000;
    match kind {
        TaskKind::Panel => critical + 900,
        TaskKind::LBlock => critical + 850,
        TaskKind::URow | TaskKind::Update => {
            let next = lookahead && jblk == step + 1;
            if next {
                critical + if kind == TaskKind::URow { 800 } else { 790 }
            } else {
                critical - if kind == TaskKind::URow { 400 } else { 500 }
            }
        }
        _ => 0,
    }
}

/// Builds the CALU task graph for an `m × n` matrix with parameters `p`.
pub(crate) fn build(m: usize, n: usize, p: &CaParams) -> CaluPlan {
    assert!(m > 0 && n > 0, "empty matrix");
    ca_sched::sched_counters().factor_graphs_built.inc();
    let b = p.b;
    let nsteps = num_panels(m, n, b);
    let nb = n.div_ceil(b);

    let mut graph: TaskGraph<CaluTask> = TaskGraph::new();
    // Element geometry so the retained footprints support rect-granularity
    // verification and the minimality lints, not just the block view.
    let mut tracker = BlockTracker::with_geometry(b, m, n);
    let mut panels: Vec<PanelCtx> = Vec::with_capacity(nsteps);
    let mut root_ids: Vec<TaskId> = Vec::with_capacity(nsteps);

    for step in 0..nsteps {
        let k0 = step * b;
        let w = b.min(n - k0);
        let k = w.min(m - k0);
        let part = partition_rows(m, k0, b, p.tr);
        let g = part.ngroups();
        let schedule = reduction_schedule(g, p.tree);

        // --- P tasks: leaves.
        let mut slot_task: Vec<TaskId> = Vec::with_capacity(g);
        let mut slot_res: Vec<usize> = (0..g).collect();
        for grp in 0..g {
            let rows = part.group(grp);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Panel, step, grp, step),
                flops::getrf(rows.len(), w),
            )
            .with_bytes(if p.leaf_blas2 {
                traffic::getf2(rows.len(), w)
            } else {
                traffic::rgetf2(rows.len(), w)
            })
            .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Panel, step))
            .with_class(if p.leaf_blas2 { KernelClass::LuBlas2 } else { KernelClass::LuRecursive });
            let id = graph.add_task(meta, CaluTask::Leaf { step, grp });
            tracker.read(&mut graph, id, row_blocks(rows, b), step..step + 1);
            slot_task.push(id);
        }

        // --- P tasks: reduction nodes (last one is the root).
        let mut node_inputs: Vec<Vec<usize>> = Vec::with_capacity(schedule.len());
        for (ni, node) in schedule.iter().enumerate() {
            let stacked_rows: usize = node.participants.len() * k.min(b);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Panel, step, g + ni, step),
                flops::getrf(stacked_rows.max(1), w),
            )
            .with_bytes(traffic::rgetf2(stacked_rows.max(1), w))
            .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Panel, step))
            .with_class(KernelClass::LuRecursive);
            let id = graph.add_task(meta, CaluTask::Node { step, node: ni });
            node_inputs.push(node.participants.iter().map(|&pt| slot_res[pt]).collect());
            for &pt in &node.participants {
                graph.add_dep(slot_task[pt], id);
            }
            slot_task[node.participants[0]] = id;
            slot_res[node.participants[0]] = g + ni;
            if ni + 1 == schedule.len() {
                // Root: pivots the panel and writes the packed top block.
                tracker.write(&mut graph, id, row_blocks(k0..m, b), step..step + 1);
            }
        }
        let root_id = if schedule.is_empty() {
            // Single group: the leaf is the root; it also writes the panel.
            let id = slot_task[0];
            tracker.write(&mut graph, id, row_blocks(k0..m, b), step..step + 1);
            id
        } else {
            slot_task[0]
        };
        root_ids.push(root_id);

        // --- L tasks.
        for grp in 0..g {
            let rows = part.group(grp);
            let lo = rows.start.max(k0 + k);
            if lo >= rows.end || k == 0 {
                continue;
            }
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::LBlock, step, grp, step),
                flops::trsm_right(rows.end - lo, k),
            )
            .with_bytes(traffic::trsm_right(rows.end - lo, k))
            .with_priority(prio(nsteps, step, p.lookahead, TaskKind::LBlock, step))
            .with_class(KernelClass::Trsm);
            let id = graph.add_task(meta, CaluTask::LBlock { step, grp });
            tracker.read(&mut graph, id, step..step + 1, step..step + 1); // U_KK
            tracker.write(&mut graph, id, row_blocks(lo..rows.end, b), step..step + 1);
        }

        // --- U tasks (interchange + triangular solve per trailing column
        //     chunk; chunk width = p.update_blocks block columns, §V).
        let mut jblk = step + 1;
        while jblk < nb {
            let jcnt = p.update_blocks.min(nb - jblk);
            let jc0 = jblk * b;
            let wj = (jcnt * b).min(n - jc0);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::URow, step, 0, jblk),
                flops::trsm_left(k, wj),
            )
            .with_bytes(traffic::trsm_left(k, wj) + traffic::laswp(k, wj))
            .with_priority(prio(nsteps, step, p.lookahead, TaskKind::URow, jblk))
            .with_class(KernelClass::Trsm);
            let id = graph.add_task(meta, CaluTask::URow { step, jblk, jcnt });
            graph.add_dep(root_id, id); // pivots
            tracker.read(&mut graph, id, step..step + 1, step..step + 1); // L_KK
            tracker.write(&mut graph, id, row_blocks(k0..m, b), jblk..jblk + jcnt);
            jblk += jcnt;
        }

        // --- S tasks (trailing updates, same column chunking). Groups whose
        //     update height reaches `p.par_update_rows` are decomposed into
        //     the par_gemm sub-DAG: pack-A once per slab per group (shared
        //     across every column chunk — pack A once per `jc` sweep),
        //     pack-B once per panel per chunk (shared across groups), one
        //     packed-tile GEMM task per slab × panel. Results are bitwise
        //     identical to the monolithic `dgemm`; only the task
        //     granularity changes.
        let (slab_h, pan_w) = par_tile(b);
        let has_trailing = k > 0 && step + 1 < nb;
        let decompose: Vec<bool> = (0..g)
            .map(|grp| {
                let rows = part.group(grp);
                let lo = rows.start.max(k0 + k);
                has_trailing && lo < rows.end && rows.end - lo >= p.par_update_rows
            })
            .collect();

        // Pack-A tasks and the per-group slot layout. Reading the L slab
        // orders each pack after the group's LBlock solve via the tracker.
        let mut abase = vec![0usize; g + 1];
        let mut apack_ids: Vec<TaskId> = Vec::new();
        for grp in 0..g {
            abase[grp] = apack_ids.len();
            if !decompose[grp] {
                continue;
            }
            let rows = part.group(grp);
            let lo = rows.start.max(k0 + k);
            for slab in 0..(rows.end - lo).div_ceil(slab_h) {
                let slo = lo + slab * slab_h;
                let mb = slab_h.min(rows.end - slo);
                let meta = TaskMeta::new(TaskLabel::new(TaskKind::Other, step, grp, slab), 0.0)
                    .with_bytes(traffic::pack(mb, k))
                    .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Update, step + 1) + 5)
                    .with_class(KernelClass::Memory);
                let id = graph.add_task(meta, CaluTask::UPackA { step, grp, slab });
                tracker.read(&mut graph, id, row_blocks(slo..slo + mb, b), step..step + 1);
                apack_ids.push(id);
            }
        }
        abase[g] = apack_ids.len();
        let any_decomposed = !apack_ids.is_empty();

        let mut bbase: Vec<(usize, usize)> = Vec::new();
        let mut nbpacks = 0usize;
        let mut jblk = step + 1;
        while jblk < nb {
            let jcnt = p.update_blocks.min(nb - jblk);
            let jc0 = jblk * b;
            let wj = (jcnt * b).min(n - jc0);
            // Pack-B tasks of this chunk; reading the U row orders each
            // after the chunk's URow solve.
            let mut bpack_ids: Vec<TaskId> = Vec::new();
            if any_decomposed {
                bbase.push((jblk, nbpacks));
                for panel in 0..wj.div_ceil(pan_w) {
                    let pj0 = jc0 + panel * pan_w;
                    let nbp = pan_w.min(jc0 + wj - pj0);
                    let meta =
                        TaskMeta::new(TaskLabel::new(TaskKind::Other, step, g + panel, jblk), 0.0)
                            .with_bytes(traffic::pack(k, nbp))
                            .with_priority(
                                prio(nsteps, step, p.lookahead, TaskKind::Update, jblk) + 5,
                            )
                            .with_class(KernelClass::Memory);
                    let id = graph.add_task(meta, CaluTask::UPackB { step, jblk, jcnt, panel });
                    tracker.read(&mut graph, id, step..step + 1, row_blocks(pj0..pj0 + nbp, b));
                    bpack_ids.push(id);
                }
                nbpacks += bpack_ids.len();
            }
            for grp in 0..g {
                let rows = part.group(grp);
                let lo = rows.start.max(k0 + k);
                if lo >= rows.end || k == 0 {
                    continue;
                }
                if decompose[grp] {
                    for slab in 0..(rows.end - lo).div_ceil(slab_h) {
                        let slo = lo + slab * slab_h;
                        let mb = slab_h.min(rows.end - slo);
                        for (panel, &bid) in bpack_ids.iter().enumerate() {
                            let pj0 = jc0 + panel * pan_w;
                            let nbp = pan_w.min(jc0 + wj - pj0);
                            let meta = TaskMeta::new(
                                TaskLabel::new(TaskKind::Update, step, grp, jblk),
                                flops::gemm(mb, nbp, k),
                            )
                            .with_bytes(traffic::gemm_packed(mb, nbp, k))
                            .with_priority(
                                prio(nsteps, step, p.lookahead, TaskKind::Update, jblk),
                            )
                            .with_class(KernelClass::Gemm);
                            let id = graph.add_task(
                                meta,
                                CaluTask::UTile { step, grp, jblk, jcnt, slab, panel },
                            );
                            // The packed images are side storage the tracker
                            // cannot see — wire the dataflow explicitly.
                            graph.add_dep(apack_ids[abase[grp] + slab], id);
                            graph.add_dep(bid, id);
                            tracker.write(
                                &mut graph,
                                id,
                                row_blocks(slo..slo + mb, b),
                                row_blocks(pj0..pj0 + nbp, b),
                            );
                        }
                    }
                } else {
                    let meta = TaskMeta::new(
                        TaskLabel::new(TaskKind::Update, step, grp, jblk),
                        flops::gemm(rows.end - lo, wj, k),
                    )
                    .with_bytes(traffic::gemm(rows.end - lo, wj, k))
                    .with_priority(prio(nsteps, step, p.lookahead, TaskKind::Update, jblk))
                    .with_class(KernelClass::Gemm);
                    let id = graph.add_task(meta, CaluTask::Update { step, grp, jblk, jcnt });
                    tracker.read(&mut graph, id, row_blocks(lo..rows.end, b), step..step + 1);
                    tracker.read(&mut graph, id, step..step + 1, jblk..jblk + jcnt);
                    tracker.write(&mut graph, id, row_blocks(lo..rows.end, b), jblk..jblk + jcnt);
                }
            }
            jblk += jcnt;
        }

        let results = (0..g + schedule.len()).map(|_| OnceLock::new()).collect();
        panels.push(PanelCtx {
            k0,
            w,
            k,
            part,
            schedule,
            results,
            node_inputs,
            pivots: OnceLock::new(),
            breakdown: OnceLock::new(),
            growth: OnceLock::new(),
            par: ParUpdate {
                slab_h,
                pan_w,
                abase,
                apacks: (0..apack_ids.len()).map(|_| OnceLock::new()).collect(),
                bbase,
                bpacks: (0..nbpacks).map(|_| OnceLock::new()).collect(),
            },
        });
    }

    // --- Deferred left-side interchanges (Algorithm 1 line 41).
    for jblk in 0..nsteps.saturating_sub(1) {
        let swap_rows: usize = (jblk + 1..nsteps).map(|k| b.min(m.min(n) - k * b)).sum();
        let meta = TaskMeta::new(TaskLabel::new(TaskKind::Swap, nsteps, 0, jblk), 0.0)
            .with_bytes(traffic::laswp(swap_rows, b.min(n - jblk * b)))
            .with_class(KernelClass::Memory);
        let id = graph.add_task(meta, CaluTask::LeftSwap { jblk });
        for (step, &rid) in root_ids.iter().enumerate().skip(jblk + 1) {
            let _ = step;
            graph.add_dep(rid, id);
        }
        tracker.write(&mut graph, id, row_blocks((jblk + 1) * b..m, b), jblk..jblk + 1);
    }

    // The tracker's per-block reasoning cannot see orderings already implied
    // by the explicitly added edges (reduction tree, pivot broadcast), so it
    // over-wires conflict edges a path already covers. Reduce to the minimal
    // equivalent DAG: ready times and conflict orderings are unchanged, and
    // the schedulers track fewer dependences.
    ca_sched::reduce_transitive_edges(&mut graph);

    CaluPlan {
        graph,
        access: tracker.into_access_map(),
        panels,
        m,
        n,
        b,
        recursive_leaves: !p.leaf_blas2,
        growth_limit: p.growth_limit,
    }
}

impl CaluPlan {
    /// Executes one task against the shared matrix (called from workers).
    // DAG executor: every access falls inside the footprint declared in
    // build(), which `verify_graph` proves conflict-ordered.
    #[allow(clippy::disallowed_methods)]
    pub(crate) fn exec(&self, a: &SharedMatrix, t: CaluTask) {
        let m = self.m;
        let n = self.n;
        let b = self.b;
        match t {
            CaluTask::Leaf { step, grp } => {
                let ctx = &self.panels[step];
                let rows = ctx.part.group(grp);
                // SAFETY: the DAG orders this read after the last writer of
                // these panel blocks and before any subsequent writer.
                let block = unsafe { a.block(rows.start, ctx.k0, rows.len(), ctx.w) };
                let idx: Vec<usize> = rows.collect();
                let sel = select(block, &idx, self.recursive_leaves);
                if ctx.schedule.is_empty() {
                    self.finish_root(a, step, sel);
                } else {
                    ctx.results[grp].set(sel).expect("leaf slot already set");
                }
            }
            CaluTask::Node { step, node } => {
                let ctx = &self.panels[step];
                let inputs: Vec<&Selected> = ctx.node_inputs[node]
                    .iter()
                    .map(|&r| ctx.results[r].get().expect("candidate not ready"))
                    .collect();
                let (stacked, idx) = stack_candidates(&inputs);
                let sel = select(stacked.view(), &idx, self.recursive_leaves);
                if node + 1 == ctx.schedule.len() {
                    self.finish_root(a, step, sel);
                } else {
                    let g = ctx.part.ngroups();
                    ctx.results[g + node].set(sel).expect("node slot already set");
                }
            }
            CaluTask::LBlock { step, grp } => {
                let ctx = &self.panels[step];
                let rows = ctx.part.group(grp);
                let lo = rows.start.max(ctx.k0 + ctx.k);
                // SAFETY: disjoint from all concurrent tasks per the DAG.
                let ukk = unsafe { a.block(ctx.k0, ctx.k0, ctx.k, ctx.k) };
                let lb = unsafe { a.block_mut(lo, ctx.k0, rows.end - lo, ctx.k) };
                trsm_right_upper_notrans(ukk, lb);
            }
            CaluTask::URow { step, jblk, jcnt } => {
                let ctx = &self.panels[step];
                let jc0 = jblk * b;
                let wj = (jcnt * b).min(n - jc0);
                let pivots = ctx.pivots.get().expect("pivots not ready");
                // SAFETY: this task is the only one touching column block
                // jblk rows k0.. at this point in the schedule.
                let mut col = unsafe { a.block_mut(ctx.k0, jc0, m - ctx.k0, wj) };
                local_seq(pivots, ctx.k0).apply(col.rb());
                let lkk = unsafe { a.block(ctx.k0, ctx.k0, ctx.k, ctx.k) };
                let urow = col.into_sub(0, 0, ctx.k, wj);
                trsm_left_lower_unit(lkk, urow);
            }
            CaluTask::Update { step, grp, jblk, jcnt } => {
                let ctx = &self.panels[step];
                let jc0 = jblk * b;
                let wj = (jcnt * b).min(n - jc0);
                let rows = ctx.part.group(grp);
                let lo = rows.start.max(ctx.k0 + ctx.k);
                // SAFETY: reads L (final) and U (final); writes blocks only
                // this task may touch per the DAG.
                let l = unsafe { a.block(lo, ctx.k0, rows.end - lo, ctx.k) };
                let u = unsafe { a.block(ctx.k0, jc0, ctx.k, wj) };
                let c = unsafe { a.block_mut(lo, jc0, rows.end - lo, wj) };
                gemm(Trans::No, Trans::No, -1.0, l, u, 1.0, c);
            }
            CaluTask::UPackA { step, grp, slab } => {
                let ctx = &self.panels[step];
                let rows = ctx.part.group(grp);
                let lo = rows.start.max(ctx.k0 + ctx.k);
                let slo = lo + slab * ctx.par.slab_h;
                let mb = ctx.par.slab_h.min(rows.end - slo);
                // SAFETY: reads the group's final L slab — the DAG orders
                // this after the LBlock solve and before any later writer.
                let l = unsafe { a.block(slo, ctx.k0, mb, ctx.k) };
                let mut buf = AlignedBuf::new();
                pack_a_slab(Trans::No, l, 0, mb, &mut buf);
                // Ignore a lost set: a replayed task repacks identical bytes.
                let _ = ctx.par.aslot(grp, slab).set(buf);
            }
            CaluTask::UPackB { step, jblk, jcnt, panel } => {
                let ctx = &self.panels[step];
                let jc0 = jblk * b;
                let wj = (jcnt * b).min(n - jc0);
                let pj0 = jc0 + panel * ctx.par.pan_w;
                let nbp = ctx.par.pan_w.min(jc0 + wj - pj0);
                // SAFETY: reads the final U row panel (after URow's solve).
                let u = unsafe { a.block(ctx.k0, pj0, ctx.k, nbp) };
                let mut buf = AlignedBuf::new();
                pack_b_panel(Trans::No, u, 0, nbp, &mut buf);
                let _ = ctx.par.bslot(jblk, panel).set(buf);
            }
            CaluTask::UTile { step, grp, jblk, jcnt, slab, panel } => {
                let ctx = &self.panels[step];
                let rows = ctx.part.group(grp);
                let lo = rows.start.max(ctx.k0 + ctx.k);
                let slo = lo + slab * ctx.par.slab_h;
                let mb = ctx.par.slab_h.min(rows.end - slo);
                let jc0 = jblk * b;
                let wj = (jcnt * b).min(n - jc0);
                let pj0 = jc0 + panel * ctx.par.pan_w;
                let nbp = ctx.par.pan_w.min(jc0 + wj - pj0);
                let apack = ctx.par.aslot(grp, slab).get().expect("A image not packed");
                let bpack = ctx.par.bslot(jblk, panel).get().expect("B image not packed");
                // SAFETY: writes only this tile's C window, which the DAG
                // orders against every conflicting task; `beta = 1` makes
                // the packed path replay the monolithic gemm bitwise.
                let c = unsafe { a.block_mut(slo, pj0, mb, nbp) };
                gemm_packed(-1.0, apack, bpack, ctx.k, 1.0, c);
            }
            CaluTask::LeftSwap { jblk } => {
                let jc0 = jblk * b;
                let wj = b.min(n - jc0);
                for ctx in &self.panels[jblk + 1..] {
                    let pivots = ctx.pivots.get().expect("pivots not ready");
                    // SAFETY: exclusive writer of this finished column block.
                    let col = unsafe { a.block_mut(ctx.k0, jc0, m - ctx.k0, wj) };
                    local_seq(pivots, ctx.k0).apply(col);
                }
            }
        }
    }

    /// Root-task epilogue: record pivots, interchange the panel, write the
    /// packed `L_KK\U_KK` block.
    // DAG executor: accesses stay inside the root task's declared footprint.
    #[allow(clippy::disallowed_methods)]
    fn finish_root(&self, a: &SharedMatrix, step: usize, sel: Selected) {
        let ctx = &self.panels[step];
        let m = self.m;
        // Growth policy before any write-back: the panel's active region
        // still holds its pre-interchange values here.
        let (sel, growth, fallback) = {
            // SAFETY: same ordering argument as the writes below — the root
            // is ordered after every other reader/writer of the panel.
            let active = unsafe { a.block(ctx.k0, ctx.k0, m - ctx.k0, ctx.w) };
            apply_growth_policy(active, ctx.k0, sel, self.growth_limit, self.recursive_leaves)
        };
        let pivots = pivot_seq_from_targets(ctx.k0, &sel.idx);
        // SAFETY: the root is ordered after every reader/writer of the
        // panel's active blocks and before every subsequent consumer.
        let mut panel = unsafe { a.block_mut(ctx.k0, ctx.k0, m - ctx.k0, ctx.w) };
        local_seq(&pivots, ctx.k0).apply(panel.rb());
        panel.sub(0, 0, ctx.k, ctx.w).copy_from(sel.packed.view());
        ctx.breakdown.set(sel.breakdown).expect("root ran twice");
        ctx.growth.set((growth, fallback)).expect("root ran twice");
        ctx.pivots.set(pivots).expect("root ran twice");
    }
}

/// Rebases a pivot sequence to a view starting at global row `k0`.
fn local_seq(p: &PivotSeq, k0: usize) -> PivotSeq {
    PivotSeq { offset: p.offset - k0, ipiv: p.ipiv.iter().map(|&x| x - k0).collect() }
}

/// Runs multithreaded CALU, consuming `a`. Returns factors plus executor
/// statistics (timeline usable for trace figures).
pub(crate) fn run(a: Matrix, p: &CaParams) -> (LuFactors, ExecStats) {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let stats = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => run_graph(jobs, p.threads),
        crate::params::Scheduler::WorkStealing => ca_sched::run_graph_stealing(jobs, p.threads),
    };
    (collect_factors(&plan, shared), stats)
}

/// Fallible variant of [`run`]: executes on the failure-aware pool (under
/// the given fault plan), mapping a worker failure to
/// [`FactorError::TaskFailed`] without ever touching the panels'
/// not-yet-filled result slots.
pub(crate) fn try_run(
    a: Matrix,
    p: &CaParams,
    faults: &ca_sched::FaultPlan,
) -> Result<(LuFactors, ExecStats), FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::try_run_graph_with_faults(jobs, p.threads, faults)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing_with_faults(jobs, p.threads, faults)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(&plan, shared), stats)),
        Err(e) => Err(FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Checked-mode variant of [`try_run`]: statically verifies the graph +
/// declared footprints, then executes under the dynamic race detector (a
/// shadow lease registry auditing every `SharedMatrix` block access). Any
/// violation maps to [`FactorError::Soundness`].
pub(crate) fn try_run_checked(
    a: Matrix,
    p: &CaParams,
) -> Result<(LuFactors, ExecStats), FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    ca_sched::verify_graph(&plan.graph, &plan.access)
        .map_err(|violation| FactorError::Soundness { violation })?;
    let registry = ca_sched::build_shadow_registry(&plan.graph, &plan.access, plan.b, m, n);
    let shared = SharedMatrix::with_shadow(a, registry.clone());

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::try_run_graph_checked(jobs, p.threads, &registry)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing_checked(jobs, p.threads, &registry)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(&plan, shared), stats)),
        Err(CheckedError::Soundness(violation)) => Err(FactorError::Soundness { violation }),
        Err(CheckedError::Exec(e)) => Err(FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Recovering variant of [`try_run`]: every task body is wrapped by
/// [`ca_sched::retrying_job`], which snapshots the task's declared
/// write-set (resolved from the plan's [`AccessMap`]) before each attempt
/// and, on failure or panic, restores it and replays under `policy`.
/// Successors are cancelled only once retries are exhausted. `chaos`
/// injects seeded failures/panics/delays/corruption for testing; pass
/// [`ca_sched::ChaosPlan::quiet`] for production runs.
pub(crate) fn try_run_recovering(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(LuFactors, ExecStats), FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|id, &spec| {
        let plan = &plan;
        let shared = &shared;
        let label = plan.graph.meta(id).label;
        let writes = ca_sched::write_set(&plan.access, id, plan.b, m, n);
        ca_sched::retrying_job(label, writes, shared, policy, chaos, counters, move || {
            plan.exec(shared, spec)
        })
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => ca_sched::try_run_graph(jobs, p.threads),
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing(jobs, p.threads)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(&plan, shared), stats)),
        Err(e) => Err(FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Checked-mode variant of [`try_run_recovering`]: the retry wrapper runs
/// under the shadow lease registry, so snapshot capture and write-set
/// restore are themselves audited against the declared footprints.
pub(crate) fn try_run_recovering_checked(
    a: Matrix,
    p: &CaParams,
    policy: ca_sched::RetryPolicy,
    chaos: &ca_sched::ChaosPlan,
    counters: &ca_sched::RecoveryCounters,
) -> Result<(LuFactors, ExecStats), FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    ca_sched::verify_graph(&plan.graph, &plan.access)
        .map_err(|violation| FactorError::Soundness { violation })?;
    let registry = ca_sched::build_shadow_registry(&plan.graph, &plan.access, plan.b, m, n);
    let shared = SharedMatrix::with_shadow(a, registry.clone());

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|id, &spec| {
        let plan = &plan;
        let shared = &shared;
        let label = plan.graph.meta(id).label;
        let writes = ca_sched::write_set(&plan.access, id, plan.b, m, n);
        ca_sched::retrying_job(label, writes, shared, policy, chaos, counters, move || {
            plan.exec(shared, spec)
        })
    });
    let result = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::try_run_graph_checked(jobs, p.threads, &registry)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::try_run_graph_stealing_checked(jobs, p.threads, &registry)
        }
    };
    match result {
        Ok(stats) => Ok((collect_factors(&plan, shared), stats)),
        Err(CheckedError::Soundness(violation)) => Err(FactorError::Soundness { violation }),
        Err(CheckedError::Exec(e)) => Err(FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Profiling variant of [`try_run`]: executes on the profiled pool matching
/// `p.scheduler` and returns the factors together with the full
/// [`ca_sched::Profile`] (lifecycle records, roofline attribution inputs,
/// queue/steal counters). A task failure maps to
/// [`FactorError::TaskFailed`] like [`try_run`].
pub(crate) fn profile_run(
    a: Matrix,
    p: &CaParams,
    faults: &ca_sched::FaultPlan,
) -> Result<(LuFactors, ca_sched::Profile), FactorError> {
    let m = a.nrows();
    let n = a.ncols();
    let plan = build(m, n, p);
    let shared = SharedMatrix::new(a);

    let jobs: TaskGraph<Job<'_>> = plan.graph.map_ref(|_, &spec| {
        let plan = &plan;
        let shared = &shared;
        ca_sched::job(move || plan.exec(shared, spec))
    });
    let (profile, failure) = match p.scheduler {
        crate::params::Scheduler::PriorityQueue => {
            ca_sched::profile_run_graph(jobs, p.threads, faults)
        }
        crate::params::Scheduler::WorkStealing => {
            ca_sched::profile_run_graph_stealing(jobs, p.threads, faults)
        }
    };
    match failure {
        None => Ok((collect_factors(&plan, shared), profile)),
        Some(e) => Err(FactorError::TaskFailed {
            label: e.label.to_string(),
            message: e.to_string(),
        }),
    }
}

/// Gathers the per-panel results once every task completed successfully.
pub(crate) fn collect_factors(plan: &CaluPlan, shared: SharedMatrix) -> LuFactors {
    let mut pivots = PivotSeq::new(0);
    let mut breakdown = None;
    let mut stats = LuStats::default();
    for ctx in &plan.panels {
        let pp = ctx.pivots.get().expect("panel pivots missing");
        pivots.extend(pp);
        if breakdown.is_none() {
            if let Some(c) = ctx.breakdown.get().copied().flatten() {
                breakdown = Some(ctx.k0 + c);
            }
        }
        let (g, fb) = ctx.growth.get().copied().expect("panel growth missing");
        stats.panel_growth.push(g);
        if fb {
            stats.fallback_panels.push(ctx.k0);
        }
    }
    let lu = shared.into_inner();
    LuFactors { lu, pivots, breakdown, stats }
}

/// Builds just the task graph (for the multicore simulator and DAG figures).
pub fn calu_task_graph(m: usize, n: usize, p: &CaParams) -> TaskGraph<CaluTask> {
    build(m, n, p).graph
}

/// Builds the task graph together with the declared block footprints, for
/// soundness verification ([`ca_sched::verify_graph`]) and checked
/// simulation.
pub fn calu_task_graph_with_access(
    m: usize,
    n: usize,
    p: &CaParams,
) -> (TaskGraph<CaluTask>, AccessMap) {
    let plan = build(m, n, p);
    (plan.graph, plan.access)
}

/// Statically verifies the CALU task graph for an `m × n` factorization:
/// structural invariants, every conflicting block pair ordered by a
/// happens-before path, and the §III lookahead priority rule.
pub fn verify_calu(m: usize, n: usize, p: &CaParams) -> Result<VerifyReport, SoundnessError> {
    verify_calu_with(m, n, p, &ca_sched::VerifyOptions::default())
}

/// [`verify_calu`] with explicit [`ca_sched::VerifyOptions`]: element-rect
/// conflict enumeration ([`ca_sched::Granularity::Rect`]) and/or the
/// edge-minimality lint passes.
pub fn verify_calu_with(
    m: usize,
    n: usize,
    p: &CaParams,
    opts: &ca_sched::VerifyOptions,
) -> Result<VerifyReport, SoundnessError> {
    let plan = build(m, n, p);
    ca_sched::verify_graph_with(&plan.graph, &plan.access, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calu::{calu, calu_seq_factor};
    use crate::params::TreeShape;
    use ca_matrix::seeded_rng;

    fn check_parallel(m: usize, n: usize, b: usize, tr: usize, threads: usize, tree: TreeShape, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut p = CaParams::new(b, tr, threads);
        p.tree = tree;
        let f = calu(a0.clone(), &p);
        let res = f.residual(&a0);
        assert!(res < 1e-12, "residual {res} for {m}x{n} b={b} tr={tr} t={threads}");
        // Must agree bitwise with the sequential reference: same kernels on
        // the same blocks, only the interleaving differs.
        let fs = calu_seq_factor(a0, &p);
        assert_eq!(f.pivots.ipiv, fs.pivots.ipiv, "pivots differ from sequential");
        assert_eq!(f.lu.as_slice(), fs.lu.as_slice(), "factors differ from sequential");
    }

    #[test]
    fn parallel_matches_sequential_square() {
        check_parallel(64, 64, 16, 2, 4, TreeShape::Binary, 1);
        check_parallel(100, 100, 25, 4, 3, TreeShape::Binary, 2);
    }

    #[test]
    fn parallel_matches_sequential_tall() {
        check_parallel(400, 30, 10, 8, 4, TreeShape::Binary, 3);
        check_parallel(333, 20, 7, 4, 2, TreeShape::Flat, 4);
    }

    #[test]
    fn parallel_matches_sequential_wide_and_ragged() {
        check_parallel(50, 90, 16, 4, 4, TreeShape::Binary, 5);
        check_parallel(97, 61, 13, 3, 5, TreeShape::Binary, 6);
    }

    #[test]
    fn single_thread_single_group() {
        check_parallel(60, 60, 20, 1, 1, TreeShape::Binary, 7);
    }

    #[test]
    fn graph_is_valid_and_sized_sensibly() {
        let p = CaParams::new(100, 8, 8);
        let g = calu_task_graph(1000, 1000, &p);
        g.validate();
        // 10 panels; tasks per panel ~ g + nodes + L + U + S.
        assert!(g.len() > 100, "suspiciously few tasks: {}", g.len());
        assert!(g.critical_path_flops() <= g.total_flops());
    }

    #[test]
    fn dag_total_flops_close_to_lapack_count() {
        // CA overhead is lower-order: DAG flops within 25% of dgetrf count.
        let p = CaParams::new(50, 4, 4);
        let (m, n) = (2000, 200);
        let g = calu_task_graph(m, n, &p);
        let lapack = ca_kernels::flops::getrf(m, n);
        let total = g.total_flops();
        assert!(total >= lapack * 0.9, "DAG flops {total} below LAPACK {lapack}");
        assert!(total <= lapack * 1.35, "DAG flops {total} too far above LAPACK {lapack}");
    }

    #[test]
    fn two_level_update_blocking_same_results_fewer_tasks() {
        // The §V future-work feature: B = 4b update tasks must give the
        // bitwise-same factorization with a smaller task graph.
        let a0 = ca_matrix::random_uniform(240, 240, &mut seeded_rng(21));
        let p1 = CaParams::new(20, 4, 4);
        let p4 = p1.with_update_blocking(4);
        let f1 = calu(a0.clone(), &p1);
        let f4 = calu(a0.clone(), &p4);
        assert_eq!(f1.lu.as_slice(), f4.lu.as_slice());
        assert_eq!(f1.pivots.ipiv, f4.pivots.ipiv);
        let g1 = calu_task_graph(240, 240, &p1);
        let g4 = calu_task_graph(240, 240, &p4);
        g4.validate();
        assert!(g4.len() < g1.len(), "coarse blocking must shrink the graph: {} vs {}", g4.len(), g1.len());
    }

    #[test]
    fn decomposed_update_matches_plain_and_sequential() {
        // Force the par_gemm sub-DAG with a tiny threshold: multi-slab
        // (m = 400 ⇒ 3 slabs of slab_h = 128 at b = 16) and the bitwise
        // contract against both the monolithic tasks and the sequential
        // reference, at several worker counts.
        let a0 = ca_matrix::random_uniform(400, 96, &mut seeded_rng(31));
        let p_plain = CaParams::new(16, 1, 4).with_par_update_rows(usize::MAX);
        let p_par = p_plain.with_par_update_rows(32);
        let g_plain = calu_task_graph(400, 96, &p_plain);
        let g_par = calu_task_graph(400, 96, &p_par);
        assert!(g_par.len() > g_plain.len(), "decomposition must add pack/tile tasks");
        let f_plain = calu(a0.clone(), &p_plain);
        for threads in [1, 2, 4] {
            let mut p = p_par;
            p.threads = threads;
            let f = calu(a0.clone(), &p);
            assert_eq!(f.pivots.ipiv, f_plain.pivots.ipiv, "pivots diverged at {threads} threads");
            assert_eq!(f.lu.as_slice(), f_plain.lu.as_slice(), "factors diverged at {threads} threads");
        }
        let fs = calu_seq_factor(a0, &p_par);
        assert_eq!(f_plain.lu.as_slice(), fs.lu.as_slice());
    }

    #[test]
    fn decomposed_update_splits_wide_chunks_into_panels() {
        // A wide two-level-blocked chunk (wj = 1120 > pan_w = 1024) must
        // split into two packed-B panels and still factor bitwise-identically.
        let (m, n, b) = (96, 1200, 16);
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(32));
        let p_plain = CaParams::new(b, 1, 3).with_update_blocking(70);
        let p_par = p_plain.with_par_update_rows(16);
        let graph = calu_task_graph(m, n, &p_par);
        graph.validate();
        let f_plain = calu(a0.clone(), &p_plain);
        let f_par = calu(a0, &p_par);
        assert_eq!(f_par.lu.as_slice(), f_plain.lu.as_slice());
        assert_eq!(f_par.pivots.ipiv, f_plain.pivots.ipiv);
    }

    #[test]
    fn decomposed_update_passes_checked_execution() {
        // Static verify + shadow-lease audited execution with the sub-DAG
        // enabled: every pack/tile access must stay inside its declared
        // footprint and no two live leases may race.
        let a0 = ca_matrix::random_uniform(160, 160, &mut seeded_rng(33));
        let p = CaParams::new(16, 2, 3).with_par_update_rows(32);
        let (f, _) = try_run_checked(a0.clone(), &p).expect("checked run");
        let fs = calu_seq_factor(a0, &p);
        assert_eq!(f.lu.as_slice(), fs.lu.as_slice());
    }

    #[test]
    fn decomposed_graph_verifies_at_block_and_rect_granularity() {
        let p = CaParams::new(16, 2, 4).with_par_update_rows(32);
        for granularity in [ca_sched::Granularity::Block, ca_sched::Granularity::Rect] {
            let opts = ca_sched::VerifyOptions { granularity, lint_edges: false };
            verify_calu_with(256, 192, &p, &opts)
                .unwrap_or_else(|v| panic!("verify failed at {granularity}: {v}"));
        }
    }

    #[test]
    fn disabled_threshold_reproduces_monolithic_graph() {
        let p_def = CaParams::new(16, 1, 4); // default threshold 2·MC = 256
        let p_off = p_def.with_par_update_rows(usize::MAX);
        // 400-row groups exceed the default threshold, so the default graph
        // decomposes while usize::MAX must not.
        let g_def = calu_task_graph(400, 96, &p_def);
        let g_off = calu_task_graph(400, 96, &p_off);
        assert!(g_def.len() > g_off.len());
        let a0 = ca_matrix::random_uniform(400, 96, &mut seeded_rng(34));
        let f_def = calu(a0.clone(), &p_def);
        let f_off = calu(a0, &p_off);
        assert_eq!(f_def.lu.as_slice(), f_off.lu.as_slice());
    }

    #[test]
    fn work_stealing_runtime_gives_identical_results() {
        let a0 = ca_matrix::random_uniform(150, 150, &mut seeded_rng(22));
        let p_pq = CaParams::new(30, 4, 4);
        let p_ws = p_pq.with_work_stealing();
        let f_pq = calu(a0.clone(), &p_pq);
        let f_ws = calu(a0, &p_ws);
        assert_eq!(f_pq.lu.as_slice(), f_ws.lu.as_slice());
        assert_eq!(f_pq.pivots.ipiv, f_ws.pivots.ipiv);
    }

    #[test]
    fn lookahead_changes_priorities_not_results() {
        let a0 = ca_matrix::random_uniform(120, 120, &mut seeded_rng(8));
        let p1 = CaParams::new(30, 4, 4);
        let p2 = p1.without_lookahead();
        let f1 = calu(a0.clone(), &p1);
        let f2 = calu(a0.clone(), &p2);
        assert_eq!(f1.lu.as_slice(), f2.lu.as_slice());
        assert_eq!(f1.pivots.ipiv, f2.pivots.ipiv);
    }
}
