//! # ca-core
//!
//! Multithreaded communication-avoiding LU and QR factorizations — the
//! primary contribution of Donfack, Grigori & Gupta, *"Adapting
//! communication-avoiding LU and QR factorizations to multicore
//! architectures"* (IPDPS 2010).
//!
//! * [`calu`] / [`calu_seq`] — CALU with tournament (ca-)pivoting; panel
//!   factorization by TSLU over a binary or flat reduction tree.
//! * [`caqr`] / [`caqr_seq`] — CAQR; panel factorization by TSQR, with the
//!   reduction tree driving the trailing-matrix update.
//! * [`tslu_factor`] / [`tsqr_factor`] — the panel factorizations as
//!   standalone tall-and-skinny solvers (the paper's TSLU/TSQR benchmarks).
//! * [`calu_task_graph`] / [`caqr_task_graph`] — the task DAGs alone, for
//!   the multicore simulator and Figure-1-style renderings.
//! * [`try_calu`] / [`try_caqr`] / [`try_tslu_factor`] / [`try_tsqr_factor`]
//!   — fallible entry points that pre-scan inputs for NaN/Inf, monitor
//!   per-panel element growth (degrading to plain GEPP on tournament
//!   instability), and surface singularity or worker-task failure as a
//!   [`FactorError`] instead of poisoned factors or a panic.
//! * [`try_calu_profiled`] / [`try_caqr_profiled`] — the same runs on the
//!   profiled executors, returning a [`ca_sched::Profile`] with full task
//!   lifecycles, roofline attribution inputs, and scheduling diagnostics.
//! * [`verify_calu`] / [`verify_caqr`] — static DAG soundness verification:
//!   prove every conflicting block access in the builder's declared
//!   footprints is ordered by a happens-before path.
//! * [`try_calu_checked`] / [`try_caqr_checked`] — checked execution: the
//!   static verifier followed by a run in which every element access is
//!   audited against the declared footprints by a shadow lease registry.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod calu;
mod caqr;
mod dag_calu;
mod dag_caqr;
mod error;
mod probe;
pub mod jobs;
pub mod solve;
pub mod params;
pub mod tournament;
pub mod tree;
pub mod tslu;
pub mod tsqr;

pub use calu::{
    calu, calu_seq, calu_seq_factor, calu_with_stats, try_calu, try_calu_checked,
    try_calu_profiled, try_calu_recovering, try_calu_recovering_checked, try_calu_seq,
    try_calu_with_faults, try_calu_with_stats, try_tslu_factor, tslu_factor, LuFactors,
    LuStats,
};
pub use caqr::{
    caqr, caqr_seq, caqr_with_stats, try_caqr, try_caqr_checked, try_caqr_profiled,
    try_caqr_recovering, try_caqr_recovering_checked, try_caqr_seq, try_caqr_with_faults,
    try_tsqr_factor, tsqr_factor, QrFactors,
};
pub use error::{FactorError, DEFAULT_GROWTH_LIMIT};
pub use probe::PROBE_TOL;
pub use jobs::{
    calu_serve_graph, calu_serve_graph_recovering, caqr_serve_graph,
    caqr_serve_graph_recovering, lu_solve_serve_graph, lu_solve_serve_graph_recovering,
    qr_lstsq_serve_graph, qr_lstsq_serve_graph_recovering, JobRecovery, ServeGraph,
};
pub use dag_calu::{
    calu_task_graph, calu_task_graph_with_access, verify_calu, verify_calu_with, CaluTask,
};
pub use solve::{lu_packed_solve_in_place, RefineInfo};
pub use dag_caqr::{
    caqr_task_graph, caqr_task_graph_with_access, verify_caqr, verify_caqr_with, CaqrTask,
};
pub use params::{num_panels, partition_rows, CaParams, RowPartition, Scheduler, TreeShape};
