//! PLASMA-style tile kernels (Buttari, Langou, Kurzak, Dongarra 2009).
//!
//! QR: `geqrt` (tile QR + `T`), `tsqrt` (triangle-on-top-of-square QR),
//! `tsmqr` (apply `tsqrt` reflectors to a stacked tile pair).
//! LU (incremental pairwise pivoting): `getrf_tile` (GEPP of the diagonal
//! tile), `gessm` (apply its pivots + `L⁻¹` to a right tile), `tstrf`
//! (GEPP of `[U_kk; A_ik]`), `ssssm` (apply the `tstrf` transform to a
//! stacked tile pair).
//!
//! `tsqrt` exploits the triangular top block: reflector `j` has an implicit
//! `1` at the triangle's diagonal, zeros elsewhere in the triangle, and a
//! dense column in the square tile — `~2b³` flops instead of the dense
//! stacked QR's `10/3·b³`. `tsmqr` is then exactly a compact-WY pair
//! application whose `V_top` is the identity (zero stored part).

use ca_kernels::{
    gemm, getf2, larfb_left_pair, larfg, larft, trsm_left_lower_unit, LuInfo, Trans,
};
use ca_matrix::{MatView, MatViewMut, Matrix, PivotSeq};

/// Tile QR: factor the `r × w` tile in place, returning the compact-WY `T`
/// (`geqrt` = `geqr3` + `T`). Thin wrapper so the tiled algorithm reads like
/// the PLASMA kernel list.
pub fn geqrt(tile: MatViewMut<'_>, t: MatViewMut<'_>) {
    let r = tile.nrows();
    let w = tile.ncols();
    if r >= w {
        ca_kernels::geqr3(tile, t);
    } else {
        let mut tile = tile;
        let mut tau = Vec::new();
        ca_kernels::geqr2(tile.rb(), &mut tau);
        larft(tile.as_ref().sub(0, 0, r, tau.len()), &tau, t);
    }
}

/// Triangle-on-square QR (`dtsqrt`): factors the stacked
/// `[R (upper triangular, b × b); A (dense, r × b)]` in place.
///
/// On return `r_kk` holds the updated `R`, `a_ik` holds the dense parts of
/// the reflectors `V₂` (the top parts are implicit identity columns), and
/// `t` the `b × b` compact-WY factor.
pub fn tsqrt(mut r_kk: MatViewMut<'_>, mut a_ik: MatViewMut<'_>, mut t: MatViewMut<'_>) {
    let b = r_kk.nrows();
    assert_eq!(r_kk.ncols(), b, "R tile must be square");
    assert_eq!(a_ik.ncols(), b, "A tile must have b columns");
    let r = a_ik.nrows();
    assert!(t.nrows() >= b && t.ncols() >= b, "T must be at least b x b");

    let mut tau = vec![0.0f64; b];
    for (j, tau_j) in tau.iter_mut().enumerate() {
        // Reflector j annihilates A[:, j] against R[j, j]; its vector is
        // e_j (implicit) stacked on v = A[:, j] values.
        let alpha = r_kk.at(j, j);
        let (beta, tj) = {
            let col = a_ik.col_mut(j);
            larfg(alpha, col)
        };
        r_kk.set(j, j, beta);
        *tau_j = tj;
        if tj == 0.0 {
            continue;
        }
        // Apply H to remaining columns l > j of the stack:
        // w = R[j, l] + vᵀ A[:, l]; R[j, l] -= τ w; A[:, l] -= τ v w.
        for l in j + 1..b {
            let mut w = r_kk.at(j, l);
            {
                let vj = a_ik.col(j);
                let al = a_ik.col(l);
                for i in 0..r {
                    w += vj[i] * al[i];
                }
            }
            let tw = tj * w;
            *r_kk.at_mut(j, l) -= tw;
            // Split borrow via raw parts: columns j and l are disjoint.
            let vj_ptr = a_ik.col(j).as_ptr();
            let vj = unsafe { core::slice::from_raw_parts(vj_ptr, r) };
            let al = a_ik.col_mut(l);
            for i in 0..r {
                al[i] -= tw * vj[i];
            }
        }
    }

    // Build T: T[j][j] = τ_j; T[0..j, j] = -τ_j T · (V₂[:, 0..j]ᵀ v_j)
    // (the identity top parts contribute nothing off-diagonal).
    for (j, &tau_j) in tau.iter().enumerate().take(b) {
        t.set(j, j, tau_j);
        for i in j + 1..b {
            t.set(i, j, 0.0);
        }
        if j > 0 && tau_j != 0.0 {
            let mut w = vec![0.0f64; j];
            for (i, wi) in w.iter_mut().enumerate() {
                let vi = a_ik.col(i);
                let vj = a_ik.col(j);
                let mut s = 0.0;
                for row in 0..r {
                    s += vi[row] * vj[row];
                }
                *wi = s;
            }
            for i in 0..j {
                let mut s = 0.0;
                for (l, wl) in w.iter().enumerate().take(j).skip(i) {
                    s += t.at(i, l) * wl;
                }
                t.set(i, j, -tau_j * s);
            }
        }
    }
}

/// Applies the `tsqrt` reflectors (`v2`, `t`) to the stacked tile pair
/// `[C_top; C_bot]` (`dtsmqr`): `V_top` is the implicit identity.
pub fn tsmqr(
    trans: Trans,
    v2: MatView<'_>,
    t: MatView<'_>,
    c_top: MatViewMut<'_>,
    c_bot: MatViewMut<'_>,
) {
    let b = c_top.nrows();
    // A zero stored V_top makes larfb treat it as the unit "triangle" with
    // no off-diagonal entries — exactly the identity.
    let v_top = Matrix::zeros(b, b);
    larfb_left_pair(trans, v_top.view(), v2, t, c_top, c_bot);
}

/// GEPP of a diagonal tile (`dgetrf` on one tile), returning tile-local
/// pivots (LAPACK-style `LuInfo`).
pub fn getrf_tile(tile: MatViewMut<'_>) -> LuInfo {
    getf2(tile)
}

/// Applies a diagonal tile's pivots and `L⁻¹` to a right-hand tile
/// (`dgessm`): `A_kj := L_kk⁻¹ · Π A_kj`.
pub fn gessm(pivots: &PivotSeq, l_kk: MatView<'_>, mut a_kj: MatViewMut<'_>) {
    pivots.apply(a_kj.rb());
    trsm_left_lower_unit(l_kk, a_kj);
}

/// The transform produced by [`tstrf`], needed to update trailing tile pairs.
#[derive(Clone, Debug)]
pub struct TstrfTransform {
    /// Packed GEPP factors of the stacked `[U_kk; A_ik]` (`(b+r) × b`):
    /// `L` below the diagonal (unit), updated `U` on top.
    pub packed: Matrix,
    /// Stack-local row interchanges.
    pub pivots: PivotSeq,
}

/// Triangle-on-square LU with pairwise pivoting (`dtstrf`): GEPP of the
/// stacked `[U_kk (b × b upper); A_ik (r × b)]`. Writes the updated `U` back
/// into `u_kk`, the `L` rows belonging to the square tile back into `a_ik`,
/// and returns the full transform (the top `L` block and pivots live only in
/// the transform, as in PLASMA's separate `L` storage).
pub fn tstrf(mut u_kk: MatViewMut<'_>, mut a_ik: MatViewMut<'_>) -> TstrfTransform {
    let b = u_kk.nrows();
    assert_eq!(u_kk.ncols(), b, "U tile must be square");
    assert_eq!(a_ik.ncols(), b, "A tile must have b columns");
    let r = a_ik.nrows();

    // Stack [U; A] (U's sub-diagonal is zero).
    let mut stack = Matrix::zeros(b + r, b);
    for j in 0..b {
        for i in 0..=j.min(b - 1) {
            stack[(i, j)] = u_kk.at(i, j);
        }
        let col = a_ik.col(j);
        for i in 0..r {
            stack[(b + i, j)] = col[i];
        }
    }
    let info = getf2(stack.view_mut());

    // Updated U back into the triangle; L rows of the square tile back into
    // a_ik (rows b.. of the packed stack).
    for j in 0..b {
        for i in 0..=j {
            u_kk.set(i, j, stack[(i, j)]);
        }
        let col = a_ik.col_mut(j);
        for i in 0..r {
            col[i] = stack[(b + i, j)];
        }
    }
    TstrfTransform { packed: stack, pivots: info.pivots }
}

/// Applies a [`tstrf`] transform to the trailing stacked tile pair
/// `[A_kj; A_ij]` (`dssssm`): interchange, then
/// `top := L₁₁⁻¹ top`, `bottom := bottom − L₂₁ · top`.
pub fn ssssm(tr: &TstrfTransform, mut a_kj: MatViewMut<'_>, mut a_ij: MatViewMut<'_>) {
    let b = a_kj.nrows();
    let r = a_ij.nrows();
    let n = a_kj.ncols();
    assert_eq!(a_ij.ncols(), n, "tile widths must match");

    // Apply stack-local interchanges across the pair.
    for (k, &p) in tr.pivots.ipiv.iter().enumerate() {
        if p != k {
            for j in 0..n {
                let (x, y);
                if k < b {
                    x = a_kj.at(k, j);
                } else {
                    x = a_ij.at(k - b, j);
                }
                if p < b {
                    y = a_kj.at(p, j);
                } else {
                    y = a_ij.at(p - b, j);
                }
                if k < b {
                    a_kj.set(k, j, y);
                } else {
                    a_ij.set(k - b, j, y);
                }
                if p < b {
                    a_kj.set(p, j, x);
                } else {
                    a_ij.set(p - b, j, x);
                }
            }
        }
    }

    // top := L11⁻¹ top.
    let l11 = tr.packed.block(0, 0, b, b);
    trsm_left_lower_unit(l11, a_kj.rb());
    // bottom -= L21 · top.
    if r > 0 {
        let l21 = tr.packed.block(b, 0, r, b);
        gemm(Trans::No, Trans::No, -1.0, l21, a_kj.as_ref(), 1.0, a_ij);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{norm_max, seeded_rng};

    #[test]
    fn tsqrt_produces_valid_qr_of_stack() {
        let b = 8;
        let mut rng = seeded_rng(1);
        // Build an upper-triangular R and a dense tile.
        let mut r_kk = ca_matrix::random_uniform(b, b, &mut rng);
        for i in 0..b {
            for j in 0..i {
                r_kk[(i, j)] = 0.0;
            }
            r_kk[(i, i)] += 3.0;
        }
        let a_ik = ca_matrix::random_uniform(b, b, &mut rng);
        let stack0 = Matrix::vstack(&[r_kk.view(), a_ik.view()]);

        let mut r_work = r_kk.clone();
        let mut a_work = a_ik.clone();
        let mut t = Matrix::zeros(b, b);
        tsqrt(r_work.view_mut(), a_work.view_mut(), t.view_mut());

        // Compare R with a dense QR of the stack (up to signs).
        let mut dense = stack0.clone();
        let mut tau = Vec::new();
        ca_kernels::geqr2(dense.view_mut(), &mut tau);
        for i in 0..b {
            for j in i..b {
                let x = r_work[(i, j)].abs();
                let y = dense[(i, j)].abs();
                assert!((x - y).abs() < 1e-11 * (1.0 + y), "R mismatch at ({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn tsqrt_then_tsmqr_annihilates_stack() {
        // Applying Qᵀ to the original stack must give [R; 0].
        let b = 6;
        let mut rng = seeded_rng(2);
        let mut r_kk = ca_matrix::random_uniform(b, b, &mut rng);
        for i in 0..b {
            for j in 0..i {
                r_kk[(i, j)] = 0.0;
            }
        }
        let a_ik = ca_matrix::random_uniform(b, b, &mut rng);

        let mut r_work = r_kk.clone();
        let mut a_work = a_ik.clone();
        let mut t = Matrix::zeros(b, b);
        tsqrt(r_work.view_mut(), a_work.view_mut(), t.view_mut());

        let mut c_top = r_kk.clone();
        let mut c_bot = a_ik.clone();
        tsmqr(Trans::Yes, a_work.view(), t.view(), c_top.view_mut(), c_bot.view_mut());
        // Bottom must vanish; top must equal R (exactly the factor).
        assert!(norm_max(c_bot.view()) < 1e-11, "bottom not annihilated: {}", norm_max(c_bot.view()));
        let diff = c_top.sub_matrix(&r_work);
        // Compare only the upper triangle (below lives V junk in r_work? no:
        // tsqrt keeps R upper and zeros below untouched in r_work).
        let mut maxerr = 0.0f64;
        for i in 0..b {
            for j in i..b {
                maxerr = maxerr.max(diff[(i, j)].abs());
            }
        }
        assert!(maxerr < 1e-11, "top != R ({maxerr})");
    }

    #[test]
    fn tsmqr_qt_q_roundtrip() {
        let b = 5;
        let mut rng = seeded_rng(3);
        let mut r_kk = ca_matrix::random_uniform(b, b, &mut rng);
        for i in 0..b {
            for j in 0..i {
                r_kk[(i, j)] = 0.0;
            }
            r_kk[(i, i)] += 2.0;
        }
        let a_ik = ca_matrix::random_uniform(b, b, &mut rng);
        let mut rw = r_kk.clone();
        let mut aw = a_ik.clone();
        let mut t = Matrix::zeros(b, b);
        tsqrt(rw.view_mut(), aw.view_mut(), t.view_mut());

        let c0_top = ca_matrix::random_uniform(b, 3, &mut rng);
        let c0_bot = ca_matrix::random_uniform(b, 3, &mut rng);
        let mut ct = c0_top.clone();
        let mut cb = c0_bot.clone();
        tsmqr(Trans::Yes, aw.view(), t.view(), ct.view_mut(), cb.view_mut());
        tsmqr(Trans::No, aw.view(), t.view(), ct.view_mut(), cb.view_mut());
        assert!(norm_max(ct.sub_matrix(&c0_top).view()) < 1e-12);
        assert!(norm_max(cb.sub_matrix(&c0_bot).view()) < 1e-12);
    }

    #[test]
    fn tstrf_factors_the_stack() {
        let b = 6;
        let r = 6;
        let mut rng = seeded_rng(4);
        let mut u_kk = ca_matrix::random_uniform(b, b, &mut rng);
        for i in 0..b {
            for j in 0..i {
                u_kk[(i, j)] = 0.0;
            }
        }
        let a_ik = ca_matrix::random_uniform(r, b, &mut rng);
        let stack0 = Matrix::vstack(&[u_kk.view(), a_ik.view()]);

        let mut uw = u_kk.clone();
        let mut aw = a_ik.clone();
        let tr = tstrf(uw.view_mut(), aw.view_mut());

        // Π stack0 = L U with L from packed, U from packed top.
        let perm = tr.pivots.to_permutation(b + r);
        let res = ca_matrix::lu_residual(&stack0, &perm, &tr.packed.unit_lower(), &tr.packed.upper());
        assert!(res < 1e-12, "residual {res}");
        // Written-back U matches packed top triangle.
        for i in 0..b {
            for j in i..b {
                assert_eq!(uw[(i, j)], tr.packed[(i, j)]);
            }
        }
    }

    #[test]
    fn tstrf_ssssm_consistent_with_direct_elimination() {
        // Factor [U A1; V A2]-style 2x2 tile system and verify via solve:
        // build M = [[U, B1], [C, B2]] with U upper; tstrf+ssssm on the left
        // column then the Schur complement must match direct GEPP's.
        let b = 5;
        let mut rng = seeded_rng(5);
        let mut u = ca_matrix::random_uniform(b, b, &mut rng);
        for i in 0..b {
            for j in 0..i {
                u[(i, j)] = 0.0;
            }
            u[(i, i)] += 2.0;
        }
        let c = ca_matrix::random_uniform(b, b, &mut rng);
        let b1 = ca_matrix::random_uniform(b, 3, &mut rng);
        let b2 = ca_matrix::random_uniform(b, 3, &mut rng);

        let mut uw = u.clone();
        let mut cw = c.clone();
        let tr = tstrf(uw.view_mut(), cw.view_mut());
        let mut t1 = b1.clone();
        let mut t2 = b2.clone();
        ssssm(&tr, t1.view_mut(), t2.view_mut());

        // Reference: dense GEPP of the stacked system [U B1; C B2].
        let stack = Matrix::vstack(&[u.view(), c.view()]);
        let rhs = Matrix::vstack(&[b1.view(), b2.view()]);
        let mut work = stack.clone();
        let info = getf2(work.view_mut());
        let mut ref_rhs = rhs.clone();
        info.pivots.apply(ref_rhs.view_mut());
        // Forward-eliminate RHS with L (2b x b trapezoid): y_top = L11^-1 rhs_top;
        // y_bot = rhs_bot - L21 y_top.
        let l11 = work.block(0, 0, b, b);
        ca_kernels::trsm_left_lower_unit(l11, ref_rhs.block_mut(0, 0, b, 3));
        let l21 = work.block(b, 0, b, b);
        let (top, bottom) = ref_rhs.view_mut().split_at_row(b);
        gemm(Trans::No, Trans::No, -1.0, l21, top.as_ref(), 1.0, bottom);

        for i in 0..b {
            for j in 0..3 {
                assert!((t1[(i, j)] - ref_rhs[(i, j)]).abs() < 1e-12, "top mismatch");
                assert!((t2[(i, j)] - ref_rhs[(b + i, j)]).abs() < 1e-12, "bottom mismatch");
            }
        }
    }

    #[test]
    fn gessm_applies_pivot_and_solve() {
        let b = 6;
        let mut rng = seeded_rng(6);
        let tile0 = ca_matrix::random_uniform(b, b, &mut rng);
        let rhs0 = ca_matrix::random_uniform(b, 4, &mut rng);
        let mut tile = tile0.clone();
        let info = getrf_tile(tile.view_mut());
        let mut rhs = rhs0.clone();
        gessm(&info.pivots, tile.view(), rhs.view_mut());
        // Check: U * rhs_result == Π rhs0-forward... i.e. L*result = Π rhs0.
        let l = tile.unit_lower();
        let lr = l.matmul(&rhs);
        let mut prhs = rhs0.clone();
        info.pivots.apply(prhs.view_mut());
        assert!(norm_max(lr.sub_matrix(&prhs).view()) < 1e-12);
    }
}
