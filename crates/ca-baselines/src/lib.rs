//! # ca-baselines
//!
//! The comparison algorithms of the paper's evaluation, built from the same
//! `ca-kernels` substrate as CALU/CAQR:
//!
//! * [`getrf_blocked`] / [`geqrf_blocked`] — LAPACK-style blocked
//!   factorizations with a sequential BLAS2 panel and a (rayon-)parallel
//!   BLAS3 trailing update: the `MKL_dgetrf` / `ACML_dgetrf` /
//!   `MKL_dgeqrf` vendor-library stand-ins.
//! * `ca_kernels::getf2` / `ca_kernels::geqr2` — the pure BLAS2 routines the
//!   paper benchmarks as `MKL_dgetf2` / `MKL_dgeqr2`.
//! * [`tiled_lu`] / [`tiled_qr`] — PLASMA 2.0-style tile algorithms
//!   (incremental pairwise pivoting LU; flat-tree tile QR), run on the
//!   `ca-sched` task runtime.
//! * `*_task_graph` builders — the same algorithms as bare task DAGs for the
//!   multicore simulator.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod geqrf_blocked;
mod getrf_blocked;
pub mod tile_kernels;
mod tiled_lu;
mod tiled_qr;

pub use geqrf_blocked::{geqrf_blocked, geqrf_blocked_task_graph, BlockedQr};
pub use getrf_blocked::{getrf_blocked, getrf_blocked_task_graph, BlockedLu};
pub use tiled_lu::{
    tiled_lu, tiled_lu_task_graph, tiled_lu_task_graph_with_access, try_tiled_lu_checked, TiledLu,
    TiledLuTask,
};
pub use tiled_qr::{
    tiled_qr, tiled_qr_task_graph, tiled_qr_task_graph_with_access, try_tiled_qr_checked, TiledQr,
    TiledQrTask,
};
