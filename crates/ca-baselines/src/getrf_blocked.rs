//! LAPACK-style blocked right-looking LU with partial pivoting — the
//! vendor-library (`MKL_dgetrf` / `ACML_dgetrf`) stand-in.
//!
//! Structure (exactly LAPACK `dgetrf`): per panel, a BLAS2 `dgetf2`
//! factorization of the *whole* panel (one thread — the panel is the part
//! vendors do not parallelize well, the paper's central observation), row
//! interchanges applied to both sides, `dtrsm` for the `U` block row, and a
//! `dgemm` trailing update that we optionally parallelize over column strips
//! with rayon (standing in for a multithreaded BLAS3).

use ca_kernels::{flops, traffic};
use ca_kernels::{gemm, getf2, trsm_left_lower_unit, Trans};
use ca_matrix::{Matrix, PivotSeq};
use ca_sched::{row_blocks, BlockTracker, KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta};
use rayon::prelude::*;

/// Result of the blocked factorization: pivots plus LAPACK `info`-style
/// breakdown column.
pub struct BlockedLu {
    /// Global row interchanges.
    pub pivots: PivotSeq,
    /// First exactly-zero pivot column, if any.
    pub breakdown: Option<usize>,
}

/// Blocked `dgetrf` in place with panel width `nb`. `threads > 1`
/// parallelizes the trailing update over column strips (vendor-BLAS
/// stand-in); the panel factorization is always sequential BLAS2.
pub fn getrf_blocked(a: &mut Matrix, nb: usize, threads: usize) -> BlockedLu {
    assert!(nb > 0, "panel width must be positive");
    let m = a.nrows();
    let n = a.ncols();
    let kmax = m.min(n);
    let mut pivots = PivotSeq::new(0);
    let mut breakdown = None;

    let mut k0 = 0usize;
    while k0 < kmax {
        let w = nb.min(kmax - k0);

        // BLAS2 panel factorization of columns k0..k0+w, rows k0..m.
        let info = getf2(a.block_mut(k0, k0, m - k0, w));
        if breakdown.is_none() {
            breakdown = info.first_zero_pivot.map(|c| k0 + c);
        }
        // Globalize pivots and apply to both sides.
        let mut seq = PivotSeq::new(k0);
        for &p in &info.pivots.ipiv {
            seq.push(p + k0);
        }
        if k0 > 0 {
            seq.apply(a.block_mut(0, 0, m, k0));
        }
        if k0 + w < n {
            seq.apply(a.block_mut(0, k0 + w, m, n - k0 - w));
        }
        pivots.extend(&seq);

        if k0 + w < n {
            // U block row.
            let (panel_cols, trailing) = a.view_mut().split_at_col(k0 + w);
            let lkk = panel_cols.as_ref().sub(k0, k0, w, w);
            let mut trailing = trailing;
            trsm_left_lower_unit(lkk, trailing.rb().into_sub(k0, 0, w, n - k0 - w));

            // Trailing update, parallel over column strips.
            if k0 + w < m {
                let l_below = panel_cols.as_ref().sub(k0 + w, k0, m - k0 - w, w);
                let (u_row, a_below) = trailing.split_at_row(k0 + w);
                let u_row = u_row.as_ref().sub(k0, 0, w, n - k0 - w);
                par_gemm_update(l_below, u_row, a_below, threads);
            }
        }
        k0 += w;
    }
    BlockedLu { pivots, breakdown }
}

/// `C -= L · U` parallelized over column strips with rayon.
pub(crate) fn par_gemm_update(
    l: ca_matrix::MatView<'_>,
    u: ca_matrix::MatView<'_>,
    c: ca_matrix::MatViewMut<'_>,
    threads: usize,
) {
    let n = c.ncols();
    if threads <= 1 || n < 64 {
        gemm(Trans::No, Trans::No, -1.0, l, u, 1.0, c);
        return;
    }
    let strip = n.div_ceil(threads).max(32);
    // Split C (and the matching U columns) into disjoint strips.
    let mut strips: Vec<(ca_matrix::MatView<'_>, ca_matrix::MatViewMut<'_>)> = Vec::new();
    let mut rest = c;
    let mut j = 0usize;
    while j < n {
        let wj = strip.min(n - j);
        let (head, tail) = rest.split_at_col(wj);
        strips.push((u.sub(0, j, u.nrows(), wj), head));
        rest = tail;
        j += wj;
    }
    strips.into_par_iter().for_each(|(uj, cj)| {
        gemm(Trans::No, Trans::No, -1.0, l, uj, 1.0, cj);
    });
}

/// Task graph of blocked `dgetrf` for the multicore simulator: one
/// (sequential, BLAS2) panel task per step, `dtrsm` + strip `dgemm` tasks in
/// between — the task structure the paper ascribes to the vendor libraries.
pub fn getrf_blocked_task_graph(m: usize, n: usize, nb: usize, strips: usize) -> TaskGraph<()> {
    let kmax = m.min(n);
    let nsteps = kmax.div_ceil(nb);
    let nbk = n.div_ceil(nb);
    let mbk = m.div_ceil(nb);
    let mut g: TaskGraph<()> = TaskGraph::new();
    let mut tracker = BlockTracker::new(mbk, nbk);

    for step in 0..nsteps {
        let k0 = step * nb;
        let w = nb.min(kmax - k0);
        // Panel: BLAS2, on the critical path, single task.
        let meta = TaskMeta::new(
            TaskLabel::new(TaskKind::Panel, step, 0, step),
            flops::getrf(m - k0, w),
        )
        .with_bytes(traffic::getf2(m - k0, w))
        .with_priority(((nsteps - step) as i64) * 1000 + 900)
        .with_class(KernelClass::LuBlas2);
        let panel = g.add_task(meta, ());
        tracker.write(&mut g, panel, row_blocks(k0..m, nb), step..step + 1);

        for jblk in step + 1..nbk {
            let jc0 = jblk * nb;
            let wj = nb.min(n - jc0);
            // Interchange + U row (one task per trailing block column).
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::URow, step, 0, jblk),
                flops::trsm_left(w, wj),
            )
            .with_bytes(traffic::trsm_left(w, wj) + traffic::laswp(w, wj))
            .with_priority(((nsteps - step) as i64) * 1000 + 500)
            .with_class(KernelClass::Trsm);
            let urow = g.add_task(meta, ());
            g.add_dep(panel, urow);
            tracker.write(&mut g, urow, row_blocks(k0..m, nb), jblk..jblk + 1);

            // Trailing strips: the multithreaded-BLAS update.
            if k0 + w < m {
                let rows = k0 + w..m;
                // Strip boundaries aligned to the block grid so strips of
                // one panel write disjoint blocks (and thus run in parallel).
                let strip_rows = rows.len().div_ceil(strips).div_ceil(nb).max(1) * nb;
                let mut r0 = rows.start;
                while r0 < rows.end {
                    let r1 = (r0 + strip_rows).min(rows.end);
                    let meta = TaskMeta::new(
                        TaskLabel::new(TaskKind::Update, step, r0 / nb, jblk),
                        flops::gemm(r1 - r0, wj, w),
                    )
                    .with_bytes(traffic::gemm(r1 - r0, wj, w))
                    .with_priority(((nsteps - step) as i64) * 1000 + 100)
                    .with_class(KernelClass::Gemm);
                    let s = g.add_task(meta, ());
                    tracker.read(&mut g, s, row_blocks(r0..r1, nb), step..step + 1);
                    tracker.write(&mut g, s, row_blocks(r0..r1, nb), jblk..jblk + 1);
                    r0 = r1;
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{lu_residual, seeded_rng};

    fn check(m: usize, n: usize, nb: usize, threads: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut a = a0.clone();
        let r = getrf_blocked(&mut a, nb, threads);
        assert!(r.breakdown.is_none());
        let perm = r.pivots.to_permutation(m);
        let res = lu_residual(&a0, &perm, &a.unit_lower(), &a.upper());
        assert!(res < 1e-12, "residual {res} for {m}x{n} nb={nb}");
    }

    #[test]
    fn blocked_lu_various_shapes() {
        check(64, 64, 16, 1, 1);
        check(100, 100, 32, 1, 2);
        check(200, 50, 16, 1, 3);
        check(50, 200, 16, 1, 4);
        check(97, 61, 13, 1, 5);
    }

    #[test]
    fn parallel_update_matches_sequential() {
        let a0 = ca_matrix::random_uniform(150, 150, &mut seeded_rng(6));
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let r1 = getrf_blocked(&mut a1, 32, 1);
        let r2 = getrf_blocked(&mut a2, 32, 4);
        assert_eq!(r1.pivots.ipiv, r2.pivots.ipiv);
        assert_eq!(a1.as_slice(), a2.as_slice(), "parallel strips changed the result");
    }

    #[test]
    fn matches_pure_blas2_pivots() {
        let a0 = ca_matrix::random_uniform(80, 80, &mut seeded_rng(7));
        let mut ab = a0.clone();
        let rb = getrf_blocked(&mut ab, 16, 1);
        let mut a2 = a0.clone();
        let info = ca_kernels::getf2(a2.view_mut());
        assert_eq!(rb.pivots.ipiv, info.pivots.ipiv);
    }

    #[test]
    fn task_graph_valid_and_panel_on_critical_path() {
        let g = getrf_blocked_task_graph(800, 800, 100, 8);
        g.validate();
        // The critical path must include every panel's BLAS2 flops.
        let panel_flops: f64 = (0..8)
            .map(|s| flops::getrf(800 - s * 100, 100))
            .sum();
        assert!(g.critical_path_flops() >= panel_flops * 0.99);
    }

    #[test]
    fn singular_matrix_reports_breakdown() {
        let n = 30;
        let mut a = ca_matrix::random_uniform(n, n, &mut seeded_rng(8));
        for i in 0..n {
            a[(i, 11)] = 0.0;
        }
        let r = getrf_blocked(&mut a, 8, 1);
        assert!(r.breakdown.is_some());
    }
}
