//! LAPACK-style blocked Householder QR — the vendor (`MKL_dgeqrf`)
//! stand-in: BLAS2 `dgeqr2` panel + `dlarft`, then `dlarfb` trailing update
//! (optionally parallelized over column strips like a multithreaded BLAS).

use ca_kernels::{flops, traffic};
use ca_kernels::{geqr2, larfb_left, larft, Trans};
use ca_matrix::{Matrix, MatView};
use ca_sched::{row_blocks, BlockTracker, KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta};
use rayon::prelude::*;

/// Result of blocked QR: per-panel compact-WY `T` factors (reflectors stay
/// packed in the matrix), enough to apply `Q`/`Qᵀ`.
pub struct BlockedQr {
    /// Per-panel `(k0, width, T)` in factorization order.
    pub panels: Vec<(usize, usize, Matrix)>,
}

impl BlockedQr {
    /// Applies `Qᵀ` to `c` in place, given the factored matrix `a`.
    pub fn apply_qt(&self, a: &Matrix, c: &mut Matrix) {
        for (k0, w, t) in &self.panels {
            let m = a.nrows();
            let v = a.block(*k0, *k0, m - k0, *w);
            larfb_left(Trans::Yes, v, t.view(), c.block_mut(*k0, 0, m - k0, c.ncols()));
        }
    }

    /// Applies `Q` to `c` in place, given the factored matrix `a`.
    pub fn apply_q(&self, a: &Matrix, c: &mut Matrix) {
        for (k0, w, t) in self.panels.iter().rev() {
            let m = a.nrows();
            let v = a.block(*k0, *k0, m - k0, *w);
            larfb_left(Trans::No, v, t.view(), c.block_mut(*k0, 0, m - k0, c.ncols()));
        }
    }

    /// Thin explicit `Q` (`m × min(m,n)`).
    pub fn q_thin(&self, a: &Matrix) -> Matrix {
        let m = a.nrows();
        let k = m.min(a.ncols());
        let mut q = Matrix::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = 1.0;
        }
        self.apply_q(a, &mut q);
        q
    }
}

/// Blocked `dgeqrf` in place with panel width `nb`; `threads > 1`
/// parallelizes the `dlarfb` trailing update over column strips.
pub fn geqrf_blocked(a: &mut Matrix, nb: usize, threads: usize) -> BlockedQr {
    assert!(nb > 0, "panel width must be positive");
    let m = a.nrows();
    let n = a.ncols();
    let kmax = m.min(n);
    let mut panels = Vec::new();

    let mut k0 = 0usize;
    while k0 < kmax {
        let w = nb.min(kmax - k0);
        // BLAS2 panel.
        let mut tau = Vec::new();
        geqr2(a.block_mut(k0, k0, m - k0, w), &mut tau);
        let kv = tau.len();
        let mut t = Matrix::zeros(kv, kv);
        larft(a.block(k0, k0, m - k0, kv), &tau, t.view_mut());

        // Trailing update: C := Qᵀ C over column strips.
        if k0 + w < n {
            let (panel_cols, trailing) = a.view_mut().split_at_col(k0 + w);
            let v = panel_cols.as_ref().sub(k0, k0, m - k0, kv);
            let c = trailing.into_sub(k0, 0, m - k0, n - k0 - w);
            par_larfb(v, t.view(), c, threads);
        }
        panels.push((k0, w, t));
        k0 += w;
    }
    BlockedQr { panels }
}

/// `C := Qᵀ C` parallelized over column strips.
fn par_larfb(v: MatView<'_>, t: MatView<'_>, c: ca_matrix::MatViewMut<'_>, threads: usize) {
    let n = c.ncols();
    if threads <= 1 || n < 64 {
        larfb_left(Trans::Yes, v, t, c);
        return;
    }
    let strip = n.div_ceil(threads).max(32);
    let mut strips = Vec::new();
    let mut rest = c;
    let mut j = 0usize;
    while j < n {
        let wj = strip.min(n - j);
        let (head, tail) = rest.split_at_col(wj);
        strips.push(head);
        rest = tail;
        j += wj;
    }
    strips.into_par_iter().for_each(|cj| {
        larfb_left(Trans::Yes, v, t, cj);
    });
}

/// Task graph of blocked `dgeqrf` for the multicore simulator.
pub fn geqrf_blocked_task_graph(m: usize, n: usize, nb: usize, strips: usize) -> TaskGraph<()> {
    let kmax = m.min(n);
    let nsteps = kmax.div_ceil(nb);
    let nbk = n.div_ceil(nb);
    let mbk = m.div_ceil(nb);
    let mut g: TaskGraph<()> = TaskGraph::new();
    let mut tracker = BlockTracker::new(mbk, nbk);

    for step in 0..nsteps {
        let k0 = step * nb;
        let w = nb.min(kmax - k0);
        let meta = TaskMeta::new(
            TaskLabel::new(TaskKind::Panel, step, 0, step),
            flops::geqrf(m - k0, w),
        )
        .with_bytes(traffic::geqr2(m - k0, w))
        .with_priority(((nsteps - step) as i64) * 1000 + 900)
        .with_class(KernelClass::QrBlas2);
        let panel = g.add_task(meta, ());
        tracker.write(&mut g, panel, row_blocks(k0..m, nb), step..step + 1);

        if k0 + w < n {
            // Column strips of the dlarfb update, block-grid aligned so the
            // strips of one panel write disjoint blocks.
            let cols = k0 + w..n;
            let strip_cols = cols.len().div_ceil(strips).div_ceil(nb).max(1) * nb;
            let mut c0 = cols.start;
            while c0 < cols.end {
                let c1 = (c0 + strip_cols).min(cols.end);
                let meta = TaskMeta::new(
                    TaskLabel::new(TaskKind::Update, step, 0, c0 / nb),
                    flops::larfb(m - k0, c1 - c0, w),
                )
                .with_bytes(traffic::larfb(m - k0, c1 - c0, w))
                .with_priority(((nsteps - step) as i64) * 1000 + 100)
                .with_class(KernelClass::Larfb);
                let s = g.add_task(meta, ());
                tracker.read(&mut g, s, row_blocks(k0..m, nb), step..step + 1);
                tracker.write(&mut g, s, row_blocks(k0..m, nb), (c0 / nb)..c1.div_ceil(nb));
                c0 = c1;
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::{orthogonality, qr_residual, seeded_rng};

    fn check(m: usize, n: usize, nb: usize, threads: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let mut a = a0.clone();
        let qr = geqrf_blocked(&mut a, nb, threads);
        let q = qr.q_thin(&a);
        let r = a.upper();
        let scale = 1e-12 * (m.max(n) as f64);
        assert!(orthogonality(&q) < scale, "Q not orthogonal {m}x{n}");
        let res = qr_residual(&a0, &q, &r);
        assert!(res < scale, "residual {res} for {m}x{n} nb={nb}");
    }

    #[test]
    fn blocked_qr_various_shapes() {
        check(64, 64, 16, 1, 1);
        check(120, 40, 16, 1, 2);
        check(97, 61, 13, 1, 3);
        check(50, 50, 50, 1, 4); // single panel
    }

    #[test]
    fn parallel_update_matches_sequential() {
        let a0 = ca_matrix::random_uniform(150, 150, &mut seeded_rng(5));
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        geqrf_blocked(&mut a1, 32, 1);
        geqrf_blocked(&mut a2, 32, 4);
        assert_eq!(a1.as_slice(), a2.as_slice());
    }

    #[test]
    fn qt_q_roundtrip() {
        let a0 = ca_matrix::random_uniform(60, 20, &mut seeded_rng(6));
        let mut a = a0.clone();
        let qr = geqrf_blocked(&mut a, 8, 1);
        let c0 = ca_matrix::random_uniform(60, 3, &mut seeded_rng(7));
        let mut c = c0.clone();
        qr.apply_qt(&a, &mut c);
        qr.apply_q(&a, &mut c);
        let err = ca_matrix::norm_max(c.sub_matrix(&c0).view());
        assert!(err < 1e-12);
    }

    #[test]
    fn task_graph_valid() {
        let g = geqrf_blocked_task_graph(1000, 500, 100, 8);
        g.validate();
        assert!(g.total_flops() >= flops::geqrf(1000, 500) * 0.95);
    }
}
