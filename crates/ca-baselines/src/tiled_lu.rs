//! PLASMA-style tiled LU with incremental (pairwise block) pivoting —
//! the `PLASMA_dgetrf` stand-in (Buttari et al. 2009).
//!
//! The matrix is cut into `b × b` tiles; each step factors the diagonal tile
//! (`getrf_tile`), eliminates the tiles below it pairwise (`tstrf`), and
//! updates the trailing tiles (`gessm` / `ssssm`). Pivoting never crosses a
//! tile pair — that is what removes the panel factorization from the
//! critical path (the design the paper contrasts CALU against), at the cost
//! of a weaker pivoting strategy and a factorization that is not a global
//! `ΠA = LU` (hence the dedicated [`TiledLu::solve`]).

use crate::tile_kernels::{gessm, getrf_tile, ssssm, tstrf, TstrfTransform};
use ca_kernels::{flops, traffic};
use ca_kernels::{trsm_left_upper_notrans, LuInfo};
use ca_matrix::shadow::ElemRect;
use ca_matrix::{Matrix, SharedMatrix};
use ca_sched::{
    build_shadow_registry, run_graph, try_run_graph_checked, AccessMap, BlockTracker,
    CheckedError, Job, KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta,
};
use std::sync::OnceLock;

/// Per-column rects of the strictly-lower triangle of the `wk × wk`
/// diagonal tile at origin `k0`: the tile-local `L` factor `gessm` reads.
/// Empty for `wk == 1`.
fn l_rects(k0: usize, wk: usize) -> Vec<ElemRect> {
    (0..wk.saturating_sub(1))
        .map(|c| ElemRect::new(k0 + c + 1..k0 + wk, k0 + c..k0 + c + 1))
        .collect()
}

/// Per-column rects of the upper triangle (diagonal included) of the
/// `wk × wk` diagonal tile at origin `k0`: the `U` factor `tstrf`
/// reads and rewrites.
fn u_rects(k0: usize, wk: usize) -> Vec<ElemRect> {
    (0..wk).map(|c| ElemRect::new(k0..k0 + c + 1, k0 + c..k0 + c + 1)).collect()
}

/// Result of the tiled LU: the tiled factors plus the per-step transforms
/// needed to apply the elimination to a right-hand side.
pub struct TiledLu {
    /// The factored matrix: global `U` in the upper triangle; tile-local
    /// `L` factors below (interpretable only through the transforms).
    pub a: Matrix,
    /// Tile size.
    pub b: usize,
    /// Per-step diagonal-tile factorization info (tile-local pivots).
    pub diag: Vec<LuInfo>,
    /// Per-step, per-subdiagonal-tile `tstrf` transforms.
    pub trans: Vec<Vec<TstrfTransform>>,
}

impl TiledLu {
    /// Solves `A·X = rhs` using the stored elimination (square `A`).
    pub fn solve(&self, rhs: &Matrix) -> Matrix {
        let n = self.a.nrows();
        assert_eq!(self.a.ncols(), n, "solve requires square A");
        assert_eq!(rhs.nrows(), n, "rhs row mismatch");
        let b = self.b;
        let nt = n.div_ceil(b);
        let p = rhs.ncols();
        let mut y = rhs.clone();

        // Forward elimination, replaying the tile transforms.
        for k in 0..nt {
            let k0 = k * b;
            let wk = b.min(n - k0);
            // Diagonal pivots + L_kk solve on the RHS rows of tile row k.
            let mut seq = ca_matrix::PivotSeq::new(0);
            for &piv in &self.diag[k].pivots.ipiv {
                seq.push(piv);
            }
            let lkk = self.a.block(k0, k0, wk, wk);
            gessm(&seq, lkk, y.block_mut(k0, 0, wk, p));
            // Pairwise elimination against the tiles below.
            for (ii, tr) in self.trans[k].iter().enumerate() {
                let i0 = (k + 1 + ii) * b;
                let ri = b.min(n - i0);
                let (top, bottom) = y.view_mut().split_at_row(i0);
                let ytop = top.into_sub(k0, 0, wk, p);
                let ybot = bottom.into_sub(0, 0, ri, p);
                ssssm(tr, ytop, ybot);
            }
        }

        // Back substitution with the global U.
        trsm_left_upper_notrans(self.a.view(), y.view_mut());
        y
    }

    /// Relative solve residual `‖A·x − rhs‖ / (‖A‖·‖x‖)` for verification.
    pub fn solve_residual(a0: &Matrix, x: &Matrix, rhs: &Matrix) -> f64 {
        let ax = a0.matmul(x);
        let diff = ax.sub_matrix(rhs);
        let na = ca_matrix::norm_fro(a0.view());
        let nx = ca_matrix::norm_fro(x.view());
        ca_matrix::norm_fro(diff.view()) / (na * nx).max(f64::MIN_POSITIVE)
    }
}

/// What a tiled-LU task does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field names (k/i/j tile coordinates) are the documentation
pub enum TiledLuTask {
    /// GEPP of diagonal tile `k`.
    Getrf { k: usize },
    /// Pivots + `L⁻¹` on tile `(k, j)`.
    Gessm { k: usize, j: usize },
    /// Pairwise elimination of tile `(i, k)` against the diagonal.
    Tstrf { k: usize, i: usize },
    /// Pair update of tiles `(k, j)` and `(i, j)`.
    Ssssm { k: usize, i: usize, j: usize },
}

struct Ctx {
    m: usize,
    n: usize,
    b: usize,
    diag: Vec<OnceLock<LuInfo>>,
    trans: Vec<Vec<OnceLock<TstrfTransform>>>,
}

fn build(m: usize, n: usize, b: usize) -> (TaskGraph<TiledLuTask>, Ctx, AccessMap) {
    let mt = m.div_ceil(b);
    let nt = n.div_ceil(b);
    let kt = m.min(n).div_ceil(b);
    let mut g: TaskGraph<TiledLuTask> = TaskGraph::new();
    // The diagonal tile (k, k) splits element-wise: `gessm` reads only the
    // strictly-lower `L` factor, `tstrf` rewrites only the upper `U`
    // triangle. Declaring those true sub-tile footprints (instead of a
    // phantom grid column standing in for `L`) keeps gessm and tstrf
    // unserialized — the real PLASMA concurrency — while staying inside
    // the matrix geometry, so rect-granularity verification and checked
    // execution cover this builder.
    let mut tracker = BlockTracker::with_geometry(b, m, n);
    let steps = kt as i64;

    for k in 0..kt {
        let k0 = k * b;
        let wk = b.min(n - k0).min(m - k0);
        let pr = (steps - k as i64) * 1000;

        let meta = TaskMeta::new(TaskLabel::new(TaskKind::Panel, k, k, k), flops::getrf(wk, wk))
            .with_bytes(traffic::getf2(wk, wk))
            .with_priority(pr + 900)
            .with_class(KernelClass::LuBlas2);
        let getrf_id = g.add_task(meta, TiledLuTask::Getrf { k });
        tracker.write(&mut g, getrf_id, k..k + 1, k..k + 1);

        for j in k + 1..nt {
            let wj = b.min(n - j * b);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::URow, k, k, j),
                flops::trsm_left(wk, wj),
            )
            .with_bytes(traffic::trsm_left(wk, wj) + traffic::laswp(wk, wj))
            .with_priority(pr + 500)
            .with_class(KernelClass::Trsm);
            let id = g.add_task(meta, TiledLuTask::Gessm { k, j });
            let lr = l_rects(k0, wk);
            if lr.is_empty() {
                // 1×1 diagonal tile: L is empty, but the pivots still
                // flow from getrf through side storage.
                g.add_dep(getrf_id, id);
            }
            for r in lr {
                tracker.read_rect(&mut g, id, r); // L_kk (strict lower)
            }
            tracker.write(&mut g, id, k..k + 1, j..j + 1);
        }
        for i in k + 1..mt {
            let ri = b.min(m - i * b);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Panel, k, i, k),
                flops::tstrf(ri, wk),
            )
            .with_bytes(traffic::getf2(ri + wk, wk))
            .with_priority(pr + 700)
            .with_class(KernelClass::LuBlas2);
            let id = g.add_task(meta, TiledLuTask::Tstrf { k, i });
            for r in u_rects(k0, wk) {
                tracker.write_rect(&mut g, id, r); // U_kk (upper + diagonal)
            }
            tracker.write(&mut g, id, i..i + 1, k..k + 1);

            for j in k + 1..nt {
                let wj = b.min(n - j * b);
                let meta = TaskMeta::new(
                    TaskLabel::new(TaskKind::Update, k, i, j),
                    flops::ssssm(ri, wk, wj),
                )
                .with_bytes(traffic::gemm(ri, wj, wk) + traffic::trsm_left(wk, wj))
                .with_priority(pr + 100)
                .with_class(KernelClass::Gemm);
                let id = g.add_task(meta, TiledLuTask::Ssssm { k, i, j });
                tracker.read(&mut g, id, i..i + 1, k..k + 1); // the transform
                tracker.write(&mut g, id, k..k + 1, j..j + 1);
                tracker.write(&mut g, id, i..i + 1, j..j + 1);
            }
        }
    }

    let ctx = Ctx {
        m,
        n,
        b,
        diag: (0..kt).map(|_| OnceLock::new()).collect(),
        trans: (0..kt).map(|k| (k + 1..mt).map(|_| OnceLock::new()).collect()).collect(),
    };
    let access = tracker.into_access_map();
    (g, ctx, access)
}

// DAG executor: every access falls inside the footprint declared in
// build(), which `verify_graph` proves conflict-ordered.
#[allow(clippy::disallowed_methods)]
fn exec(ctx: &Ctx, a: &SharedMatrix, t: TiledLuTask) {
    let m = ctx.m;
    let n = ctx.n;
    let b = ctx.b;
    match t {
        TiledLuTask::Getrf { k } => {
            let k0 = k * b;
            let wk = b.min(n - k0).min(m - k0);
            // SAFETY: exclusive tile access per the DAG.
            let tile = unsafe { a.block_mut(k0, k0, wk, wk) };
            let info = getrf_tile(tile);
            ctx.diag[k].set(info).expect("getrf ran twice");
        }
        TiledLuTask::Gessm { k, j } => {
            let k0 = k * b;
            let wk = b.min(n - k0).min(m - k0);
            let wj = b.min(n - j * b);
            let info = ctx.diag[k].get().expect("diag not ready");
            let mut seq = ca_matrix::PivotSeq::new(0);
            for &p in &info.pivots.ipiv {
                seq.push(p);
            }
            // Lease only the strictly-lower L columns: the upper triangle
            // belongs to tstrf tasks that may run concurrently.
            let lkk = unsafe { a.block_rects(k0, k0, wk, wk, &l_rects(k0, wk)) };
            let tile = unsafe { a.block_mut(k0, j * b, wk, wj) };
            gessm(&seq, lkk, tile);
        }
        TiledLuTask::Tstrf { k, i } => {
            let k0 = k * b;
            let wk = b.min(n - k0).min(m - k0);
            let ri = b.min(m - i * b);
            // Lease only the upper triangle (with diagonal): the strict
            // lower L is concurrently read by gessm tasks.
            let ukk = unsafe { a.block_mut_rects(k0, k0, wk, wk, &u_rects(k0, wk)) };
            let aik = unsafe { a.block_mut(i * b, k0, ri, wk) };
            let tr = tstrf(ukk, aik);
            ctx.trans[k][i - k - 1].set(tr).expect("tstrf ran twice");
        }
        TiledLuTask::Ssssm { k, i, j } => {
            let k0 = k * b;
            let wk = b.min(n - k0).min(m - k0);
            let ri = b.min(m - i * b);
            let wj = b.min(n - j * b);
            let tr = ctx.trans[k][i - k - 1].get().expect("tstrf not ready");
            let akj = unsafe { a.block_mut(k0, j * b, wk, wj) };
            let aij = unsafe { a.block_mut(i * b, j * b, ri, wj) };
            ssssm(tr, akj, aij);
        }
    }
}

/// Tiled LU of a square matrix with tile size `b`, on `threads` workers.
pub fn tiled_lu(a: Matrix, b: usize, threads: usize) -> TiledLu {
    let m = a.nrows();
    let n = a.ncols();
    assert!(b > 0 && threads > 0);
    let (graph, ctx, _access) = build(m, n, b);
    let shared = SharedMatrix::new(a);
    let jobs: TaskGraph<Job<'_>> = graph.map_ref(|_, &spec| {
        let ctx = &ctx;
        let shared = &shared;
        ca_sched::job(move || exec(ctx, shared, spec))
    });
    run_graph(jobs, threads);

    TiledLu {
        a: shared.into_inner(),
        b,
        diag: ctx.diag.into_iter().map(|d| d.into_inner().expect("diag missing")).collect(),
        trans: ctx
            .trans
            .into_iter()
            .map(|v| v.into_iter().map(|t| t.into_inner().expect("trans missing")).collect())
            .collect(),
    }
}

/// [`tiled_lu`] under the dynamic race detector: every access runs
/// against a shadow registry built from the declared (sub-tile)
/// footprints, catching undeclared touches and overlapping live leases.
///
/// The declarations split tile `(k, k)` element-wise between `gessm`
/// (strict lower) and `tstrf` (upper + diagonal), so the graph only
/// verifies at rect granularity
/// ([`ca_sched::Granularity::Rect`]) — block-granularity verification
/// reports the intentional same-tile concurrency as a conflict.
pub fn try_tiled_lu_checked(
    a: Matrix,
    b: usize,
    threads: usize,
) -> Result<TiledLu, CheckedError> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(b > 0 && threads > 0);
    let (graph, ctx, access) = build(m, n, b);
    let opts = ca_sched::VerifyOptions {
        granularity: ca_sched::Granularity::Rect,
        lint_edges: false,
    };
    ca_sched::verify_graph_with(&graph, &access, &opts).map_err(CheckedError::Soundness)?;
    let registry = build_shadow_registry(&graph, &access, b, m, n);
    let shared = SharedMatrix::with_shadow(a, registry.clone());
    let jobs: TaskGraph<Job<'_>> = graph.map_ref(|_, &spec| {
        let ctx = &ctx;
        let shared = &shared;
        ca_sched::job(move || exec(ctx, shared, spec))
    });
    try_run_graph_checked(jobs, threads, &registry)?;

    Ok(TiledLu {
        a: shared.into_inner(),
        b,
        diag: ctx.diag.into_iter().map(|d| d.into_inner().expect("diag missing")).collect(),
        trans: ctx
            .trans
            .into_iter()
            .map(|v| v.into_iter().map(|t| t.into_inner().expect("trans missing")).collect())
            .collect(),
    })
}

/// Task graph of tiled LU for the multicore simulator.
pub fn tiled_lu_task_graph(m: usize, n: usize, b: usize) -> TaskGraph<TiledLuTask> {
    build(m, n, b).0
}

/// [`tiled_lu_task_graph`] plus the builder's retained access
/// declarations, for the static DAG verifier. The map carries the matrix
/// geometry and true sub-tile footprints (the `L` / `U` split of the
/// diagonal tile), so it is meant for
/// [`ca_sched::verify_graph_with`] at [`ca_sched::Granularity::Rect`];
/// block-granularity verification widens the split triangles to the whole
/// tile and reports the intentional gessm ↔ tstrf concurrency as an
/// unordered conflict.
pub fn tiled_lu_task_graph_with_access(
    m: usize,
    n: usize,
    b: usize,
) -> (TaskGraph<TiledLuTask>, AccessMap) {
    let (g, _ctx, access) = build(m, n, b);
    (g, access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::seeded_rng;

    fn check(n: usize, b: usize, threads: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(n, n, &mut seeded_rng(seed));
        let x_true = ca_matrix::random_uniform(n, 2, &mut seeded_rng(seed + 1000));
        let rhs = a0.matmul(&x_true);
        let f = tiled_lu(a0.clone(), b, threads);
        let x = f.solve(&rhs);
        let res = TiledLu::solve_residual(&a0, &x, &rhs);
        assert!(res < 1e-10, "solve residual {res} for n={n} b={b} t={threads}");
    }

    #[test]
    fn tiled_lu_solves_systems() {
        check(32, 8, 1, 1);
        check(60, 16, 1, 2); // ragged edge tiles
        check(96, 24, 1, 3);
    }

    #[test]
    fn parallel_matches_single_thread_bitwise() {
        let n = 64;
        let a0 = ca_matrix::random_uniform(n, n, &mut seeded_rng(4));
        let f1 = tiled_lu(a0.clone(), 16, 1);
        let f4 = tiled_lu(a0, 16, 4);
        assert_eq!(f1.a.as_slice(), f4.a.as_slice());
        for k in 0..f1.diag.len() {
            assert_eq!(f1.diag[k].pivots.ipiv, f4.diag[k].pivots.ipiv);
        }
    }

    #[test]
    fn parallel_solve_works() {
        check(80, 16, 4, 5);
    }

    #[test]
    fn task_graph_has_no_blas2_panel_on_whole_column() {
        // Incremental pivoting splits the panel into per-tile tasks — the
        // critical path is much shorter than blocked dgetrf's.
        let n = 800;
        let b = 100;
        let g = tiled_lu_task_graph(n, n, b);
        g.validate();
        let gb = crate::getrf_blocked_task_graph(n, n, b, 8);
        assert!(
            g.critical_path_flops() < gb.critical_path_flops(),
            "tiled critical path should beat blocked's"
        );
    }

    #[test]
    fn task_graph_passes_rect_granularity_verification() {
        let opts = ca_sched::VerifyOptions {
            granularity: ca_sched::Granularity::Rect,
            lint_edges: false,
        };
        for (m, n, b) in [(96, 96, 16), (60, 60, 16), (128, 64, 32)] {
            let (g, access) = tiled_lu_task_graph_with_access(m, n, b);
            let report = ca_sched::verify_graph_with(&g, &access, &opts)
                .unwrap_or_else(|e| panic!("tiled LU {m}x{n} b={b} unsound: {e}"));
            assert_eq!(report.tasks, g.len());
            assert!(report.conflict_pairs > 0, "expected conflicting pairs to prove ordered");
        }
    }

    #[test]
    fn block_granularity_sees_the_diagonal_tile_split_as_a_conflict() {
        // gessm (strict lower L) and tstrf (upper U) share tile (k, k)
        // unordered by design; widening their rects to the whole tile must
        // surface exactly that as a block-granularity conflict.
        let (g, access) = tiled_lu_task_graph_with_access(96, 96, 16);
        match ca_sched::verify_graph(&g, &access) {
            Err(ca_sched::SoundnessError::UnorderedConflict { .. }) => {}
            other => panic!("expected a widened same-tile conflict, got {other:?}"),
        }
    }

    #[test]
    fn checked_execution_passes_with_subtile_leases() {
        let n = 64;
        let a0 = ca_matrix::random_uniform(n, n, &mut seeded_rng(7));
        let x_true = ca_matrix::random_uniform(n, 2, &mut seeded_rng(1007));
        let rhs = a0.matmul(&x_true);
        let f = try_tiled_lu_checked(a0.clone(), 16, 4).expect("checked run is clean");
        let x = f.solve(&rhs);
        let res = TiledLu::solve_residual(&a0, &x, &rhs);
        assert!(res < 1e-10, "checked solve residual {res}");
    }

    #[test]
    fn upper_triangle_is_global_u() {
        // The tiled elimination must produce the same U as applying the
        // forward transforms to A: check A·x=b consistency with multiple RHS.
        let n = 48;
        let a0 = ca_matrix::random_uniform(n, n, &mut seeded_rng(6));
        let f = tiled_lu(a0.clone(), 12, 1);
        let rhs = Matrix::identity(n);
        let ainv_cols = f.solve(&rhs);
        // A * A^{-1} = I.
        let prod = a0.matmul(&ainv_cols);
        let diff = prod.sub_matrix(&Matrix::identity(n));
        assert!(ca_matrix::norm_max(diff.view()) < 1e-8);
    }
}
