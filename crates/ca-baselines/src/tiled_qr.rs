//! PLASMA-style tiled QR — the `PLASMA_dgeqrf` stand-in (Buttari et al.
//! 2009): a flat-tree elimination of tiles below the diagonal, one tile at a
//! time (`geqrt` on the diagonal, then a chain of `tsqrt`/`tsmqr`).
//!
//! Compared to TSQR this has a *longer* panel critical path (the tile chain
//! is sequential) but fully pipelined updates — which is exactly the
//! trade-off the paper's Figure 8 explores (TSQR wins on tall-skinny
//! matrices, PLASMA catches up as `n` grows).

use crate::tile_kernels::{geqrt, tsmqr, tsqrt};
use ca_kernels::{flops, traffic};
use ca_kernels::{larfb_left, trsm_left_upper_notrans, Trans};
use ca_matrix::shadow::ElemRect;
use ca_matrix::{Matrix, SharedMatrix};
use ca_sched::{
    build_shadow_registry, run_graph, try_run_graph_checked, AccessMap, BlockTracker,
    CheckedError, Job, KernelClass, TaskGraph, TaskKind, TaskLabel, TaskMeta,
};
use std::sync::OnceLock;

/// Per-column rects of the strictly-lower reflector trapezoid of the
/// `rk × kv` diagonal tile at origin `k0`: the `V` factor `ormqr` reads.
fn v_rects(k0: usize, rk: usize, kv: usize) -> Vec<ElemRect> {
    (0..kv)
        .map(|c| ElemRect::new(k0 + c + 1..k0 + rk, k0 + c..k0 + c + 1))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Per-column rects of the upper triangle (diagonal included) of the
/// `wk × wk` top of the diagonal tile: the `R` factor `tsqrt` reads and
/// rewrites.
fn r_rects(k0: usize, wk: usize) -> Vec<ElemRect> {
    (0..wk).map(|c| ElemRect::new(k0..k0 + c + 1, k0 + c..k0 + c + 1)).collect()
}

/// Result of the tiled QR factorization.
pub struct TiledQr {
    /// Factored matrix: `R` in the upper triangle; tile reflectors below.
    pub a: Matrix,
    /// Tile size.
    pub b: usize,
    /// Per-step compact-WY `T` of the diagonal tile.
    pub t_diag: Vec<Matrix>,
    /// Per-step, per-subdiagonal-tile `T` of the `tsqrt` eliminations.
    pub t_ts: Vec<Vec<Matrix>>,
}

impl TiledQr {
    /// The upper factor `R` (`min(m,n) × n`).
    pub fn r(&self) -> Matrix {
        self.a.upper()
    }

    /// Applies `Qᵀ` to `c` in place (replaying the tile eliminations).
    pub fn apply_qt(&self, c: &mut Matrix) {
        let m = self.a.nrows();
        let n = self.a.ncols();
        assert_eq!(c.nrows(), m, "row mismatch with Q");
        let b = self.b;
        let nt = m.min(n).div_ceil(b);
        let p = c.ncols();
        for k in 0..nt {
            let k0 = k * b;
            let wk = b.min(n - k0).min(m - k0);
            // Diagonal tile reflectors.
            let rk = b.min(m - k0);
            let v = self.a.block(k0, k0, rk, wk);
            larfb_left(Trans::Yes, v, self.t_diag[k].view(), c.block_mut(k0, 0, rk, p));
            // Subdiagonal chain.
            for (ii, t) in self.t_ts[k].iter().enumerate() {
                let i0 = (k + 1 + ii) * b;
                let ri = b.min(m - i0);
                let v2 = self.a.block(i0, k0, ri, wk);
                let (top, bottom) = c.view_mut().split_at_row(i0);
                let ctop = top.into_sub(k0, 0, wk, p);
                let cbot = bottom.into_sub(0, 0, ri, p);
                tsmqr(Trans::Yes, v2, t.view(), ctop, cbot);
            }
        }
    }

    /// Applies `Q` to `c` in place.
    pub fn apply_q(&self, c: &mut Matrix) {
        let m = self.a.nrows();
        let n = self.a.ncols();
        assert_eq!(c.nrows(), m, "row mismatch with Q");
        let b = self.b;
        let nt = m.min(n).div_ceil(b);
        let p = c.ncols();
        for k in (0..nt).rev() {
            let k0 = k * b;
            let wk = b.min(n - k0).min(m - k0);
            let rk = b.min(m - k0);
            for (ii, t) in self.t_ts[k].iter().enumerate().rev() {
                let i0 = (k + 1 + ii) * b;
                let ri = b.min(m - i0);
                let v2 = self.a.block(i0, k0, ri, wk);
                let (top, bottom) = c.view_mut().split_at_row(i0);
                let ctop = top.into_sub(k0, 0, wk, p);
                let cbot = bottom.into_sub(0, 0, ri, p);
                tsmqr(Trans::No, v2, t.view(), ctop, cbot);
            }
            let v = self.a.block(k0, k0, rk, wk);
            larfb_left(Trans::No, v, self.t_diag[k].view(), c.block_mut(k0, 0, rk, p));
        }
    }

    /// Thin explicit `Q` (`m × min(m,n)`).
    pub fn q_thin(&self) -> Matrix {
        let m = self.a.nrows();
        let k = m.min(self.a.ncols());
        let mut q = Matrix::zeros(m, k);
        for i in 0..k {
            q[(i, i)] = 1.0;
        }
        self.apply_q(&mut q);
        q
    }

    /// Relative residual against the original matrix.
    pub fn residual(&self, a0: &Matrix) -> f64 {
        ca_matrix::qr_residual(a0, &self.q_thin(), &self.r())
    }

    /// Least-squares solve for tall full-rank `A`.
    pub fn solve_ls(&self, rhs: &Matrix) -> Matrix {
        let m = self.a.nrows();
        let n = self.a.ncols();
        assert!(m >= n);
        let mut qtb = rhs.clone();
        self.apply_qt(&mut qtb);
        let mut x = Matrix::from_fn(n, rhs.ncols(), |i, j| qtb[(i, j)]);
        let rmat = Matrix::from_fn(n, n, |i, j| if i <= j { self.a[(i, j)] } else { 0.0 });
        trsm_left_upper_notrans(rmat.view(), x.view_mut());
        x
    }
}

/// What a tiled-QR task does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field names (k/i/j tile coordinates) are the documentation
pub enum TiledQrTask {
    /// QR of diagonal tile `k`.
    Geqrt { k: usize },
    /// Apply the diagonal tile's `Qᵀ` to tile `(k, j)`.
    Ormqr { k: usize, j: usize },
    /// Eliminate tile `(i, k)` against the diagonal triangle.
    Tsqrt { k: usize, i: usize },
    /// Apply a `tsqrt` elimination to the tile pair `(k, j), (i, j)`.
    Tsmqr { k: usize, i: usize, j: usize },
}

struct Ctx {
    m: usize,
    n: usize,
    b: usize,
    t_diag: Vec<OnceLock<Matrix>>,
    t_ts: Vec<Vec<OnceLock<Matrix>>>,
}

fn build(m: usize, n: usize, b: usize) -> (TaskGraph<TiledQrTask>, Ctx, AccessMap) {
    assert!(m >= n, "tiled QR implemented for tall or square matrices");
    let mt = m.div_ceil(b);
    let nt = n.div_ceil(b);
    let kt = m.min(n).div_ceil(b);
    let mut g: TaskGraph<TiledQrTask> = TaskGraph::new();
    // Element geometry lets the diagonal tile split into the strictly-lower
    // reflector trapezoid `V` (read by `ormqr`) and the upper `R` triangle
    // (rewritten by the `tsqrt` chain) — the two are disjoint, so `ormqr`
    // and `tsqrt` of the same step run concurrently.
    let mut tracker = BlockTracker::with_geometry(b, m, n);
    let steps = kt as i64;

    for k in 0..kt {
        let k0 = k * b;
        let wk = b.min(n - k0);
        let rk = b.min(m - k0);
        let kv = wk.min(rk);
        let pr = (steps - k as i64) * 1000;

        let meta = TaskMeta::new(TaskLabel::new(TaskKind::Panel, k, k, k), flops::geqrf(rk, wk))
            .with_bytes(traffic::geqr3(rk, wk))
            .with_priority(pr + 900)
            .with_class(KernelClass::QrBlas2);
        let geqrt_id = g.add_task(meta, TiledQrTask::Geqrt { k });
        tracker.write(&mut g, geqrt_id, k..k + 1, k..k + 1);

        for j in k + 1..nt {
            let wj = b.min(n - j * b);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::URow, k, k, j),
                flops::larfb(rk, wj, wk),
            )
            .with_bytes(traffic::larfb(rk, wj, wk))
            .with_priority(pr + 500)
            .with_class(KernelClass::Larfb);
            let id = g.add_task(meta, TiledQrTask::Ormqr { k, j });
            let vr = v_rects(k0, rk, kv);
            if vr.is_empty() {
                // Degenerate 1-row panel: no reflectors below the diagonal,
                // but `ormqr` still consumes `T_kk` — keep the side-channel
                // ordering explicit.
                g.add_dep(geqrt_id, id);
            }
            for r in vr {
                tracker.read_rect(&mut g, id, r);
            }
            tracker.write(&mut g, id, k..k + 1, j..j + 1);
        }
        for i in k + 1..mt {
            let ri = b.min(m - i * b);
            let meta = TaskMeta::new(
                TaskLabel::new(TaskKind::Panel, k, i, k),
                flops::tsqrt(ri, wk),
            )
            .with_bytes(traffic::gemm(ri, wk, wk))
            .with_priority(pr + 700)
            .with_class(KernelClass::QrBlas2);
            let id = g.add_task(meta, TiledQrTask::Tsqrt { k, i });
            for r in r_rects(k0, wk) {
                tracker.write_rect(&mut g, id, r);
            }
            tracker.write(&mut g, id, i..i + 1, k..k + 1);

            for j in k + 1..nt {
                let wj = b.min(n - j * b);
                let meta = TaskMeta::new(
                    TaskLabel::new(TaskKind::Update, k, i, j),
                    flops::tsmqr(ri, wk, wj),
                )
                .with_bytes(traffic::larfb(ri + wk, wj, wk))
                .with_priority(pr + 100)
                .with_class(KernelClass::Larfb);
                let id = g.add_task(meta, TiledQrTask::Tsmqr { k, i, j });
                tracker.read(&mut g, id, i..i + 1, k..k + 1);
                tracker.write(&mut g, id, k..k + 1, j..j + 1);
                tracker.write(&mut g, id, i..i + 1, j..j + 1);
            }
        }
    }

    let ctx = Ctx {
        m,
        n,
        b,
        t_diag: (0..kt).map(|_| OnceLock::new()).collect(),
        t_ts: (0..kt).map(|k| (k + 1..mt).map(|_| OnceLock::new()).collect()).collect(),
    };
    let access = tracker.into_access_map();
    (g, ctx, access)
}

// DAG executor: every access falls inside the footprint declared in
// build(), which `verify_graph` proves conflict-ordered.
#[allow(clippy::disallowed_methods)]
fn exec(ctx: &Ctx, a: &SharedMatrix, t: TiledQrTask) {
    let m = ctx.m;
    let n = ctx.n;
    let b = ctx.b;
    match t {
        TiledQrTask::Geqrt { k } => {
            let k0 = k * b;
            let wk = b.min(n - k0);
            let rk = b.min(m - k0);
            // SAFETY: exclusive tile access per the DAG.
            let tile = unsafe { a.block_mut(k0, k0, rk, wk) };
            let mut t_out = Matrix::zeros(wk.min(rk), wk.min(rk));
            geqrt(tile, t_out.view_mut());
            ctx.t_diag[k].set(t_out).expect("geqrt ran twice");
        }
        TiledQrTask::Ormqr { k, j } => {
            let k0 = k * b;
            let wk = b.min(n - k0);
            let rk = b.min(m - k0);
            let kv = wk.min(rk);
            let t_kk = ctx.t_diag[k].get().expect("T_kk not ready");
            // Lease only the strictly-lower `V` columns: `larfb_left` treats
            // the upper triangle as an implicit unit diagonal and never
            // touches it, so the concurrent `tsqrt` chain owns it.
            let v = unsafe { a.block_rects(k0, k0, rk, kv, &v_rects(k0, rk, kv)) };
            let c = unsafe { a.block_mut(k0, j * b, rk, b.min(n - j * b)) };
            larfb_left(Trans::Yes, v, t_kk.view(), c);
        }
        TiledQrTask::Tsqrt { k, i } => {
            let k0 = k * b;
            let wk = b.min(n - k0);
            let ri = b.min(m - i * b);
            let r_kk = unsafe { a.block_mut_rects(k0, k0, wk, wk, &r_rects(k0, wk)) };
            let a_ik = unsafe { a.block_mut(i * b, k0, ri, wk) };
            let mut t_out = Matrix::zeros(wk, wk);
            tsqrt(r_kk, a_ik, t_out.view_mut());
            ctx.t_ts[k][i - k - 1].set(t_out).expect("tsqrt ran twice");
        }
        TiledQrTask::Tsmqr { k, i, j } => {
            let k0 = k * b;
            let wk = b.min(n - k0);
            let ri = b.min(m - i * b);
            let wj = b.min(n - j * b);
            let t_ik = ctx.t_ts[k][i - k - 1].get().expect("T_ik not ready");
            let v2 = unsafe { a.block(i * b, k0, ri, wk) };
            let c_top = unsafe { a.block_mut(k0, j * b, wk, wj) };
            let c_bot = unsafe { a.block_mut(i * b, j * b, ri, wj) };
            tsmqr(Trans::Yes, v2, t_ik.view(), c_top, c_bot);
        }
    }
}

/// Tiled QR of a tall or square matrix with tile size `b`, on `threads`
/// workers.
pub fn tiled_qr(a: Matrix, b: usize, threads: usize) -> TiledQr {
    let m = a.nrows();
    let n = a.ncols();
    assert!(b > 0 && threads > 0);
    let (graph, ctx, _access) = build(m, n, b);
    let shared = SharedMatrix::new(a);
    let jobs: TaskGraph<Job<'_>> = graph.map_ref(|_, &spec| {
        let ctx = &ctx;
        let shared = &shared;
        ca_sched::job(move || exec(ctx, shared, spec))
    });
    run_graph(jobs, threads);

    TiledQr {
        a: shared.into_inner(),
        b,
        t_diag: ctx.t_diag.into_iter().map(|t| t.into_inner().expect("T missing")).collect(),
        t_ts: ctx
            .t_ts
            .into_iter()
            .map(|v| v.into_iter().map(|t| t.into_inner().expect("T missing")).collect())
            .collect(),
    }
}

/// [`tiled_qr`] with the full verification stack: element-rect static
/// soundness proof up front, then execution under a shadow registry with
/// sub-tile leases auditing every access.
pub fn try_tiled_qr_checked(a: Matrix, b: usize, threads: usize) -> Result<TiledQr, CheckedError> {
    let m = a.nrows();
    let n = a.ncols();
    assert!(b > 0 && threads > 0);
    let (graph, ctx, access) = build(m, n, b);
    let opts = ca_sched::VerifyOptions {
        granularity: ca_sched::Granularity::Rect,
        ..Default::default()
    };
    ca_sched::verify_graph_with(&graph, &access, &opts).map_err(CheckedError::Soundness)?;
    let registry = build_shadow_registry(&graph, &access, b, m, n);
    let shared = SharedMatrix::with_shadow(a, registry.clone());
    let jobs: TaskGraph<Job<'_>> = graph.map_ref(|_, &spec| {
        let ctx = &ctx;
        let shared = &shared;
        ca_sched::job(move || exec(ctx, shared, spec))
    });
    try_run_graph_checked(jobs, threads, &registry)?;

    Ok(TiledQr {
        a: shared.into_inner(),
        b,
        t_diag: ctx.t_diag.into_iter().map(|t| t.into_inner().expect("T missing")).collect(),
        t_ts: ctx
            .t_ts
            .into_iter()
            .map(|v| v.into_iter().map(|t| t.into_inner().expect("T missing")).collect())
            .collect(),
    })
}

/// Task graph of tiled QR for the multicore simulator.
pub fn tiled_qr_task_graph(m: usize, n: usize, b: usize) -> TaskGraph<TiledQrTask> {
    build(m, n, b).0
}

/// [`tiled_qr_task_graph`] plus the builder's retained access declarations
/// (block regions plus the diagonal tile's element rects), for the static
/// DAG soundness verifier. Meant for
/// [`ca_sched::verify_graph_with`] at [`ca_sched::Granularity::Rect`]:
/// block granularity conservatively reports the intentional `ormqr`/`tsqrt`
/// concurrency on the diagonal tile as a conflict.
pub fn tiled_qr_task_graph_with_access(
    m: usize,
    n: usize,
    b: usize,
) -> (TaskGraph<TiledQrTask>, AccessMap) {
    let (g, _ctx, access) = build(m, n, b);
    (g, access)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_matrix::seeded_rng;

    fn check(m: usize, n: usize, b: usize, threads: usize, seed: u64) {
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(seed));
        let f = tiled_qr(a0.clone(), b, threads);
        let scale = 1e-11 * (m.max(n) as f64);
        let res = f.residual(&a0);
        assert!(res < scale, "residual {res} for {m}x{n} b={b} t={threads}");
        let orth = ca_matrix::orthogonality(&f.q_thin());
        assert!(orth < scale, "orthogonality {orth} for {m}x{n} b={b}");
    }

    #[test]
    fn tiled_qr_square() {
        check(48, 48, 12, 1, 1);
        check(60, 60, 16, 1, 2); // ragged
    }

    #[test]
    fn tiled_qr_tall() {
        check(120, 36, 12, 1, 3);
        check(100, 30, 16, 1, 4); // ragged both ways
    }

    #[test]
    fn parallel_matches_single_thread_bitwise() {
        let a0 = ca_matrix::random_uniform(80, 48, &mut seeded_rng(5));
        let f1 = tiled_qr(a0.clone(), 16, 1);
        let f4 = tiled_qr(a0, 16, 4);
        assert_eq!(f1.a.as_slice(), f4.a.as_slice());
    }

    #[test]
    fn least_squares() {
        let m = 90;
        let n = 24;
        let a0 = ca_matrix::random_uniform(m, n, &mut seeded_rng(6));
        let x_true = ca_matrix::random_uniform(n, 2, &mut seeded_rng(7));
        let rhs = a0.matmul(&x_true);
        let f = tiled_qr(a0, 12, 2);
        let x = f.solve_ls(&rhs);
        let err = ca_matrix::norm_max(x.sub_matrix(&x_true).view());
        assert!(err < 1e-9, "LS error {err}");
    }

    #[test]
    fn task_graph_passes_rect_granularity_verification() {
        let opts = ca_sched::VerifyOptions {
            granularity: ca_sched::Granularity::Rect,
            ..Default::default()
        };
        for (m, n, b) in [(96, 96, 16), (120, 36, 12), (100, 30, 16)] {
            let (g, access) = tiled_qr_task_graph_with_access(m, n, b);
            let report = ca_sched::verify_graph_with(&g, &access, &opts)
                .unwrap_or_else(|e| panic!("tiled QR {m}x{n} b={b} unsound: {e}"));
            assert_eq!(report.tasks, g.len());
            assert!(report.conflict_pairs > 0, "expected conflicting pairs to prove ordered");
        }
    }

    #[test]
    fn block_granularity_sees_the_diagonal_tile_split_as_a_conflict() {
        // `ormqr` (reads V) and `tsqrt` (rewrites R) share the diagonal tile
        // but touch disjoint element sets; the block-level view cannot see
        // that and must reject the graph.
        let (g, access) = tiled_qr_task_graph_with_access(96, 96, 16);
        let err = ca_sched::verify_graph(&g, &access)
            .expect_err("block granularity should report the V/R split as unordered");
        assert!(
            matches!(err, ca_sched::SoundnessError::UnorderedConflict { .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn checked_execution_passes_with_subtile_leases() {
        let a0 = ca_matrix::random_uniform(80, 48, &mut seeded_rng(9));
        let f = try_tiled_qr_checked(a0.clone(), 16, 4).expect("checked tiled QR");
        let res = f.residual(&a0);
        assert!(res < 1e-10, "residual {res}");
    }

    #[test]
    fn task_graph_valid_and_panel_chain_longer_than_tsqr() {
        // Tiled QR's panel is a sequential tile chain: its critical path
        // exceeds the binary-tree TSQR DAG's for a tall-skinny matrix.
        let g = tiled_qr_task_graph(1600, 100, 100);
        g.validate();
        let p = ca_core::CaParams::new(100, 8, 8);
        let gq = ca_core::caqr_task_graph(1600, 100, &p);
        assert!(g.critical_path_flops() > gq.critical_path_flops());
    }
}
