//! Out-of-core sequential CALU/CAQR: factoring matrices larger than RAM.
//!
//! The multicore CALU/CAQR algorithms of Donfack–Grigori–Gupta have
//! sequential out-of-core twins (Demmel–Grigori–Hoemmen–Langou, arXiv
//! 0806.2159): when the matrix lives on disk and fast memory holds `M`
//! words, *any* LU/QR schedule must move `Ω(flops/√M)` words across the
//! disk boundary, and left-looking panel algorithms with `b`-wide
//! tournament/TSQR panels attain that bound up to a constant. This crate
//! is that tier:
//!
//! * [`TileStore`] — the matrix as block-column panels in one file, with
//!   bitwise-exact element encoding and per-transfer byte accounting;
//! * [`OocPlan`] — how wide a resident superpanel a byte budget affords
//!   (one superpanel + one streamed column chunk, never two panels);
//! * [`ooc_calu`] / [`ooc_caqr`] — left-looking drivers that replay prior
//!   panels' updates onto the resident superpanel and then run the in-core
//!   TSLU/TSQR loops ([`ca_core`]) on it, bitwise-matching the in-core
//!   sequential factorizations;
//! * [`probe`] — streamed `O(n²)` matvec probes that verify factors too
//!   large for a full residual;
//! * [`metrics`] — process-wide `ooc_bytes_{read,written}_total` /
//!   `ooc_panel_load_seconds` instruments, adoptable into any
//!   [`ca_telemetry::Registry`].
//!
//! The measured I/O volume of a factorization ([`OocLu::io`] /
//! [`OocQr::io`]) is gated in the `ooc_sweep` bench against 1.5× the
//! lower bound ([`ca_kernels::traffic::ooc_lu_lower_bound`]).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod lu;
mod pivots;
mod plan;
mod qr;
mod store;

pub mod metrics;
pub mod probe;

pub use lu::{ooc_calu, OocLu};
pub use metrics::{ooc_metrics, register_ooc_metrics, OocMetrics};
pub use pivots::apply_pivots_rebased;
pub use plan::{OocKind, OocPlan};
pub use qr::{apply_panel_from_store, leaf_apply_from_store, ooc_caqr, OocQr};
pub use store::{IoSnapshot, IoVolume, TileStore};
