//! Left-looking out-of-core CAQR.
//!
//! [`ooc_caqr`] factors a [`TileStore`]-resident matrix with one resident
//! superpanel, mirroring [`ca_core::caqr_seq`]'s program order. For each
//! resident superpanel it first applies every previously factored panel's
//! `Qᵀ` — leaf reflectors streamed from the store (they live below the
//! diagonal of the factored panels on disk), tree-node reflectors from the
//! RAM-held [`PanelQ`] scratch — then runs the in-core TSQR panel loop
//! ([`ca_core::tsqr`]) on the resident columns.
//!
//! The Q-tree scratch (`LeafQ::t`, `NodeQ::v`/`t`) stays in RAM for the
//! whole factorization: a panel's partition has at most `tr` groups, so
//! the scratch is `O(tr·b²)` per panel and `O(tr·b·min(m,n))` overall —
//! the QR plan reserves it out of the memory budget up front
//! ([`crate::OocPlan::scratch_bytes`]).

use crate::plan::{OocKind, OocPlan};
use crate::store::{IoSnapshot, TileStore};
use ca_core::params::partition_rows;
use ca_core::tsqr::{leaf_apply, leaf_qr, node_apply, node_qr, plan_panel, LeafQ, PanelQ};
use ca_core::{CaParams, FactorError};
use ca_kernels::{larfb_left, Kernel, Trans};
use ca_matrix::SharedMatrix;
use core::ops::Range;

/// The result of an out-of-core QR factorization. `R` and the leaf
/// Householder vectors live in the [`TileStore`] (same packed layout as
/// [`ca_core::QrFactors::a`]); the tree scratch comes back in RAM.
#[derive(Debug)]
pub struct OocQr<T: ca_matrix::Scalar = f64> {
    /// Per-panel `Q` representation in factorization order. `PanelQ::c0`
    /// holds the panel's *global* column (unlike the in-core path, the
    /// reflectors are addressed in the store, not a resident matrix).
    pub panels: Vec<PanelQ<T>>,
    /// The residency plan the factorization ran under.
    pub plan: OocPlan,
    /// Tile-store transfer volume of the factorization.
    pub io: IoSnapshot,
}

/// Factors the store's matrix in place as `A = Q·R` under `budget_bytes`
/// of resident memory.
pub fn ooc_caqr<T: Kernel>(
    store: &TileStore<T>,
    p: &CaParams,
    budget_bytes: usize,
) -> Result<OocQr<T>, FactorError> {
    let m = store.nrows();
    let n = store.ncols();
    let kmax = m.min(n);
    let plan = OocPlan::solve(OocKind::Qr, m, n, p, T::BYTES, budget_bytes)?;
    let io0 = store.io();

    let mut panels: Vec<PanelQ<T>> = Vec::with_capacity(kmax.div_ceil(p.b));

    for j in 0..plan.nsuper {
        let c0s = plan.super_start(j);
        let ws = plan.super_width(j);
        let sh = SharedMatrix::new(store.read_cols(c0s, ws, 0)?);

        // Qᵀ of every previously factored panel, in panel order — the
        // update caqr_seq interleaved with its own trailing loop, replayed
        // verbatim on the resident columns.
        for panel in &panels {
            apply_panel_from_store(store, panel, &sh, 0..ws, Trans::Yes)?;
        }

        // In-core TSQR over the resident columns (global diagonal k0).
        let mut lc = 0usize;
        while lc < ws {
            let k0 = c0s + lc;
            if k0 >= kmax {
                break;
            }
            let w = p.b.min(ws - lc);
            let part = partition_rows(m, k0, p.b, p.tr);
            let (_leaf_ks, plans) = plan_panel(&part, w, p.tree);
            let trailing = (lc + w)..ws;

            let mut leaves = Vec::with_capacity(part.ngroups());
            for grp in 0..part.ngroups() {
                let leaf = leaf_qr(&sh, lc, w, part.group(grp));
                leaf_apply(&sh, lc, &leaf, &sh, trailing.clone(), Trans::Yes);
                leaves.push(leaf);
            }
            let mut nodes = Vec::with_capacity(plans.len());
            for node_plan in &plans {
                let node = node_qr(&sh, lc, w, node_plan);
                node_apply(&node, &sh, trailing.clone(), Trans::Yes);
                nodes.push(node);
            }
            let k = (m - k0).min(w);
            panels.push(PanelQ { k0, c0: c0s + lc, w, k, leaves, nodes });
            lc += w;
        }

        store.write_cols(c0s, 0, &sh.into_inner())?;
    }

    Ok(OocQr { panels, plan, io: store.io().since(&io0) })
}

/// Applies `op(Q_leaf)` to columns `dcols` of `dst` with the reflector
/// trapezoid streamed from the store at global column `c0` (the
/// out-of-core twin of [`ca_core::tsqr::leaf_apply`]).
// Mirrors the tsqr kernel helpers: the caller sequences applications so
// the destination block is exclusively ours.
#[allow(clippy::disallowed_methods)]
pub fn leaf_apply_from_store<T: Kernel>(
    store: &TileStore<T>,
    c0: usize,
    leaf: &LeafQ<T>,
    dst: &SharedMatrix<T>,
    dcols: Range<usize>,
    trans: Trans,
) -> Result<(), FactorError> {
    if dcols.is_empty() {
        return Ok(());
    }
    let r = leaf.rows.len();
    let v = store.read_block(leaf.rows.start, r, c0, leaf.kv)?;
    // SAFETY: sequential replay — no other view of dst is live.
    let c = unsafe { dst.block_mut(leaf.rows.start, dcols.start, r, dcols.len()) };
    larfb_left(trans, v.view(), leaf.t.view(), c);
    Ok(())
}

/// Applies `op(Q_panel)` for a store-resident factored panel to columns
/// `dcols` of `dst` (`panel.c0` is the panel's global column in the
/// store). `Qᵀ` = leaves then nodes; `Q` = nodes in reverse then leaves —
/// the out-of-core twin of [`ca_core::tsqr::panel_apply`].
pub fn apply_panel_from_store<T: Kernel>(
    store: &TileStore<T>,
    panel: &PanelQ<T>,
    dst: &SharedMatrix<T>,
    dcols: Range<usize>,
    trans: Trans,
) -> Result<(), FactorError> {
    match trans {
        Trans::Yes => {
            for leaf in &panel.leaves {
                leaf_apply_from_store(store, panel.c0, leaf, dst, dcols.clone(), trans)?;
            }
            for node in &panel.nodes {
                node_apply(node, dst, dcols.clone(), trans);
            }
        }
        Trans::No => {
            for node in panel.nodes.iter().rev() {
                node_apply(node, dst, dcols.clone(), trans);
            }
            for leaf in &panel.leaves {
                leaf_apply_from_store(store, panel.c0, leaf, dst, dcols.clone(), trans)?;
            }
        }
    }
    Ok(())
}
